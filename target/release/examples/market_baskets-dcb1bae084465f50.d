/root/repo/target/release/examples/market_baskets-dcb1bae084465f50.d: examples/market_baskets.rs

/root/repo/target/release/examples/market_baskets-dcb1bae084465f50: examples/market_baskets.rs

examples/market_baskets.rs:
