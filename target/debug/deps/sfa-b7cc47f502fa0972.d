/root/repo/target/debug/deps/sfa-b7cc47f502fa0972.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libsfa-b7cc47f502fa0972.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
