/root/repo/target/debug/deps/sfa_json-dccddc4dd6fb3a92.d: crates/json/src/lib.rs crates/json/src/parse.rs crates/json/src/ser.rs

/root/repo/target/debug/deps/libsfa_json-dccddc4dd6fb3a92.rmeta: crates/json/src/lib.rs crates/json/src/parse.rs crates/json/src/ser.rs

crates/json/src/lib.rs:
crates/json/src/parse.rs:
crates/json/src/ser.rs:
