//! Property-based tests for the hashing substrate.

use proptest::prelude::*;

use sfa_hash::bucket::{pack_pair, unpack_pair, PairCounter, SparseCounters};
use sfa_hash::topk::merge_bottom_k;
use sfa_hash::{BottomK, HashFamily, SeedSequence, TabulationHasher};

proptest! {
    #[test]
    fn pack_unpack_is_bijective(i in 0u32..u32::MAX - 1, d in 1u32..1000) {
        let j = i.saturating_add(d).max(i + 1);
        prop_assert_eq!(unpack_pair(pack_pair(i, j)), (i, j));
    }

    #[test]
    fn seed_sequences_replay(seed in any::<u64>(), n in 1usize..100) {
        let a: Vec<u64> = SeedSequence::new(seed).take(n).collect();
        let b: Vec<u64> = SeedSequence::new(seed).take(n).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn hash_family_members_disagree(seed in any::<u64>(), key in any::<u64>()) {
        let fam = HashFamily::new(8, seed);
        let outs: std::collections::HashSet<u64> =
            (0..8).map(|i| fam.hash(i, key)).collect();
        // 8 independent functions almost surely give 8 distinct outputs.
        prop_assert!(outs.len() >= 7);
    }

    #[test]
    fn tabulation_respects_xor_structure(seed in any::<u64>(), a in any::<u32>(), b in any::<u32>()) {
        // For keys differing in disjoint byte sets, the deltas compose.
        let h = TabulationHasher::new(seed);
        let low = a & 0x0000_ffff;
        let high = b & 0xffff_0000;
        let z = h.hash(0);
        let d_low = h.hash(low) ^ z;
        let d_high = h.hash(high) ^ z;
        prop_assert_eq!(h.hash(low | high), z ^ d_low ^ d_high);
    }

    #[test]
    fn bottom_k_insert_order_is_irrelevant(
        mut values in prop::collection::vec(any::<u64>(), 0..40),
        k in 1usize..8,
    ) {
        let mut forward = BottomK::new(k);
        for &v in &values {
            forward.insert(v);
        }
        values.reverse();
        let mut backward = BottomK::new(k);
        for &v in &values {
            backward.insert(v);
        }
        prop_assert_eq!(forward.into_sorted_vec(), backward.into_sorted_vec());
    }

    #[test]
    fn merge_bottom_k_is_commutative_and_bounded(
        a in prop::collection::btree_set(any::<u64>(), 0..20),
        b in prop::collection::btree_set(any::<u64>(), 0..20),
        k in 1usize..10,
    ) {
        let a: Vec<u64> = a.into_iter().collect();
        let b: Vec<u64> = b.into_iter().collect();
        let ab = merge_bottom_k(&a, &b, k);
        let ba = merge_bottom_k(&b, &a, k);
        prop_assert_eq!(&ab, &ba);
        prop_assert!(ab.len() <= k);
        prop_assert!(ab.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn pair_counter_is_order_insensitive(
        pairs in prop::collection::vec((0u32..16, 0u32..16), 0..50),
    ) {
        let mut pc = PairCounter::new();
        let mut reference: std::collections::HashMap<(u32, u32), u32> =
            std::collections::HashMap::new();
        for &(a, b) in &pairs {
            if a == b {
                continue;
            }
            pc.increment(a, b);
            *reference.entry((a.min(b), a.max(b))).or_insert(0) += 1;
        }
        for (&(i, j), &c) in &reference {
            prop_assert_eq!(pc.get(i, j), c);
            prop_assert_eq!(pc.get(j, i), c);
        }
        prop_assert_eq!(pc.len(), reference.len());
    }

    #[test]
    fn sparse_counters_match_dense_counting(
        slots in prop::collection::vec(0u32..32, 0..100),
    ) {
        let mut sc = SparseCounters::new(32);
        let mut dense = [0u32; 32];
        for &s in &slots {
            sc.increment(s);
            dense[s as usize] += 1;
        }
        for (s, &d) in dense.iter().enumerate() {
            prop_assert_eq!(sc.get(s as u32), d);
        }
        // Touched holds exactly the nonzero slots, each once.
        let mut touched = sc.touched().to_vec();
        touched.sort_unstable();
        let expected: Vec<u32> = (0..32u32).filter(|&s| dense[s as usize] > 0).collect();
        prop_assert_eq!(touched, expected);
        sc.reset();
        prop_assert!((0..32u32).all(|s| sc.get(s) == 0));
    }
}
