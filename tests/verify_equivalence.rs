//! The in-memory phase-3 verifier must be indistinguishable from the
//! streaming row-scan verifier on fault-free data: identical
//! `VerifiedPair` lists (exact intersection, union, similarity, estimate)
//! and identical column counts, for the candidate list of every scheme.

use sfa::core::verify::{
    verify_candidates, verify_candidates_in_memory, verify_candidates_in_memory_pool,
};
use sfa::core::{Pipeline, PipelineConfig, Scheme};
use sfa::datagen::SyntheticConfig;
use sfa::matrix::MemoryRowStream;
use sfa::minhash::CandidatePair;

fn schemes() -> Vec<Scheme> {
    vec![
        Scheme::Mh { k: 100, delta: 0.2 },
        Scheme::MhRowSort { k: 100, delta: 0.2 },
        Scheme::Kmh { k: 64, delta: 0.2 },
        Scheme::MLsh {
            k: 100,
            r: 5,
            l: 20,
            sampled: false,
        },
        Scheme::MLsh {
            k: 60,
            r: 5,
            l: 20,
            sampled: true,
        },
        Scheme::HLsh {
            r: 8,
            l: 8,
            t: 4,
            max_levels: 12,
        },
    ]
}

#[test]
fn in_memory_verifier_matches_streaming_for_every_scheme() {
    let data = SyntheticConfig::small(1_500, 23).generate();
    let columns = data.matrix;
    let rows = columns.transpose();

    let pool1 = sfa::par::ThreadPool::new(1);
    let pool3 = sfa::par::ThreadPool::new(3);
    for scheme in schemes() {
        // The pipeline's verified list is the scheme's candidate list with
        // exact counts attached (one entry per candidate, sorted by ids),
        // so it reconstructs the candidates the scheme generated.
        let result = Pipeline::new(PipelineConfig::new(scheme, 0.6, 9))
            .run(&mut MemoryRowStream::new(&rows))
            .unwrap();
        let candidates: Vec<CandidatePair> = result
            .verified
            .iter()
            .map(|p| CandidatePair {
                i: p.i,
                j: p.j,
                estimate: p.estimate,
            })
            .collect();

        let (stream_verified, stream_counts) =
            verify_candidates(&mut MemoryRowStream::new(&rows), &candidates).unwrap();
        let (mem_verified, mem_counts) = verify_candidates_in_memory(&columns, &candidates);
        assert_eq!(mem_verified, stream_verified, "{}", scheme.name());
        assert_eq!(mem_counts, stream_counts, "{}", scheme.name());

        for pool in [&pool1, &pool3] {
            let (pool_verified, pool_counts) =
                verify_candidates_in_memory_pool(&columns, &candidates, pool);
            assert_eq!(pool_verified, stream_verified, "{}", scheme.name());
            assert_eq!(pool_counts, stream_counts, "{}", scheme.name());
        }

        // And the pipeline's own output already went through the in-memory
        // path or row scan; both must agree with the direct streaming call.
        assert_eq!(result.verified, stream_verified, "{}", scheme.name());
    }
}
