/root/repo/target/debug/deps/end_to_end-a15f40707816af3b.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a15f40707816af3b: tests/end_to_end.rs

tests/end_to_end.rs:
