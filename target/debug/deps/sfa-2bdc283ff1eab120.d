/root/repo/target/debug/deps/sfa-2bdc283ff1eab120.d: src/bin/sfa.rs

/root/repo/target/debug/deps/libsfa-2bdc283ff1eab120.rmeta: src/bin/sfa.rs

src/bin/sfa.rs:
