/root/repo/target/debug/deps/apriori_agreement-27fc2b877bd5f1e8.d: tests/apriori_agreement.rs

/root/repo/target/debug/deps/apriori_agreement-27fc2b877bd5f1e8: tests/apriori_agreement.rs

tests/apriori_agreement.rs:
