/root/repo/target/release/deps/rand-dd53444ab9490329.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/rand-dd53444ab9490329: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
