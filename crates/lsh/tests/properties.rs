//! Property-based tests for the LSH schemes.

use proptest::prelude::*;

use sfa_lsh::filter::{min_l_for_recall, p_half_threshold};
use sfa_lsh::hamming::{hamming_from_similarity, similarity_from_hamming};
use sfa_lsh::{optimize_params, p_filter, q_filter, SimilarityDistribution};

proptest! {
    #[test]
    fn p_filter_sharpens_with_l(s in 0.001f64..0.999, r in 1usize..10, l in 1usize..20) {
        // More repetitions can only increase collision probability.
        prop_assert!(p_filter(s, r, l + 1) >= p_filter(s, r, l) - 1e-12);
        // More rows per band can only decrease it.
        prop_assert!(p_filter(s, r + 1, l) <= p_filter(s, r, l) + 1e-12);
    }

    #[test]
    fn q_filter_between_zero_and_p_at_l_equal_cases(
        s in 0.001f64..0.999,
        r in 1usize..8,
        l in 1usize..10,
        k in 8usize..64,
    ) {
        let k = k.max(r);
        let q = q_filter(s, r, l, k);
        prop_assert!((0.0..=1.0).contains(&q));
    }

    #[test]
    fn half_threshold_inverts_p(r in 1usize..20, l in 1usize..50) {
        let s = p_half_threshold(r, l);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((p_filter(s, r, l) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn min_l_is_minimal_and_sufficient(
        s in 0.1f64..0.95,
        r in 1usize..8,
        target in 0.5f64..0.99,
    ) {
        if let Some(l) = min_l_for_recall(s, r, target, 1 << 20) {
            prop_assert!(p_filter(s, r, l) >= target - 1e-12);
            if l > 1 {
                prop_assert!(p_filter(s, r, l - 1) < target);
            }
        }
    }

    #[test]
    fn hamming_similarity_inverses(ci in 0usize..50, cj in 0usize..50, dh_frac in 0.0f64..=1.0) {
        // d_H ranges over |ci − cj| … ci + cj with the same parity; use a
        // valid synthetic value and check the inverse maps back.
        prop_assume!(ci + cj > 0);
        let lo = ci.abs_diff(cj);
        let dh = lo + ((dh_frac * ((ci + cj - lo) as f64)) as usize);
        let s = similarity_from_hamming(ci, cj, dh);
        prop_assert!((0.0..=1.0).contains(&s));
        let back = hamming_from_similarity(ci, cj, s);
        prop_assert!((back - dh as f64).abs() < 1e-6);
    }

    #[test]
    fn optimizer_output_is_feasible(
        head in 1000u64..1_000_000,
        tail in 1u64..200,
        s_star_pct in 5usize..9,
        fn_budget in 1u64..50,
    ) {
        // Synthetic two-regime distribution in 10 bins.
        let mut counts = vec![0u64; 10];
        counts[0] = head;
        counts[1] = head / 10;
        counts[8] = tail;
        counts[9] = tail;
        let distr = SimilarityDistribution::from_histogram(counts);
        let s_star = s_star_pct as f64 / 10.0;
        let max_fn = fn_budget as f64;
        let max_fp = head as f64; // generous FP budget
        if let Some(p) = optimize_params(&distr, s_star, max_fn, max_fp, 20, 1 << 12) {
            prop_assert!(distr.expected_false_negatives(s_star, p.r, p.l) <= max_fn + 1e-9);
            prop_assert!(distr.expected_false_positives(s_star, p.r, p.l) <= max_fp + 1e-9);
            prop_assert!(p.r >= 1 && p.l >= 1);
        }
    }

    #[test]
    fn expected_fn_fp_partition_total_mass(
        counts in prop::collection::vec(0u64..1000, 10),
        r in 1usize..8,
        l in 1usize..16,
    ) {
        prop_assume!(counts.iter().sum::<u64>() > 0);
        let distr = SimilarityDistribution::from_histogram(counts.clone());
        let s_star = 0.5;
        // FN + (found above) = mass above; FP ≤ mass below.
        let above: u64 = (5..10).map(|b| distr.count(b)).sum();
        let below: u64 = (0..5).map(|b| distr.count(b)).sum();
        let fn_exp = distr.expected_false_negatives(s_star, r, l);
        let fp_exp = distr.expected_false_positives(s_star, r, l);
        prop_assert!(fn_exp >= -1e-9 && fn_exp <= above as f64 + 1e-9);
        prop_assert!(fp_exp >= -1e-9 && fp_exp <= below as f64 + 1e-9);
    }
}
