//! The pipeline driver: signatures → candidates → exact verification.

use std::path::PathBuf;
use std::time::Instant;

use sfa_hash::bucket::PairShard;
use sfa_lsh::{
    hlsh_candidates_sharded, hlsh_candidates_with_stats, hlsh_candidates_with_stats_pool,
    mlsh_candidates_sharded, mlsh_candidates_with_stats, mlsh_candidates_with_stats_pool,
    HLshParams, MLshParams,
};
use sfa_matrix::{MatrixError, Result, RowMajorMatrix, RowStream, ScanCounter};
use sfa_minhash::hashcount::{
    kmh_candidates_sharded, kmh_candidates_with_stats, kmh_candidates_with_stats_pool,
    mh_candidates_sharded, mh_candidates_with_stats, mh_candidates_with_stats_pool,
};
use sfa_minhash::rowsort::{
    rowsort_candidates_sharded, rowsort_candidates_with_stats, rowsort_candidates_with_stats_pool,
};
use sfa_minhash::{
    compute_bottom_k, compute_bottom_k_pool, compute_signatures, compute_signatures_pool,
    BottomKSignatures, CandidateGenStats, CandidatePair, KmhBuilder, MhBuilder, SignatureMatrix,
};

use crate::checkpoint::{self, CheckpointSpec, Phase1State, RunKey};
use crate::config::{PipelineConfig, Scheme};
use crate::durable;
use crate::metrics::{
    MiningMetrics, Phase1Metrics, RecoveryMetrics, ShardingMetrics, VerifyMetrics,
};
use crate::report::{MiningResult, PhaseTimings, VerifiedPair};
use crate::shutdown::{CancelToken, CANCEL_POLL_STRIDE};
use crate::sigcache::SignatureCache;
use crate::spill;
use crate::verify::{verify_candidates_resumable, verify_candidates_with_stats};

/// Seed-derivation labels, so each pipeline component gets an independent
/// stream from the one root seed.
mod purpose {
    pub const SIGNATURES: u64 = 1;
    pub const LSH: u64 = 2;
}

/// Phase-1 provenance for `metrics.phase1`: the SIMD arm the signature
/// kernels dispatch through (shared with the phase-3 kernels, so
/// `--kernel`/`SFA_KERNEL` pins both) plus the cache disposition.
fn phase1_provenance(cache_hit: bool, cache_stored: bool) -> Phase1Metrics {
    Phase1Metrics {
        dispatch_arm: sfa_matrix::kernel::arm_name().to_owned(),
        cache_hit,
        cache_stored,
    }
}

/// Runs the configured scheme end to end over a row stream.
///
/// # Examples
///
/// ```
/// use sfa_core::{Pipeline, PipelineConfig, Scheme};
/// use sfa_matrix::{MemoryRowStream, RowMajorMatrix};
///
/// let m = RowMajorMatrix::from_rows(2, vec![vec![0, 1]; 12]).unwrap();
/// let cfg = PipelineConfig::new(Scheme::Mh { k: 32, delta: 0.2 }, 0.8, 7);
/// let result = Pipeline::new(cfg)
///     .run(&mut MemoryRowStream::new(&m))
///     .unwrap();
/// let pairs = result.similar_pairs();
/// assert_eq!(pairs.len(), 1);
/// assert_eq!((pairs[0].i, pairs[0].j), (0, 1));
/// assert_eq!(pairs[0].similarity, 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PipelineConfig,
    signature_cache: Option<SignatureCache>,
}

impl Pipeline {
    /// Wraps a configuration.
    #[must_use]
    pub const fn new(config: PipelineConfig) -> Self {
        Self {
            config,
            signature_cache: None,
        }
    }

    /// Consults and populates a [`SignatureCache`] rooted at `dir` for
    /// every phase-1 sketch this pipeline builds: a hit skips the
    /// signature pass entirely (output stays byte-identical — min-hash
    /// sketches are a pure function of the cache key), a miss computes
    /// and stores. One cache directory serves one dataset; see
    /// [`crate::sigcache`] for the keying contract.
    #[must_use]
    pub fn with_signature_cache(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.signature_cache = Some(SignatureCache::new(dir));
        self
    }

    /// The configuration.
    #[must_use]
    pub const fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Phases 1 + 2 only: produce the candidate pairs and the time spent
    /// in each phase. Exposed separately for experiments that measure the
    /// candidate set itself.
    ///
    /// # Errors
    ///
    /// Propagates stream errors.
    pub fn generate_candidates<S: RowStream>(
        &self,
        stream: &mut S,
    ) -> Result<(Vec<CandidatePair>, PhaseTimings)> {
        let (candidates, timings, _) = self.candidates_with_metrics(stream)?;
        Ok((candidates, timings))
    }

    /// Phases 1 + 2 with the observability counters: signature bytes,
    /// per-stage candidate counts, bucket occupancy. The pass-scan fields
    /// stay zero here — [`run`](Self::run) fills them from its
    /// [`ScanCounter`] wrapper.
    fn candidates_with_metrics<S: RowStream>(
        &self,
        stream: &mut S,
    ) -> Result<(Vec<CandidatePair>, PhaseTimings, MiningMetrics)> {
        let cfg = &self.config;
        let sig_seed = sfa_hash::family::derive_seed(cfg.seed, purpose::SIGNATURES);
        let lsh_seed = sfa_hash::family::derive_seed(cfg.seed, purpose::LSH);
        let mut timings = PhaseTimings::default();
        let mut metrics = MiningMetrics {
            scheme: cfg.scheme.name().to_owned(),
            ..MiningMetrics::default()
        };
        let candidates = match cfg.scheme {
            Scheme::Mh { k, delta } => {
                let t = Instant::now();
                let (sigs, phase1) = self.signatures_phase1(stream, k, sig_seed)?;
                timings.signatures = t.elapsed();
                metrics.phase1 = Some(phase1);
                metrics.signature_bytes = sigs.heap_bytes();
                let t = Instant::now();
                let (cands, stats) = mh_candidates_with_stats(&sigs, cfg.s_star, delta);
                timings.candidates = t.elapsed();
                metrics.absorb_candidate_stats(stats);
                cands
            }
            Scheme::MhRowSort { k, delta } => {
                let t = Instant::now();
                let (sigs, phase1) = self.signatures_phase1(stream, k, sig_seed)?;
                timings.signatures = t.elapsed();
                metrics.phase1 = Some(phase1);
                metrics.signature_bytes = sigs.heap_bytes();
                let t = Instant::now();
                let (cands, stats) = rowsort_candidates_with_stats(&sigs, cfg.s_star, delta);
                timings.candidates = t.elapsed();
                metrics.absorb_candidate_stats(stats);
                cands
            }
            Scheme::Kmh { k, delta } => {
                let t = Instant::now();
                let (sigs, phase1) = self.bottom_k_phase1(stream, k, sig_seed)?;
                timings.signatures = t.elapsed();
                metrics.phase1 = Some(phase1);
                metrics.signature_bytes = sigs.heap_bytes();
                let t = Instant::now();
                let (cands, stats) = kmh_candidates_with_stats(&sigs, cfg.s_star, delta);
                timings.candidates = t.elapsed();
                metrics.absorb_candidate_stats(stats);
                cands
            }
            Scheme::MLsh { k, r, l, sampled } => {
                let t = Instant::now();
                let (sigs, phase1) = self.signatures_phase1(stream, k, sig_seed)?;
                timings.signatures = t.elapsed();
                metrics.phase1 = Some(phase1);
                metrics.signature_bytes = sigs.heap_bytes();
                let t = Instant::now();
                let params = if sampled {
                    MLshParams::sampled(r, l, lsh_seed)
                } else {
                    MLshParams::banded(r, l, lsh_seed)
                };
                let (cands, stats) = mlsh_candidates_with_stats(&sigs, &params);
                timings.candidates = t.elapsed();
                metrics.absorb_candidate_stats(stats);
                cands
            }
            Scheme::HLsh {
                r,
                l,
                t: gate,
                max_levels,
            } => {
                // H-LSH "works directly on the data": materialize M_0 from
                // the stream (phase 1), then ladder + runs (phase 2).
                // No sketch is built, so `metrics.phase1` stays None.
                let t = Instant::now();
                let matrix = materialize(stream)?;
                timings.signatures = t.elapsed();
                metrics.signature_bytes = matrix.heap_bytes();
                let t = Instant::now();
                let params = HLshParams {
                    r,
                    l,
                    t: gate,
                    max_levels,
                    include_zero_keys: false,
                    seed: lsh_seed,
                };
                let (cands, stats) = hlsh_candidates_with_stats(&matrix, &params);
                timings.candidates = t.elapsed();
                metrics.absorb_candidate_stats(stats);
                cands
            }
        };
        metrics.candidates_generated = candidates.len() as u64;
        Ok((candidates, timings, metrics))
    }

    /// Phase 1 (MH family) through the signature cache: a hit skips the
    /// table pass entirely, a miss computes and stores. Without a cache,
    /// just the pass.
    fn signatures_phase1<S: RowStream>(
        &self,
        stream: &mut S,
        k: usize,
        seed: u64,
    ) -> Result<(SignatureMatrix, Phase1Metrics)> {
        if let Some(cache) = &self.signature_cache {
            if let Some(sigs) = cache.load_signatures(k, seed, stream.n_rows(), stream.n_cols()) {
                return Ok((sigs, phase1_provenance(true, false)));
            }
            let sigs = compute_signatures(stream, k, seed)?;
            let stored = cache.store_signatures(k, seed, stream.n_rows(), stream.n_cols(), &sigs);
            return Ok((sigs, phase1_provenance(false, stored)));
        }
        let sigs = compute_signatures(stream, k, seed)?;
        Ok((sigs, phase1_provenance(false, false)))
    }

    /// Phase 1 (K-MH) through the signature cache; see
    /// [`signatures_phase1`](Self::signatures_phase1).
    fn bottom_k_phase1<S: RowStream>(
        &self,
        stream: &mut S,
        k: usize,
        seed: u64,
    ) -> Result<(BottomKSignatures, Phase1Metrics)> {
        if let Some(cache) = &self.signature_cache {
            if let Some(sigs) = cache.load_bottom_k(k, seed, stream.n_rows(), stream.n_cols()) {
                return Ok((sigs, phase1_provenance(true, false)));
            }
            let sigs = compute_bottom_k(stream, k, seed)?;
            let stored = cache.store_bottom_k(k, seed, stream.n_rows(), stream.n_cols(), &sigs);
            return Ok((sigs, phase1_provenance(false, stored)));
        }
        let sigs = compute_bottom_k(stream, k, seed)?;
        Ok((sigs, phase1_provenance(false, false)))
    }

    /// [`signatures_resumable`] behind the signature cache: a hit skips
    /// both the pass and its checkpointing (there is no partial state to
    /// persist when no rows are processed); a miss runs the resumable
    /// pass, then stores the completed sketch.
    #[allow(clippy::too_many_arguments)]
    fn signatures_resumable_cached<S: RowStream>(
        &self,
        stream: &mut S,
        k: usize,
        seed: u64,
        spec: &CheckpointSpec,
        key: RunKey,
        recovery: &mut RecoveryMetrics,
        cancel: &CancelToken,
    ) -> Result<(SignatureMatrix, Phase1Metrics)> {
        if let Some(cache) = &self.signature_cache {
            if let Some(sigs) = cache.load_signatures(k, seed, stream.n_rows(), stream.n_cols()) {
                return Ok((sigs, phase1_provenance(true, false)));
            }
        }
        let sigs = signatures_resumable(stream, k, seed, spec, key, recovery, cancel)?;
        let stored = self.signature_cache.as_ref().is_some_and(|cache| {
            cache.store_signatures(k, seed, stream.n_rows(), stream.n_cols(), &sigs)
        });
        Ok((sigs, phase1_provenance(false, stored)))
    }

    /// [`bottom_k_resumable`] behind the signature cache; see
    /// [`signatures_resumable_cached`](Self::signatures_resumable_cached).
    #[allow(clippy::too_many_arguments)]
    fn bottom_k_resumable_cached<S: RowStream>(
        &self,
        stream: &mut S,
        k: usize,
        seed: u64,
        spec: &CheckpointSpec,
        key: RunKey,
        recovery: &mut RecoveryMetrics,
        cancel: &CancelToken,
    ) -> Result<(BottomKSignatures, Phase1Metrics)> {
        if let Some(cache) = &self.signature_cache {
            if let Some(sigs) = cache.load_bottom_k(k, seed, stream.n_rows(), stream.n_cols()) {
                return Ok((sigs, phase1_provenance(true, false)));
            }
        }
        let sigs = bottom_k_resumable(stream, k, seed, spec, key, recovery, cancel)?;
        let stored = self.signature_cache.as_ref().is_some_and(|cache| {
            cache.store_bottom_k(k, seed, stream.n_rows(), stream.n_cols(), &sigs)
        });
        Ok((sigs, phase1_provenance(false, stored)))
    }

    /// Classifies verified pairs against the `s*` threshold and packs the
    /// phase-3 counters.
    fn verification_metrics(&self, verified: &[VerifiedPair], probes: u64) -> VerifyMetrics {
        let true_positives = verified
            .iter()
            .filter(|p| p.similarity >= self.config.s_star)
            .count() as u64;
        VerifyMetrics {
            candidates_checked: verified.len() as u64,
            true_positives,
            false_positives_pruned: verified.len() as u64 - true_positives,
            intersection_work: probes,
        }
    }

    /// Runs the full three-phase pipeline.
    ///
    /// # Errors
    ///
    /// Propagates stream errors.
    pub fn run<S: RowStream>(&self, stream: &mut S) -> Result<MiningResult> {
        self.run_with(stream, &CancelToken::default())
    }

    /// [`run`](Self::run) with cooperative cancellation: `cancel` is
    /// polled at the pass boundaries and after every verify-pass row. A
    /// plain run keeps no on-disk state, so cancellation simply abandons
    /// the work — use [`run_resumable_with`](Self::run_resumable_with)
    /// when an interrupted run should leave a resumable frontier.
    ///
    /// # Errors
    ///
    /// Propagates stream errors; returns [`MatrixError::Canceled`] when
    /// `cancel` fires.
    pub fn run_with<S: RowStream>(
        &self,
        stream: &mut S,
        cancel: &CancelToken,
    ) -> Result<MiningResult> {
        cancel.check()?;
        let mut scan = ScanCounter::new(&mut *stream);
        let (candidates, mut timings, mut metrics) = self.candidates_with_metrics(&mut scan)?;
        cancel.check()?;
        scan.reset()?;
        let t = Instant::now();
        let (verified, column_counts, probes) = verify_candidates_resumable(
            &mut scan,
            &candidates,
            None,
            u64::MAX,
            &mut |_| Ok(()),
            cancel,
        )?;
        timings.verify = t.elapsed();
        let passes = scan.pass_scans();
        metrics.signature_pass = passes.first().copied().unwrap_or_default().into();
        metrics.verify_pass = passes.get(1).copied().unwrap_or_default().into();
        metrics.verification = self.verification_metrics(&verified, probes);
        Ok(MiningResult {
            config: self.config,
            verified,
            column_counts,
            timings,
            metrics,
        })
    }

    /// [`run`](Self::run) with checkpoint/resume: both streaming passes
    /// persist their partial state into `spec.dir` every `spec.every_rows`
    /// rows (phase 1 checkpoints the signature builder, phase 3 the
    /// verification frontier), so a rerun after a crash fast-forwards past
    /// the checkpointed prefix and re-reads only the unprocessed suffix.
    ///
    /// Output is byte-identical to an uninterrupted [`run`](Self::run);
    /// `metrics.recovery` reports how many checkpoints were written and the
    /// row cursor a resumed run continued from. Checkpoints are tied to the
    /// exact `(configuration, table)` pair — stale or mismatched state is
    /// ignored, never resumed into — and are deleted once the run
    /// completes. The H-LSH scheme materializes the matrix up front and has
    /// no incremental state; it falls back to a plain [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// Propagates stream and checkpoint-IO errors.
    pub fn run_resumable<S: RowStream>(
        &self,
        stream: &mut S,
        spec: &CheckpointSpec,
    ) -> Result<MiningResult> {
        self.run_resumable_with(stream, spec, &CancelToken::default())
    }

    /// [`run_resumable`](Self::run_resumable) with cooperative
    /// cancellation. `cancel` is polled after every processed row; when it
    /// fires, the current pass flushes its state to the checkpoint
    /// directory first and the run returns [`MatrixError::Canceled`] — a
    /// rerun with the same `spec` resumes from that frontier. This is the
    /// entry point behind the CLI's graceful `SIGINT`/`SIGTERM` and
    /// `--deadline-secs` handling (exit code 3).
    ///
    /// Before any work, the checkpoint directory is swept by
    /// [`durable::recover_dir`]: stray `.tmp` files are deleted and
    /// corrupt or stale checkpoints are quarantined (reported in
    /// `metrics.recovery`) rather than trusted or fatal.
    ///
    /// # Errors
    ///
    /// Propagates stream and checkpoint-IO errors; returns
    /// [`MatrixError::Canceled`] when `cancel` fires.
    pub fn run_resumable_with<S: RowStream>(
        &self,
        stream: &mut S,
        spec: &CheckpointSpec,
        cancel: &CancelToken,
    ) -> Result<MiningResult> {
        let cfg = &self.config;
        if matches!(cfg.scheme, Scheme::HLsh { .. }) {
            return self.run_with(stream, cancel);
        }
        let key = RunKey::new(cfg, stream.n_rows(), stream.n_cols());
        let recovered = durable::recover_dir(&spec.dir, key)?;
        let sig_seed = sfa_hash::family::derive_seed(cfg.seed, purpose::SIGNATURES);
        let lsh_seed = sfa_hash::family::derive_seed(cfg.seed, purpose::LSH);
        let mut recovery = RecoveryMetrics {
            files_quarantined: recovered.files_quarantined,
            tmp_files_removed: recovered.tmp_files_removed,
            ..RecoveryMetrics::default()
        };
        let mut timings = PhaseTimings::default();
        let mut metrics = MiningMetrics {
            scheme: cfg.scheme.name().to_owned(),
            ..MiningMetrics::default()
        };
        let mut scan = ScanCounter::new(&mut *stream);
        let candidates = match cfg.scheme {
            Scheme::Mh { k, delta } => {
                let t = Instant::now();
                let (sigs, phase1) = self.signatures_resumable_cached(
                    &mut scan,
                    k,
                    sig_seed,
                    spec,
                    key,
                    &mut recovery,
                    cancel,
                )?;
                timings.signatures = t.elapsed();
                metrics.phase1 = Some(phase1);
                metrics.signature_bytes = sigs.heap_bytes();
                let t = Instant::now();
                let (cands, stats) = mh_candidates_with_stats(&sigs, cfg.s_star, delta);
                timings.candidates = t.elapsed();
                metrics.absorb_candidate_stats(stats);
                cands
            }
            Scheme::MhRowSort { k, delta } => {
                let t = Instant::now();
                let (sigs, phase1) = self.signatures_resumable_cached(
                    &mut scan,
                    k,
                    sig_seed,
                    spec,
                    key,
                    &mut recovery,
                    cancel,
                )?;
                timings.signatures = t.elapsed();
                metrics.phase1 = Some(phase1);
                metrics.signature_bytes = sigs.heap_bytes();
                let t = Instant::now();
                let (cands, stats) = rowsort_candidates_with_stats(&sigs, cfg.s_star, delta);
                timings.candidates = t.elapsed();
                metrics.absorb_candidate_stats(stats);
                cands
            }
            Scheme::Kmh { k, delta } => {
                let t = Instant::now();
                let (sigs, phase1) = self.bottom_k_resumable_cached(
                    &mut scan,
                    k,
                    sig_seed,
                    spec,
                    key,
                    &mut recovery,
                    cancel,
                )?;
                timings.signatures = t.elapsed();
                metrics.phase1 = Some(phase1);
                metrics.signature_bytes = sigs.heap_bytes();
                let t = Instant::now();
                let (cands, stats) = kmh_candidates_with_stats(&sigs, cfg.s_star, delta);
                timings.candidates = t.elapsed();
                metrics.absorb_candidate_stats(stats);
                cands
            }
            Scheme::MLsh { k, r, l, sampled } => {
                let t = Instant::now();
                let (sigs, phase1) = self.signatures_resumable_cached(
                    &mut scan,
                    k,
                    sig_seed,
                    spec,
                    key,
                    &mut recovery,
                    cancel,
                )?;
                timings.signatures = t.elapsed();
                metrics.phase1 = Some(phase1);
                metrics.signature_bytes = sigs.heap_bytes();
                let t = Instant::now();
                let params = if sampled {
                    MLshParams::sampled(r, l, lsh_seed)
                } else {
                    MLshParams::banded(r, l, lsh_seed)
                };
                let (cands, stats) = mlsh_candidates_with_stats(&sigs, &params);
                timings.candidates = t.elapsed();
                metrics.absorb_candidate_stats(stats);
                cands
            }
            Scheme::HLsh { .. } => unreachable!("handled above"),
        };
        metrics.candidates_generated = candidates.len() as u64;
        cancel.check()?;
        scan.reset()?;
        let fp = checkpoint::candidates_fingerprint(&candidates);
        let resume = checkpoint::load_phase3(spec, key, fp);
        if let Some(s) = &resume {
            recovery.resumed_from_row = recovery.resumed_from_row.max(s.progress.rows_done);
        }
        let t = Instant::now();
        let mut checkpoints_written = 0u64;
        let (verified, column_counts, probes) = verify_candidates_resumable(
            &mut scan,
            &candidates,
            resume.map(|s| s.progress),
            spec.every_rows,
            &mut |p| {
                checkpoint::save_phase3(spec, key, fp, p)?;
                checkpoints_written += 1;
                Ok(())
            },
            cancel,
        )?;
        timings.verify = t.elapsed();
        recovery.checkpoints_written += checkpoints_written;
        checkpoint::clear(spec)?;
        durable::remove_manifest(&spec.dir)?;
        let passes = scan.pass_scans();
        metrics.signature_pass = passes.first().copied().unwrap_or_default().into();
        metrics.verify_pass = passes.get(1).copied().unwrap_or_default().into();
        metrics.verification = self.verification_metrics(&verified, probes);
        metrics.recovery = recovery;
        Ok(MiningResult {
            config: self.config,
            verified,
            column_counts,
            timings,
            metrics,
        })
    }
}

/// Phase 1 (MH family) with checkpointing: resumes an [`MhBuilder`] from
/// the last phase-1 checkpoint if one matches, persists its state every
/// `spec.every_rows` rows, and always persists the completed state so a
/// later phase-3 crash resumes without redoing signature work.
fn signatures_resumable<S: RowStream>(
    stream: &mut S,
    k: usize,
    seed: u64,
    spec: &CheckpointSpec,
    key: RunKey,
    recovery: &mut RecoveryMetrics,
    cancel: &CancelToken,
) -> Result<SignatureMatrix> {
    let m = stream.n_cols() as usize;
    let mut builder = match checkpoint::load_phase1(spec, key) {
        Some(Phase1State::Mh { rows_done, sigs }) if sigs.k() == k && sigs.m() == m => {
            fast_forward(stream, rows_done)?;
            recovery.resumed_from_row = rows_done;
            MhBuilder::from_state(seed, rows_done, sigs)
        }
        _ => MhBuilder::new(k, m, seed),
    };
    let mut buf = Vec::new();
    let mut cancel = cancel.throttled(CANCEL_POLL_STRIDE);
    while let Some(row_id) = stream.read_row(&mut buf)? {
        builder.push_row(row_id, &buf);
        // A graceful shutdown flushes the builder state off-cadence so the
        // rerun resumes from this exact row.
        let canceled = cancel.is_canceled();
        if builder.rows_seen() % spec.every_rows == 0 || canceled {
            save_mh_state(spec, key, &builder)?;
            recovery.checkpoints_written += 1;
        }
        if canceled {
            cancel.check()?;
        }
    }
    if builder.rows_seen() % spec.every_rows != 0 {
        save_mh_state(spec, key, &builder)?;
        recovery.checkpoints_written += 1;
    }
    Ok(builder.finish())
}

/// Phase 1 (K-MH) with checkpointing; see [`signatures_resumable`].
fn bottom_k_resumable<S: RowStream>(
    stream: &mut S,
    k: usize,
    seed: u64,
    spec: &CheckpointSpec,
    key: RunKey,
    recovery: &mut RecoveryMetrics,
    cancel: &CancelToken,
) -> Result<BottomKSignatures> {
    let m = stream.n_cols() as usize;
    let mut builder = match checkpoint::load_phase1(spec, key) {
        Some(Phase1State::Kmh {
            rows_done,
            k: ck,
            counts,
            sigs,
        }) if ck as usize == k && sigs.len() == m => {
            fast_forward(stream, rows_done)?;
            recovery.resumed_from_row = rows_done;
            KmhBuilder::from_state(k, seed, rows_done, sigs, counts)
        }
        _ => KmhBuilder::new(k, m, seed),
    };
    let mut buf = Vec::new();
    let mut cancel = cancel.throttled(CANCEL_POLL_STRIDE);
    while let Some(row_id) = stream.read_row(&mut buf)? {
        builder.push_row(row_id, &buf);
        let canceled = cancel.is_canceled();
        if builder.rows_seen() % spec.every_rows == 0 || canceled {
            save_kmh_state(spec, key, &builder)?;
            recovery.checkpoints_written += 1;
        }
        if canceled {
            cancel.check()?;
        }
    }
    if builder.rows_seen() % spec.every_rows != 0 {
        save_kmh_state(spec, key, &builder)?;
        recovery.checkpoints_written += 1;
    }
    Ok(builder.finish())
}

/// Skips the checkpointed prefix, erroring if the stream is shorter than
/// the checkpoint claims.
fn fast_forward<S: RowStream>(stream: &mut S, rows_done: u64) -> Result<()> {
    let skipped = stream.skip_rows(rows_done)?;
    if skipped != rows_done {
        return Err(MatrixError::DimensionMismatch {
            detail: format!(
                "checkpoint claims {rows_done} rows processed but the stream holds only {skipped}"
            ),
        });
    }
    Ok(())
}

fn save_mh_state(spec: &CheckpointSpec, key: RunKey, builder: &MhBuilder) -> Result<()> {
    checkpoint::save_phase1(
        spec,
        key,
        &Phase1State::Mh {
            rows_done: builder.rows_seen(),
            sigs: builder.current(),
        },
    )
}

fn save_kmh_state(spec: &CheckpointSpec, key: RunKey, builder: &KmhBuilder) -> Result<()> {
    let (sigs, counts) = builder.snapshot();
    checkpoint::save_phase1(
        spec,
        key,
        &Phase1State::Kmh {
            rows_done: builder.rows_seen(),
            k: u32::try_from(builder.k()).expect("k fits u32"),
            counts,
            sigs,
        },
    )
}

impl Pipeline {
    /// Parallel in-memory run: every phase of every scheme executes over
    /// one persistent [`sfa_par::ThreadPool`] — signature computation,
    /// candidate generation (Hash-Count, Row-Sorting, K-MH overlap, M-LSH
    /// banding, and H-LSH ladder runs all have pool-parallel kernels), and
    /// exact verification. Output is byte-identical to [`run`](Self::run)
    /// for every scheme at every thread count.
    ///
    /// `n_threads == 0` sizes the pool from the machine
    /// (`std::thread::available_parallelism`); the count actually used is
    /// recorded in `metrics.threads`.
    #[must_use]
    pub fn run_parallel(&self, matrix: &RowMajorMatrix, n_threads: usize) -> MiningResult {
        let pool = sfa_par::ThreadPool::new(n_threads);
        self.run_pool(matrix, &pool)
    }

    /// [`signatures_phase1`](Self::signatures_phase1) for the pool path:
    /// same cache-first discipline, pool-parallel pass on a miss.
    fn signatures_pool_phase1(
        &self,
        matrix: &RowMajorMatrix,
        k: usize,
        seed: u64,
        pool: &sfa_par::ThreadPool,
    ) -> (SignatureMatrix, Phase1Metrics) {
        if let Some(cache) = &self.signature_cache {
            if let Some(sigs) = cache.load_signatures(k, seed, matrix.n_rows(), matrix.n_cols()) {
                return (sigs, phase1_provenance(true, false));
            }
            let sigs = compute_signatures_pool(matrix, k, seed, pool);
            let stored = cache.store_signatures(k, seed, matrix.n_rows(), matrix.n_cols(), &sigs);
            return (sigs, phase1_provenance(false, stored));
        }
        let sigs = compute_signatures_pool(matrix, k, seed, pool);
        (sigs, phase1_provenance(false, false))
    }

    /// [`bottom_k_phase1`](Self::bottom_k_phase1) for the pool path.
    fn bottom_k_pool_phase1(
        &self,
        matrix: &RowMajorMatrix,
        k: usize,
        seed: u64,
        pool: &sfa_par::ThreadPool,
    ) -> (BottomKSignatures, Phase1Metrics) {
        if let Some(cache) = &self.signature_cache {
            if let Some(sigs) = cache.load_bottom_k(k, seed, matrix.n_rows(), matrix.n_cols()) {
                return (sigs, phase1_provenance(true, false));
            }
            let sigs = compute_bottom_k_pool(matrix, k, seed, pool);
            let stored = cache.store_bottom_k(k, seed, matrix.n_rows(), matrix.n_cols(), &sigs);
            return (sigs, phase1_provenance(false, stored));
        }
        let sigs = compute_bottom_k_pool(matrix, k, seed, pool);
        (sigs, phase1_provenance(false, false))
    }

    /// [`run_parallel`](Self::run_parallel) over a caller-owned pool, so
    /// several runs (e.g. a benchmark sweep) can share one set of workers.
    #[must_use]
    pub fn run_pool(&self, matrix: &RowMajorMatrix, pool: &sfa_par::ThreadPool) -> MiningResult {
        let cfg = &self.config;
        let sig_seed = sfa_hash::family::derive_seed(cfg.seed, purpose::SIGNATURES);
        let lsh_seed = sfa_hash::family::derive_seed(cfg.seed, purpose::LSH);
        let mut timings = PhaseTimings::default();
        let mut metrics = MiningMetrics {
            scheme: cfg.scheme.name().to_owned(),
            threads: pool.threads() as u64,
            ..MiningMetrics::default()
        };
        let candidates = match cfg.scheme {
            Scheme::Mh { k, delta } => {
                let t = Instant::now();
                let (sigs, phase1) = self.signatures_pool_phase1(matrix, k, sig_seed, pool);
                timings.signatures = t.elapsed();
                metrics.phase1 = Some(phase1);
                metrics.signature_bytes = sigs.heap_bytes();
                let t = Instant::now();
                let (cands, stats) = mh_candidates_with_stats_pool(&sigs, cfg.s_star, delta, pool);
                timings.candidates = t.elapsed();
                metrics.absorb_candidate_stats(stats);
                cands
            }
            Scheme::MhRowSort { k, delta } => {
                let t = Instant::now();
                let (sigs, phase1) = self.signatures_pool_phase1(matrix, k, sig_seed, pool);
                timings.signatures = t.elapsed();
                metrics.phase1 = Some(phase1);
                metrics.signature_bytes = sigs.heap_bytes();
                let t = Instant::now();
                let (cands, stats) =
                    rowsort_candidates_with_stats_pool(&sigs, cfg.s_star, delta, pool);
                timings.candidates = t.elapsed();
                metrics.absorb_candidate_stats(stats);
                cands
            }
            Scheme::Kmh { k, delta } => {
                let t = Instant::now();
                let (sigs, phase1) = self.bottom_k_pool_phase1(matrix, k, sig_seed, pool);
                timings.signatures = t.elapsed();
                metrics.phase1 = Some(phase1);
                metrics.signature_bytes = sigs.heap_bytes();
                let t = Instant::now();
                let (cands, stats) = kmh_candidates_with_stats_pool(&sigs, cfg.s_star, delta, pool);
                timings.candidates = t.elapsed();
                metrics.absorb_candidate_stats(stats);
                cands
            }
            Scheme::MLsh { k, r, l, sampled } => {
                let t = Instant::now();
                let (sigs, phase1) = self.signatures_pool_phase1(matrix, k, sig_seed, pool);
                timings.signatures = t.elapsed();
                metrics.phase1 = Some(phase1);
                metrics.signature_bytes = sigs.heap_bytes();
                let t = Instant::now();
                let params = if sampled {
                    MLshParams::sampled(r, l, lsh_seed)
                } else {
                    MLshParams::banded(r, l, lsh_seed)
                };
                let (cands, stats) = mlsh_candidates_with_stats_pool(&sigs, &params, pool);
                timings.candidates = t.elapsed();
                metrics.absorb_candidate_stats(stats);
                cands
            }
            Scheme::HLsh {
                r,
                l,
                t: gate,
                max_levels,
            } => {
                // H-LSH works directly on the data; the in-memory matrix
                // *is* the phase-1 summary.
                metrics.signature_bytes = matrix.heap_bytes();
                let t = Instant::now();
                let params = HLshParams {
                    r,
                    l,
                    t: gate,
                    max_levels,
                    include_zero_keys: false,
                    seed: lsh_seed,
                };
                let (cands, stats) = hlsh_candidates_with_stats_pool(matrix, &params, pool);
                timings.candidates = t.elapsed();
                metrics.absorb_candidate_stats(stats);
                cands
            }
        };
        metrics.candidates_generated = candidates.len() as u64;
        // Phase 3: the matrix is resident, so verify against its
        // column-major transpose with the bitmap kernels instead of
        // re-scanning rows (streaming, checkpoint, and fault-injection
        // paths keep the row scan).
        let t = Instant::now();
        let columns = matrix.transpose();
        let (verified, column_counts, kernel_report) =
            crate::verify::verify_candidates_in_memory_pool_with_report(
                &columns,
                &candidates,
                pool,
            );
        timings.verify = t.elapsed();
        metrics.kernels = Some(kernel_report.into());
        // Both passes scan the whole in-memory matrix; the in-memory
        // verifier does not count per-pair probes, so `intersection_work`
        // stays 0 on this path (use `run` for the full counters).
        let full_scan = crate::metrics::PassMetrics {
            rows_scanned: u64::from(matrix.n_rows()),
            nonzeros_scanned: matrix.nnz() as u64,
        };
        metrics.signature_pass = full_scan;
        metrics.verify_pass = full_scan;
        metrics.verification = self.verification_metrics(&verified, 0);
        MiningResult {
            config: self.config,
            verified,
            column_counts,
            timings,
            metrics,
        }
    }
}

/// Reads a whole stream into a row-major matrix (used by H-LSH).
fn materialize<S: RowStream>(stream: &mut S) -> Result<RowMajorMatrix> {
    let n_cols = stream.n_cols();
    let mut rows = Vec::with_capacity(stream.n_rows() as usize);
    let mut buf = Vec::new();
    while stream.read_row(&mut buf)?.is_some() {
        rows.push(buf.clone());
    }
    RowMajorMatrix::from_rows(n_cols, rows)
}

/// A byte cap on the pair-space working state of a sharded run, plus where
/// that run may spill.
///
/// The budget governs the state that grows with the number of *candidate
/// pairs* — phase-2 pair counters and the phase-3 per-group verification
/// state — which is the quadratic blowup the paper's schemes are designed
/// to tame. Linear-in-`m` summaries (signatures, the H-LSH base matrix,
/// per-column counts) are deliberately outside the budget: they are the
/// fixed cost of running the scheme at all and cannot be sharded away.
#[derive(Debug, Clone)]
pub struct MemoryBudget {
    /// Byte cap on pair-space state. Must be at least
    /// [`MemoryBudget::MIN_BYTES`].
    pub bytes: usize,
    /// Directory for `.sfsp` spill files (created if absent, spill files
    /// removed when the run completes).
    pub spill_dir: PathBuf,
    /// Shard count the first generation attempt uses (power of two). The
    /// run doubles it on its own whenever a shard overflows the budget;
    /// raising it just skips the doubling steps a too-small guess costs.
    pub initial_shards: u32,
}

impl MemoryBudget {
    /// The smallest enforceable budget: one minimum-size pair-counter
    /// table (16 slots × 12 bytes). Below this even an empty shard
    /// overflows, so no shard count can satisfy the cap.
    pub const MIN_BYTES: usize = 192;

    /// A budget of `bytes` spilling into `spill_dir`, starting unsharded.
    #[must_use]
    pub fn new(bytes: usize, spill_dir: impl Into<PathBuf>) -> Self {
        Self {
            bytes,
            spill_dir: spill_dir.into(),
            initial_shards: 1,
        }
    }

    /// Starts generation at `shards` shards instead of 1.
    ///
    /// # Panics
    ///
    /// Panics unless `shards` is a power of two.
    #[must_use]
    pub fn with_initial_shards(mut self, shards: u32) -> Self {
        assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two"
        );
        self.initial_shards = shards;
        self
    }
}

/// Widest partition the doubling loop will try before concluding the
/// budget cannot be met (a backstop; any budget ≥ [`MemoryBudget::MIN_BYTES`]
/// converges long before this).
const MAX_SHARDS: u32 = 1 << 20;

/// Working-state estimate per candidate during a verification pass: the
/// [`CandidatePair`] itself, its [`VerifiedPair`], an intersection counter
/// and two partner-adjacency entries.
const VERIFY_BYTES_PER_CANDIDATE: u64 = 64;

/// The phase-1 summary a sharded run keeps resident: every shard's
/// generation pass re-reads this instead of re-scanning the table.
enum Phase1Summary {
    Sigs(SignatureMatrix),
    BottomK(BottomKSignatures),
    Matrix(RowMajorMatrix),
}

impl Phase1Summary {
    fn heap_bytes(&self) -> u64 {
        match self {
            Self::Sigs(s) => s.heap_bytes(),
            Self::BottomK(s) => s.heap_bytes(),
            Self::Matrix(m) => m.heap_bytes(),
        }
    }
}

/// Folds one shard's generation stats into the running total: stage counts
/// add positionally (every shard of a scheme records the same stage
/// sequence), histograms add elementwise.
fn merge_stats(acc: &mut CandidateGenStats, part: CandidateGenStats) {
    if acc.stages.is_empty() {
        acc.stages = part.stages;
    } else {
        debug_assert_eq!(acc.stages.len(), part.stages.len());
        for (a, (_, count)) in acc.stages.iter_mut().zip(part.stages) {
            a.1 += count;
        }
    }
    if acc.bucket_histogram.len() < part.bucket_histogram.len() {
        acc.bucket_histogram.resize(part.bucket_histogram.len(), 0);
    }
    for (a, b) in acc.bucket_histogram.iter_mut().zip(part.bucket_histogram) {
        *a += b;
    }
}

impl Pipeline {
    /// Runs one shard's candidate generation against the resident phase-1
    /// summary under the byte cap.
    fn generate_shard(
        &self,
        summary: &Phase1Summary,
        lsh_seed: u64,
        shard: PairShard,
        cap_bytes: usize,
    ) -> (
        Vec<CandidatePair>,
        CandidateGenStats,
        sfa_hash::bucket::ShardPassOutcome,
    ) {
        let cfg = &self.config;
        match (cfg.scheme, summary) {
            (Scheme::Mh { delta, .. }, Phase1Summary::Sigs(sigs)) => {
                mh_candidates_sharded(sigs, cfg.s_star, delta, shard, cap_bytes)
            }
            (Scheme::MhRowSort { delta, .. }, Phase1Summary::Sigs(sigs)) => {
                rowsort_candidates_sharded(sigs, cfg.s_star, delta, shard, cap_bytes)
            }
            (Scheme::Kmh { delta, .. }, Phase1Summary::BottomK(sigs)) => {
                kmh_candidates_sharded(sigs, cfg.s_star, delta, shard, cap_bytes)
            }
            (Scheme::MLsh { r, l, sampled, .. }, Phase1Summary::Sigs(sigs)) => {
                let params = if sampled {
                    MLshParams::sampled(r, l, lsh_seed)
                } else {
                    MLshParams::banded(r, l, lsh_seed)
                };
                mlsh_candidates_sharded(sigs, &params, shard, cap_bytes)
            }
            (
                Scheme::HLsh {
                    r,
                    l,
                    t: gate,
                    max_levels,
                },
                Phase1Summary::Matrix(matrix),
            ) => {
                let params = HLshParams {
                    r,
                    l,
                    t: gate,
                    max_levels,
                    include_zero_keys: false,
                    seed: lsh_seed,
                };
                hlsh_candidates_sharded(matrix, &params, shard, cap_bytes)
            }
            _ => unreachable!("summary kind always matches the scheme"),
        }
    }

    /// Runs the pipeline with its pair-space state capped at
    /// `budget.bytes`, spilling per-shard candidate sets to disk.
    ///
    /// The pair space is partitioned into `G` column shards
    /// ([`PairShard`]); each shard's candidates are generated in an
    /// independent pass over the resident phase-1 summary with a
    /// budget-capped counter, then spilled to `budget.spill_dir` as a
    /// checksummed `.sfsp` file. If any shard's counter would outgrow the
    /// budget, `G` doubles and generation restarts at the finer partition.
    /// Verification then streams the table once per *shard group* — shards
    /// packed greedily so one group's candidate state fits the budget —
    /// and each group's result is spilled too.
    ///
    /// Output is **byte-identical** to [`run`](Self::run): every pair
    /// belongs to exactly one shard, so the union of shard candidate sets
    /// equals the unsharded candidate set, and the final merge sorts
    /// verified pairs into the same `(i, j)` order. `metrics.sharding`
    /// reports the shard count, restarts, passes, spill volume and peak
    /// tracked pair-state bytes; with `checkpoint` given, both streaming
    /// passes also checkpoint (resume semantics as
    /// [`run_resumable`](Self::run_resumable)), and because finished
    /// shards and groups live in spill files, a killed run re-does at most
    /// one shard's generation plus one group's scan.
    ///
    /// # Errors
    ///
    /// Propagates stream and spill-IO errors, and reports a budget below
    /// [`MemoryBudget::MIN_BYTES`] (or one no partition of this table can
    /// satisfy) as [`MatrixError::DimensionMismatch`].
    pub fn run_sharded<S: RowStream>(
        &self,
        stream: &mut S,
        budget: &MemoryBudget,
        checkpoint: Option<&CheckpointSpec>,
    ) -> Result<MiningResult> {
        self.run_sharded_with(stream, budget, checkpoint, &CancelToken::default())
    }

    /// [`run_sharded`](Self::run_sharded) with cooperative cancellation.
    /// `cancel` is polled at shard and verify-group boundaries and (with
    /// `checkpoint` given) after every streamed row; finished shards and
    /// groups are already spilled when it fires, so a rerun redoes at most
    /// the interrupted piece. Both state directories are swept by
    /// [`durable::recover_dir`] first — stray `.tmp` files deleted,
    /// corrupt or stale spills and checkpoints quarantined (reported in
    /// `metrics.recovery`).
    ///
    /// # Errors
    ///
    /// As [`run_sharded`](Self::run_sharded); returns
    /// [`MatrixError::Canceled`] when `cancel` fires.
    pub fn run_sharded_with<S: RowStream>(
        &self,
        stream: &mut S,
        budget: &MemoryBudget,
        checkpoint: Option<&CheckpointSpec>,
        cancel: &CancelToken,
    ) -> Result<MiningResult> {
        if budget.bytes < MemoryBudget::MIN_BYTES {
            return Err(MatrixError::DimensionMismatch {
                detail: format!(
                    "memory budget of {} bytes is below the {}-byte minimum (one empty pair-counter table)",
                    budget.bytes,
                    MemoryBudget::MIN_BYTES
                ),
            });
        }
        let cfg = &self.config;
        let key = RunKey::new(cfg, stream.n_rows(), stream.n_cols());
        let mut recovered = durable::recover_dir(&budget.spill_dir, key)?;
        if let Some(spec) = checkpoint {
            if spec.dir != budget.spill_dir {
                recovered = recovered.merge(durable::recover_dir(&spec.dir, key)?);
            }
        }
        let sig_seed = sfa_hash::family::derive_seed(cfg.seed, purpose::SIGNATURES);
        let lsh_seed = sfa_hash::family::derive_seed(cfg.seed, purpose::LSH);
        let mut recovery = RecoveryMetrics {
            files_quarantined: recovered.files_quarantined,
            tmp_files_removed: recovered.tmp_files_removed,
            ..RecoveryMetrics::default()
        };
        let mut timings = PhaseTimings::default();
        let mut metrics = MiningMetrics {
            scheme: cfg.scheme.name().to_owned(),
            ..MiningMetrics::default()
        };
        let mut scan = ScanCounter::new(&mut *stream);

        // Phase 1: one streaming pass into the resident summary (skipped
        // entirely on a signature-cache hit).
        let t = Instant::now();
        let summary = match cfg.scheme {
            Scheme::Mh { k, .. } | Scheme::MhRowSort { k, .. } | Scheme::MLsh { k, .. } => {
                let (sigs, phase1) = match checkpoint {
                    Some(spec) => self.signatures_resumable_cached(
                        &mut scan,
                        k,
                        sig_seed,
                        spec,
                        key,
                        &mut recovery,
                        cancel,
                    )?,
                    None => self.signatures_phase1(&mut scan, k, sig_seed)?,
                };
                metrics.phase1 = Some(phase1);
                Phase1Summary::Sigs(sigs)
            }
            Scheme::Kmh { k, .. } => {
                let (sigs, phase1) = match checkpoint {
                    Some(spec) => self.bottom_k_resumable_cached(
                        &mut scan,
                        k,
                        sig_seed,
                        spec,
                        key,
                        &mut recovery,
                        cancel,
                    )?,
                    None => self.bottom_k_phase1(&mut scan, k, sig_seed)?,
                };
                metrics.phase1 = Some(phase1);
                Phase1Summary::BottomK(sigs)
            }
            // H-LSH works directly on the data; there is no incremental
            // phase-1 state to checkpoint and no sketch to cache.
            Scheme::HLsh { .. } => Phase1Summary::Matrix(materialize(&mut scan)?),
        };
        timings.signatures = t.elapsed();
        metrics.signature_bytes = summary.heap_bytes();

        // Phase 2: generate each shard under the cap, doubling the
        // partition whenever a shard overflows. An interrupted run's spill
        // files let a rerun adopt the widest partition already on disk and
        // skip every shard spilled there.
        let mut g = spill::max_valid_shard_count(&budget.spill_dir, key)
            .unwrap_or(budget.initial_shards)
            .max(budget.initial_shards);
        let mut shard_restarts = 0u64;
        let mut generation_passes = 0u64;
        let mut spill_bytes = 0u64;
        let mut peak_tracked_bytes = 0u64;
        let mut shard_sizes: Vec<u64> = Vec::new();
        let t = Instant::now();
        'attempt: loop {
            let width = g;
            shard_sizes.clear();
            let mut acc_stats = CandidateGenStats::default();
            for s in 0..width {
                // Shard boundary: everything before shard `s` is spilled,
                // so stopping here loses at most one shard's work.
                cancel.check()?;
                if let Some(cands) = spill::load_shard_candidates(&budget.spill_dir, key, s, width)
                {
                    shard_sizes.push(cands.len() as u64);
                    continue;
                }
                generation_passes += 1;
                let (cands, stats, outcome) =
                    self.generate_shard(&summary, lsh_seed, PairShard::new(s, width), budget.bytes);
                peak_tracked_bytes = peak_tracked_bytes.max(outcome.counter_bytes as u64);
                if outcome.overflowed {
                    if width >= MAX_SHARDS {
                        return Err(MatrixError::DimensionMismatch {
                            detail: format!(
                                "memory budget of {} bytes cannot be met: a {width}-way shard partition still overflows",
                                budget.bytes
                            ),
                        });
                    }
                    g = width * 2;
                    shard_restarts += 1;
                    continue 'attempt;
                }
                merge_stats(&mut acc_stats, stats);
                spill_bytes +=
                    spill::save_shard_candidates(&budget.spill_dir, key, s, width, &cands)?;
                shard_sizes.push(cands.len() as u64);
            }
            metrics.absorb_candidate_stats(acc_stats);
            break;
        }
        timings.candidates = t.elapsed();
        metrics.candidates_generated = shard_sizes.iter().sum();

        // Phase 3: pack shards greedily into groups whose candidate state
        // fits the budget (a lone oversized shard still gets a group), and
        // stream the table once per group that has no spilled result.
        let mut groups: Vec<Vec<u32>> = Vec::new();
        let mut group_bytes = 0u64;
        for (s, &size) in shard_sizes.iter().enumerate() {
            let bytes = size * VERIFY_BYTES_PER_CANDIDATE;
            match groups.last_mut() {
                Some(group) if group_bytes + bytes <= budget.bytes as u64 => {
                    group.push(s as u32);
                    group_bytes += bytes;
                }
                _ => {
                    groups.push(vec![s as u32]);
                    group_bytes = bytes;
                }
            }
        }
        let mut verified = Vec::new();
        let mut column_counts = vec![0u32; scan.n_cols() as usize];
        let mut probes = 0u64;
        let t = Instant::now();
        for (group_idx, group) in groups.iter().enumerate() {
            // Group boundary: finished groups have spilled results.
            cancel.check()?;
            let mut candidates = Vec::new();
            for &s in group {
                candidates.extend(
                    spill::load_shard_candidates(&budget.spill_dir, key, s, g).ok_or_else(
                        || MatrixError::DimensionMismatch {
                            detail: format!("spilled shard {s} of {g} vanished mid-run"),
                        },
                    )?,
                );
            }
            candidates.sort_by_key(CandidatePair::ids);
            peak_tracked_bytes =
                peak_tracked_bytes.max(candidates.len() as u64 * VERIFY_BYTES_PER_CANDIDATE);
            let fp = checkpoint::candidates_fingerprint(&candidates);
            let (group_verified, group_counts, group_probes) =
                match spill::load_group_result(&budget.spill_dir, key, group_idx, fp) {
                    Some(result) => result,
                    None => {
                        scan.reset()?;
                        let result = match checkpoint {
                            Some(spec) => {
                                let resume = checkpoint::load_phase3(spec, key, fp);
                                if let Some(s) = &resume {
                                    recovery.resumed_from_row =
                                        recovery.resumed_from_row.max(s.progress.rows_done);
                                }
                                let mut written = 0u64;
                                let result = verify_candidates_resumable(
                                    &mut scan,
                                    &candidates,
                                    resume.map(|s| s.progress),
                                    spec.every_rows,
                                    &mut |p| {
                                        checkpoint::save_phase3(spec, key, fp, p)?;
                                        written += 1;
                                        Ok(())
                                    },
                                    cancel,
                                )?;
                                recovery.checkpoints_written += written;
                                result
                            }
                            None => verify_candidates_with_stats(&mut scan, &candidates)?,
                        };
                        spill_bytes += spill::save_group_result(
                            &budget.spill_dir,
                            key,
                            group_idx,
                            fp,
                            &result.0,
                            &result.1,
                            result.2,
                        )?;
                        result
                    }
                };
            verified.extend(group_verified);
            // Every group's pass counts all columns, so the vectors agree;
            // max keeps the merge idempotent.
            for (acc, v) in column_counts.iter_mut().zip(&group_counts) {
                *acc = (*acc).max(*v);
            }
            probes += group_probes;
        }
        verified.sort_by_key(|p| (p.i, p.j));
        timings.verify = t.elapsed();

        let passes = scan.pass_scans();
        metrics.signature_pass = passes.first().copied().unwrap_or_default().into();
        metrics.verify_pass =
            passes[1..]
                .iter()
                .fold(crate::metrics::PassMetrics::default(), |mut acc, p| {
                    acc.rows_scanned += p.rows;
                    acc.nonzeros_scanned += p.nonzeros;
                    acc
                });
        metrics.verification = self.verification_metrics(&verified, probes);
        metrics.recovery = recovery;
        metrics.sharding = Some(ShardingMetrics {
            memory_budget: budget.bytes as u64,
            shards: u64::from(g),
            shard_restarts,
            generation_passes,
            verify_groups: groups.len() as u64,
            spill_bytes,
            peak_tracked_bytes,
        });
        spill::clear(&budget.spill_dir)?;
        durable::remove_manifest(&budget.spill_dir)?;
        if let Some(spec) = checkpoint {
            checkpoint::clear(spec)?;
            durable::remove_manifest(&spec.dir)?;
        }
        Ok(MiningResult {
            config: self.config,
            verified,
            column_counts,
            timings,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfa_matrix::MemoryRowStream;

    /// 0–1 identical (S = 1), 2–3 at S = 0.5, others noise.
    fn matrix() -> RowMajorMatrix {
        let mut rows = Vec::new();
        for _ in 0..30 {
            rows.push(vec![0, 1]);
        }
        for _ in 0..10 {
            rows.push(vec![2, 3]);
        }
        for _ in 0..5 {
            rows.push(vec![2]);
            rows.push(vec![3]);
        }
        for i in 0..20u32 {
            rows.push(vec![4 + (i % 3)]);
        }
        RowMajorMatrix::from_rows(7, rows).unwrap()
    }

    fn all_schemes() -> Vec<Scheme> {
        vec![
            Scheme::Mh { k: 100, delta: 0.2 },
            Scheme::MhRowSort { k: 100, delta: 0.2 },
            Scheme::Kmh { k: 24, delta: 0.2 },
            Scheme::MLsh {
                k: 100,
                r: 5,
                l: 20,
                sampled: false,
            },
            Scheme::MLsh {
                k: 40,
                r: 5,
                l: 20,
                sampled: true,
            },
            Scheme::HLsh {
                r: 8,
                l: 8,
                t: 4,
                max_levels: 12,
            },
        ]
    }

    #[test]
    fn every_scheme_finds_the_identical_pair() {
        let m = matrix();
        for scheme in all_schemes() {
            let cfg = PipelineConfig::new(scheme, 0.9, 11);
            let result = Pipeline::new(cfg)
                .run(&mut MemoryRowStream::new(&m))
                .unwrap();
            let pairs = result.similar_pairs();
            assert!(
                pairs.iter().any(|p| (p.i, p.j) == (0, 1)),
                "{} missed the identical pair",
                scheme.name()
            );
        }
    }

    #[test]
    fn no_false_positives_survive_verification() {
        let m = matrix();
        let csc = m.transpose();
        for scheme in all_schemes() {
            let cfg = PipelineConfig::new(scheme, 0.9, 5);
            let result = Pipeline::new(cfg)
                .run(&mut MemoryRowStream::new(&m))
                .unwrap();
            for p in result.similar_pairs() {
                let exact = csc.similarity(p.i, p.j);
                assert!(
                    exact >= 0.9,
                    "{}: output pair ({}, {}) has exact similarity {exact}",
                    scheme.name(),
                    p.i,
                    p.j
                );
                assert!((p.similarity - exact).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mh_and_rowsort_agree() {
        let m = matrix();
        let a = Pipeline::new(PipelineConfig::new(
            Scheme::Mh { k: 64, delta: 0.2 },
            0.8,
            3,
        ))
        .run(&mut MemoryRowStream::new(&m))
        .unwrap();
        let b = Pipeline::new(PipelineConfig::new(
            Scheme::MhRowSort { k: 64, delta: 0.2 },
            0.8,
            3,
        ))
        .run(&mut MemoryRowStream::new(&m))
        .unwrap();
        assert_eq!(a.verified, b.verified);
    }

    #[test]
    fn pipeline_uses_exactly_two_passes() {
        let m = matrix();
        let mut counter = sfa_matrix::stream::PassCounter::new(MemoryRowStream::new(&m));
        let cfg = PipelineConfig::new(Scheme::Mh { k: 16, delta: 0.2 }, 0.8, 1);
        let _ = Pipeline::new(cfg).run(&mut counter).unwrap();
        assert_eq!(counter.passes(), 2, "signature pass + verify pass");
    }

    #[test]
    fn moderate_pair_respects_threshold() {
        let m = matrix();
        // S(2, 3) = 10/20 = 0.5: present at s* = 0.4, absent at s* = 0.7.
        let low = Pipeline::new(PipelineConfig::new(
            Scheme::Mh { k: 200, delta: 0.3 },
            0.4,
            9,
        ))
        .run(&mut MemoryRowStream::new(&m))
        .unwrap();
        assert!(low.similar_pairs().iter().any(|p| (p.i, p.j) == (2, 3)));
        let high = Pipeline::new(PipelineConfig::new(
            Scheme::Mh { k: 200, delta: 0.3 },
            0.7,
            9,
        ))
        .run(&mut MemoryRowStream::new(&m))
        .unwrap();
        assert!(!high.similar_pairs().iter().any(|p| (p.i, p.j) == (2, 3)));
    }

    #[test]
    fn deterministic_per_seed() {
        let m = matrix();
        let cfg = PipelineConfig::new(Scheme::Kmh { k: 16, delta: 0.2 }, 0.8, 42);
        let a = Pipeline::new(cfg)
            .run(&mut MemoryRowStream::new(&m))
            .unwrap();
        let b = Pipeline::new(cfg)
            .run(&mut MemoryRowStream::new(&m))
            .unwrap();
        assert_eq!(a.verified, b.verified);
    }

    #[test]
    fn run_parallel_matches_run() {
        // Every scheme's parallel path must be byte-identical to the
        // sequential pipeline at every thread count: same verified pairs,
        // column counts, stage counters, and occupancy histograms.
        let m = matrix();
        for scheme in [
            Scheme::Mh { k: 64, delta: 0.2 },
            Scheme::MhRowSort { k: 64, delta: 0.2 },
            Scheme::Kmh { k: 16, delta: 0.2 },
            Scheme::MLsh {
                k: 60,
                r: 5,
                l: 12,
                sampled: false,
            },
            Scheme::MLsh {
                k: 40,
                r: 5,
                l: 20,
                sampled: true,
            },
            Scheme::HLsh {
                r: 8,
                l: 8,
                t: 4,
                max_levels: 12,
            },
        ] {
            let cfg = PipelineConfig::new(scheme, 0.8, 17);
            let seq = Pipeline::new(cfg)
                .run(&mut MemoryRowStream::new(&m))
                .unwrap();
            for threads in [1, 2, 4, 7] {
                let par = Pipeline::new(cfg).run_parallel(&m, threads);
                assert_eq!(par.verified, seq.verified, "{} x{threads}", scheme.name());
                assert_eq!(par.column_counts, seq.column_counts);
                assert_eq!(
                    par.metrics.candidate_stages,
                    seq.metrics.candidate_stages,
                    "{} x{threads}: stage counters",
                    scheme.name()
                );
                assert_eq!(
                    par.metrics.bucket_histogram,
                    seq.metrics.bucket_histogram,
                    "{} x{threads}: bucket histogram",
                    scheme.name()
                );
                assert_eq!(par.metrics.threads, threads as u64);
            }
        }
    }

    #[test]
    fn run_parallel_auto_threads_sizes_from_machine() {
        let m = matrix();
        let cfg = PipelineConfig::new(Scheme::Mh { k: 32, delta: 0.2 }, 0.8, 17);
        let auto = Pipeline::new(cfg).run_parallel(&m, 0);
        assert!(auto.metrics.threads >= 1);
        let seq = Pipeline::new(cfg)
            .run(&mut MemoryRowStream::new(&m))
            .unwrap();
        assert_eq!(auto.verified, seq.verified);
    }

    #[test]
    fn run_pool_reuses_one_pool_across_runs() {
        let m = matrix();
        let pool = sfa_par::ThreadPool::new(3);
        for scheme in [
            Scheme::Mh { k: 32, delta: 0.2 },
            Scheme::Kmh { k: 16, delta: 0.2 },
        ] {
            let cfg = PipelineConfig::new(scheme, 0.8, 17);
            let seq = Pipeline::new(cfg)
                .run(&mut MemoryRowStream::new(&m))
                .unwrap();
            let par = Pipeline::new(cfg).run_pool(&m, &pool);
            assert_eq!(par.verified, seq.verified, "{}", scheme.name());
            assert_eq!(par.metrics.threads, 3);
        }
    }

    #[test]
    fn timings_are_populated() {
        let m = matrix();
        let cfg = PipelineConfig::new(Scheme::Mh { k: 64, delta: 0.2 }, 0.8, 1);
        let r = Pipeline::new(cfg)
            .run(&mut MemoryRowStream::new(&m))
            .unwrap();
        assert!(r.timings.total() > std::time::Duration::ZERO);
    }

    #[test]
    fn metrics_are_populated_for_every_scheme() {
        let m = matrix();
        for scheme in all_schemes() {
            let cfg = PipelineConfig::new(scheme, 0.9, 11);
            let r = Pipeline::new(cfg)
                .run(&mut MemoryRowStream::new(&m))
                .unwrap();
            let metrics = &r.metrics;
            let name = scheme.name();
            assert_eq!(metrics.scheme, name);
            // Both passes scanned the full table.
            assert_eq!(metrics.signature_pass.rows_scanned, u64::from(m.n_rows()));
            assert_eq!(metrics.signature_pass.nonzeros_scanned, m.nnz() as u64);
            assert_eq!(metrics.verify_pass, metrics.signature_pass);
            assert!(metrics.signature_bytes > 0, "{name}: no signature bytes");
            assert!(
                !metrics.candidate_stages.is_empty(),
                "{name}: no candidate stages"
            );
            assert_eq!(metrics.candidates_generated, r.verified.len() as u64);
            let v = &metrics.verification;
            assert_eq!(v.candidates_checked, r.verified.len() as u64);
            assert_eq!(
                v.true_positives as usize,
                r.similar_pairs().len(),
                "{name}: TP mismatch"
            );
            assert_eq!(
                v.false_positives_pruned as usize,
                r.false_positive_candidates(),
                "{name}: FP mismatch"
            );
            if !r.verified.is_empty() {
                assert!(v.intersection_work > 0, "{name}: no probe work counted");
            }
            assert!(
                metrics.bucket_histogram.iter().sum::<u64>() > 0,
                "{name}: empty bucket histogram"
            );
        }
    }

    fn checkpoint_spec(name: &str) -> CheckpointSpec {
        let dir = std::env::temp_dir().join("sfa_pipeline_tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointSpec::new(dir)
    }

    #[test]
    fn run_resumable_without_interruption_matches_run() {
        let m = matrix();
        for scheme in all_schemes() {
            let cfg = PipelineConfig::new(scheme, 0.8, 11);
            let plain = Pipeline::new(cfg)
                .run(&mut MemoryRowStream::new(&m))
                .unwrap();
            let spec =
                checkpoint_spec(&format!("uninterrupted_{}", scheme.name())).with_every_rows(16);
            let resumable = Pipeline::new(cfg)
                .run_resumable(&mut MemoryRowStream::new(&m), &spec)
                .unwrap();
            assert_eq!(resumable.verified, plain.verified, "{}", scheme.name());
            assert_eq!(resumable.column_counts, plain.column_counts);
            if !matches!(scheme, Scheme::HLsh { .. }) {
                assert!(
                    resumable.metrics.recovery.checkpoints_written > 0,
                    "{}: no checkpoints written",
                    scheme.name()
                );
                assert_eq!(resumable.metrics.recovery.resumed_from_row, 0);
                // Success must leave no checkpoint files behind.
                assert!(!spec.dir.join("phase1.sfcp").exists());
                assert!(!spec.dir.join("phase3.sfcp").exists());
            }
        }
    }

    #[test]
    fn run_resumable_resumes_after_phase1_crash() {
        let m = matrix(); // 70 rows
        for scheme in [
            Scheme::Mh { k: 32, delta: 0.2 },
            Scheme::Kmh { k: 16, delta: 0.2 },
        ] {
            let cfg = PipelineConfig::new(scheme, 0.8, 11);
            let plain = Pipeline::new(cfg)
                .run(&mut MemoryRowStream::new(&m))
                .unwrap();
            let spec =
                checkpoint_spec(&format!("phase1_crash_{}", scheme.name())).with_every_rows(16);

            // First attempt dies on a fatal fault at row 40, after the
            // checkpoints at rows 16 and 32 have been written.
            let faulty = sfa_matrix::FaultConfig {
                fatal_at_row: Some(40),
                ..sfa_matrix::FaultConfig::default()
            };
            let mut stream = sfa_matrix::FaultyRowStream::new(MemoryRowStream::new(&m), faulty);
            Pipeline::new(cfg)
                .run_resumable(&mut stream, &spec)
                .unwrap_err();
            assert!(spec.dir.join("phase1.sfcp").exists());

            // The rerun fast-forwards to row 32: it reads 70 − 32 = 38 rows
            // in the signature pass plus the full 70-row verify pass.
            let mut counter = sfa_matrix::stream::PassCounter::new(MemoryRowStream::new(&m));
            let resumed = Pipeline::new(cfg)
                .run_resumable(&mut counter, &spec)
                .unwrap();
            assert_eq!(counter.rows_read(), 38 + 70, "{}", scheme.name());
            assert_eq!(resumed.metrics.recovery.resumed_from_row, 32);
            assert_eq!(resumed.verified, plain.verified, "{}", scheme.name());
            assert_eq!(resumed.column_counts, plain.column_counts);
        }
    }

    #[test]
    fn run_resumable_resumes_after_phase3_crash() {
        let m = matrix(); // 70 rows
        let cfg = PipelineConfig::new(Scheme::Mh { k: 32, delta: 0.2 }, 0.8, 11);
        let plain = Pipeline::new(cfg)
            .run(&mut MemoryRowStream::new(&m))
            .unwrap();
        let spec = checkpoint_spec("phase3_crash").with_every_rows(16);
        std::fs::create_dir_all(&spec.dir).unwrap();

        // Manufacture a *completed* phase-1 checkpoint (rows_done = 70), so
        // the next attempt skips the whole signature pass without reading.
        let key = RunKey::new(&cfg, m.n_rows(), m.n_cols());
        let sig_seed = sfa_hash::family::derive_seed(cfg.seed, purpose::SIGNATURES);
        let mut builder = MhBuilder::new(32, m.n_cols() as usize, sig_seed);
        let mut stream = MemoryRowStream::new(&m);
        let mut buf = Vec::new();
        while let Some(id) = stream.read_row(&mut buf).unwrap() {
            builder.push_row(id, &buf);
        }
        save_mh_state(&spec, key, &builder).unwrap();

        // With phase 1 fully skipped (skip_rows bypasses fault injection),
        // the fatal fault at position 40 now fires mid-verify, after the
        // frontier checkpoints at rows 16 and 32 were written.
        let faulty = sfa_matrix::FaultConfig {
            fatal_at_row: Some(40),
            ..sfa_matrix::FaultConfig::default()
        };
        let mut attempt = sfa_matrix::FaultyRowStream::new(MemoryRowStream::new(&m), faulty);
        Pipeline::new(cfg)
            .run_resumable(&mut attempt, &spec)
            .unwrap_err();
        assert!(
            spec.dir.join("phase3.sfcp").exists(),
            "the crash must leave a phase-3 frontier checkpoint"
        );

        // Final attempt on a clean stream: phase 1 resumes from its
        // completed checkpoint (0 signature rows re-read), phase 3 from
        // the row-32 frontier (70 − 32 = 38 rows re-read).
        let mut counter = sfa_matrix::stream::PassCounter::new(MemoryRowStream::new(&m));
        let resumed = Pipeline::new(cfg)
            .run_resumable(&mut counter, &spec)
            .unwrap();
        assert_eq!(counter.rows_read(), 38, "only the verify suffix is read");
        assert_eq!(resumed.metrics.recovery.resumed_from_row, 70);
        assert_eq!(resumed.verified, plain.verified);
        assert_eq!(resumed.column_counts, plain.column_counts);
    }

    #[test]
    fn stale_checkpoint_from_other_config_is_ignored() {
        let m = matrix();
        let spec = checkpoint_spec("stale_config").with_every_rows(16);
        let cfg_a = PipelineConfig::new(Scheme::Mh { k: 32, delta: 0.2 }, 0.8, 11);
        let faulty = sfa_matrix::FaultConfig {
            fatal_at_row: Some(40),
            ..sfa_matrix::FaultConfig::default()
        };
        let mut stream = sfa_matrix::FaultyRowStream::new(MemoryRowStream::new(&m), faulty);
        Pipeline::new(cfg_a)
            .run_resumable(&mut stream, &spec)
            .unwrap_err();

        // A different seed must not resume from cfg_a's checkpoint.
        let cfg_b = PipelineConfig::new(Scheme::Mh { k: 32, delta: 0.2 }, 0.8, 12);
        let mut counter = sfa_matrix::stream::PassCounter::new(MemoryRowStream::new(&m));
        let result = Pipeline::new(cfg_b)
            .run_resumable(&mut counter, &spec)
            .unwrap();
        assert_eq!(counter.rows_read(), 140, "both passes run in full");
        assert_eq!(result.metrics.recovery.resumed_from_row, 0);
        let plain = Pipeline::new(cfg_b)
            .run(&mut MemoryRowStream::new(&m))
            .unwrap();
        assert_eq!(result.verified, plain.verified);
    }

    #[test]
    fn run_parallel_reports_coarse_metrics() {
        let m = matrix();
        let cfg = PipelineConfig::new(Scheme::Mh { k: 64, delta: 0.2 }, 0.8, 17);
        let par = Pipeline::new(cfg).run_parallel(&m, 3);
        assert_eq!(par.metrics.scheme, "MH");
        assert_eq!(
            par.metrics.signature_pass.rows_scanned,
            u64::from(m.n_rows())
        );
        assert_eq!(par.metrics.candidates_generated, par.verified.len() as u64);
        let seq = Pipeline::new(cfg)
            .run(&mut MemoryRowStream::new(&m))
            .unwrap();
        // Scheme-side counters agree with the sequential path.
        assert_eq!(par.metrics.candidate_stages, seq.metrics.candidate_stages);
        assert_eq!(par.metrics.bucket_histogram, seq.metrics.bucket_histogram);
        assert_eq!(
            par.metrics.verification.true_positives,
            seq.metrics.verification.true_positives
        );
    }

    /// A fresh spill directory under the system temp dir.
    fn spill_dir(name: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("sfa-sharded-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn run_sharded_matches_run_for_every_scheme_and_shard_count() {
        let m = matrix();
        for scheme in all_schemes() {
            let cfg = PipelineConfig::new(scheme, 0.8, 11);
            let plain = Pipeline::new(cfg)
                .run(&mut MemoryRowStream::new(&m))
                .unwrap();
            for shards in [1u32, 2, 4] {
                let d = spill_dir(&format!("{}-{shards}", scheme.name()));
                // A roomy budget pins the shard count: nothing overflows,
                // so the run stays at `initial_shards`.
                let budget = MemoryBudget::new(1 << 20, &d).with_initial_shards(shards);
                let sharded = Pipeline::new(cfg)
                    .run_sharded(&mut MemoryRowStream::new(&m), &budget, None)
                    .unwrap();
                assert_eq!(
                    sharded.verified,
                    plain.verified,
                    "{} at {shards} shards",
                    scheme.name()
                );
                assert_eq!(sharded.column_counts, plain.column_counts);
                // Per-pair stages partition exactly across shards; the
                // counter-increment stage counts work actually done, which
                // is one full bucket walk per shard pass. Same for the
                // occupancy histogram.
                for (s_stage, p_stage) in sharded
                    .metrics
                    .candidate_stages
                    .iter()
                    .zip(&plain.metrics.candidate_stages)
                {
                    assert_eq!(s_stage.stage, p_stage.stage);
                    let expected = if s_stage.stage == "counter-increments" {
                        p_stage.count * u64::from(shards)
                    } else {
                        p_stage.count
                    };
                    assert_eq!(
                        s_stage.count,
                        expected,
                        "{} at {shards} shards: stage {}",
                        scheme.name(),
                        s_stage.stage
                    );
                }
                let scaled: Vec<u64> = plain
                    .metrics
                    .bucket_histogram
                    .iter()
                    .map(|&v| v * u64::from(shards))
                    .collect();
                assert_eq!(
                    sharded.metrics.bucket_histogram,
                    scaled,
                    "{} at {shards} shards: bucket histogram",
                    scheme.name()
                );
                assert_eq!(
                    sharded.metrics.candidates_generated,
                    plain.metrics.candidates_generated
                );
                let s = sharded.metrics.sharding.expect("sharding metrics");
                assert_eq!(s.shards, u64::from(shards));
                assert_eq!(s.shard_restarts, 0);
                assert_eq!(s.generation_passes, u64::from(shards));
                assert!(s.verify_groups >= 1);
                assert!(s.spill_bytes > 0);
                assert!(s.peak_tracked_bytes <= 1 << 20);
                // Spill files are cleaned up on success.
                assert!(
                    std::fs::read_dir(&d).unwrap().all(|e| !e
                        .unwrap()
                        .file_name()
                        .to_string_lossy()
                        .ends_with(".sfsp")),
                    "spill files survived a completed run"
                );
                let _ = std::fs::remove_dir_all(&d);
            }
        }
    }

    #[test]
    fn run_sharded_tiny_budget_doubles_until_shards_fit() {
        // A dense overlap structure: 8 columns that constantly co-bucket,
        // so the pair counter needs far more than the 12 distinct keys a
        // minimum-budget (16-slot) table can hold.
        let rows: Vec<Vec<u32>> = (0..60u32)
            .map(|i| {
                let mut v = vec![i % 8, (i * 3 + 1) % 8, (i * 5 + 2) % 8];
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let m = RowMajorMatrix::from_rows(8, rows).unwrap();
        let cfg = PipelineConfig::new(Scheme::Mh { k: 100, delta: 0.2 }, 0.5, 11);
        let plain = Pipeline::new(cfg)
            .run(&mut MemoryRowStream::new(&m))
            .unwrap();
        assert!(
            plain.metrics.stage("pairs-agreeing").unwrap() > 12,
            "test premise: more distinct pairs than one minimum table holds"
        );
        let d = spill_dir("tiny");
        // The minimum budget: every shard must fit in one 16-slot table,
        // which forces the partition to split until it does.
        let budget = MemoryBudget::new(MemoryBudget::MIN_BYTES, &d);
        let sharded = Pipeline::new(cfg)
            .run_sharded(&mut MemoryRowStream::new(&m), &budget, None)
            .unwrap();
        assert_eq!(sharded.verified, plain.verified);
        let s = sharded.metrics.sharding.expect("sharding metrics");
        assert!(s.shards >= 2, "a 192-byte budget cannot hold one shard");
        assert!(s.shard_restarts >= 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn run_sharded_rejects_sub_minimum_budget() {
        let m = matrix();
        let cfg = PipelineConfig::new(Scheme::Mh { k: 16, delta: 0.2 }, 0.8, 1);
        let d = spill_dir("below-min");
        let err = Pipeline::new(cfg)
            .run_sharded(
                &mut MemoryRowStream::new(&m),
                &MemoryBudget::new(MemoryBudget::MIN_BYTES - 1, &d),
                None,
            )
            .unwrap_err();
        assert!(matches!(err, MatrixError::DimensionMismatch { .. }));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn run_sharded_scans_the_table_once_per_verify_group_plus_phase1() {
        let m = matrix();
        let cfg = PipelineConfig::new(Scheme::Mh { k: 64, delta: 0.2 }, 0.8, 11);
        let d = spill_dir("passes");
        let budget = MemoryBudget::new(1 << 20, &d).with_initial_shards(4);
        let mut counter = sfa_matrix::stream::PassCounter::new(MemoryRowStream::new(&m));
        let result = Pipeline::new(cfg)
            .run_sharded(&mut counter, &budget, None)
            .unwrap();
        let s = result.metrics.sharding.expect("sharding metrics");
        assert_eq!(
            u64::from(counter.passes()),
            1 + s.verify_groups,
            "phase 1 + one verify scan per group"
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn run_sharded_resumes_from_spilled_shards_and_groups() {
        let m = matrix();
        let cfg = PipelineConfig::new(Scheme::Mh { k: 64, delta: 0.2 }, 0.8, 11);
        let d = spill_dir("resume");
        let budget = MemoryBudget::new(1 << 20, &d).with_initial_shards(2);
        let key = RunKey::new(&cfg, m.n_rows(), m.n_cols());

        // Seed the spill dir the way an interrupted run would: generate
        // both shards' candidates out-of-band and spill them.
        std::fs::create_dir_all(&d).unwrap();
        let sig_seed = sfa_hash::family::derive_seed(cfg.seed, purpose::SIGNATURES);
        let sigs = compute_signatures(&mut MemoryRowStream::new(&m), 64, sig_seed).unwrap();
        for s in 0..2u32 {
            let (cands, _, outcome) =
                mh_candidates_sharded(&sigs, 0.8, 0.2, PairShard::new(s, 2), usize::MAX);
            assert!(!outcome.overflowed);
            spill::save_shard_candidates(&d, key, s, 2, &cands).unwrap();
        }

        // The resumed run must adopt the 2-way partition from disk and
        // regenerate nothing.
        let sharded = Pipeline::new(cfg)
            .run_sharded(&mut MemoryRowStream::new(&m), &budget, None)
            .unwrap();
        let s = sharded.metrics.sharding.expect("sharding metrics");
        assert_eq!(s.shards, 2);
        assert_eq!(s.generation_passes, 0, "every shard came from disk");
        let plain = Pipeline::new(cfg)
            .run(&mut MemoryRowStream::new(&m))
            .unwrap();
        assert_eq!(sharded.verified, plain.verified);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn run_sharded_with_checkpoints_matches_and_cleans_up() {
        let m = matrix();
        for scheme in [
            Scheme::Mh { k: 64, delta: 0.2 },
            Scheme::Kmh { k: 16, delta: 0.2 },
            Scheme::HLsh {
                r: 8,
                l: 8,
                t: 4,
                max_levels: 12,
            },
        ] {
            let cfg = PipelineConfig::new(scheme, 0.8, 11);
            let plain = Pipeline::new(cfg)
                .run(&mut MemoryRowStream::new(&m))
                .unwrap();
            let d = spill_dir(&format!("ckpt-{}", scheme.name()));
            let budget = MemoryBudget::new(1 << 20, &d).with_initial_shards(2);
            let spec = CheckpointSpec::new(d.join("ckpt")).with_every_rows(16);
            let sharded = Pipeline::new(cfg)
                .run_sharded(&mut MemoryRowStream::new(&m), &budget, Some(&spec))
                .unwrap();
            assert_eq!(sharded.verified, plain.verified, "{}", scheme.name());
            assert!(
                sharded.metrics.recovery.checkpoints_written > 0
                    || matches!(scheme, Scheme::HLsh { .. }),
                "{}: streaming passes should checkpoint",
                scheme.name()
            );
            let _ = std::fs::remove_dir_all(&d);
        }
    }
}
