/root/repo/target/debug/deps/fig2_filter_functions-f67d70b69e626715.d: crates/experiments/src/bin/fig2_filter_functions.rs

/root/repo/target/debug/deps/libfig2_filter_functions-f67d70b69e626715.rmeta: crates/experiments/src/bin/fig2_filter_functions.rs

crates/experiments/src/bin/fig2_filter_functions.rs:
