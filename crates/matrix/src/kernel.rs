//! Runtime-dispatched SIMD counting kernels.
//!
//! Every exact count in the pipeline bottoms out in one of three word
//! kernels: AND-popcount (`|a ∩ b|` over bitmaps), OR-popcount
//! (`|a ∪ b|`), and sorted-set intersection (K-MH signature overlap).
//! This module owns the *arm selection* for those kernels: one of
//!
//! * **scalar** — the PR 4 unrolled 4-accumulator popcount loops, the
//!   portable floor that every other arm must match bit-for-bit;
//! * **avx2** — Harley–Seal carry-save popcount (16 × 256-bit vectors =
//!   64 words per iteration) on x86-64 CPUs that report AVX2, plus a
//!   block-compare merge for sorted `u64` sets;
//! * **neon** — `vcnt`-based popcount on aarch64.
//!
//! The arm is picked once per process — from the `SFA_KERNEL`
//! environment variable (`auto` | `scalar` | `simd`), the `--kernel`
//! CLI flag via [`force`], or CPU feature detection
//! (`is_x86_feature_detected!`) — and cached in an atomic, so the hot
//! loops pay a single relaxed load, not a detection test per call.
//!
//! Every arm returns *exactly* the same counts: SIMD only reorders the
//! adds of a popcount, it never approximates. The
//! `tests/kernel_equivalence` proptests pin scalar-vs-SIMD agreement on
//! every kernel; CI runs the suites twice (once with `SFA_KERNEL=scalar`)
//! so the portable fallback cannot rot.

use std::sync::atomic::{AtomicU8, Ordering};

/// What the user asked for (CLI `--kernel`, `SFA_KERNEL` env).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelChoice {
    /// Pick the best arm the CPU supports (the default).
    Auto,
    /// Force the portable scalar kernels.
    Scalar,
    /// Require a SIMD arm; an error if the CPU has none.
    Simd,
}

impl std::str::FromStr for KernelChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Self::Auto),
            "scalar" => Ok(Self::Scalar),
            "simd" => Ok(Self::Simd),
            other => Err(format!("kernel must be auto|scalar|simd, got {other:?}")),
        }
    }
}

/// The kernel arm actually executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelArm {
    /// Portable unrolled scalar loops.
    Scalar,
    /// AVX2 Harley–Seal popcount + block-compare sorted merge (x86-64).
    Avx2,
    /// NEON `vcnt` popcount (aarch64).
    Neon,
}

impl KernelArm {
    /// Stable lowercase name, as reported in metrics (`dispatch_arm`).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Avx2 => "avx2",
            Self::Neon => "neon",
        }
    }
}

const ARM_UNSET: u8 = 0;
const ARM_SCALAR: u8 = 1;
const ARM_AVX2: u8 = 2;
const ARM_NEON: u8 = 3;

/// Cached arm for the whole process; `ARM_UNSET` until first use.
static ARM: AtomicU8 = AtomicU8::new(ARM_UNSET);

const fn encode(arm: KernelArm) -> u8 {
    match arm {
        KernelArm::Scalar => ARM_SCALAR,
        KernelArm::Avx2 => ARM_AVX2,
        KernelArm::Neon => ARM_NEON,
    }
}

const fn decode(code: u8) -> KernelArm {
    match code {
        ARM_AVX2 => KernelArm::Avx2,
        ARM_NEON => KernelArm::Neon,
        _ => KernelArm::Scalar,
    }
}

/// The SIMD arm this CPU supports, if any (independent of what is
/// currently selected).
#[must_use]
pub fn simd_arm() -> Option<KernelArm> {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Some(KernelArm::Avx2);
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return Some(KernelArm::Neon);
        }
    }
    None
}

/// First-use arm selection: `SFA_KERNEL` env override, then CPU
/// detection. Unknown or unsatisfiable env values fall back to `auto`
/// (the CLI flag validates strictly; the env var is best-effort).
fn initial_arm() -> KernelArm {
    match std::env::var("SFA_KERNEL").ok().as_deref() {
        Some("scalar") => KernelArm::Scalar,
        _ => simd_arm().unwrap_or(KernelArm::Scalar),
    }
}

/// The currently selected arm (detecting and caching on first call).
#[must_use]
pub fn arm() -> KernelArm {
    match ARM.load(Ordering::Relaxed) {
        ARM_UNSET => {
            // Benign race: concurrent first calls compute the same value.
            let arm = initial_arm();
            ARM.store(encode(arm), Ordering::Relaxed);
            arm
        }
        code => decode(code),
    }
}

/// The selected arm's stable name (`"scalar"` | `"avx2"` | `"neon"`).
#[must_use]
pub fn arm_name() -> &'static str {
    arm().name()
}

/// Forces the process-wide arm (the CLI `--kernel` hook). `Auto`
/// re-runs detection; `Simd` fails when the CPU offers no SIMD arm.
///
/// # Errors
///
/// Returns a message when `Simd` is requested on a CPU without AVX2/NEON.
pub fn force(choice: KernelChoice) -> Result<KernelArm, String> {
    let arm = match choice {
        KernelChoice::Auto => simd_arm().unwrap_or(KernelArm::Scalar),
        KernelChoice::Scalar => KernelArm::Scalar,
        KernelChoice::Simd => simd_arm()
            .ok_or_else(|| "no SIMD kernel arm on this CPU (need AVX2 or NEON)".to_string())?,
    };
    ARM.store(encode(arm), Ordering::Relaxed);
    Ok(arm)
}

// ---------------------------------------------------------------------------
// Scalar arm (the portable floor; also the tail loop of every SIMD arm).
// ---------------------------------------------------------------------------

/// Scalar AND-popcount: unrolled with four independent accumulators so
/// the popcounts pipeline instead of serializing on one add chain.
/// Slices of unequal length are truncated to the shorter (missing words
/// AND to zero).
#[must_use]
pub fn and_popcount_scalar(a: &[u64], b: &[u64]) -> usize {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    let (mut c0, mut c1, mut c2, mut c3) = (0u64, 0u64, 0u64, 0u64);
    for (wa, wb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        c0 += (wa[0] & wb[0]).count_ones() as u64;
        c1 += (wa[1] & wb[1]).count_ones() as u64;
        c2 += (wa[2] & wb[2]).count_ones() as u64;
        c3 += (wa[3] & wb[3]).count_ones() as u64;
    }
    for (wa, wb) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        c0 += (wa & wb).count_ones() as u64;
    }
    (c0 + c1 + c2 + c3) as usize
}

/// Scalar OR-popcount over the common prefix (same unrolling); the
/// longer slice's tail words OR with implicit zeros, so their popcount
/// is added as-is.
#[must_use]
pub fn or_popcount_scalar(a: &[u64], b: &[u64]) -> usize {
    let n = a.len().min(b.len());
    let mut chunks_a = a[..n].chunks_exact(4);
    let mut chunks_b = b[..n].chunks_exact(4);
    let (mut c0, mut c1, mut c2, mut c3) = (0u64, 0u64, 0u64, 0u64);
    for (wa, wb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        c0 += (wa[0] | wb[0]).count_ones() as u64;
        c1 += (wa[1] | wb[1]).count_ones() as u64;
        c2 += (wa[2] | wb[2]).count_ones() as u64;
        c3 += (wa[3] | wb[3]).count_ones() as u64;
    }
    for (wa, wb) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        c0 += (wa | wb).count_ones() as u64;
    }
    (c0 + c1 + c2 + c3) as usize + tail_popcount(a, b, n)
}

/// Popcount of whichever slice extends past the common prefix length.
fn tail_popcount(a: &[u64], b: &[u64], n: usize) -> usize {
    let tail = if a.len() > n { &a[n..] } else { &b[n..] };
    tail.iter().map(|w| w.count_ones() as usize).sum()
}

// ---------------------------------------------------------------------------
// AVX2 arm (x86-64): Harley–Seal carry-save popcount.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! Harley–Seal AND/OR-popcount and a block-compare sorted-`u64`
    //! merge. Every function here is `unsafe` with
    //! `#[target_feature(enable = "avx2")]`; the module boundary is the
    //! safety contract — callers in the parent module only reach these
    //! after runtime detection reports AVX2.

    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256, _mm256_castsi256_pd,
        _mm256_cmpeq_epi64, _mm256_extract_epi64, _mm256_loadu_si256, _mm256_movemask_pd,
        _mm256_or_si256, _mm256_permute4x64_epi64, _mm256_sad_epu8, _mm256_set1_epi8,
        _mm256_setr_epi8, _mm256_setzero_si256, _mm256_shuffle_epi8, _mm256_slli_epi64,
        _mm256_srli_epi16, _mm256_xor_si256,
    };

    /// Per-lane popcount of a 256-bit vector as four `u64` sums, via the
    /// classic nibble lookup (`vpshufb`) + `vpsadbw` reduction.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcount256(v: __m256i) -> __m256i {
        #[rustfmt::skip]
        let lookup = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low_mask);
        let cnt = _mm256_add_epi8(
            _mm256_shuffle_epi8(lookup, lo),
            _mm256_shuffle_epi8(lookup, hi),
        );
        _mm256_sad_epu8(cnt, _mm256_setzero_si256())
    }

    /// Carry-save full adder: returns `(carry, sum)` of `a + b + c`
    /// per bit — the Harley–Seal building block.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn csa(c: __m256i, a: __m256i, b: __m256i) -> (__m256i, __m256i) {
        let u = _mm256_xor_si256(a, b);
        let carry = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
        (carry, _mm256_xor_si256(u, c))
    }

    /// Horizontal sum of the four `u64` lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum(v: __m256i) -> u64 {
        (_mm256_extract_epi64::<0>(v) as u64)
            .wrapping_add(_mm256_extract_epi64::<1>(v) as u64)
            .wrapping_add(_mm256_extract_epi64::<2>(v) as u64)
            .wrapping_add(_mm256_extract_epi64::<3>(v) as u64)
    }

    /// Loads words `w..w+4` of both slices and ANDs them.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load_and(a: *const u64, b: *const u64, w: usize) -> __m256i {
        // SAFETY contract (callers): `w + 4` words readable at both.
        let va = _mm256_loadu_si256(a.add(w).cast());
        let vb = _mm256_loadu_si256(b.add(w).cast());
        _mm256_and_si256(va, vb)
    }

    /// Loads words `w..w+4` of both slices and ORs them.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load_or(a: *const u64, b: *const u64, w: usize) -> __m256i {
        // SAFETY contract (callers): `w + 4` words readable at both.
        let va = _mm256_loadu_si256(a.add(w).cast());
        let vb = _mm256_loadu_si256(b.add(w).cast());
        _mm256_or_si256(va, vb)
    }

    /// Generates a Harley–Seal popcount over `$load`-combined words:
    /// 16 vectors (64 words) per iteration feed a carry-save adder tree
    /// whose `ones/twos/fours/eights` residues are popcounted once at
    /// the end, so the inner loop runs one `popcount256` per 64 words
    /// instead of 16.
    macro_rules! harley_seal {
        ($name:ident, $load:ident, $scalar_op:tt) => {
            /// # Safety
            ///
            /// Requires AVX2 (checked by the dispatcher) and
            /// `a.len() == b.len()`.
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(a: &[u64], b: &[u64]) -> usize {
                debug_assert_eq!(a.len(), b.len());
                let n = a.len();
                let (ap, bp) = (a.as_ptr(), b.as_ptr());
                let mut total = _mm256_setzero_si256();
                let mut ones = _mm256_setzero_si256();
                let mut twos = _mm256_setzero_si256();
                let mut fours = _mm256_setzero_si256();
                let mut eights = _mm256_setzero_si256();
                let mut i = 0usize;
                while i + 64 <= n {
                    // SAFETY: the loop guard leaves >= 64 readable words
                    // past `i` in both slices, and every load below stays
                    // within `i..i + 64`.
                    let (twos_a, o) = csa(ones, $load(ap, bp, i), $load(ap, bp, i + 4));
                    ones = o;
                    let (twos_b, o) = csa(ones, $load(ap, bp, i + 8), $load(ap, bp, i + 12));
                    ones = o;
                    let (fours_a, t) = csa(twos, twos_a, twos_b);
                    twos = t;
                    let (twos_a, o) = csa(ones, $load(ap, bp, i + 16), $load(ap, bp, i + 20));
                    ones = o;
                    let (twos_b, o) = csa(ones, $load(ap, bp, i + 24), $load(ap, bp, i + 28));
                    ones = o;
                    let (fours_b, t) = csa(twos, twos_a, twos_b);
                    twos = t;
                    let (eights_a, f) = csa(fours, fours_a, fours_b);
                    fours = f;
                    let (twos_a, o) = csa(ones, $load(ap, bp, i + 32), $load(ap, bp, i + 36));
                    ones = o;
                    let (twos_b, o) = csa(ones, $load(ap, bp, i + 40), $load(ap, bp, i + 44));
                    ones = o;
                    let (fours_a, t) = csa(twos, twos_a, twos_b);
                    twos = t;
                    let (twos_a, o) = csa(ones, $load(ap, bp, i + 48), $load(ap, bp, i + 52));
                    ones = o;
                    let (twos_b, o) = csa(ones, $load(ap, bp, i + 56), $load(ap, bp, i + 60));
                    ones = o;
                    let (fours_b, t) = csa(twos, twos_a, twos_b);
                    twos = t;
                    let (eights_b, f) = csa(fours, fours_a, fours_b);
                    fours = f;
                    let (sixteens, e) = csa(eights, eights_a, eights_b);
                    eights = e;
                    total = _mm256_add_epi64(total, popcount256(sixteens));
                    i += 64;
                }
                total = _mm256_slli_epi64::<4>(total);
                total = _mm256_add_epi64(total, _mm256_slli_epi64::<3>(popcount256(eights)));
                total = _mm256_add_epi64(total, _mm256_slli_epi64::<2>(popcount256(fours)));
                total = _mm256_add_epi64(total, _mm256_slli_epi64::<1>(popcount256(twos)));
                total = _mm256_add_epi64(total, popcount256(ones));
                let mut sum = hsum(total);
                // Mid loop: whole vectors that don't fill a 16-vector block.
                let mut vec_total = _mm256_setzero_si256();
                while i + 4 <= n {
                    // SAFETY: guard leaves >= 4 readable words past `i`.
                    vec_total = _mm256_add_epi64(vec_total, popcount256($load(ap, bp, i)));
                    i += 4;
                }
                sum += hsum(vec_total);
                // Scalar tail: at most 3 words.
                for w in i..n {
                    sum += (a[w] $scalar_op b[w]).count_ones() as u64;
                }
                sum as usize
            }
        };
    }

    harley_seal!(and_popcount, load_and, &);
    harley_seal!(or_popcount, load_or, |);

    /// Block-compare intersection of two strictly ascending `u64`
    /// slices: compares each 4-lane block of `a` against all four
    /// rotations of the current block of `b`, then advances whichever
    /// block has the smaller maximum (both on a tie). Distinctness
    /// within each slice guarantees each lane matches at most once, so
    /// the OR of the four compare masks counts matches exactly.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (checked by the dispatcher).
    #[target_feature(enable = "avx2")]
    pub unsafe fn intersect_sorted(a: &[u64], b: &[u64]) -> usize {
        let mut count = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i + 4 <= a.len() && j + 4 <= b.len() {
            // SAFETY: the guard leaves >= 4 readable elements past both
            // `i` and `j`.
            let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(j).cast());
            let m0 = _mm256_cmpeq_epi64(va, vb);
            let m1 = _mm256_cmpeq_epi64(va, _mm256_permute4x64_epi64::<0b00_11_10_01>(vb));
            let m2 = _mm256_cmpeq_epi64(va, _mm256_permute4x64_epi64::<0b01_00_11_10>(vb));
            let m3 = _mm256_cmpeq_epi64(va, _mm256_permute4x64_epi64::<0b10_01_00_11>(vb));
            let hits = _mm256_or_si256(_mm256_or_si256(m0, m1), _mm256_or_si256(m2, m3));
            count += (_mm256_movemask_pd(_mm256_castsi256_pd(hits)) as u32).count_ones() as usize;
            let (a_max, b_max) = (a[i + 3], b[j + 3]);
            if a_max <= b_max {
                i += 4;
            }
            if b_max <= a_max {
                j += 4;
            }
        }
        // Scalar merge over the ragged tails.
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }
}

// ---------------------------------------------------------------------------
// NEON arm (aarch64): vcnt popcount. NEON is baseline on aarch64, but the
// functions keep the target_feature annotation so the safety contract
// mirrors the AVX2 arm.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::{
        vaddvq_u8, vandq_u64, vcntq_u8, vld1q_u64, vorrq_u64, vreinterpretq_u8_u64,
    };

    macro_rules! neon_popcount {
        ($name:ident, $combine:ident, $scalar_op:tt) => {
            /// # Safety
            ///
            /// Requires NEON (checked by the dispatcher) and
            /// `a.len() == b.len()`.
            #[target_feature(enable = "neon")]
            pub unsafe fn $name(a: &[u64], b: &[u64]) -> usize {
                debug_assert_eq!(a.len(), b.len());
                let n = a.len();
                let mut acc = 0u64;
                let mut i = 0usize;
                while i + 2 <= n {
                    // SAFETY: the guard leaves >= 2 readable words past `i`.
                    let va = vld1q_u64(a.as_ptr().add(i));
                    let vb = vld1q_u64(b.as_ptr().add(i));
                    let v = $combine(va, vb);
                    // 16 byte-counts of <= 8 each sum to <= 128: fits u8.
                    acc += u64::from(vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(v))));
                    i += 2;
                }
                for w in i..n {
                    acc += (a[w] $scalar_op b[w]).count_ones() as u64;
                }
                acc as usize
            }
        };
    }

    neon_popcount!(and_popcount, vandq_u64, &);
    neon_popcount!(or_popcount, vorrq_u64, |);
}

// ---------------------------------------------------------------------------
// SIMD entry points (compiled per-arch; scalar elsewhere).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
fn simd_and_eq(a: &[u64], b: &[u64]) -> usize {
    // SAFETY: only reached when `simd_arm()` reported AVX2 (the cached
    // arm is Avx2, or the caller checked availability).
    unsafe { avx2::and_popcount(a, b) }
}

#[cfg(target_arch = "aarch64")]
fn simd_and_eq(a: &[u64], b: &[u64]) -> usize {
    // SAFETY: only reached when `simd_arm()` reported NEON.
    unsafe { neon::and_popcount(a, b) }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn simd_and_eq(a: &[u64], b: &[u64]) -> usize {
    and_popcount_scalar(a, b)
}

#[cfg(target_arch = "x86_64")]
fn simd_or_eq(a: &[u64], b: &[u64]) -> usize {
    // SAFETY: only reached when `simd_arm()` reported AVX2.
    unsafe { avx2::or_popcount(a, b) }
}

#[cfg(target_arch = "aarch64")]
fn simd_or_eq(a: &[u64], b: &[u64]) -> usize {
    // SAFETY: only reached when `simd_arm()` reported NEON.
    unsafe { neon::or_popcount(a, b) }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn simd_or_eq(a: &[u64], b: &[u64]) -> usize {
    or_popcount_scalar(a, b)
}

// ---------------------------------------------------------------------------
// Dispatched kernels (the API the rest of the workspace calls).
// ---------------------------------------------------------------------------

/// `|a ∩ b|` over two bitmaps via the selected arm. Unequal lengths
/// truncate to the shorter slice (missing words AND to zero).
#[must_use]
pub fn and_popcount(a: &[u64], b: &[u64]) -> usize {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    match arm() {
        KernelArm::Scalar => and_popcount_scalar(a, b),
        KernelArm::Avx2 | KernelArm::Neon => simd_and_eq(a, b),
    }
}

/// `|a ∪ b|` over two bitmaps via the selected arm. The longer slice's
/// tail (ORed with implicit zeros) contributes its own popcount.
#[must_use]
pub fn or_popcount(a: &[u64], b: &[u64]) -> usize {
    let n = a.len().min(b.len());
    let tail = tail_popcount(a, b, n);
    let common = match arm() {
        KernelArm::Scalar => or_popcount_scalar(&a[..n], &b[..n]),
        KernelArm::Avx2 | KernelArm::Neon => simd_or_eq(&a[..n], &b[..n]),
    };
    common + tail
}

/// Forced-SIMD AND-popcount, or `None` when the CPU has no SIMD arm.
/// Race-free for tests/benches: bypasses (and never mutates) the cached
/// process-wide arm.
#[must_use]
pub fn and_popcount_simd(a: &[u64], b: &[u64]) -> Option<usize> {
    let n = a.len().min(b.len());
    simd_arm().map(|_| simd_and_eq(&a[..n], &b[..n]))
}

/// Forced-SIMD OR-popcount, or `None` when the CPU has no SIMD arm.
#[must_use]
pub fn or_popcount_simd(a: &[u64], b: &[u64]) -> Option<usize> {
    let n = a.len().min(b.len());
    simd_arm().map(|_| simd_or_eq(&a[..n], &b[..n]) + tail_popcount(a, b, n))
}

/// Minimum length of *both* sides before the AVX2 block-compare merge
/// beats the scalar adaptive dispatch on sorted `u64` sets.
const SIMD_MERGE_MIN_LEN: usize = 8;

/// Intersection size of two strictly ascending `u64` slices (K-MH
/// signature overlap) via the selected arm: the AVX2 block-compare
/// merge when both sides are long enough and the skew stays under the
/// galloping cutoff, otherwise the scalar adaptive merge/gallop.
#[must_use]
pub fn intersect_sorted_u64(a: &[u64], b: &[u64]) -> usize {
    let (small, large) = if a.len() <= b.len() {
        (a.len(), b.len())
    } else {
        (b.len(), a.len())
    };
    let simd_fit = small >= SIMD_MERGE_MIN_LEN
        && large / small.max(1) < crate::column::GALLOP_SKEW_CUTOFF
        && arm() == KernelArm::Avx2;
    if simd_fit {
        if let Some(n) = intersect_sorted_u64_simd(a, b) {
            return n;
        }
    }
    intersect_sorted_u64_scalar(a, b)
}

/// Scalar arm of [`intersect_sorted_u64`]: the adaptive merge/gallop.
#[must_use]
pub fn intersect_sorted_u64_scalar(a: &[u64], b: &[u64]) -> usize {
    crate::column::intersection_size_adaptive(a, b)
}

/// Forced-SIMD sorted-`u64` intersection, or `None` when the CPU lacks
/// the AVX2 arm (NEON has no block-compare merge; it reports `None`).
#[must_use]
pub fn intersect_sorted_u64_simd(a: &[u64], b: &[u64]) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    {
        if simd_arm() == Some(KernelArm::Avx2) {
            // SAFETY: AVX2 presence just confirmed by detection.
            return Some(unsafe { avx2::intersect_sorted(a, b) });
        }
    }
    let _ = (a, b);
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift word stream for kernel tests.
    fn words(seed: u64, n: usize) -> Vec<u64> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            })
            .collect()
    }

    #[test]
    fn choice_parses() {
        assert_eq!("auto".parse::<KernelChoice>(), Ok(KernelChoice::Auto));
        assert_eq!("scalar".parse::<KernelChoice>(), Ok(KernelChoice::Scalar));
        assert_eq!("simd".parse::<KernelChoice>(), Ok(KernelChoice::Simd));
        assert!("avx512".parse::<KernelChoice>().is_err());
    }

    #[test]
    fn arm_names_are_stable() {
        assert_eq!(KernelArm::Scalar.name(), "scalar");
        assert_eq!(KernelArm::Avx2.name(), "avx2");
        assert_eq!(KernelArm::Neon.name(), "neon");
        // Whatever is selected, the name round-trips through the cache.
        assert_eq!(arm().name(), arm_name());
    }

    #[test]
    fn simd_matches_scalar_across_lengths() {
        // Cover the scalar tail (0..3), the mid vector loop, and several
        // full 64-word Harley–Seal blocks.
        for n in [0, 1, 3, 4, 7, 63, 64, 65, 127, 128, 200, 512] {
            let a = words(0x9e37_79b9, n);
            let b = words(0x85eb_ca6b, n);
            let want_and = and_popcount_scalar(&a, &b);
            let want_or = or_popcount_scalar(&a, &b);
            if let Some(got) = and_popcount_simd(&a, &b) {
                assert_eq!(got, want_and, "AND n={n}");
            }
            if let Some(got) = or_popcount_simd(&a, &b) {
                assert_eq!(got, want_or, "OR n={n}");
            }
            // The dispatched kernels agree with scalar whatever the arm.
            assert_eq!(and_popcount(&a, &b), want_and);
            assert_eq!(or_popcount(&a, &b), want_or);
        }
    }

    #[test]
    fn unequal_lengths_truncate_and_extend() {
        let a = words(1, 70);
        let b = words(2, 10);
        let and_want = and_popcount_scalar(&a[..10], &b);
        let tail: usize = a[10..].iter().map(|w| w.count_ones() as usize).sum();
        let or_want = or_popcount_scalar(&a[..10], &b) + tail;
        assert_eq!(and_popcount(&a, &b), and_want);
        assert_eq!(and_popcount(&b, &a), and_want);
        assert_eq!(or_popcount(&a, &b), or_want);
        assert_eq!(or_popcount(&b, &a), or_want);
        assert_eq!(or_popcount_scalar(&a, &b), or_want);
        if let Some(got) = or_popcount_simd(&a, &b) {
            assert_eq!(got, or_want);
        }
    }

    #[test]
    fn all_ones_and_all_zero_words_count_exactly() {
        let ones = vec![u64::MAX; 130];
        let zeros = vec![0u64; 130];
        assert_eq!(and_popcount(&ones, &ones), 130 * 64);
        assert_eq!(and_popcount(&ones, &zeros), 0);
        assert_eq!(or_popcount(&ones, &zeros), 130 * 64);
        if let Some(got) = and_popcount_simd(&ones, &ones) {
            assert_eq!(got, 130 * 64);
        }
    }

    fn ascending(seed: u64, n: usize, stride: u64) -> Vec<u64> {
        let mut v = Vec::with_capacity(n);
        let mut x = seed;
        for _ in 0..n {
            x += 1 + (x.wrapping_mul(6_364_136_223_846_793_005) % stride);
            v.push(x);
        }
        v
    }

    #[test]
    fn sorted_merge_simd_matches_scalar() {
        for (na, nb, stride) in [
            (0, 5, 3),
            (8, 8, 2),
            (100, 100, 4),
            (33, 190, 7),
            (64, 64, 1),
        ] {
            let a = ascending(10, na, stride);
            let b = ascending(11, nb, stride);
            let want = intersect_sorted_u64_scalar(&a, &b);
            if let Some(got) = intersect_sorted_u64_simd(&a, &b) {
                assert_eq!(got, want, "na={na} nb={nb} stride={stride}");
            }
            assert_eq!(intersect_sorted_u64(&a, &b), want);
        }
        // Identical slices intersect fully.
        let a = ascending(42, 50, 5);
        assert_eq!(intersect_sorted_u64(&a, &a), 50);
        if let Some(got) = intersect_sorted_u64_simd(&a, &a) {
            assert_eq!(got, 50);
        }
    }

    #[test]
    fn force_controls_the_cached_arm() {
        // Serialized through one test to avoid racing the global cache
        // against other tests (they use the per-arm entry points).
        let detected = force(KernelChoice::Auto).unwrap();
        assert_eq!(detected, simd_arm().unwrap_or(KernelArm::Scalar));
        assert_eq!(force(KernelChoice::Scalar).unwrap(), KernelArm::Scalar);
        assert_eq!(arm(), KernelArm::Scalar);
        let a = words(3, 100);
        let b = words(4, 100);
        assert_eq!(and_popcount(&a, &b), and_popcount_scalar(&a, &b));
        match simd_arm() {
            Some(simd) => {
                assert_eq!(force(KernelChoice::Simd).unwrap(), simd);
                assert_eq!(arm(), simd);
                assert_eq!(and_popcount(&a, &b), and_popcount_scalar(&a, &b));
            }
            None => assert!(force(KernelChoice::Simd).is_err()),
        }
        // Leave the cache on auto for the rest of the process.
        force(KernelChoice::Auto).unwrap();
    }
}
