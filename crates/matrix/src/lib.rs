//! # sfa-matrix — sparse boolean matrix substrate
//!
//! The paper (Cohen et al., ICDE 2000) views the data as an `n × m` 0/1
//! matrix `M`: rows are tuples/baskets/clients, columns are
//! attributes/items/URLs. The matrix is sparse (average 1s per row
//! `r ≪ m`) and, in the setting the paper targets, too large for main
//! memory — algorithms may only *stream* its rows.
//!
//! This crate provides that substrate:
//!
//! * [`column::ColumnSet`] — an exact sparse column (sorted row ids) with
//!   the set operations the paper's definitions are written in terms of:
//!   `|C_i ∩ C_j|`, `|C_i ∪ C_j|`, the Jaccard similarity `S(c_i, c_j)`,
//!   the confidence `Conf(c_i → c_j)`, and the Hamming distance of Lemma 3.
//!   Raw-slice intersections dispatch adaptively (sorted merge, galloping
//!   search, or bitmap popcount — [`column::intersection_size_auto`]).
//! * [`bitmap::BitColumn`] / [`bitmap::BitMatrix`] — per-column `u64`
//!   row-bitmaps with unrolled AND/OR-popcount kernels and a blocked
//!   all-pairs driver; the fast path behind exact verification and the
//!   §5.1 brute-force ground truth.
//! * [`builder::MatrixBuilder`] — validated incremental construction.
//! * [`csc::SparseMatrix`] — column-major storage (fast column access;
//!   used for ground truth, verification bookkeeping and per-column views).
//! * [`csr::RowMajorMatrix`] — row-major storage, the in-memory stand-in
//!   for the disk-resident table; all signature computations scan it
//!   row-by-row through the [`stream::RowStream`] trait.
//! * [`stream::RowStream`] — single-pass row scanning abstraction with an
//!   in-memory and an on-disk (file-backed) implementation, so tests can
//!   prove that phase 1 and phase 3 really are single-pass.
//! * [`io`] — a small text format and a checksummed binary format for
//!   matrices ([`crc32`] holds the in-tree CRC-32 implementation).
//! * [`fault`] — deterministic fault injection ([`fault::FaultyRowStream`])
//!   and bounded-retry recovery ([`fault::RetryingRowStream`]) for testing
//!   and surviving transient IO failures mid-pass.
//! * [`ops`] — transpose, support pruning, row sampling, and the random
//!   row-pairing OR-fold that builds the H-LSH density ladder (§4.2).
//! * [`stats`] — exact all-pairs similarity (the paper's offline
//!   brute-force ground truth), similarity histograms (Fig. 3), density
//!   statistics and the average similarity `S̄` appearing in the §3.1
//!   running-time analyses.
//! * [`triangle`] — the paper's literal dense all-pairs counter
//!   ("counters for all pairs in the main memory", §5.1), as an
//!   alternative exact method for modest column counts.

pub mod bitmap;
pub mod builder;
pub mod column;
pub mod container;
pub mod crc32;
pub mod csc;
pub mod csr;
pub mod error;
pub mod fault;
pub mod io;
pub mod kernel;
pub mod ops;
pub mod stats;
pub mod stream;
pub mod triangle;

pub use bitmap::{BitColumn, BitMatrix};
pub use builder::MatrixBuilder;
pub use column::ColumnSet;
pub use container::{ContainerStats, HybridColumn, HybridColumns};
pub use csc::SparseMatrix;
pub use csr::RowMajorMatrix;
pub use error::{MatrixError, Result};
pub use fault::{FaultConfig, FaultyRowStream, RetryStats, RetryingRowStream};
pub use kernel::{KernelArm, KernelChoice};
pub use stream::{FileRowStream, MemoryRowStream, PassScan, RowStream, ScanCounter};
