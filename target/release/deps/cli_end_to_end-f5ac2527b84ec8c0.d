/root/repo/target/release/deps/cli_end_to_end-f5ac2527b84ec8c0.d: tests/cli_end_to_end.rs

/root/repo/target/release/deps/cli_end_to_end-f5ac2527b84ec8c0: tests/cli_end_to_end.rs

tests/cli_end_to_end.rs:

# env-dep:CARGO_BIN_EXE_sfa=/root/repo/target/release/sfa
