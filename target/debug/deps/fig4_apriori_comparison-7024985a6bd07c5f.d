/root/repo/target/debug/deps/fig4_apriori_comparison-7024985a6bd07c5f.d: crates/experiments/src/bin/fig4_apriori_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_apriori_comparison-7024985a6bd07c5f.rmeta: crates/experiments/src/bin/fig4_apriori_comparison.rs Cargo.toml

crates/experiments/src/bin/fig4_apriori_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
