//! Power-law (Zipf) sampling.
//!
//! Word document-frequencies and web-page popularities are both classically
//! Zipfian; the weblog and news generators draw from this sampler so the
//! resulting column-density distributions have the heavy-tailed sparsity the
//! paper's datasets exhibit ("most of the columns are sparse and have a
//! density less than 0.01 percent", §5).

use rand::Rng;

/// Samples ranks `0..n` with probability proportional to `1 / (rank+1)^s`.
///
/// Uses a precomputed cumulative table and binary search: `O(n)` setup,
/// `O(log n)` per sample, exact distribution.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use sfa_datagen::ZipfSampler;
///
/// let z = ZipfSampler::new(100, 1.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = z.sample(&mut rng);
/// assert!(x < 100);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over ranks `0..n` with exponent `s >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite and non-negative.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s.is_finite() && s >= 0.0, "exponent must be finite, >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the top.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has no ranks (never true post-construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index with cdf > u.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }

    /// Probability mass of `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= len`.
    #[must_use]
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = ZipfSampler::new(50, 1.2);
        let total: f64 = (0..50).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_is_monotone_decreasing() {
        let z = ZipfSampler::new(100, 1.0);
        for r in 1..100 {
            assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-15, "rank {r}");
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12, "rank {r}");
        }
    }

    #[test]
    fn samples_match_head_probability() {
        // With s = 1 over 100 ranks, P(rank 0) = 1/H_100 ≈ 0.1928.
        let z = ZipfSampler::new(100, 1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let n = 20_000;
        let head = (0..n).filter(|_| z.sample(&mut rng) == 0).count();
        let frac = head as f64 / n as f64;
        assert!((frac - z.pmf(0)).abs() < 0.01, "head fraction {frac}");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = ZipfSampler::new(7, 2.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "need at least one rank")]
    fn empty_domain_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
