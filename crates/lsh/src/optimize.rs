//! Input-sensitive parameter optimization (§4.1).
//!
//! "Assume that we are given (an estimate of) the similarity distribution
//! of the data … the problem of estimating optimal parameters turns into
//! the following minimization problem:
//!
//! ```text
//! minimize   l · r
//! subject to Σ_{s_i ≥ s₀} distr(s_i)·(1 − P(s_i)) ≤ n₋
//!        and Σ_{s_i < s₀} distr(s_i)·P(s_i)       ≤ n₊
//! ```
//!
//! … One approach is to solve the minimization problem by iterating on
//! small values of r, finding a lower bound on the value of l by solving
//! the first inequality" — which is exactly what [`optimize_params`] does.
//! The paper reports "the optimal value of r was between 5 and 20" in most
//! experiments.

use sfa_matrix::SparseMatrix;

use crate::filter::p_filter;

/// A binned estimate of the pairwise-similarity distribution `distr(s)`.
///
/// Bin `b` spans `[b/bins, (b+1)/bins)` and holds the number of column
/// pairs in that range. Pairs with similarity 0 need not be counted (LSH
/// admits them with probability 0 anyway, and a nonzero `P(0⁺)` mass is
/// captured by the first bin).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimilarityDistribution {
    counts: Vec<u64>,
}

impl SimilarityDistribution {
    /// Wraps histogram counts.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty.
    #[must_use]
    pub fn from_histogram(counts: Vec<u64>) -> Self {
        assert!(!counts.is_empty(), "need at least one bin");
        Self { counts }
    }

    /// Exact distribution of a (small) matrix.
    #[must_use]
    pub fn from_matrix(matrix: &SparseMatrix, bins: usize) -> Self {
        Self::from_histogram(sfa_matrix::stats::similarity_histogram(matrix, bins))
    }

    /// The paper's practical variant: estimate by sampling a fraction of
    /// columns and computing all pairwise similarities among the sample,
    /// scaling counts back up by `1 / fraction²`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`.
    #[must_use]
    pub fn estimate_by_sampling(
        matrix: &SparseMatrix,
        fraction: f64,
        bins: usize,
        seed: u64,
    ) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "bad sampling fraction");
        let m = matrix.n_cols();
        let take = ((f64::from(m) * fraction).ceil() as usize).clamp(1, m as usize);
        let mut ids: Vec<u32> = (0..m).collect();
        let mut seq = sfa_hash::SeedSequence::new(seed);
        for i in 0..take {
            let j = i + (seq.next_seed() % (m as usize - i) as u64) as usize;
            ids.swap(i, j);
        }
        let mut sample: Vec<u32> = ids[..take].to_vec();
        sample.sort_unstable();
        let sub = sfa_matrix::ops::select_columns(matrix, &sample)
            .expect("sample ids are valid and sorted");
        let hist = sfa_matrix::stats::similarity_histogram(&sub, bins);
        let scale = (f64::from(m) / take as f64).powi(2);
        let counts = hist
            .iter()
            .map(|&c| (c as f64 * scale).round() as u64)
            .collect();
        Self::from_histogram(counts)
    }

    /// Number of bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in bin `b`.
    #[must_use]
    pub fn count(&self, b: usize) -> u64 {
        self.counts[b]
    }

    /// Midpoint similarity of bin `b`.
    #[must_use]
    pub fn midpoint(&self, b: usize) -> f64 {
        (b as f64 + 0.5) / self.bins() as f64
    }

    /// Expected false negatives at threshold `s_star` under filter `P_{r,l}`.
    #[must_use]
    pub fn expected_false_negatives(&self, s_star: f64, r: usize, l: usize) -> f64 {
        (0..self.bins())
            .filter(|&b| self.midpoint(b) >= s_star)
            .map(|b| self.counts[b] as f64 * (1.0 - p_filter(self.midpoint(b), r, l)))
            .sum()
    }

    /// Expected false positives at threshold `s_star` under filter `P_{r,l}`.
    #[must_use]
    pub fn expected_false_positives(&self, s_star: f64, r: usize, l: usize) -> f64 {
        (0..self.bins())
            .filter(|&b| self.midpoint(b) < s_star)
            .map(|b| self.counts[b] as f64 * p_filter(self.midpoint(b), r, l))
            .sum()
    }

    /// Number of pairs at or above `s_star` (by bin midpoint).
    #[must_use]
    pub fn pairs_at_least(&self, s_star: f64) -> u64 {
        (0..self.bins())
            .filter(|&b| self.midpoint(b) >= s_star)
            .map(|b| self.counts[b])
            .sum()
    }
}

/// The optimized `(r, l)` returned by [`optimize_params`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizedParams {
    /// Rows per band.
    pub r: usize,
    /// Number of bands.
    pub l: usize,
}

impl OptimizedParams {
    /// The signature budget `k = r·l` the configuration needs.
    #[must_use]
    pub const fn k(&self) -> usize {
        self.r * self.l
    }
}

/// Solves the §4.1 minimization: the `(r, l)` with minimal `r·l` meeting
/// both the false-negative budget `max_fn` and the false-positive budget
/// `max_fp` at threshold `s_star`, searching `r ∈ [1, r_max]`,
/// `l ∈ [1, l_max]`.
///
/// # Examples
///
/// ```
/// use sfa_lsh::{optimize_params, SimilarityDistribution};
///
/// // A Fig.-3-like distribution: a huge dissimilar mass, a tiny tail.
/// let mut bins = vec![0u64; 10];
/// bins[0] = 1_000_000;
/// bins[8] = 50;
/// let distr = SimilarityDistribution::from_histogram(bins);
/// let p = optimize_params(&distr, 0.7, 1.0, 1_000.0, 20, 1 << 12).unwrap();
/// assert!(distr.expected_false_negatives(0.7, p.r, p.l) <= 1.0);
/// ```
///
/// Returns `None` when no configuration within the search box satisfies
/// both constraints.
#[must_use]
pub fn optimize_params(
    distr: &SimilarityDistribution,
    s_star: f64,
    max_fn: f64,
    max_fp: f64,
    r_max: usize,
    l_max: usize,
) -> Option<OptimizedParams> {
    let mut best: Option<OptimizedParams> = None;
    for r in 1..=r_max {
        // FN decreases monotonically in l: binary-search the minimal l.
        if distr.expected_false_negatives(s_star, r, l_max) > max_fn {
            continue; // even l_max cannot meet the FN budget at this r
        }
        let (mut lo, mut hi) = (1usize, l_max);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if distr.expected_false_negatives(s_star, r, mid) <= max_fn {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let l = lo;
        // FP increases with l, so the minimal l is also the best FP for
        // this r; check the second constraint.
        if distr.expected_false_positives(s_star, r, l) > max_fp {
            continue;
        }
        let cand = OptimizedParams { r, l };
        if best.is_none_or(|b| cand.k() < b.k()) {
            best = Some(cand);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A distribution shaped like Fig. 3: a huge low-similarity mass and a
    /// small high-similarity population.
    fn weblike() -> SimilarityDistribution {
        let mut counts = vec![0u64; 20];
        counts[0] = 1_000_000;
        counts[1] = 120_000;
        counts[2] = 20_000;
        counts[3] = 4_000;
        counts[4] = 800;
        counts[8] = 50;
        counts[13] = 40;
        counts[17] = 60;
        counts[19] = 30;
        SimilarityDistribution::from_histogram(counts)
    }

    #[test]
    fn expectations_are_consistent() {
        let d = weblike();
        // With a step-like filter (huge r·l) FN ≈ 0 at any threshold the
        // filter is centred on.
        let fn_sharp = d.expected_false_negatives(0.5, 10, 100_000);
        assert!(fn_sharp < 1.0, "sharp filter FN = {fn_sharp}");
        // With a useless filter (r=1, l=1): FP is the mass below the
        // threshold weighted by s.
        let fp_weak = d.expected_false_positives(0.5, 1, 1);
        assert!(fp_weak > 10_000.0);
    }

    #[test]
    fn fn_monotone_decreasing_in_l() {
        let d = weblike();
        let mut prev = f64::INFINITY;
        for l in [1, 2, 4, 8, 16, 32] {
            let v = d.expected_false_negatives(0.6, 8, l);
            assert!(v <= prev + 1e-9);
            prev = v;
        }
    }

    #[test]
    fn fp_monotone_increasing_in_l() {
        let d = weblike();
        let mut prev = 0.0;
        for l in [1, 2, 4, 8, 16, 32] {
            let v = d.expected_false_positives(0.6, 8, l);
            assert!(v >= prev - 1e-9);
            prev = v;
        }
    }

    #[test]
    fn optimizer_meets_constraints() {
        let d = weblike();
        let (s_star, max_fn, max_fp) = (0.6, 5.0, 2_000.0);
        let p = optimize_params(&d, s_star, max_fn, max_fp, 30, 1 << 14).expect("feasible");
        assert!(d.expected_false_negatives(s_star, p.r, p.l) <= max_fn);
        assert!(d.expected_false_positives(s_star, p.r, p.l) <= max_fp);
        // Paper: optimal r is typically between 5 and 20 on such data.
        assert!((2..=25).contains(&p.r), "r = {}", p.r);
    }

    #[test]
    fn optimizer_is_minimal_over_grid() {
        let d = weblike();
        let (s_star, max_fn, max_fp) = (0.6, 5.0, 2_000.0);
        let p = optimize_params(&d, s_star, max_fn, max_fp, 12, 256).expect("feasible");
        // Exhaustive check: nothing cheaper in the search box is feasible.
        for r in 1..=12 {
            for l in 1..=256 {
                if r * l < p.k()
                    && d.expected_false_negatives(s_star, r, l) <= max_fn
                    && d.expected_false_positives(s_star, r, l) <= max_fp
                {
                    panic!("optimizer missed cheaper feasible ({r}, {l})");
                }
            }
        }
    }

    #[test]
    fn optimizer_returns_none_when_infeasible() {
        let d = weblike();
        // Impossible: zero false positives AND zero false negatives.
        assert_eq!(optimize_params(&d, 0.6, 0.0, 0.0, 10, 64), None);
    }

    #[test]
    fn tighter_fn_budget_costs_more() {
        let d = weblike();
        let loose = optimize_params(&d, 0.6, 50.0, 5_000.0, 30, 1 << 14).unwrap();
        let tight = optimize_params(&d, 0.6, 0.5, 5_000.0, 30, 1 << 14).unwrap();
        assert!(tight.k() >= loose.k());
    }

    #[test]
    fn sampling_estimator_approximates_exact() {
        let data = sfa_datagen::SyntheticConfig::small(2_000, 5).generate();
        let exact = SimilarityDistribution::from_matrix(&data.matrix, 10);
        let sampled = SimilarityDistribution::estimate_by_sampling(&data.matrix, 0.5, 10, 3);
        // High-similarity mass (the planted pairs) should be the same order
        // of magnitude.
        let hi_exact: u64 = (5..10).map(|b| exact.count(b)).sum();
        let hi_sampled: u64 = (5..10).map(|b| sampled.count(b)).sum();
        assert!(
            hi_sampled <= hi_exact * 8 + 8,
            "sampled {hi_sampled} vs exact {hi_exact}"
        );
    }

    #[test]
    fn pairs_at_least_counts_tail() {
        let d = weblike();
        assert_eq!(d.pairs_at_least(0.85), 90); // bins 17, 19
        assert_eq!(d.pairs_at_least(0.95), 30); // bin 19
    }
}
