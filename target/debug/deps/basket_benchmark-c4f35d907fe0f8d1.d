/root/repo/target/debug/deps/basket_benchmark-c4f35d907fe0f8d1.d: crates/experiments/src/bin/basket_benchmark.rs Cargo.toml

/root/repo/target/debug/deps/libbasket_benchmark-c4f35d907fe0f8d1.rmeta: crates/experiments/src/bin/basket_benchmark.rs Cargo.toml

crates/experiments/src/bin/basket_benchmark.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
