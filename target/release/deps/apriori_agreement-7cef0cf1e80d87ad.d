/root/repo/target/release/deps/apriori_agreement-7cef0cf1e80d87ad.d: tests/apriori_agreement.rs

/root/repo/target/release/deps/apriori_agreement-7cef0cf1e80d87ad: tests/apriori_agreement.rs

tests/apriori_agreement.rs:
