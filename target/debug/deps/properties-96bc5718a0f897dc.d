/root/repo/target/debug/deps/properties-96bc5718a0f897dc.d: crates/hash/tests/properties.rs

/root/repo/target/debug/deps/libproperties-96bc5718a0f897dc.rmeta: crates/hash/tests/properties.rs

crates/hash/tests/properties.rs:
