/root/repo/target/release/deps/sfa_lsh-4e5c501886697105.d: crates/lsh/src/lib.rs crates/lsh/src/filter.rs crates/lsh/src/hamming.rs crates/lsh/src/hlsh.rs crates/lsh/src/mlsh.rs crates/lsh/src/online.rs crates/lsh/src/optimize.rs

/root/repo/target/release/deps/sfa_lsh-4e5c501886697105: crates/lsh/src/lib.rs crates/lsh/src/filter.rs crates/lsh/src/hamming.rs crates/lsh/src/hlsh.rs crates/lsh/src/mlsh.rs crates/lsh/src/online.rs crates/lsh/src/optimize.rs

crates/lsh/src/lib.rs:
crates/lsh/src/filter.rs:
crates/lsh/src/hamming.rs:
crates/lsh/src/hlsh.rs:
crates/lsh/src/mlsh.rs:
crates/lsh/src/online.rs:
crates/lsh/src/optimize.rs:
