/root/repo/target/debug/deps/boolean_extensions-7704178a01756a9f.d: crates/experiments/src/bin/boolean_extensions.rs Cargo.toml

/root/repo/target/debug/deps/libboolean_extensions-7704178a01756a9f.rmeta: crates/experiments/src/bin/boolean_extensions.rs Cargo.toml

crates/experiments/src/bin/boolean_extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
