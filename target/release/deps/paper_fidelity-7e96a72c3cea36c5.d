/root/repo/target/release/deps/paper_fidelity-7e96a72c3cea36c5.d: tests/paper_fidelity.rs

/root/repo/target/release/deps/paper_fidelity-7e96a72c3cea36c5: tests/paper_fidelity.rs

tests/paper_fidelity.rs:
