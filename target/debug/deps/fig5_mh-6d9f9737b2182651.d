/root/repo/target/debug/deps/fig5_mh-6d9f9737b2182651.d: crates/experiments/src/bin/fig5_mh.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_mh-6d9f9737b2182651.rmeta: crates/experiments/src/bin/fig5_mh.rs Cargo.toml

crates/experiments/src/bin/fig5_mh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
