/root/repo/target/debug/deps/fig3_similarity_distribution-1496f548e39ba5d8.d: crates/experiments/src/bin/fig3_similarity_distribution.rs

/root/repo/target/debug/deps/fig3_similarity_distribution-1496f548e39ba5d8: crates/experiments/src/bin/fig3_similarity_distribution.rs

crates/experiments/src/bin/fig3_similarity_distribution.rs:
