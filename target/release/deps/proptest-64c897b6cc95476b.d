/root/repo/target/release/deps/proptest-64c897b6cc95476b.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

/root/repo/target/release/deps/proptest-64c897b6cc95476b: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
