/root/repo/target/debug/deps/basket_benchmark-9c2b2e026c4a3a84.d: crates/experiments/src/bin/basket_benchmark.rs Cargo.toml

/root/repo/target/debug/deps/libbasket_benchmark-9c2b2e026c4a3a84.rmeta: crates/experiments/src/bin/basket_benchmark.rs Cargo.toml

crates/experiments/src/bin/basket_benchmark.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
