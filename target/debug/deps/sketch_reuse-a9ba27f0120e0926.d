/root/repo/target/debug/deps/sketch_reuse-a9ba27f0120e0926.d: tests/sketch_reuse.rs

/root/repo/target/debug/deps/libsketch_reuse-a9ba27f0120e0926.rmeta: tests/sketch_reuse.rs

tests/sketch_reuse.rs:
