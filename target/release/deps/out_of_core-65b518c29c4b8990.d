/root/repo/target/release/deps/out_of_core-65b518c29c4b8990.d: tests/out_of_core.rs

/root/repo/target/release/deps/out_of_core-65b518c29c4b8990: tests/out_of_core.rs

tests/out_of_core.rs:
