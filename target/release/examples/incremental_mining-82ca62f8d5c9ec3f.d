/root/repo/target/release/examples/incremental_mining-82ca62f8d5c9ec3f.d: examples/incremental_mining.rs

/root/repo/target/release/examples/incremental_mining-82ca62f8d5c9ec3f: examples/incremental_mining.rs

examples/incremental_mining.rs:
