//! # sfa-hash — hashing substrate for support-free association mining
//!
//! This crate provides the hashing machinery that the min-hashing and
//! locality-sensitive hashing schemes of Cohen et al. (ICDE 2000) are built
//! on. Everything here is implemented from scratch:
//!
//! * [`mix`] — stateless 64/32-bit mixing finalizers (splitmix64 and the
//!   MurmurHash3 finalizers) used as building blocks everywhere else.
//! * [`family`] — seedable families of independent hash functions over row
//!   identifiers. A `k`-member family defines `k` implicit random row
//!   permutations, which is exactly how the MH scheme avoids materializing
//!   permutations (paper, §3).
//! * [`tabulation`] — simple tabulation hashing (3-independent), available
//!   as a drop-in replacement for the mixing family when stronger
//!   independence guarantees are wanted.
//! * [`topk`] — a bounded bottom-k tracker (max-heap + membership set) used
//!   by the K-MH scheme to retain the `k` smallest row hashes per column
//!   in `O(log k)` per accepted update (paper, §3.2).
//! * [`bucket`] — hash-count machinery: bucket tables keyed by hash
//!   values and reusable sparse pair counters, implementing the paper's
//!   "remember and reinitialize only counters that were incremented"
//!   trick (§3.1).
//! * [`rng`] — deterministic seed derivation so that every experiment in
//!   the reproduction is replayable from a single `u64` seed.

pub mod bucket;
pub mod family;
pub mod mix;
pub mod rng;
pub mod tabulation;
pub mod topk;

pub use bucket::{
    add_hist, count_sorted_runs, default_shards, merge_sharded, BucketTable, BudgetedPairCounter,
    CounterTable, FastHashMap, FastHashSet, FxBuildHasher, PairCounter, PairShard,
    ShardPassOutcome, ShardedPairCounter, SparseCounters,
};
pub use family::{HashFamily, MultiplyShiftFamily, RowHasher};
pub use mix::{fmix32, fmix64, hash64_with_seed, splitmix64};
pub use rng::SeedSequence;
pub use tabulation::TabulationHasher;
pub use topk::BottomK;
