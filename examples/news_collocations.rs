//! Text-mining scenario: low-support collocations and word clusters.
//!
//! The paper's §2 motivation: pairs like (Dalai, Lama) appear in a handful
//! of articles yet always together. This example mines them, extracts the
//! word cluster by single-link closure over the similar-pair graph, and
//! then derives directed high-confidence rules (§6).
//!
//! ```sh
//! cargo run --release --example news_collocations
//! ```

use sfa::core::confidence::mine_confidence_rules;
use sfa::core::{Pipeline, PipelineConfig, Scheme};
use sfa::datagen::NewsConfig;
use sfa::matrix::MemoryRowStream;

fn main() {
    let data = NewsConfig::small(11).generate();
    let rows = data.matrix.transpose();
    println!(
        "news matrix: {} documents × {} words",
        rows.n_rows(),
        rows.n_cols()
    );

    // Phase A: similar pairs at s* = 0.7 with K-MH (cheap on sparse text).
    let config = PipelineConfig::new(Scheme::Kmh { k: 50, delta: 0.2 }, 0.7, 11);
    let result = Pipeline::new(config)
        .run(&mut MemoryRowStream::new(&rows))
        .expect("in-memory run");
    let pairs = result.similar_pairs();
    println!("\nsimilar word pairs (S ≥ 0.7):");
    for p in &pairs {
        println!(
            "  ({}, {})  S = {:.2}, appears in {} docs",
            data.word_label(p.i),
            data.word_label(p.j),
            p.similarity,
            p.intersection
        );
    }

    // Phase B: cluster extraction — dense clusters of the pair graph
    // (the paper: "we also get clusters of words … for which most of the
    // pairs in the group have high similarity").
    let edges: Vec<(u32, u32)> = pairs.iter().map(|p| (p.i, p.j)).collect();
    let clusters = sfa::core::cluster::dense_clusters(rows.n_cols(), &edges, 3, 0.6);
    println!("\nword clusters (≥ 3 words, ≥ 60% of pairs similar):");
    for members in &clusters {
        let labels: Vec<String> = members.iter().map(|&w| data.word_label(w)).collect();
        println!("  {{{}}}", labels.join(", "));
    }
    assert!(!clusters.is_empty(), "the planted cluster should emerge");

    // Phase C: directed high-confidence rules.
    let rules = mine_confidence_rules(&mut MemoryRowStream::new(&rows), 200, 13, 0.9, 0.2)
        .expect("in-memory run");
    println!("\nhigh-confidence rules (conf ≥ 0.9), first 10:");
    for r in rules.iter().take(10) {
        println!(
            "  {} => {}  (conf {:.2}, support {})",
            data.word_label(r.antecedent),
            data.word_label(r.consequent),
            r.confidence,
            r.support
        );
    }
    assert!(!rules.is_empty());
}
