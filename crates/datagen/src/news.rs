//! Reuters-like word × document matrix.
//!
//! The paper's motivating dataset (§2, Fig. 1) is a corpus of news articles
//! in which the interesting word pairs — (Dalai, Lama), (Beluga caviar,
//! Ketel vodka) — have *very low support* but near-1 confidence, while the
//! frequent words (which a priori can mine) are uninteresting.
//!
//! This generator rebuilds those statistics:
//!
//! * background words drawn from a Zipfian vocabulary — the head gives
//!   high-support columns, the tail extreme sparsity;
//! * planted **collocations**: pairs of rare words that, when they occur,
//!   almost always occur together (the Fig. 1 pairs), labeled after the
//!   paper's own examples;
//! * one planted **cluster** of words that co-occur as a clique (the
//!   paper's `(chess, Timman, Karpov, Soviet, Ivanchuk, Polger)` example).

use rand::{Rng, SeedableRng};

use sfa_matrix::{MatrixBuilder, SparseMatrix};

use crate::zipf::ZipfSampler;

/// The paper's Fig. 1 example pairs, used to label planted collocations.
pub const FIG1_PAIR_NAMES: [(&str, &str); 17] = [
    ("Dalai", "Lama"),
    ("Meryl", "Streep"),
    ("Bertolt", "Brecht"),
    ("Buenos", "Aires"),
    ("Darth", "Vader"),
    ("pneumocystis", "carinii"),
    ("meseo", "oceania"),
    ("fibrosis", "cystic"),
    ("avant", "garde"),
    ("mache", "papier"),
    ("cosa", "nostra"),
    ("hors", "oeuvres"),
    ("presse", "agence"),
    ("encyclopedia", "Britannica"),
    ("Salman", "Satanic"),
    ("Mardi", "Gras"),
    ("emperor", "Hirohito"),
];

/// The paper's example word cluster (a chess event).
pub const FIG1_CLUSTER_NAMES: [&str; 6] =
    ["chess", "Timman", "Karpov", "Soviet", "Ivanchuk", "Polger"];

/// Configuration for the news-corpus generator.
#[derive(Debug, Clone)]
pub struct NewsConfig {
    /// Number of documents (rows).
    pub n_docs: u32,
    /// Background vocabulary size (columns `0..n_background`).
    pub n_background: u32,
    /// Mean background words per document (geometric, ≥ 1).
    pub mean_doc_len: f64,
    /// Zipf exponent of word frequency.
    pub zipf_exponent: f64,
    /// Number of planted collocation pairs.
    pub n_collocations: usize,
    /// Documents containing each collocation (its support count).
    pub collocation_support: u32,
    /// Probability that both words of a collocation appear together in one
    /// of its documents (otherwise only one does).
    pub co_occurrence_prob: f64,
    /// Size of the planted cluster (0 disables it).
    pub cluster_size: usize,
    /// Documents containing the cluster.
    pub cluster_support: u32,
    /// Root seed.
    pub seed: u64,
}

impl NewsConfig {
    /// Paper-flavoured preset: ≈ 20 000 docs, 15 000 background words,
    /// 17 collocations (one per Fig. 1 pair) and the 6-word cluster.
    #[must_use]
    pub fn paper_scale(seed: u64) -> Self {
        Self {
            n_docs: 20_000,
            n_background: 15_000,
            mean_doc_len: 60.0,
            zipf_exponent: 1.1,
            n_collocations: FIG1_PAIR_NAMES.len(),
            collocation_support: 30,
            co_occurrence_prob: 0.95,
            cluster_size: FIG1_CLUSTER_NAMES.len(),
            cluster_support: 25,
            seed,
        }
    }

    /// Small preset for tests.
    #[must_use]
    pub fn small(seed: u64) -> Self {
        Self {
            n_docs: 3_000,
            n_background: 2_000,
            mean_doc_len: 25.0,
            zipf_exponent: 1.1,
            n_collocations: 8,
            collocation_support: 20,
            co_occurrence_prob: 0.95,
            cluster_size: 5,
            cluster_support: 15,
            seed,
        }
    }
}

/// The generated news dataset.
#[derive(Debug, Clone)]
pub struct NewsData {
    /// Word columns × document rows, column-major.
    pub matrix: SparseMatrix,
    /// Column-id pairs of the planted collocations (`i < j`).
    pub collocations: Vec<(u32, u32)>,
    /// Column ids of the planted cluster.
    pub cluster: Vec<u32>,
    /// Number of background columns (planted words have ids
    /// `n_background ..`).
    pub n_background: u32,
}

impl NewsData {
    /// Human-readable label for a column, using the paper's Fig. 1 names
    /// for planted words.
    #[must_use]
    pub fn word_label(&self, col: u32) -> String {
        if col < self.n_background {
            return format!("w{col}");
        }
        // Planted words: collocation pairs come first, then the cluster.
        let offset = (col - self.n_background) as usize;
        let n_pair_words = 2 * self.collocations.len();
        if offset < n_pair_words {
            let pair = offset / 2;
            let names = FIG1_PAIR_NAMES[pair % FIG1_PAIR_NAMES.len()];
            let name = if offset.is_multiple_of(2) {
                names.0
            } else {
                names.1
            };
            if pair < FIG1_PAIR_NAMES.len() {
                name.to_string()
            } else {
                format!("{name}#{pair}")
            }
        } else {
            let idx = offset - n_pair_words;
            FIG1_CLUSTER_NAMES
                .get(idx)
                .map_or_else(|| format!("cluster{idx}"), |s| (*s).to_string())
        }
    }
}

impl NewsConfig {
    /// Generates the dataset.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configuration.
    #[must_use]
    pub fn generate(&self) -> NewsData {
        assert!(self.n_docs > 0 && self.n_background > 0, "empty config");
        assert!(
            (0.0..=1.0).contains(&self.co_occurrence_prob),
            "bad co-occurrence probability"
        );
        assert!(self.mean_doc_len >= 1.0, "documents must be non-empty");
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);

        let n_planted = (2 * self.n_collocations + self.cluster_size) as u32;
        let n_cols = self.n_background + n_planted;
        let zipf = ZipfSampler::new(self.n_background as usize, self.zipf_exponent);
        let stop_prob = 1.0 / self.mean_doc_len;

        let mut builder = MatrixBuilder::with_capacity(
            self.n_docs,
            n_cols,
            (f64::from(self.n_docs) * self.mean_doc_len) as usize,
        );

        // Background text.
        for doc in 0..self.n_docs {
            let mut len = 1;
            while rng.gen::<f64>() > stop_prob && len < 2_000 {
                len += 1;
            }
            for _ in 0..len {
                let w = zipf.sample(&mut rng) as u32;
                builder.add_entry(doc, w).expect("word id in range");
            }
        }

        // Collocations.
        let mut collocations = Vec::with_capacity(self.n_collocations);
        for p in 0..self.n_collocations {
            let wa = self.n_background + 2 * p as u32;
            let wb = wa + 1;
            let docs = crate::planted::sample_rows(
                &mut rng,
                self.n_docs,
                self.collocation_support as usize,
            );
            for &d in &docs {
                if rng.gen::<f64>() < self.co_occurrence_prob {
                    builder.add_entry(d, wa).expect("in range");
                    builder.add_entry(d, wb).expect("in range");
                } else if rng.gen::<bool>() {
                    builder.add_entry(d, wa).expect("in range");
                } else {
                    builder.add_entry(d, wb).expect("in range");
                }
            }
            collocations.push((wa, wb));
        }

        // Cluster: each cluster word appears in each cluster doc with high
        // probability, so most pairs in the clique are highly similar.
        let cluster: Vec<u32> = (0..self.cluster_size)
            .map(|i| self.n_background + 2 * self.n_collocations as u32 + i as u32)
            .collect();
        if !cluster.is_empty() {
            let docs =
                crate::planted::sample_rows(&mut rng, self.n_docs, self.cluster_support as usize);
            for &d in &docs {
                for &w in &cluster {
                    if rng.gen::<f64>() < 0.9 {
                        builder.add_entry(d, w).expect("in range");
                    }
                }
            }
        }

        NewsData {
            matrix: builder.build_csc(),
            collocations,
            cluster,
            n_background: self.n_background,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_config() {
        let cfg = NewsConfig::small(1);
        let data = cfg.generate();
        assert_eq!(data.matrix.n_rows(), cfg.n_docs);
        assert_eq!(
            data.matrix.n_cols(),
            cfg.n_background + 2 * cfg.n_collocations as u32 + cfg.cluster_size as u32
        );
        assert_eq!(data.collocations.len(), cfg.n_collocations);
        assert_eq!(data.cluster.len(), cfg.cluster_size);
    }

    #[test]
    fn collocations_are_similar_but_low_support() {
        let cfg = NewsConfig::small(2);
        let data = cfg.generate();
        for &(a, b) in &data.collocations {
            let s = data.matrix.similarity(a, b);
            assert!(s > 0.7, "collocation ({a}, {b}) similarity {s}");
            let support = data.matrix.column_count(a);
            assert!(
                support <= cfg.collocation_support as usize,
                "support {support} too high"
            );
        }
    }

    #[test]
    fn cluster_pairs_are_similar() {
        let data = NewsConfig::small(3).generate();
        let mut similar = 0;
        let mut total = 0;
        for (x, &a) in data.cluster.iter().enumerate() {
            for &b in &data.cluster[x + 1..] {
                total += 1;
                if data.matrix.similarity(a, b) > 0.6 {
                    similar += 1;
                }
            }
        }
        assert!(
            similar * 10 >= total * 8,
            "only {similar}/{total} cluster pairs similar"
        );
    }

    #[test]
    fn head_words_have_high_support() {
        let cfg = NewsConfig::small(4);
        let data = cfg.generate();
        // The most frequent background word should appear in a large
        // fraction of documents — that's what a priori needs.
        let max_support = (0..cfg.n_background)
            .map(|j| data.matrix.column_count(j))
            .max()
            .unwrap();
        assert!(
            max_support > cfg.n_docs as usize / 10,
            "head word support only {max_support}"
        );
    }

    #[test]
    fn tail_is_sparse() {
        let cfg = NewsConfig::small(5);
        let data = cfg.generate();
        let sparse_cols = (0..cfg.n_background)
            .filter(|&j| data.matrix.column_count(j) < 10)
            .count();
        assert!(
            sparse_cols > cfg.n_background as usize / 2,
            "only {sparse_cols} sparse columns"
        );
    }

    #[test]
    fn labels_use_paper_names() {
        let data = NewsConfig::small(6).generate();
        let (a, b) = data.collocations[0];
        assert_eq!(data.word_label(a), "Dalai");
        assert_eq!(data.word_label(b), "Lama");
        assert_eq!(data.word_label(0), "w0");
        assert_eq!(data.word_label(data.cluster[0]), "chess");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = NewsConfig::small(7).generate();
        let b = NewsConfig::small(7).generate();
        assert_eq!(a.matrix, b.matrix);
    }
}
