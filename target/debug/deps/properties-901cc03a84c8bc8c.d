/root/repo/target/debug/deps/properties-901cc03a84c8bc8c.d: tests/properties.rs

/root/repo/target/debug/deps/libproperties-901cc03a84c8bc8c.rmeta: tests/properties.rs

tests/properties.rs:
