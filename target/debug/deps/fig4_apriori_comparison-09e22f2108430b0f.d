/root/repo/target/debug/deps/fig4_apriori_comparison-09e22f2108430b0f.d: crates/experiments/src/bin/fig4_apriori_comparison.rs

/root/repo/target/debug/deps/libfig4_apriori_comparison-09e22f2108430b0f.rmeta: crates/experiments/src/bin/fig4_apriori_comparison.rs

crates/experiments/src/bin/fig4_apriori_comparison.rs:
