/root/repo/target/release/deps/end_to_end-b21375bd4e94d287.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-b21375bd4e94d287: tests/end_to_end.rs

tests/end_to_end.rs:
