//! The TCP server: admission control, worker pool, drain coordination.
//!
//! ```text
//!            accept thread                workers (sfa-par pool)
//!  listener ──accept──► bounded channel ──recv──► handle_conn ──► replies
//!     │           │ full → OVERLOADED + close          │
//!     │ cancel    ▼                                    ▼
//!     └──────► draining: stop accepting, drop sender,  finish current
//!              set drain deadline                      request, shed rest
//! ```
//!
//! **Admission control.** Accepted connections enter a bounded
//! [`sync_channel`]; when it is full the connection is refused with a
//! single `OVERLOADED` line and closed — explicit shedding instead of an
//! unbounded backlog. In-flight work is capped by the worker count (each
//! worker owns at most one connection at a time).
//!
//! **Timeouts.** Every socket read and write carries the request
//! timeout, so a slow-loris client or an unread reply can pin a worker
//! for at most one timeout. A request that cannot be answered within the
//! timeout is dropped and counted `timed_out`.
//!
//! **Drain.** When the [`CancelToken`] fires (SIGTERM, `--deadline-secs`,
//! or a test's explicit cancel), the accept thread stops accepting,
//! records the drain deadline, and closes the channel. Workers finish the
//! request they are on, shed everything still queued, and exit; the run
//! epilogue flushes acknowledged-but-unpersisted ingests through the
//! durable WAL. A second signal during the drain forces an immediate
//! `_exit` (see [`sfa_core::shutdown::FORCED_SHUTDOWN_EXIT_CODE`]).
//!
//! [`sync_channel`]: std::sync::mpsc::sync_channel

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sfa_core::shutdown::CancelToken;
use sfa_core::streaming::StreamingMiner;
use sfa_core::ServingMetrics;
use sfa_matrix::{Result, RowMajorMatrix};
use sfa_par::ThreadPool;

use crate::protocol::{fmt_sim, parse_request, ParseError, Request, MAX_LINE_BYTES};
use crate::snapshot::{Snapshot, SnapshotStore};
use crate::stats::ServerStats;
use crate::wal::IngestLog;

/// Everything `sfa serve` can be told. Defaults are production-shaped;
/// tests shrink the timeouts.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 asks the OS for an ephemeral port.
    pub addr: String,
    /// Worker threads — the in-flight cap (0 = auto-size).
    pub threads: usize,
    /// Accepted connections that may wait for a worker before the gate
    /// sheds with `OVERLOADED`.
    pub queue_depth: usize,
    /// Per-request budget, doubling as the socket read/write timeout.
    pub request_timeout: Duration,
    /// Budget for the graceful drain once cancellation fires.
    pub drain: Duration,
    /// Serving threshold: `PAIRS` floor and the snapshot mining `s*`.
    pub s_star: f64,
    /// Candidate-generation slack below `s*` (the paper's `delta`).
    pub delta: f64,
    /// Sketch size `k` for the snapshot miner.
    pub k: usize,
    /// Sketch seed.
    pub seed: u64,
    /// Directory for the durable ingest log; `None` serves memory-only
    /// (acknowledged ingests then survive swaps but not restarts).
    pub state_dir: Option<PathBuf>,
    /// Test hook: artificial pause inserted into the drain epilogue so a
    /// second signal can be delivered deterministically.
    pub drain_hold: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            threads: 0,
            queue_depth: 64,
            request_timeout: Duration::from_millis(2_000),
            drain: Duration::from_secs(5),
            s_star: 0.5,
            delta: 0.2,
            k: 128,
            seed: 1,
            state_dir: None,
            drain_hold: Duration::ZERO,
        }
    }
}

/// Acknowledged ingest history and how much of it has been persisted.
#[derive(Debug, Default)]
struct IngestState {
    rows: Vec<Vec<u32>>,
    persisted: usize,
}

/// A bound, loaded, ready-to-run server.
#[derive(Debug)]
pub struct Server {
    config: ServerConfig,
    listener: TcpListener,
    store: SnapshotStore,
    stats: ServerStats,
    base: Vec<Vec<u32>>,
    ingest: Mutex<IngestState>,
    /// The live sketch across epochs: rebuilds fold only newly ingested
    /// rows into it (`O(Δ·k)`) instead of re-sketching the full table.
    /// Only the rebuild loop mutates it; the mutex is for interior
    /// mutability behind `&self`.
    miner: Mutex<StreamingMiner>,
    wal: Option<IngestLog>,
    inflight: AtomicU64,
}

/// Shared worker context (one per [`Server::run`] invocation).
struct Ctx<'a> {
    server: &'a Server,
    draining: &'a AtomicBool,
    drain_deadline: &'a Mutex<Option<Instant>>,
}

impl Ctx<'_> {
    fn drained_out(&self) -> bool {
        self.drain_deadline
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .is_some_and(|d| Instant::now() >= d)
    }
}

/// How one connection loop iteration obtained (or failed to obtain) a
/// complete request line.
enum LineOutcome {
    /// A complete line (newline stripped).
    Line(Vec<u8>),
    /// Clean or dirty disconnect — close quietly, nothing to account.
    Closed,
    /// Read timeout with an empty buffer: idle keep-alive, close quietly.
    Idle,
    /// Read timeout mid-request (slow-loris): accounted as timed out.
    Stalled,
    /// The line outgrew [`MAX_LINE_BYTES`]: answer `ERR` and close.
    TooLong,
}

impl Server {
    /// Binds the listener and builds the startup snapshot from the base
    /// table plus any rows replayed from the state directory's ingest
    /// log.
    ///
    /// # Errors
    ///
    /// Bind failures, a corrupt ingest log, or snapshot construction
    /// errors.
    pub fn bind(config: ServerConfig, base: &RowMajorMatrix) -> Result<Self> {
        let n_cols = base.n_cols();
        let wal = match &config.state_dir {
            Some(dir) => Some(IngestLog::open(dir, n_cols)?),
            None => None,
        };
        let replayed = match &wal {
            Some(log) => log.replay()?,
            None => Vec::new(),
        };
        let base_rows: Vec<Vec<u32>> = base.rows().map(|(_, cols)| cols.to_vec()).collect();
        let mut all = base_rows.clone();
        all.extend(replayed.iter().cloned());
        let miner = StreamingMiner::from_rows(n_cols, config.k, config.seed, &all);
        let snapshot = Snapshot::build_from_miner(1, &miner, config.s_star, config.delta)?;
        let listener = TcpListener::bind(&config.addr)?;
        let persisted = replayed.len();
        Ok(Self {
            config,
            listener,
            store: SnapshotStore::new(snapshot),
            stats: ServerStats::default(),
            base: base_rows,
            ingest: Mutex::new(IngestState {
                rows: replayed,
                persisted,
            }),
            miner: Mutex::new(miner),
            wal,
            inflight: AtomicU64::new(0),
        })
    }

    /// The address actually bound (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the OS lookup failure.
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Serves until `cancel` fires, then drains gracefully and returns
    /// the session's metrics. Callers map a canceled run to the
    /// documented resumable exit code 3.
    ///
    /// # Errors
    ///
    /// Only epilogue persistence failures — serving errors are absorbed
    /// per-connection, and the drain itself is infallible.
    pub fn run(&self, cancel: &CancelToken) -> Result<ServingMetrics> {
        let start = Instant::now();
        let draining = AtomicBool::new(false);
        let drain_deadline: Mutex<Option<Instant>> = Mutex::new(None);
        let stop_rebuild = AtomicBool::new(false);
        let ctx = Ctx {
            server: self,
            draining: &draining,
            drain_deadline: &drain_deadline,
        };
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(self.config.queue_depth.max(1));
        let rx = Mutex::new(rx);
        let pool = ThreadPool::new(self.config.threads);
        std::thread::scope(|s| {
            s.spawn(|| self.rebuild_loop(&stop_rebuild));
            // The accept thread owns the sender: when it exits, the
            // channel closes and the workers drain out.
            s.spawn(|| self.accept_loop(tx, cancel, &ctx));
            pool.run(|_| worker_loop(&rx, &ctx));
            stop_rebuild.store(true, Ordering::SeqCst);
        });
        // Test hook: linger in the drain so a second signal has a window
        // to land (the handler `_exit`s, so this needs no polling).
        let hold_until = Instant::now() + self.config.drain_hold;
        while Instant::now() < hold_until {
            std::thread::sleep(Duration::from_millis(10));
        }
        self.flush_ingests()?;
        Ok(self.stats.to_metrics(start.elapsed()))
    }

    /// Durably persists any acknowledged-but-unpersisted ingest rows.
    fn flush_ingests(&self) -> Result<()> {
        let Some(wal) = &self.wal else {
            return Ok(());
        };
        let pending: Option<Vec<Vec<u32>>> = {
            let st = lock_ingest(&self.ingest);
            (st.persisted < st.rows.len()).then(|| st.rows.clone())
        };
        if let Some(rows) = pending {
            wal.flush(&rows)?;
            let mut st = lock_ingest(&self.ingest);
            st.persisted = st.persisted.max(rows.len());
        }
        Ok(())
    }

    /// Accepts connections until cancellation, applying the admission
    /// gate; on cancel flips the drain state and closes the channel by
    /// dropping its sender clone.
    fn accept_loop(&self, tx: SyncSender<TcpStream>, cancel: &CancelToken, ctx: &Ctx<'_>) {
        self.listener
            .set_nonblocking(true)
            .expect("listener nonblocking");
        // The accept loop is the serve-side hot poll: the throttled view
        // keeps `--deadline-secs` support off the per-iteration clock.
        let mut cancel = cancel.throttled(sfa_core::shutdown::CANCEL_POLL_STRIDE);
        loop {
            if cancel.is_canceled() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => self.shed_connection(stream),
                    Err(TrySendError::Disconnected(_)) => break,
                },
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::Interrupted =>
                {
                    std::thread::sleep(Duration::from_millis(2));
                }
                // Transient accept failures (EMFILE, aborted handshake):
                // back off and keep serving.
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        ctx.draining.store(true, Ordering::SeqCst);
        *ctx.drain_deadline
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) =
            Some(Instant::now() + self.config.drain);
        // Sender drops here; workers observe the closed channel once the
        // queue is empty.
    }

    /// Refuses one connection at the gate: one `OVERLOADED` line, then
    /// close. Counts as one accepted + shed request.
    fn shed_connection(&self, stream: TcpStream) {
        self.stats.admit();
        self.stats.shed();
        let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
        let mut stream = stream;
        let _ = stream.write_all(b"OVERLOADED\n");
    }

    /// Off-hot-path snapshot rebuilds: persist new ingests, fold them
    /// into the live sketch, rebuild, swap. Runs until told to stop;
    /// failures are logged and retried on the next tick (the in-memory
    /// state is never lost by a failed flush — the drain epilogue
    /// retries once more).
    ///
    /// The rebuild is *incremental*: only rows not yet in the live
    /// [`StreamingMiner`] are pushed (`O(Δ·k)` sketch work for a
    /// Δ-row ingest), and because the bottom-k fold is order-insensitive
    /// the swapped-in epoch is byte-identical to a cold build over the
    /// full row set. Already-folded rows stay folded across a failed
    /// flush or build — the fold is idempotent per row, keyed on the
    /// miner's own row count.
    fn rebuild_loop(&self, stop: &AtomicBool) {
        let mut built_rows = {
            let st = lock_ingest(&self.ingest);
            self.base.len() + st.rows.len()
        };
        let mut epoch = 1u64;
        while !stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(15));
            let ingested: Vec<Vec<u32>> = {
                let st = lock_ingest(&self.ingest);
                if self.base.len() + st.rows.len() == built_rows {
                    continue;
                }
                st.rows.clone()
            };
            // Persist before publishing: a swapped-in epoch must never
            // contain rows a crash could lose.
            if let Some(wal) = &self.wal {
                if let Err(e) = wal.flush(&ingested) {
                    eprintln!("sfa serve: ingest flush failed (will retry): {e}");
                    continue;
                }
                let mut st = lock_ingest(&self.ingest);
                st.persisted = st.persisted.max(ingested.len());
            }
            epoch += 1;
            let built = {
                // Only the rebuild loop takes this lock after startup,
                // so holding it across the build contends with no one.
                let mut miner = lock_miner(&self.miner);
                let folded = miner.n_rows() as usize - self.base.len();
                for row in &ingested[folded..] {
                    miner.push_row(row);
                }
                Snapshot::build_from_miner(epoch, &miner, self.config.s_star, self.config.delta)
            };
            match built {
                Ok(snapshot) => {
                    built_rows = self.base.len() + ingested.len();
                    self.store.swap(snapshot);
                    self.stats.swapped();
                }
                Err(e) => eprintln!("sfa serve: snapshot rebuild failed: {e}"),
            }
        }
    }
}

fn lock_ingest(m: &Mutex<IngestState>) -> std::sync::MutexGuard<'_, IngestState> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn lock_miner(m: &Mutex<StreamingMiner>) -> std::sync::MutexGuard<'_, StreamingMiner> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One worker: pull connections until the channel closes; in drain, shed
/// instead of serving.
fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, ctx: &Ctx<'_>) {
    loop {
        // Holding the lock across `recv` is deliberate: exactly one idle
        // worker waits at a time, and the handoff happens as soon as the
        // accept thread enqueues.
        let conn = {
            let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv()
        };
        let Ok(stream) = conn else {
            return; // channel closed: drain complete for this worker
        };
        if ctx.draining.load(Ordering::SeqCst) {
            // Queued behind the drain: explicit shed, not silence.
            ctx.server.shed_connection(stream);
            continue;
        }
        handle_connection(stream, ctx);
    }
}

/// Accumulates bytes until a full line, a timeout, or a disconnect.
fn read_line(stream: &mut TcpStream, buf: &mut Vec<u8>, ctx: &Ctx<'_>) -> LineOutcome {
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let mut line: Vec<u8> = buf.drain(..=nl).collect();
            line.pop(); // the newline
            return LineOutcome::Line(line);
        }
        if buf.len() >= MAX_LINE_BYTES {
            return LineOutcome::TooLong;
        }
        if ctx.drained_out() {
            // Past the drain deadline nothing more gets read.
            return if buf.is_empty() {
                LineOutcome::Idle
            } else {
                LineOutcome::Stalled
            };
        }
        match stream.read(&mut chunk) {
            Ok(0) => return LineOutcome::Closed,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return if buf.is_empty() {
                    LineOutcome::Idle
                } else {
                    LineOutcome::Stalled
                };
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return LineOutcome::Closed,
        }
    }
}

/// Serves one connection: a keep-alive loop of request → reply, with
/// every failure mode mapped to exactly one accounting disposition.
fn handle_connection(mut stream: TcpStream, ctx: &Ctx<'_>) {
    let server = ctx.server;
    let timeout = server.config.request_timeout;
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let _ = stream.set_nodelay(true);
    server.inflight.fetch_add(1, Ordering::SeqCst);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let line = match read_line(&mut stream, &mut buf, ctx) {
            LineOutcome::Line(line) => line,
            LineOutcome::Closed | LineOutcome::Idle => break,
            LineOutcome::Stalled => {
                // A request was started but never finished inside the
                // timeout — admitted and timed out.
                server.stats.admit();
                server.stats.time_out();
                break;
            }
            LineOutcome::TooLong => {
                server.stats.admit();
                let started = Instant::now();
                if stream.write_all(b"ERR line too long\n").is_ok() {
                    server.stats.answer(started.elapsed());
                    server.stats.malformed();
                } else {
                    server.stats.time_out();
                }
                break; // framing is unrecoverable past an oversized line
            }
        };
        server.stats.admit();
        let started = Instant::now();
        let parsed = parse_request(&line);
        let quit = matches!(parsed, Ok(Request::Quit));
        let (reply, is_err) = match parsed {
            Ok(req) => execute(&req, ctx),
            Err(ParseError { reason }) => (format!("ERR {reason}\n"), true),
        };
        if started.elapsed() > timeout {
            // Per-request deadline: the reply is stale, drop it.
            server.stats.time_out();
            break;
        }
        if stream.write_all(reply.as_bytes()).is_ok() {
            server.stats.answer(started.elapsed());
            if is_err {
                server.stats.malformed();
            }
        } else {
            server.stats.time_out();
            break;
        }
        if quit || ctx.draining.load(Ordering::SeqCst) {
            break;
        }
    }
    server.inflight.fetch_sub(1, Ordering::SeqCst);
}

/// Executes one well-formed request against the current snapshot.
/// Returns the full reply (trailing newline included) and whether it is
/// an `ERR`.
fn execute(req: &Request, ctx: &Ctx<'_>) -> (String, bool) {
    let server = ctx.server;
    let snap = server.store.load();
    match req {
        Request::TopK { col, k } => {
            if *col >= snap.n_cols {
                return ("ERR column out of range\n".to_owned(), true);
            }
            let top = snap.top_k(*col, *k);
            let mut reply = format!("OK {}\n", top.len());
            for (partner, sim) in top {
                reply.push_str(&format!("{partner} {}\n", fmt_sim(*sim)));
            }
            (reply, false)
        }
        Request::Sim { a, b } => {
            if *a >= snap.n_cols || *b >= snap.n_cols {
                return ("ERR column out of range\n".to_owned(), true);
            }
            let (sim, inter, union) = snap.similarity(*a, *b);
            (format!("OK {} {inter} {union}\n", fmt_sim(sim)), false)
        }
        Request::Pairs { s_star } => {
            let pairs = snap.pairs_at(s_star.max(server.config.s_star));
            let mut reply = format!("OK {}\n", pairs.len());
            for p in pairs {
                reply.push_str(&format!("{} {} {}\n", p.i, p.j, fmt_sim(p.similarity)));
            }
            (reply, false)
        }
        Request::Health => {
            let (acked, _persisted) = {
                let st = lock_ingest(&server.ingest);
                (st.rows.len(), st.persisted)
            };
            let rows = server.base.len() + acked;
            (
                format!(
                    "OK epoch={} rows={rows} cols={} pairs={} inflight={}\n",
                    snap.epoch,
                    snap.n_cols,
                    snap.pairs.len(),
                    server.inflight.load(Ordering::SeqCst)
                ),
                false,
            )
        }
        Request::Ingest { cols } => {
            if cols.last().is_some_and(|&c| c >= snap.n_cols) {
                return ("ERR column out of range\n".to_owned(), true);
            }
            let row_id = {
                let mut st = lock_ingest(&server.ingest);
                st.rows.push(cols.clone());
                server.base.len() + st.rows.len() - 1
            };
            server.stats.ingested(1);
            (format!("OK {row_id}\n"), false)
        }
        Request::Quit => ("OK bye\n".to_owned(), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn base_matrix() -> RowMajorMatrix {
        // Columns 0,1 identical; 2 overlaps half the rows.
        let rows = (0..8u32)
            .map(|i| {
                if i % 2 == 0 {
                    vec![0, 1, 2]
                } else {
                    vec![0, 1]
                }
            })
            .collect();
        RowMajorMatrix::from_rows(3, rows).unwrap()
    }

    fn test_config() -> ServerConfig {
        ServerConfig {
            threads: 2,
            queue_depth: 4,
            request_timeout: Duration::from_millis(400),
            drain: Duration::from_secs(2),
            s_star: 0.4,
            k: 32,
            seed: 7,
            ..ServerConfig::default()
        }
    }

    struct Client {
        reader: std::io::BufReader<TcpStream>,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Self {
            let stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            Self {
                reader: std::io::BufReader::new(stream),
            }
        }

        fn send(&mut self, line: &str) {
            self.reader
                .get_mut()
                .write_all(format!("{line}\n").as_bytes())
                .expect("send");
        }

        fn recv(&mut self) -> String {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("recv");
            line.trim_end().to_owned()
        }

        fn roundtrip(&mut self, line: &str) -> String {
            self.send(line);
            self.recv()
        }
    }

    /// Runs `f` against a live server, then cancels and returns the
    /// session metrics.
    fn with_server<T>(
        config: ServerConfig,
        f: impl FnOnce(&mut Client, SocketAddr) -> T,
    ) -> (T, ServingMetrics) {
        let server = Server::bind(config, &base_matrix()).unwrap();
        let addr = server.local_addr().unwrap();
        let cancel = CancelToken::new();
        let (out, metrics) = std::thread::scope(|s| {
            let run = s.spawn(|| server.run(&cancel));
            // Cancel even when `f` panics — otherwise the scope joins a
            // server that never stops and the panic becomes a hang.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut client = Client::connect(addr);
                let out = f(&mut client, addr);
                drop(client);
                out
            }));
            cancel.cancel();
            let metrics = run.join().expect("server thread").expect("run");
            match result {
                Ok(out) => (out, metrics),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        });
        assert!(metrics.balances(), "{metrics:?}");
        (out, metrics)
    }

    #[test]
    fn answers_every_query_verb() {
        let (_, m) = with_server(test_config(), |c, _| {
            let topk = c.roundtrip("TOPK 0 5");
            assert_eq!(topk, "OK 2");
            assert_eq!(c.recv(), "1 1.000000");
            assert_eq!(c.recv(), "2 0.500000");
            assert_eq!(c.roundtrip("SIM 0 2"), "OK 0.500000 4 8");
            let pairs = c.roundtrip("PAIRS 0.9");
            assert_eq!(pairs, "OK 1");
            assert_eq!(c.recv(), "0 1 1.000000");
            let health = c.roundtrip("HEALTH");
            assert!(
                health.starts_with("OK epoch=1 rows=8 cols=3 pairs="),
                "{health}"
            );
            assert_eq!(c.roundtrip("QUIT"), "OK bye");
        });
        assert_eq!(m.answered, 5);
        assert_eq!(m.malformed, 0);
        assert_eq!(m.accepted, 5);
    }

    #[test]
    fn malformed_requests_get_err_and_count() {
        let (_, m) = with_server(test_config(), |c, _| {
            assert!(c.roundtrip("BOGUS 1 2").starts_with("ERR "));
            assert!(c.roundtrip("TOPK 99 5").starts_with("ERR "));
            assert!(c.roundtrip("SIM 0 99").starts_with("ERR "));
            assert_eq!(c.roundtrip("SIM 0 1"), "OK 1.000000 8 8");
        });
        assert_eq!(m.answered, 4);
        assert_eq!(m.malformed, 3);
    }

    #[test]
    fn ingest_rebuilds_and_swaps_epochs() {
        let (_, m) = with_server(test_config(), |c, _| {
            // Grow column 2 with four rows of its own: |2| goes 4 → 8,
            // the 0∩2 intersection stays 4, so sim(0,2) drops to 4/12.
            for _ in 0..4 {
                let reply = c.roundtrip("INGEST 2");
                assert!(reply.starts_with("OK "), "{reply}");
            }
            // Wait for a rebuild to land (bounded).
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                let health = c.roundtrip("HEALTH");
                if !health.starts_with("OK epoch=1 ") {
                    assert!(health.contains("rows=12"), "{health}");
                    break;
                }
                assert!(Instant::now() < deadline, "no swap before deadline");
                std::thread::sleep(Duration::from_millis(20));
            }
            // The new epoch serves the updated similarity exactly.
            assert_eq!(c.roundtrip("SIM 0 2"), "OK 0.333333 4 12");
        });
        assert_eq!(m.ingested_rows, 4);
        assert!(m.snapshot_swaps >= 1, "{m:?}");
    }

    #[test]
    fn slow_client_times_out_without_pinning_the_worker() {
        let cfg = ServerConfig {
            request_timeout: Duration::from_millis(120),
            ..test_config()
        };
        let (_, m) = with_server(cfg, |_, addr| {
            // A slow-loris: half a request, then silence.
            let mut loris = TcpStream::connect(addr).expect("connect");
            loris.write_all(b"TOPK 0").expect("partial");
            // The worker must shed it and keep serving others. A fresh
            // client is used because idle keep-alives are also reaped
            // after one request timeout.
            std::thread::sleep(Duration::from_millis(300));
            let mut late = Client::connect(addr);
            assert_eq!(late.roundtrip("SIM 0 1"), "OK 1.000000 8 8");
            drop(loris);
        });
        assert_eq!(m.timed_out, 1, "{m:?}");
        assert_eq!(m.answered, 1);
    }

    #[test]
    fn garbage_bytes_never_panic_the_server() {
        let (_, m) = with_server(test_config(), |c, addr| {
            let mut garbage = TcpStream::connect(addr).expect("connect");
            garbage
                .write_all(b"\x00\xff\xfe garbage \x07\n\x00\n")
                .expect("write");
            drop(garbage);
            let mut more = TcpStream::connect(addr).expect("connect");
            more.write_all(b"INGEST \x00\n").expect("write");
            drop(more);
            // Still alive and correct.
            assert_eq!(c.roundtrip("SIM 0 1"), "OK 1.000000 8 8");
        });
        assert!(m.malformed >= 1, "{m:?}");
        assert!(m.balances());
    }

    #[test]
    fn acked_ingests_survive_drain_and_restart() {
        let dir = std::env::temp_dir().join(format!("sfa_serve_restart_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServerConfig {
            state_dir: Some(dir.clone()),
            ..test_config()
        };
        let (_, m) = with_server(cfg.clone(), |c, _| {
            for _ in 0..3 {
                assert!(c.roundtrip("INGEST 2").starts_with("OK "));
            }
        });
        assert_eq!(m.ingested_rows, 3);
        // Restart: the replayed rows change SIM exactly as if re-ingested.
        let (_, m2) = with_server(cfg, |c, _| {
            let health = c.roundtrip("HEALTH");
            assert!(health.contains("rows=11"), "{health}");
            // |2| grew 4 → 7 from the replayed rows; 0∩2 is still 4.
            assert_eq!(c.roundtrip("SIM 0 2"), "OK 0.363636 4 11");
        });
        assert_eq!(m2.ingested_rows, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overload_sheds_explicitly() {
        // One worker, no queue: a parked connection makes any burst shed.
        let cfg = ServerConfig {
            threads: 1,
            queue_depth: 1,
            request_timeout: Duration::from_millis(600),
            ..test_config()
        };
        let server = Server::bind(cfg, &base_matrix()).unwrap();
        let addr = server.local_addr().unwrap();
        let cancel = CancelToken::new();
        let metrics = std::thread::scope(|s| {
            let run = s.spawn(|| server.run(&cancel));
            // Fill the single worker with a half-sent request…
            let mut parked = TcpStream::connect(addr).expect("connect");
            parked.write_all(b"TOPK ").expect("park");
            std::thread::sleep(Duration::from_millis(100));
            // …and burst past the queue. At least one must be shed with
            // an explicit OVERLOADED line; the rest are either served
            // (idle keep-alive, closed quietly) or shed too. The burst
            // clients only read — writing to an already-shed socket
            // would race its buffered reply against a RST.
            let burst: Vec<TcpStream> = (0..6)
                .map(|_| TcpStream::connect(addr).expect("connect"))
                .collect();
            let mut shed_seen = 0;
            for stream in burst {
                stream
                    .set_read_timeout(Some(Duration::from_secs(5)))
                    .unwrap();
                let mut reader = std::io::BufReader::new(stream);
                let mut line = String::new();
                reader.read_line(&mut line).expect("read");
                match line.trim_end() {
                    "OVERLOADED" => shed_seen += 1,
                    "" => {} // served from the queue, idle-closed
                    other => panic!("unexpected reply {other:?}"),
                }
            }
            drop(parked);
            cancel.cancel();
            (shed_seen, run.join().expect("thread").expect("run"))
        });
        let (shed_seen, m) = metrics;
        assert!(shed_seen >= 1, "burst did not shed: {m:?}");
        assert_eq!(m.shed, shed_seen, "{m:?}");
        assert!(m.balances(), "{m:?}");
    }
}
