//! Property-based tests (proptest) for the DESIGN.md §7 invariants.

use proptest::prelude::*;

use sfa::core::{Pipeline, PipelineConfig, Scheme};
use sfa::hash::topk::merge_bottom_k;
use sfa::hash::{BottomK, HashFamily};
use sfa::lsh::hamming::similarity_from_hamming;
use sfa::lsh::{p_filter, q_filter};
use sfa::matrix::column::jaccard;
use sfa::matrix::{ColumnSet, MemoryRowStream, RowMajorMatrix};
use sfa::minhash::{compute_bottom_k, compute_signatures, CandidatePair};

/// Strategy: a sorted-unique row-id set over `0..bound`.
fn row_set(bound: u32, max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0..bound, 0..=max_len)
        .prop_map(|s| s.into_iter().collect::<Vec<u32>>())
}

/// Strategy: a small row-major matrix (rows of sorted column ids).
fn small_matrix() -> impl Strategy<Value = RowMajorMatrix> {
    (1u32..12, 2u32..10).prop_flat_map(|(n_rows, n_cols)| {
        prop::collection::vec(row_set(n_cols, n_cols as usize), n_rows as usize)
            .prop_map(move |rows| RowMajorMatrix::from_rows(n_cols, rows).unwrap())
    })
}

proptest! {
    // ---- similarity axioms ----

    #[test]
    fn jaccard_is_bounded_and_symmetric(a in row_set(50, 20), b in row_set(50, 20)) {
        let s = jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(s, jaccard(&b, &a));
    }

    #[test]
    fn jaccard_identity_iff_equal(a in row_set(30, 12), b in row_set(30, 12)) {
        let s = jaccard(&a, &b);
        if !a.is_empty() || !b.is_empty() {
            prop_assert_eq!(s == 1.0, a == b);
        }
        if !a.is_empty() {
            prop_assert_eq!(jaccard(&a, &a), 1.0);
        }
    }

    #[test]
    fn lemma3_holds_for_all_columns(a in row_set(40, 16), b in row_set(40, 16)) {
        let ca = ColumnSet::from_sorted(a).unwrap();
        let cb = ColumnSet::from_sorted(b).unwrap();
        let via_lemma = similarity_from_hamming(
            ca.cardinality(),
            cb.cardinality(),
            ca.hamming_distance(&cb),
        );
        prop_assert!((ca.similarity(&cb) - via_lemma).abs() < 1e-12);
    }

    #[test]
    fn confidence_bounds_similarity(a in row_set(40, 16), b in row_set(40, 16)) {
        // S(a, b) ≤ min(conf(a⇒b), conf(b⇒a)) — §6's candidate rationale.
        let ca = ColumnSet::from_sorted(a).unwrap();
        let cb = ColumnSet::from_sorted(b).unwrap();
        let s = ca.similarity(&cb);
        prop_assert!(s <= ca.confidence(&cb) + 1e-12);
        prop_assert!(s <= cb.confidence(&ca) + 1e-12);
    }

    // ---- bottom-k structures ----

    #[test]
    fn bottom_k_keeps_exactly_the_k_smallest(values in prop::collection::vec(any::<u64>(), 0..60), k in 1usize..12) {
        let mut tracker = BottomK::new(k);
        for &v in &values {
            tracker.insert(v);
        }
        let mut expected: Vec<u64> = values.clone();
        expected.sort_unstable();
        expected.dedup();
        expected.truncate(k);
        prop_assert_eq!(tracker.into_sorted_vec(), expected);
    }

    #[test]
    fn merge_bottom_k_matches_naive(
        a in prop::collection::btree_set(any::<u64>(), 0..20),
        b in prop::collection::btree_set(any::<u64>(), 0..20),
        k in 1usize..12,
    ) {
        let a: Vec<u64> = a.into_iter().collect();
        let b: Vec<u64> = b.into_iter().collect();
        let mut naive: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        naive.sort_unstable();
        naive.dedup();
        naive.truncate(k);
        prop_assert_eq!(merge_bottom_k(&a, &b, k), naive);
    }

    // ---- matrix structure ----

    #[test]
    fn transpose_is_an_involution(m in small_matrix()) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn or_fold_preserves_column_presence(m in small_matrix(), seed in any::<u64>()) {
        prop_assume!(m.n_rows() >= 2);
        let folded = sfa::matrix::ops::or_fold_random(&m, seed);
        prop_assert_eq!(folded.n_rows(), m.n_rows().div_ceil(2));
        for (before, after) in m.column_counts().iter().zip(folded.column_counts()) {
            prop_assert_eq!(*before > 0, after > 0);
            prop_assert!(after <= *before);
        }
    }

    #[test]
    fn io_roundtrips_are_identity(m in small_matrix(), tag in 0u64..1_000_000) {
        let dir = std::env::temp_dir().join("sfa_prop_io");
        std::fs::create_dir_all(&dir).unwrap();
        let pt = dir.join(format!("m{tag}.sfat"));
        let pb = dir.join(format!("m{tag}.sfab"));
        sfa::matrix::io::write_text(&m, &pt).unwrap();
        sfa::matrix::io::write_binary(&m, &pb).unwrap();
        prop_assert_eq!(sfa::matrix::io::read_text(&pt).unwrap(), m.clone());
        prop_assert_eq!(sfa::matrix::io::read_binary(&pb).unwrap(), m);
        std::fs::remove_file(&pt).ok();
        std::fs::remove_file(&pb).ok();
    }

    // ---- signatures ----

    #[test]
    fn mh_signature_is_columnwise_min(m in small_matrix(), seed in any::<u64>(), k in 1usize..6) {
        let sigs = compute_signatures(&mut MemoryRowStream::new(&m), k, seed).unwrap();
        let fam = HashFamily::new(k, seed);
        let csc = m.transpose();
        for j in 0..m.n_cols() {
            for l in 0..k {
                let expected = csc
                    .column(j)
                    .iter()
                    .map(|&r| fam.hash(l, u64::from(r)))
                    .min()
                    .unwrap_or(u64::MAX);
                prop_assert_eq!(sigs.get(l, j), expected);
            }
        }
    }

    #[test]
    fn kmh_signature_is_bottom_k_of_column(m in small_matrix(), seed in any::<u64>(), k in 1usize..6) {
        let sigs = compute_bottom_k(&mut MemoryRowStream::new(&m), k, seed).unwrap();
        let hasher = sfa::hash::RowHasher::new(seed);
        let csc = m.transpose();
        for j in 0..m.n_cols() {
            let mut expected: Vec<u64> =
                csc.column(j).iter().map(|&r| hasher.hash_row(r)).collect();
            expected.sort_unstable();
            expected.dedup();
            expected.truncate(k);
            prop_assert_eq!(sigs.signature(j), expected.as_slice());
            prop_assert_eq!(sigs.column_count(j) as usize, csc.column_count(j));
        }
    }

    #[test]
    fn kmh_union_signature_matches_union_column(m in small_matrix(), seed in any::<u64>(), k in 1usize..6) {
        let sigs = compute_bottom_k(&mut MemoryRowStream::new(&m), k, seed).unwrap();
        let hasher = sfa::hash::RowHasher::new(seed);
        let csc = m.transpose();
        let n_cols = m.n_cols();
        prop_assume!(n_cols >= 2);
        for i in 0..n_cols {
            for j in (i + 1)..n_cols {
                let union = ColumnSet::from_slice(csc.column(i))
                    .union(&ColumnSet::from_slice(csc.column(j)));
                let mut expected: Vec<u64> =
                    union.rows().iter().map(|&r| hasher.hash_row(r)).collect();
                expected.sort_unstable();
                expected.dedup();
                expected.truncate(k);
                prop_assert_eq!(sigs.union_signature(i, j), expected);
            }
        }
    }

    // ---- filters ----

    #[test]
    fn filters_are_probabilities_and_monotone(
        s1 in 0.0f64..=1.0,
        s2 in 0.0f64..=1.0,
        r in 1usize..15,
        l in 1usize..30,
        k in 1usize..60,
    ) {
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let p_lo = p_filter(lo, r, l);
        let p_hi = p_filter(hi, r, l);
        prop_assert!((0.0..=1.0).contains(&p_lo));
        prop_assert!(p_lo <= p_hi + 1e-12);
        let k = k.max(r);
        let q_lo = q_filter(lo, r, l, k);
        let q_hi = q_filter(hi, r, l, k);
        prop_assert!((0.0..=1.0).contains(&q_lo));
        prop_assert!(q_lo <= q_hi + 1e-9);
    }

    // ---- verification and the pipeline ----

    #[test]
    fn verification_is_exact_for_arbitrary_candidates(m in small_matrix(), pick in any::<u64>()) {
        let n_cols = m.n_cols();
        prop_assume!(n_cols >= 2);
        // Derive a pseudo-random candidate subset from `pick`.
        let mut candidates = Vec::new();
        let mut state = pick;
        for i in 0..n_cols {
            for j in (i + 1)..n_cols {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if state >> 63 == 1 {
                    candidates.push(CandidatePair::new(i, j, 0.5));
                }
            }
        }
        let (verified, counts) =
            sfa::core::verify::verify_candidates(&mut MemoryRowStream::new(&m), &candidates)
                .unwrap();
        let csc = m.transpose();
        prop_assert_eq!(verified.len(), candidates.len());
        for v in &verified {
            prop_assert_eq!(v.intersection as usize, csc.intersection_size(v.i, v.j));
            prop_assert!((v.similarity - csc.similarity(v.i, v.j)).abs() < 1e-12);
        }
        for j in 0..n_cols {
            prop_assert_eq!(counts[j as usize] as usize, csc.column_count(j));
        }
    }

    #[test]
    fn pipeline_output_never_contains_false_positives(m in small_matrix(), seed in any::<u64>()) {
        let cfg = PipelineConfig::new(Scheme::Mh { k: 16, delta: 0.2 }, 0.6, seed);
        let result = Pipeline::new(cfg).run(&mut MemoryRowStream::new(&m)).unwrap();
        let csc = m.transpose();
        for p in result.similar_pairs() {
            prop_assert!(csc.similarity(p.i, p.j) >= 0.6);
        }
    }

    // ---- a priori vs brute force ----

    #[test]
    fn apriori_pairs_match_brute_force(m in small_matrix(), min_support in 1u32..4) {
        let (sets, _) = sfa::apriori::frequent_itemsets(&m, min_support, 2);
        let csc = m.transpose();
        let frequent_pairs: std::collections::HashSet<(u32, u32)> = sets
            .iter()
            .filter(|f| f.items.len() == 2)
            .map(|f| (f.items[0], f.items[1]))
            .collect();
        for i in 0..m.n_cols() {
            for j in (i + 1)..m.n_cols() {
                let support = csc.intersection_size(i, j) as u32;
                prop_assert_eq!(
                    frequent_pairs.contains(&(i, j)),
                    support >= min_support,
                    "pair ({}, {}) support {}", i, j, support
                );
            }
        }
    }
}

/// Statistical (non-proptest) check of Proposition 1 at moderate scale:
/// kept out of the proptest block because it needs many hash functions,
/// not many inputs.
#[test]
fn proposition_1_estimator_concentrates() {
    let rows = vec![
        vec![0, 1],
        vec![0, 1],
        vec![0, 1],
        vec![0],
        vec![1],
        vec![0],
    ];
    // S = 3 / 6 = 0.5.
    let m = RowMajorMatrix::from_rows(2, rows).unwrap();
    let sigs = compute_signatures(&mut MemoryRowStream::new(&m), 6000, 99).unwrap();
    assert!((sigs.s_hat(0, 1) - 0.5).abs() < 0.03);
}
