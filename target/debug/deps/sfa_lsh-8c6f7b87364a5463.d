/root/repo/target/debug/deps/sfa_lsh-8c6f7b87364a5463.d: crates/lsh/src/lib.rs crates/lsh/src/filter.rs crates/lsh/src/hamming.rs crates/lsh/src/hlsh.rs crates/lsh/src/mlsh.rs crates/lsh/src/online.rs crates/lsh/src/optimize.rs Cargo.toml

/root/repo/target/debug/deps/libsfa_lsh-8c6f7b87364a5463.rmeta: crates/lsh/src/lib.rs crates/lsh/src/filter.rs crates/lsh/src/hamming.rs crates/lsh/src/hlsh.rs crates/lsh/src/mlsh.rs crates/lsh/src/online.rs crates/lsh/src/optimize.rs Cargo.toml

crates/lsh/src/lib.rs:
crates/lsh/src/filter.rs:
crates/lsh/src/hamming.rs:
crates/lsh/src/hlsh.rs:
crates/lsh/src/mlsh.rs:
crates/lsh/src/online.rs:
crates/lsh/src/optimize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
