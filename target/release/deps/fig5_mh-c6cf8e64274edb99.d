/root/repo/target/release/deps/fig5_mh-c6cf8e64274edb99.d: crates/experiments/src/bin/fig5_mh.rs

/root/repo/target/release/deps/fig5_mh-c6cf8e64274edb99: crates/experiments/src/bin/fig5_mh.rs

crates/experiments/src/bin/fig5_mh.rs:
