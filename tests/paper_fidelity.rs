//! Paper-fidelity tests: statements the paper makes, encoded directly.

use sfa::matrix::{ColumnSet, MemoryRowStream, RowMajorMatrix, SparseMatrix};
use sfa::minhash::explicit::{signatures_from_permutations, RowPermutation};
use sfa::minhash::theory::required_k;
use sfa::minhash::{compute_bottom_k, compute_signatures};

/// §1: the definitions of similarity and confidence, on the paper's own
/// example numbers.
#[test]
fn section1_similarity_and_confidence_definitions() {
    // S(ci, cj) = |Ci ∩ Cj| / |Ci ∪ Cj|; Conf(ci ⇒ cj) = |Ci ∩ Cj| / |Ci|.
    let ci = ColumnSet::from_unsorted(vec![1, 2, 3, 4]);
    let cj = ColumnSet::from_unsorted(vec![3, 4, 5]);
    assert_eq!(ci.intersection_size(&cj), 2);
    assert_eq!(ci.union_size(&cj), 5);
    assert!((ci.similarity(&cj) - 0.4).abs() < 1e-12);
    assert!((ci.confidence(&cj) - 0.5).abs() < 1e-12);
    // Confidence is asymmetric, similarity symmetric:
    assert!((cj.confidence(&ci) - 2.0 / 3.0).abs() < 1e-12);
    assert_eq!(ci.similarity(&cj), cj.similarity(&ci));
}

/// §3 Example 1: the 4×3 matrix, both permutations, the resulting M̂ and
/// the quoted similarity values.
#[test]
fn section3_example_1_verbatim() {
    let m = SparseMatrix::from_columns(4, vec![vec![0, 1], vec![0, 1, 2], vec![2, 3]]).unwrap();
    // "S(c1,c2) = 2/3, S(c1,c3) = 0, and S(c2,c3) = 1/4"
    assert!((m.similarity(0, 1) - 2.0 / 3.0).abs() < 1e-12);
    assert_eq!(m.similarity(0, 2), 0.0);
    assert!((m.similarity(1, 2) - 0.25).abs() < 1e-12);
    // π1 = {1→3, 2→1, 3→2, 4→4}, π2 = {1→2, 2→4, 3→3, 4→1}.
    let p1 = RowPermutation::new(vec![2, 0, 1, 3]);
    let p2 = RowPermutation::new(vec![1, 3, 2, 0]);
    let m_hat = signatures_from_permutations(&m, &[p1, p2]);
    // "M̂ = [[2, 2, 3], [1, 1, 4]]" (1-based row ids).
    assert_eq!(m_hat.row(0), &[1, 1, 2]);
    assert_eq!(m_hat.row(1), &[0, 0, 3]);
    // "Ŝ(c1,c2) = 1, Ŝ(c1,c3) = 0, and Ŝ(c2,c3) = 0".
    assert_eq!(m_hat.s_hat(0, 1), 1.0);
    assert_eq!(m_hat.s_hat(0, 2), 0.0);
    assert_eq!(m_hat.s_hat(1, 2), 0.0);
}

/// Theorem 1's k bound: `k ≥ 2 δ⁻² c⁻¹ log ε⁻¹` — check the formula's
/// shape and that it is achievable in practice for typical parameters.
#[test]
fn theorem1_bound_shape() {
    // Doubling 1/c doubles k; halving δ quadruples k.
    let base = required_k(0.2, 0.05, 0.5);
    assert_eq!(required_k(0.2, 0.05, 0.25), base * 2);
    let quartered = required_k(0.1, 0.05, 0.5);
    assert!(quartered >= base * 4 - 2 && quartered <= base * 4 + 2);
}

/// §3.2: "SIG_{i∪j} … is in fact the set of the smallest k elements from
/// SIG_i ∪ SIG_j" — and Theorem 2's estimator is exact when the sketches
/// exhaust the columns.
#[test]
fn section32_union_signature_and_theorem2() {
    let rows = vec![vec![0, 1], vec![0], vec![1], vec![0, 1], vec![0]];
    let m = RowMajorMatrix::from_rows(2, rows).unwrap();
    let sigs = compute_bottom_k(&mut MemoryRowStream::new(&m), 16, 3).unwrap();
    // Sketches hold the full columns (|C| ≤ 16): the estimator is exact.
    let exact = m.transpose().similarity(0, 1);
    assert!((sigs.unbiased_similarity(0, 1) - exact).abs() < 1e-12);
    // And SIG_{i∪j} is the merge of the two signatures.
    let merged = sfa::hash::topk::merge_bottom_k(sigs.signature(0), sigs.signature(1), 16);
    assert_eq!(sigs.union_signature(0, 1), merged);
}

/// §4 Lemma 2 / the filter: P_{r,l}(s) = 1 − (1 − s^r)^l, with both limits
/// the paper uses: step-like for large parameters.
#[test]
fn section4_lemma2_filter_shape() {
    let s_star: f64 = 0.7;
    // "For any s ≥ (1+δ)s*, P ≥ 1−ε; for any s ≤ (1−δ)s*, P ≤ ε."
    let (delta, eps) = (0.25, 0.05);
    // Find (r, l) realizing the guarantee, as the lemma promises exists.
    let mut found = None;
    'outer: for r in 1..=30 {
        for l in 1..=4096 {
            let hi = sfa::lsh::p_filter(((1.0 + delta) * s_star).min(1.0), r, l);
            let lo = sfa::lsh::p_filter((1.0 - delta) * s_star, r, l);
            if hi >= 1.0 - eps && lo <= eps {
                found = Some((r, l));
                break 'outer;
            }
        }
    }
    let (r, l) = found.expect("Lemma 2 parameters exist");
    assert!(r >= 2, "needs amplification, got r = {r}, l = {l}");
}

/// §5: "although our algorithms are probabilistic, they report the same
/// set of pairs as that reported by a priori" — on a support-pruned
/// dataset where both apply.
#[test]
fn section5_probabilistic_equals_exact_output() {
    let data = sfa::datagen::NewsConfig::small(3).generate();
    let rows = data.matrix.transpose();
    let (s_star, min_support) = (0.5, 15u32);
    let apriori = sfa::apriori::apriori_similar_pairs(&rows, min_support, s_star);
    let mh = sfa::core::Pipeline::new(sfa::core::PipelineConfig::new(
        sfa::core::Scheme::Mh { k: 300, delta: 0.3 },
        s_star,
        77,
    ))
    .run(&mut MemoryRowStream::new(&rows))
    .unwrap();
    let mh_pairs: std::collections::HashSet<(u32, u32)> =
        mh.similar_pairs().iter().map(|p| (p.i, p.j)).collect();
    for p in &apriori {
        assert!(
            mh_pairs.contains(&(p.i, p.j)),
            "MH missed apriori pair ({}, {}) at S = {}",
            p.i,
            p.j,
            p.similarity
        );
    }
}

/// §6: conf(ci ⇒ cj) = S(ci,cj) · |Ci ∪ Cj| / |Ci| — the identity the
/// extension is built on, checked exactly.
#[test]
fn section6_confidence_identity() {
    let ci = ColumnSet::from_unsorted(vec![1, 2, 3, 4, 5]);
    let cj = ColumnSet::from_unsorted(vec![4, 5, 6]);
    let s = ci.similarity(&cj);
    let conf = ci.confidence(&cj);
    let identity = s * ci.union_size(&cj) as f64 / ci.cardinality() as f64;
    assert!((conf - identity).abs() < 1e-12);
    // And S lower-bounds both confidences.
    assert!(s <= conf + 1e-12);
    assert!(s <= cj.confidence(&ci) + 1e-12);
}

/// §8 summary: "The probability that two column's Min-Hash values are the
/// same is equal to the similarity between them" — Proposition 1 at scale.
#[test]
fn proposition1_at_scale() {
    // 60 shared, 40 exclusive rows: S = 60/100.
    let mut rows = vec![vec![0u32, 1]; 60];
    rows.extend(vec![vec![0]; 20]);
    rows.extend(vec![vec![1]; 20]);
    let m = RowMajorMatrix::from_rows(2, rows).unwrap();
    let sigs = compute_signatures(&mut MemoryRowStream::new(&m), 8000, 11).unwrap();
    assert!((sigs.s_hat(0, 1) - 0.6).abs() < 0.02);
}
