/root/repo/target/debug/deps/sfa_experiments-87634fda316201f9.d: crates/experiments/src/lib.rs

/root/repo/target/debug/deps/libsfa_experiments-87634fda316201f9.rlib: crates/experiments/src/lib.rs

/root/repo/target/debug/deps/libsfa_experiments-87634fda316201f9.rmeta: crates/experiments/src/lib.rs

crates/experiments/src/lib.rs:
