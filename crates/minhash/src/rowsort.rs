//! The Row-Sorting candidate generator (§3.1).
//!
//! "View the rows of `M̂` as a list of tuples containing a Min-Hash value
//! and the corresponding column number. We sort each row on the basis of
//! the Min-Hash values. This groups identical Min-Hash values together into
//! a sequence of *runs*. For each column, we maintain an index of the
//! position of its Min-Hash value in each sorted row." Agreement counting
//! then walks runs; expected cost `O(km log m + k S̄ m²)`.
//!
//! The focus-column variant ([`SortedRows::agreements_with`]) reproduces
//! the paper's per-column counter loop with the reusable
//! [`sfa_hash::SparseCounters`]; it is also the basis of
//! the §6 confidence extension, which needs the second counter set for
//! "`h(c_j)` at least as much as `h(c_i)`".

use sfa_hash::bucket::{BudgetedPairCounter, PairCounter, PairShard, ShardPassOutcome};
use sfa_hash::SparseCounters;

use crate::candidates::{CandidateGenStats, CandidatePair};
use crate::signature::{SignatureMatrix, EMPTY_SIGNATURE};
use crate::theory::agreement_threshold;

/// The sorted-row view of a signature matrix: per signature row, the
/// `(value, column)` tuples in ascending value order, plus the per-column
/// position index.
#[derive(Debug)]
pub struct SortedRows {
    /// `rows[l]` = the `l`th signature row sorted by value.
    rows: Vec<Vec<(u64, u32)>>,
    /// `index[l][j]` = position of column `j` within `rows[l]`.
    index: Vec<Vec<u32>>,
}

impl SortedRows {
    /// Sorts every row of the signature matrix; `O(k m log m)`.
    #[must_use]
    pub fn build(sigs: &SignatureMatrix) -> Self {
        let m = sigs.m();
        let mut rows = Vec::with_capacity(sigs.k());
        let mut index = Vec::with_capacity(sigs.k());
        for l in 0..sigs.k() {
            let mut row: Vec<(u64, u32)> = sigs
                .row(l)
                .iter()
                .enumerate()
                .map(|(j, &v)| (v, j as u32))
                .collect();
            row.sort_unstable();
            let mut idx = vec![0u32; m];
            for (pos, &(_, j)) in row.iter().enumerate() {
                idx[j as usize] = pos as u32;
            }
            rows.push(row);
            index.push(idx);
        }
        Self { rows, index }
    }

    /// Number of sorted rows (`k`).
    #[must_use]
    pub fn k(&self) -> usize {
        self.rows.len()
    }

    /// The run (maximal span of equal values) containing column `j` in
    /// sorted row `l`.
    #[must_use]
    pub fn run_of(&self, l: usize, j: u32) -> &[(u64, u32)] {
        let row = &self.rows[l];
        let pos = self.index[l][j as usize] as usize;
        let v = row[pos].0;
        let mut lo = pos;
        while lo > 0 && row[lo - 1].0 == v {
            lo -= 1;
        }
        let mut hi = pos + 1;
        while hi < row.len() && row[hi].0 == v {
            hi += 1;
        }
        &row[lo..hi]
    }

    /// Agreement counts of `focus` against every other column, using the
    /// paper's reusable-counter loop. Returns `(column, agreements)` for
    /// columns with at least one agreement, unsorted.
    ///
    /// `counters` must span at least `m` slots and is left reset.
    #[must_use]
    pub fn agreements_with(
        &self,
        sigs: &SignatureMatrix,
        focus: u32,
        counters: &mut SparseCounters,
    ) -> Vec<(u32, u32)> {
        for l in 0..self.k() {
            if sigs.get(l, focus) == EMPTY_SIGNATURE {
                continue;
            }
            for &(_, other) in self.run_of(l, focus) {
                if other != focus {
                    counters.increment(other);
                }
            }
        }
        counters.drain_at_least(1)
    }

    /// The §6 two-counter extension: for `focus`, counts per other column
    /// both (a) rows where the min-hash values agree and (b) rows where the
    /// other column's value is **at least** `focus`'s — the estimator of
    /// `Pr[h(c_focus) ≤ h(c_j)] = |C_focus| / |C_focus ∪ C_j|`.
    ///
    /// "We maintain two sets of counters for each column `c_i`: one for
    /// counting the number of rows for which each column `c_j` agrees with
    /// the hash value of `c_i` and the other for counting the number of
    /// rows for which the hash value of `c_j` is at least as much as that
    /// of `c_i`." Returns dense vectors over all `m` columns
    /// (`O(k·m)` per focus column, `O(k·m²)` for all — the paper's bound).
    ///
    /// Rows where `focus` is empty ([`EMPTY_SIGNATURE`]) are skipped.
    #[must_use]
    pub fn agreement_and_ge_counts(
        &self,
        sigs: &SignatureMatrix,
        focus: u32,
    ) -> (Vec<u32>, Vec<u32>) {
        let m = sigs.m();
        let mut agree = vec![0u32; m];
        let mut ge = vec![0u32; m];
        for l in 0..self.k() {
            let v = sigs.get(l, focus);
            if v == EMPTY_SIGNATURE {
                continue;
            }
            let row = &self.rows[l];
            let pos = self.index[l][focus as usize] as usize;
            // Everything positioned at or after the start of focus's run
            // has value ≥ v; walk back to the run start, then forward.
            let mut start = pos;
            while start > 0 && row[start - 1].0 == v {
                start -= 1;
            }
            for &(val, col) in &row[start..] {
                if col == focus {
                    continue;
                }
                ge[col as usize] += 1;
                if val == v {
                    agree[col as usize] += 1;
                }
            }
        }
        (agree, ge)
    }

    /// Iterates the runs of sorted row `l` (spans of ≥ 2 equal values).
    pub fn runs(&self, l: usize) -> impl Iterator<Item = &[(u64, u32)]> {
        RunIter {
            row: &self.rows[l],
            pos: 0,
        }
    }
}

struct RunIter<'a> {
    row: &'a [(u64, u32)],
    pos: usize,
}

impl<'a> Iterator for RunIter<'a> {
    type Item = &'a [(u64, u32)];

    fn next(&mut self) -> Option<Self::Item> {
        while self.pos < self.row.len() {
            let v = self.row[self.pos].0;
            let start = self.pos;
            let mut end = start + 1;
            while end < self.row.len() && self.row[end].0 == v {
                end += 1;
            }
            self.pos = end;
            if end - start >= 2 {
                return Some(&self.row[start..end]);
            }
        }
        None
    }
}

/// All-pairs agreement counting by run enumeration (sort-based analogue of
/// [`mh_agreement_counts`](crate::hashcount::mh_agreement_counts) —
/// identical output, different mechanics).
#[must_use]
pub fn rowsort_agreement_counts(sigs: &SignatureMatrix) -> PairCounter {
    let sorted = SortedRows::build(sigs);
    let mut counter = PairCounter::new();
    for l in 0..sorted.k() {
        for run in sorted.runs(l) {
            if run[0].0 == EMPTY_SIGNATURE {
                continue;
            }
            for (a, &(_, ci)) in run.iter().enumerate() {
                for &(_, cj) in &run[a + 1..] {
                    counter.increment(ci, cj);
                }
            }
        }
    }
    counter
}

/// Row-Sorting candidate generation with the same admission rule as the
/// Hash-Count MH path.
#[must_use]
pub fn rowsort_candidates(sigs: &SignatureMatrix, s_star: f64, delta: f64) -> Vec<CandidatePair> {
    let threshold = agreement_threshold(sigs.k(), s_star, delta) as u32;
    let counts = rowsort_agreement_counts(sigs);
    let mut out: Vec<CandidatePair> = counts
        .iter()
        .filter(|&(_, _, c)| c >= threshold)
        .map(|(i, j, c)| CandidatePair::new(i, j, f64::from(c) / sigs.k() as f64))
        .collect();
    out.sort_by_key(CandidatePair::ids);
    out
}

/// [`rowsort_candidates`] plus instrumentation. The histogram counts
/// sorted-row *runs* by length (the Row-Sorting analogue of Hash-Count
/// bucket occupancy: a run of length `s` is exactly a bucket of `s`
/// agreeing columns).
#[must_use]
pub fn rowsort_candidates_with_stats(
    sigs: &SignatureMatrix,
    s_star: f64,
    delta: f64,
) -> (Vec<CandidatePair>, CandidateGenStats) {
    let (out, stats, _) =
        rowsort_candidates_sharded(sigs, s_star, delta, PairShard::all(), usize::MAX);
    (out, stats)
}

/// One budgeted shard pass of [`rowsort_candidates_with_stats`] — same
/// contract as `sfa_minhash::hashcount::mh_candidates_sharded`: pure
/// per-pair shard admission, a hard counter-heap cap, and an aborted
/// empty pass (with `overflowed` set) when the budget is exceeded. With
/// [`PairShard::all`] and an unbounded cap the output is byte-identical
/// to the unsharded generator, which delegates here.
#[must_use]
pub fn rowsort_candidates_sharded(
    sigs: &SignatureMatrix,
    s_star: f64,
    delta: f64,
    shard: PairShard,
    cap_bytes: usize,
) -> (Vec<CandidatePair>, CandidateGenStats, ShardPassOutcome) {
    let mut stats = CandidateGenStats::default();
    let sorted = SortedRows::build(sigs);
    let mut counter = BudgetedPairCounter::new(shard, cap_bytes);
    let mut increments = 0u64;
    for l in 0..sorted.k() {
        if counter.overflowed() {
            break;
        }
        for run in sorted.runs(l) {
            if run[0].0 == EMPTY_SIGNATURE {
                continue;
            }
            let size = run.len();
            if stats.bucket_histogram.len() <= size {
                stats.bucket_histogram.resize(size + 1, 0);
            }
            stats.bucket_histogram[size] += 1;
            for (a, &(_, ci)) in run.iter().enumerate() {
                for &(_, cj) in &run[a + 1..] {
                    counter.increment(ci, cj);
                    increments += 1;
                }
            }
        }
    }
    let outcome = counter.outcome();
    if outcome.overflowed {
        return (Vec::new(), stats, outcome);
    }
    stats.record("counter-increments", increments);
    stats.record("pairs-agreeing", counter.len() as u64);
    let threshold = agreement_threshold(sigs.k(), s_star, delta) as u32;
    let mut out: Vec<CandidatePair> = counter
        .iter()
        .filter(|&(_, _, c)| c >= threshold)
        .map(|(i, j, c)| CandidatePair::new(i, j, f64::from(c) / sigs.k() as f64))
        .collect();
    out.sort_by_key(CandidatePair::ids);
    stats.record("threshold-admitted", out.len() as u64);
    (out, stats, outcome)
}

/// Pool-based [`rowsort_candidates_with_stats`]: identical candidates,
/// stage counters, and run-length histogram. Signature rows are sorted
/// and run-scanned in parallel by the shared kernel
/// (`row_bucket_counts_pool`), with `min_hist_run = 2` so the histogram
/// counts only real runs, matching the sequential `runs()` iterator.
#[must_use]
pub fn rowsort_candidates_with_stats_pool(
    sigs: &SignatureMatrix,
    s_star: f64,
    delta: f64,
    pool: &sfa_par::ThreadPool,
) -> (Vec<CandidatePair>, CandidateGenStats) {
    let (counter, hist, increments) = crate::hashcount::row_bucket_counts_pool(sigs, pool, 2);
    let mut stats = CandidateGenStats {
        bucket_histogram: hist,
        ..CandidateGenStats::default()
    };
    stats.record("counter-increments", increments);
    stats.record("pairs-agreeing", counter.len() as u64);
    let threshold = agreement_threshold(sigs.k(), s_star, delta) as u32;
    let mut out: Vec<CandidatePair> = counter
        .iter()
        .filter(|&(_, _, c)| c >= threshold)
        .map(|(i, j, c)| CandidatePair::new(i, j, f64::from(c) / sigs.k() as f64))
        .collect();
    out.sort_by_key(CandidatePair::ids);
    stats.record("threshold-admitted", out.len() as u64);
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashcount::mh_agreement_counts;
    use crate::mh::compute_signatures;
    use sfa_matrix::{MemoryRowStream, RowMajorMatrix};

    fn matrix() -> RowMajorMatrix {
        let rows = vec![
            vec![0, 1],
            vec![0, 1],
            vec![0, 1, 2],
            vec![2, 3],
            vec![2, 3],
            vec![4],
        ];
        RowMajorMatrix::from_rows(5, rows).unwrap()
    }

    #[test]
    fn sorted_rows_index_is_consistent() {
        let m = matrix();
        let sigs = compute_signatures(&mut MemoryRowStream::new(&m), 8, 3).unwrap();
        let sorted = SortedRows::build(&sigs);
        for l in 0..8 {
            for j in 0..5u32 {
                let run = sorted.run_of(l, j);
                assert!(
                    run.iter().any(|&(v, c)| c == j && v == sigs.get(l, j)),
                    "column {j} missing from its own run in row {l}"
                );
                // Run values are all equal.
                assert!(run.iter().all(|&(v, _)| v == run[0].0));
            }
        }
    }

    #[test]
    fn rowsort_matches_hashcount() {
        let m = matrix();
        let sigs = compute_signatures(&mut MemoryRowStream::new(&m), 64, 7).unwrap();
        let by_sort = rowsort_agreement_counts(&sigs);
        let by_hash = mh_agreement_counts(&sigs);
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                assert_eq!(by_sort.get(i, j), by_hash.get(i, j), "pair ({i}, {j})");
            }
        }
    }

    #[test]
    fn rowsort_candidates_match_hashcount_candidates() {
        let m = matrix();
        let sigs = compute_signatures(&mut MemoryRowStream::new(&m), 128, 11).unwrap();
        let a = rowsort_candidates(&sigs, 0.7, 0.2);
        let b = crate::hashcount::mh_candidates(&sigs, 0.7, 0.2);
        assert_eq!(a, b);
    }

    #[test]
    fn stats_variant_matches_plain_generator() {
        let m = matrix();
        let sigs = compute_signatures(&mut MemoryRowStream::new(&m), 128, 11).unwrap();
        let (cands, stats) = rowsort_candidates_with_stats(&sigs, 0.7, 0.2);
        assert_eq!(cands, rowsort_candidates(&sigs, 0.7, 0.2));
        assert_eq!(stats.stage("threshold-admitted"), Some(cands.len() as u64));
        // Run-length histogram and increments must agree:
        // a run of length s contributes s·(s−1)/2 increments.
        let from_hist: u64 = stats
            .bucket_histogram
            .iter()
            .enumerate()
            .map(|(s, &n)| n * (s as u64 * (s as u64).saturating_sub(1) / 2))
            .sum();
        assert_eq!(stats.stage("counter-increments"), Some(from_hist));
    }

    #[test]
    fn agreements_with_matches_pairwise() {
        let m = matrix();
        let sigs = compute_signatures(&mut MemoryRowStream::new(&m), 32, 5).unwrap();
        let sorted = SortedRows::build(&sigs);
        let mut counters = SparseCounters::new(5);
        let mut got = sorted.agreements_with(&sigs, 0, &mut counters);
        got.sort_unstable();
        for &(other, count) in &got {
            assert_eq!(count as usize, sigs.agreement_count(0, other));
        }
        // Columns with nonzero agreement all appear.
        for j in 1..5u32 {
            let direct = sigs.agreement_count(0, j);
            let found = got.iter().find(|&&(c, _)| c == j).map_or(0, |&(_, n)| n);
            assert_eq!(found as usize, direct, "column {j}");
        }
        // Counters were reset by drain.
        assert!(counters.touched().is_empty());
    }

    #[test]
    fn agreement_and_ge_counts_match_direct() {
        let m = matrix();
        let sigs = compute_signatures(&mut MemoryRowStream::new(&m), 48, 9).unwrap();
        let sorted = SortedRows::build(&sigs);
        for focus in 0..5u32 {
            let (agree, ge) = sorted.agreement_and_ge_counts(&sigs, focus);
            for other in 0..5u32 {
                if other == focus {
                    continue;
                }
                let direct_agree = sigs.agreement_count(focus, other) as u32;
                let direct_ge = (0..48)
                    .filter(|&l| {
                        let v = sigs.get(l, focus);
                        v != crate::signature::EMPTY_SIGNATURE && sigs.get(l, other) >= v
                    })
                    .count() as u32;
                assert_eq!(
                    agree[other as usize], direct_agree,
                    "agree {focus}->{other}"
                );
                assert_eq!(ge[other as usize], direct_ge, "ge {focus}->{other}");
            }
        }
    }

    #[test]
    fn ge_counts_estimate_cardinality_ratio() {
        // c0 ⊂ c1 with |C0| = 10, |C1| = 30 → Pr[h(c0) ≤ h(c1)] = 1/3...
        // here reversed: Pr[h(c1) ≤ h(c0)] = 1 since C0 ⊂ C1.
        let mut rows = vec![vec![0u32, 1]; 10];
        rows.extend(vec![vec![1u32]; 20]);
        let m = RowMajorMatrix::from_rows(2, rows).unwrap();
        let k = 3000;
        let sigs = compute_signatures(&mut MemoryRowStream::new(&m), k, 5).unwrap();
        let sorted = SortedRows::build(&sigs);
        // ge[1] from focus 0 counts rows with h(c1) ≥ h(c0): that is
        // Pr[h(c0) ≤ h(c1)] = |C0| / |C0 ∪ C1| = 10/30.
        let (_, ge) = sorted.agreement_and_ge_counts(&sigs, 0);
        let frac = f64::from(ge[1]) / k as f64;
        assert!((frac - 1.0 / 3.0).abs() < 0.04, "fraction {frac}");
    }

    #[test]
    fn runs_skip_singletons() {
        let sigs = SignatureMatrix::from_values(1, 4, vec![7, 7, 9, 3]);
        let sorted = SortedRows::build(&sigs);
        let runs: Vec<Vec<u32>> = sorted
            .runs(0)
            .map(|r| r.iter().map(|&(_, c)| c).collect())
            .collect();
        assert_eq!(runs, vec![vec![0, 1]]);
    }

    #[test]
    fn empty_sentinel_runs_are_ignored() {
        use crate::signature::EMPTY_SIGNATURE;
        let sigs = SignatureMatrix::from_values(1, 3, vec![EMPTY_SIGNATURE, EMPTY_SIGNATURE, 4]);
        let counts = rowsort_agreement_counts(&sigs);
        assert_eq!(counts.get(0, 1), 0, "two empty columns must not agree");
    }
}
