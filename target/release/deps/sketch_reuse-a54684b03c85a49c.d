/root/repo/target/release/deps/sketch_reuse-a54684b03c85a49c.d: tests/sketch_reuse.rs

/root/repo/target/release/deps/sketch_reuse-a54684b03c85a49c: tests/sketch_reuse.rs

tests/sketch_reuse.rs:
