/root/repo/target/debug/deps/fig5_mh-4242ee43ca620adf.d: crates/experiments/src/bin/fig5_mh.rs

/root/repo/target/debug/deps/libfig5_mh-4242ee43ca620adf.rmeta: crates/experiments/src/bin/fig5_mh.rs

crates/experiments/src/bin/fig5_mh.rs:
