/root/repo/target/debug/deps/confidence_rules-5cab066fb5989721.d: crates/experiments/src/bin/confidence_rules.rs Cargo.toml

/root/repo/target/debug/deps/libconfidence_rules-5cab066fb5989721.rmeta: crates/experiments/src/bin/confidence_rules.rs Cargo.toml

crates/experiments/src/bin/confidence_rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
