/root/repo/target/release/deps/fig3_similarity_distribution-d544efaab8a810b1.d: crates/experiments/src/bin/fig3_similarity_distribution.rs

/root/repo/target/release/deps/fig3_similarity_distribution-d544efaab8a810b1: crates/experiments/src/bin/fig3_similarity_distribution.rs

crates/experiments/src/bin/fig3_similarity_distribution.rs:
