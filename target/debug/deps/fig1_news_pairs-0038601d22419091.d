/root/repo/target/debug/deps/fig1_news_pairs-0038601d22419091.d: crates/experiments/src/bin/fig1_news_pairs.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_news_pairs-0038601d22419091.rmeta: crates/experiments/src/bin/fig1_news_pairs.rs Cargo.toml

crates/experiments/src/bin/fig1_news_pairs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
