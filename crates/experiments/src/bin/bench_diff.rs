//! Compares two `BENCH_pipeline.json` documents, ignoring machine speed.
//!
//! Every machine-dependent number the baseline emits lives under a key
//! named `"timing"` (per-run phase seconds, the 1-vs-4-thread speedup
//! sweep). This tool strips those subtrees from both documents — at any
//! depth — plus every field named `"dispatch_arm"` (the kernel arm the
//! host CPU selected, e.g. `"avx2"` vs `"scalar"`, which a pool-mined
//! `metrics.kernels` block records), and compares what remains, so CI
//! fails only when deterministic counters (candidates, pairs, histograms,
//! scan volumes, container tallies) actually change.
//!
//! ```text
//! cargo run --release -p sfa-experiments --bin bench-diff -- \
//!     BENCH_pipeline.json /tmp/bench_new.json
//! ```
//!
//! Exit codes: 0 documents match, 1 they differ (or a file is
//! missing/malformed), 2 usage error.

use std::process::ExitCode;

use sfa_json::Json;

/// Removes every object field named `"timing"` or `"dispatch_arm"`,
/// recursively.
fn strip_timing(json: &mut Json) {
    match json {
        Json::Obj(fields) => {
            fields.retain(|(k, _)| k != "timing" && k != "dispatch_arm");
            for (_, v) in fields.iter_mut() {
                strip_timing(v);
            }
        }
        Json::Arr(items) => {
            for v in items.iter_mut() {
                strip_timing(v);
            }
        }
        _ => {}
    }
}

/// Loads a file and parses it, stripping `"timing"` subtrees.
fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    strip_timing(&mut json);
    Ok(json)
}

/// The first line where the stripped pretty-printed forms diverge.
fn first_diff_line(a: &Json, b: &Json) -> Option<(usize, String, String)> {
    let (a, b) = (a.to_string_pretty(), b.to_string_pretty());
    let (mut la, mut lb) = (a.lines(), b.lines());
    for i in 1.. {
        match (la.next(), lb.next()) {
            (None, None) => return None,
            (x, y) if x == y => {}
            (x, y) => {
                return Some((
                    i,
                    x.unwrap_or("<end of document>").to_owned(),
                    y.unwrap_or("<end of document>").to_owned(),
                ))
            }
        }
    }
    None
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline, current] = args.as_slice() else {
        eprintln!("usage: bench-diff <baseline.json> <current.json>");
        return ExitCode::from(2);
    };
    let (a, b) = match (load(baseline), load(current)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };
    match first_diff_line(&a, &b) {
        None => {
            println!("bench-diff: deterministic counters match (timing fields ignored)");
            ExitCode::SUCCESS
        }
        Some((line, left, right)) => {
            eprintln!(
                "bench-diff: deterministic counters differ at line {line} \
                 (after stripping \"timing\" fields):\n  baseline: {left}\n  current:  {right}\n\
                 If the behavior change is intended, regenerate the committed baseline with\n  \
                 cargo run --release -p sfa-experiments --bin bench-baseline"
            );
            ExitCode::from(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_timing_at_every_depth() {
        let mut json =
            Json::parse(r#"{"timing": {"x": 1}, "keep": [{"timing": 3.5, "n": 2}], "n": 1}"#)
                .unwrap();
        strip_timing(&mut json);
        assert_eq!(
            json,
            Json::parse(r#"{"keep": [{"n": 2}], "n": 1}"#).unwrap()
        );
    }

    /// The baseline's `timing` object grew `oversubscribed` and a
    /// `kernels` subtree (exact ground-truth kernel seconds); both are
    /// machine-dependent and must stay invisible to the diff.
    #[test]
    fn kernel_timings_and_oversubscription_marker_are_ignored() {
        let a = Json::parse(
            r#"{"n": 7, "timing": {"host_threads": 1, "oversubscribed": true,
                "kernels": {"exact_similar_pairs": {"merge_s": 2.0, "speedup": 4.1}}}}"#,
        )
        .unwrap();
        let b = Json::parse(
            r#"{"n": 7, "timing": {"host_threads": 16, "oversubscribed": false,
                "kernels": {"exact_similar_pairs": {"merge_s": 0.3, "speedup": 9.9}}}}"#,
        )
        .unwrap();
        let (mut sa, mut sb) = (a, b);
        strip_timing(&mut sa);
        strip_timing(&mut sb);
        assert_eq!(first_diff_line(&sa, &sb), None);
    }

    /// `--scale large` runs put their sharded-pass wall clock under
    /// `timing.sharding`; like every `timing` subtree it must be invisible
    /// to the diff, while the deterministic `metrics.sharding` counters
    /// (shard counts, spill bytes) must still be compared.
    #[test]
    fn sharding_wall_clock_is_ignored_but_shard_counters_are_not() {
        let a = Json::parse(
            r#"{"metrics": {"sharding": {"shards": 4, "spill_bytes": 968}},
                "timing": {"total_s": 9.0, "sharding": {"generation_passes_s": 7.5}}}"#,
        )
        .unwrap();
        let mut b = Json::parse(
            r#"{"metrics": {"sharding": {"shards": 4, "spill_bytes": 968}},
                "timing": {"total_s": 0.4, "sharding": {"generation_passes_s": 0.2}}}"#,
        )
        .unwrap();
        let (mut sa, mut sb) = (a.clone(), b.clone());
        strip_timing(&mut sa);
        strip_timing(&mut sb);
        assert_eq!(first_diff_line(&sa, &sb), None);

        // A changed shard count is a real behavioral difference.
        b = Json::parse(
            r#"{"metrics": {"sharding": {"shards": 8, "spill_bytes": 968}},
                "timing": {"total_s": 9.0, "sharding": {"generation_passes_s": 7.5}}}"#,
        )
        .unwrap();
        strip_timing(&mut b);
        assert!(first_diff_line(&sa, &b).is_some());
    }

    /// `metrics.kernels` mixes the machine-dependent `dispatch_arm`
    /// (whichever SIMD arm the host CPU has) with deterministic container
    /// tallies; the arm must be invisible to the diff while a moved
    /// container counter or byte total must still fail it.
    #[test]
    fn dispatch_arm_is_ignored_but_container_counters_are_not() {
        let a = Json::parse(
            r#"{"kernels": {"dispatch_arm": "avx2", "used_containers": true,
                "array_containers": 40, "container_bytes": 9000}}"#,
        )
        .unwrap();
        let b = Json::parse(
            r#"{"kernels": {"dispatch_arm": "scalar", "used_containers": true,
                "array_containers": 40, "container_bytes": 9000}}"#,
        )
        .unwrap();
        let (mut sa, mut sb) = (a, b);
        strip_timing(&mut sa);
        strip_timing(&mut sb);
        assert_eq!(first_diff_line(&sa, &sb), None);

        // A changed container tally is a real behavioral difference.
        let mut c = Json::parse(
            r#"{"kernels": {"dispatch_arm": "avx2", "used_containers": true,
                "array_containers": 41, "container_bytes": 9000}}"#,
        )
        .unwrap();
        strip_timing(&mut c);
        assert!(first_diff_line(&sa, &c).is_some());
    }

    /// The phase-1 overhaul put signature-kernel seconds under
    /// `timing.phase1` and the serve rebuild comparison under
    /// `timing.serving.rebuild`; both (and the per-dataset
    /// `dispatch_arm`) are machine-dependent, while the deterministic
    /// `metrics.phase1` cache-provenance flags must still be compared.
    #[test]
    fn phase1_and_rebuild_timings_are_ignored_but_cache_flags_are_not() {
        let a = Json::parse(
            r#"{"metrics": {"phase1": {"dispatch_arm": "avx2", "cache_hit": false}},
                "timing": {"phase1": {"synthetic": {"dispatch_arm": "avx2",
                    "sketches": [{"sketch": "MH k=100", "scalar_s": 0.008}]}},
                "serving": {"rebuild": {"rebuild_cold_s": 0.04, "incremental_speedup": 1.9}}}}"#,
        )
        .unwrap();
        let b = Json::parse(
            r#"{"metrics": {"phase1": {"dispatch_arm": "scalar", "cache_hit": false}},
                "timing": {"phase1": {"synthetic": {"dispatch_arm": "scalar",
                    "sketches": [{"sketch": "MH k=100", "scalar_s": 0.9}]}},
                "serving": {"rebuild": {"rebuild_cold_s": 3.0, "incremental_speedup": 1.0}}}}"#,
        )
        .unwrap();
        let (mut sa, mut sb) = (a, b);
        strip_timing(&mut sa);
        strip_timing(&mut sb);
        assert_eq!(first_diff_line(&sa, &sb), None);

        // A flipped cache-provenance flag is a real behavioral difference.
        let mut c = Json::parse(
            r#"{"metrics": {"phase1": {"dispatch_arm": "avx2", "cache_hit": true}},
                "timing": {}}"#,
        )
        .unwrap();
        strip_timing(&mut c);
        assert!(first_diff_line(&sa, &c).is_some());
    }

    #[test]
    fn diff_ignores_timing_but_catches_counters() {
        let a = Json::parse(r#"{"n": 1, "timing": {"s": 0.5}}"#).unwrap();
        let mut b = Json::parse(r#"{"n": 1, "timing": {"s": 9.0}}"#).unwrap();
        let (mut sa, mut sb) = (a.clone(), b.clone());
        strip_timing(&mut sa);
        strip_timing(&mut sb);
        assert_eq!(first_diff_line(&sa, &sb), None);

        b = Json::parse(r#"{"n": 2, "timing": {"s": 0.5}}"#).unwrap();
        strip_timing(&mut b);
        assert!(first_diff_line(&sa, &b).is_some());
    }
}
