/root/repo/target/debug/examples/collaborative_filtering-52a3f103f781fccc.d: examples/collaborative_filtering.rs

/root/repo/target/debug/examples/collaborative_filtering-52a3f103f781fccc: examples/collaborative_filtering.rs

examples/collaborative_filtering.rs:
