/root/repo/target/debug/deps/out_of_core-0dfd022dedad82fe.d: tests/out_of_core.rs

/root/repo/target/debug/deps/libout_of_core-0dfd022dedad82fe.rmeta: tests/out_of_core.rs

tests/out_of_core.rs:
