//! Candidate pair containers shared by every scheme.

/// A candidate column pair with the estimate that admitted it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidatePair {
    /// Smaller column id.
    pub i: u32,
    /// Larger column id.
    pub j: u32,
    /// The similarity estimate (or score) produced by the generating
    /// scheme; `1.0` for schemes that only produce set membership (LSH).
    pub estimate: f64,
}

impl CandidatePair {
    /// Creates a candidate, normalizing the order of ids.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    #[must_use]
    pub fn new(a: u32, b: u32, estimate: f64) -> Self {
        assert_ne!(a, b, "self-pair is not a candidate");
        let (i, j) = if a < b { (a, b) } else { (b, a) };
        Self { i, j, estimate }
    }

    /// The pair as an ordered tuple.
    #[must_use]
    pub const fn ids(&self) -> (u32, u32) {
        (self.i, self.j)
    }
}

/// Instrumentation emitted by the `*_with_stats` candidate generators:
/// named counters in generation order, plus the aggregate bucket-occupancy
/// histogram of every hash table (or run structure) the generator filled.
///
/// The counters are scheme-specific but follow a convention: a
/// `counter-increments` entry measures phase-2 work (the paper's
/// `O(k S̄ m²)` term is exactly this number for Hash-Count), and the
/// remaining entries count the pairs surviving each admission stage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CandidateGenStats {
    /// `(name, count)` entries in generation order.
    pub stages: Vec<(&'static str, u64)>,
    /// `bucket_histogram[s]` = number of buckets (for Hash-Count/LSH
    /// tables) or sorted runs (for Row-Sorting) holding exactly `s`
    /// columns, aggregated across every table the generator used.
    pub bucket_histogram: Vec<u64>,
}

impl CandidateGenStats {
    /// Appends a named counter.
    pub fn record(&mut self, stage: &'static str, count: u64) {
        self.stages.push((stage, count));
    }

    /// The count recorded under `stage`, if any.
    #[must_use]
    pub fn stage(&self, stage: &str) -> Option<u64> {
        self.stages
            .iter()
            .find(|(name, _)| *name == stage)
            .map(|&(_, count)| count)
    }
}

/// Deduplicates candidates by pair id, keeping the highest estimate, and
/// returns them sorted by `(i, j)`.
#[must_use]
pub fn dedup_candidates(mut candidates: Vec<CandidatePair>) -> Vec<CandidatePair> {
    candidates.sort_by(|a, b| {
        (a.i, a.j)
            .cmp(&(b.i, b.j))
            .then(b.estimate.partial_cmp(&a.estimate).expect("finite"))
    });
    candidates.dedup_by_key(|c| (c.i, c.j));
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_order() {
        let c = CandidatePair::new(7, 2, 0.5);
        assert_eq!(c.ids(), (2, 7));
    }

    #[test]
    #[should_panic(expected = "self-pair")]
    fn self_pair_panics() {
        let _ = CandidatePair::new(3, 3, 1.0);
    }

    #[test]
    fn dedup_keeps_best_estimate() {
        let v = vec![
            CandidatePair::new(0, 1, 0.3),
            CandidatePair::new(1, 0, 0.9),
            CandidatePair::new(2, 3, 0.5),
        ];
        let d = dedup_candidates(v);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].ids(), (0, 1));
        assert!((d[0].estimate - 0.9).abs() < 1e-12);
        assert_eq!(d[1].ids(), (2, 3));
    }

    #[test]
    fn dedup_sorts_output() {
        let v = vec![
            CandidatePair::new(5, 6, 0.1),
            CandidatePair::new(0, 9, 0.1),
            CandidatePair::new(0, 2, 0.1),
        ];
        let d = dedup_candidates(v);
        let ids: Vec<(u32, u32)> = d.iter().map(CandidatePair::ids).collect();
        assert_eq!(ids, vec![(0, 2), (0, 9), (5, 6)]);
    }
}
