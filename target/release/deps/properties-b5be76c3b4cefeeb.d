/root/repo/target/release/deps/properties-b5be76c3b4cefeeb.d: crates/apriori/tests/properties.rs

/root/repo/target/release/deps/properties-b5be76c3b4cefeeb: crates/apriori/tests/properties.rs

crates/apriori/tests/properties.rs:
