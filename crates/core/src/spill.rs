//! Shard spill files for out-of-core mining (`.sfsp`).
//!
//! [`Pipeline::run_sharded`](crate::Pipeline::run_sharded) partitions the
//! pair space into column shards, generates each shard's candidates under
//! the memory budget, and spills them here so (a) only one shard group's
//! candidate state is ever resident during verification and (b) a killed
//! run can resume without regenerating finished shards. Two record kinds
//! share one container format:
//!
//! * **shard candidates** (`shard_<s>_of_<g>.sfsp`) — the candidate pairs
//!   one [`PairShard`](sfa_hash::bucket::PairShard) admitted. Candidate
//!   sets are a pure function of the phase-1 summary and the shard, never
//!   of the byte budget, so a spilled shard is reusable across runs with
//!   different budgets.
//! * **group verify results** (`verify_group_<idx>.sfsp`) — one shard
//!   group's verified pairs, column counts and probe count, keyed by the
//!   fingerprint of the exact candidate list that was verified.
//!
//! Like checkpoints (`docs/ROBUSTNESS.md`), spill files are **advisory**:
//! any load failure — missing file, bad magic/version/CRC, or a run-key,
//! shard, or fingerprint mismatch — means "regenerate", never a wrong
//! answer. Writes go through a temp file plus rename, and the byte layout
//! (documented in `docs/FORMATS.md`) follows the v2 format family: LE
//! fields back-to-back behind a 4-byte magic, CRC-32 trailer over
//! everything after the magic, sizes validated before allocation.

use std::path::{Path, PathBuf};

use sfa_matrix::crc32::crc32;
use sfa_matrix::{MatrixError, Result};
use sfa_minhash::CandidatePair;

use crate::checkpoint::RunKey;
use crate::report::VerifiedPair;

/// Magic for spill files.
const MAGIC: [u8; 4] = *b"SFSP";
/// Format version.
const VERSION: u32 = 1;
/// Record kind: one shard's candidate pairs.
const KIND_SHARD_CANDIDATES: u32 = 1;
/// Record kind: one verify group's results.
const KIND_GROUP_RESULT: u32 = 2;

/// Path of shard `s` of a `g`-way partition inside `dir`.
pub(crate) fn shard_path(dir: &Path, shard: u32, n_shards: u32) -> PathBuf {
    dir.join(format!("shard_{shard}_of_{n_shards}.sfsp"))
}

/// Path of verify group `idx` inside `dir`.
pub(crate) fn group_path(dir: &Path, idx: usize) -> PathBuf {
    dir.join(format!("verify_group_{idx}.sfsp"))
}

struct Writer {
    bytes: Vec<u8>,
}

impl Writer {
    fn new(kind: u32, key: RunKey) -> Self {
        let mut w = Self { bytes: Vec::new() };
        w.bytes.extend_from_slice(&MAGIC);
        w.u32(VERSION);
        w.u32(kind);
        w.u32(key.fingerprint);
        w.u32(key.n_rows);
        w.u32(key.n_cols);
        w
    }

    fn u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends the CRC trailer and durably replaces `path` (tmp + fsync +
    /// rename + parent-dir fsync, via [`crate::durable::write_atomic`]);
    /// returns the file size in bytes.
    fn commit(mut self, path: &Path) -> Result<u64> {
        let crc = crc32(&self.bytes[4..]);
        self.u32(crc);
        crate::durable::write_atomic(path, &self.bytes)
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.bytes.len() - self.pos < n {
            return Err(MatrixError::Parse {
                at: self.pos as u64,
                detail: "spill file truncated".into(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn done(&self) -> Result<()> {
        if self.pos != self.bytes.len() {
            return Err(MatrixError::Parse {
                at: self.pos as u64,
                detail: "trailing bytes in spill file".into(),
            });
        }
        Ok(())
    }
}

/// Loads `path`, verifies magic/version/CRC and the run key, and returns
/// the validated image. `None` means "no usable spill file".
fn open(path: &Path, kind: u32, key: RunKey) -> Option<Vec<u8>> {
    let bytes = std::fs::read(path).ok()?;
    if bytes.len() < 28 || bytes[0..4] != MAGIC {
        return None;
    }
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if crc32(&bytes[4..bytes.len() - 4]) != stored {
        return None;
    }
    let mut r = Reader {
        bytes: &bytes[..bytes.len() - 4],
        pos: 4,
    };
    let header_ok = (|| -> Result<bool> {
        Ok(r.u32()? == VERSION
            && r.u32()? == kind
            && r.u32()? == key.fingerprint
            && r.u32()? == key.n_rows
            && r.u32()? == key.n_cols)
    })()
    .unwrap_or(false);
    if !header_ok {
        return None;
    }
    Some(bytes)
}

/// A payload reader positioned just past the common header (offset 24) of
/// a validated spill image.
fn payload(bytes: &[u8]) -> Reader<'_> {
    Reader {
        bytes: &bytes[..bytes.len() - 4],
        pos: 24,
    }
}

/// Persists one shard's candidate list; returns the file size in bytes.
pub(crate) fn save_shard_candidates(
    dir: &Path,
    key: RunKey,
    shard: u32,
    n_shards: u32,
    candidates: &[CandidatePair],
) -> Result<u64> {
    let mut w = Writer::new(KIND_SHARD_CANDIDATES, key);
    w.u32(shard);
    w.u32(n_shards);
    w.u32(u32::try_from(candidates.len()).expect("candidate count fits u32"));
    for c in candidates {
        w.u32(c.i);
        w.u32(c.j);
        w.u64(c.estimate.to_bits());
    }
    w.commit(&shard_path(dir, shard, n_shards))
}

/// Loads one shard's candidate list, if a valid spill for exactly this
/// `(run key, shard, n_shards)` exists.
pub(crate) fn load_shard_candidates(
    dir: &Path,
    key: RunKey,
    shard: u32,
    n_shards: u32,
) -> Option<Vec<CandidatePair>> {
    let bytes = open(
        &shard_path(dir, shard, n_shards),
        KIND_SHARD_CANDIDATES,
        key,
    )?;
    let parse = |r: &mut Reader<'_>| -> Result<Vec<CandidatePair>> {
        let bad = |detail: &str, at: u64| MatrixError::Parse {
            at,
            detail: detail.into(),
        };
        if r.u32()? != shard || r.u32()? != n_shards {
            return Err(bad("spill shard mismatch", 24));
        }
        let n = r.u32()? as usize;
        if r.remaining() < n.saturating_mul(16) {
            return Err(bad("spill record count exceeds payload", r.pos as u64));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let i = r.u32()?;
            let j = r.u32()?;
            let estimate = f64::from_bits(r.u64()?);
            if i >= j || j >= key.n_cols {
                return Err(bad("spill pair ids out of range", r.pos as u64));
            }
            out.push(CandidatePair { i, j, estimate });
        }
        r.done()?;
        Ok(out)
    };
    parse(&mut payload(&bytes)).ok()
}

/// Persists one verify group's results — its verified pairs, the full
/// column-count vector, and the probe count — keyed by `cand_fingerprint`
/// (the [`crate::checkpoint::candidates_fingerprint`] of the exact
/// candidate list that was verified). Returns the file size in bytes.
pub(crate) fn save_group_result(
    dir: &Path,
    key: RunKey,
    group_idx: usize,
    cand_fingerprint: u32,
    verified: &[VerifiedPair],
    column_counts: &[u32],
    probes: u64,
) -> Result<u64> {
    let mut w = Writer::new(KIND_GROUP_RESULT, key);
    w.u32(cand_fingerprint);
    w.u32(u32::try_from(verified.len()).expect("verified count fits u32"));
    for v in verified {
        w.u32(v.i);
        w.u32(v.j);
        w.u32(v.intersection);
        w.u32(v.union);
        w.u64(v.similarity.to_bits());
        w.u64(v.estimate.to_bits());
    }
    w.u32(u32::try_from(column_counts.len()).expect("column count fits u32"));
    for &c in column_counts {
        w.u32(c);
    }
    w.u64(probes);
    w.commit(&group_path(dir, group_idx))
}

/// Loads a verify group's results, if a valid spill for exactly this
/// `(run key, group index, candidate fingerprint)` exists.
pub(crate) fn load_group_result(
    dir: &Path,
    key: RunKey,
    group_idx: usize,
    cand_fingerprint: u32,
) -> Option<(Vec<VerifiedPair>, Vec<u32>, u64)> {
    let bytes = open(&group_path(dir, group_idx), KIND_GROUP_RESULT, key)?;
    let parse = |r: &mut Reader<'_>| -> Result<(Vec<VerifiedPair>, Vec<u32>, u64)> {
        let bad = |detail: &str, at: u64| MatrixError::Parse {
            at,
            detail: detail.into(),
        };
        if r.u32()? != cand_fingerprint {
            return Err(bad("spill group fingerprint mismatch", 24));
        }
        let n = r.u32()? as usize;
        if r.remaining() < n.saturating_mul(32) {
            return Err(bad("spill record count exceeds payload", r.pos as u64));
        }
        let mut verified = Vec::with_capacity(n);
        for _ in 0..n {
            let i = r.u32()?;
            let j = r.u32()?;
            let intersection = r.u32()?;
            let union = r.u32()?;
            let similarity = f64::from_bits(r.u64()?);
            let estimate = f64::from_bits(r.u64()?);
            verified.push(VerifiedPair {
                i,
                j,
                intersection,
                union,
                similarity,
                estimate,
            });
        }
        let m = r.u32()? as usize;
        if m != key.n_cols as usize {
            return Err(bad("spill column-count length mismatch", r.pos as u64));
        }
        if r.remaining() < m.saturating_mul(4) {
            return Err(bad("spill column counts exceed payload", r.pos as u64));
        }
        let mut column_counts = Vec::with_capacity(m);
        for _ in 0..m {
            column_counts.push(r.u32()?);
        }
        let probes = r.u64()?;
        r.done()?;
        Ok((verified, column_counts, probes))
    };
    parse(&mut payload(&bytes)).ok()
}

/// Whether `path` holds an intact spill record (either kind) belonging to
/// `key` — the startup-recovery test deciding keep vs quarantine.
pub(crate) fn valid_for(path: &Path, key: RunKey) -> bool {
    open(path, KIND_SHARD_CANDIDATES, key).is_some() || open(path, KIND_GROUP_RESULT, key).is_some()
}

/// Strictly validates the container format of a spill file: magic,
/// minimum length, CRC-32 trailer, version, and record kind. Run-key and
/// payload semantics are *not* checked — this answers "is the file
/// intact", not "does it belong to my run".
///
/// # Errors
///
/// [`MatrixError::Parse`] or [`MatrixError::Checksum`] describing the
/// first violation; any single-byte mutation or truncation of a valid
/// file is guaranteed to be rejected.
pub fn validate_file(path: &Path) -> Result<()> {
    let bytes = std::fs::read(path)?;
    let bad = |at: usize, detail: &str| MatrixError::Parse {
        at: at as u64,
        detail: detail.into(),
    };
    if bytes.len() < 28 {
        return Err(bad(bytes.len(), "spill file shorter than its header"));
    }
    if bytes[0..4] != MAGIC {
        return Err(bad(0, "bad spill magic"));
    }
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    let computed = crc32(&bytes[4..bytes.len() - 4]);
    if stored != computed {
        return Err(MatrixError::Checksum { stored, computed });
    }
    let u32_at = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().expect("4 bytes"));
    if u32_at(4) != VERSION {
        return Err(bad(4, "unknown spill version"));
    }
    if !matches!(u32_at(8), KIND_SHARD_CANDIDATES | KIND_GROUP_RESULT) {
        return Err(bad(8, "unknown spill record kind"));
    }
    Ok(())
}

/// The largest partition width `g` for which `dir` holds at least one
/// shard spill valid under `key` — the width an interrupted run had
/// reached, which a resuming run adopts so finished shards are reusable.
pub(crate) fn max_valid_shard_count(dir: &Path, key: RunKey) -> Option<u32> {
    let mut best: Option<u32> = None;
    for entry in std::fs::read_dir(dir).ok()? {
        let Ok(entry) = entry else { continue };
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix("shard_") else {
            continue;
        };
        let Some(rest) = rest.strip_suffix(".sfsp") else {
            continue;
        };
        let Some((shard, n_shards)) = rest.split_once("_of_") else {
            continue;
        };
        let (Ok(shard), Ok(n_shards)) = (shard.parse::<u32>(), n_shards.parse::<u32>()) else {
            continue;
        };
        if !n_shards.is_power_of_two() || shard >= n_shards {
            continue;
        }
        if best.is_some_and(|b| n_shards <= b) {
            continue;
        }
        // Filename candidates are only adopted if the file itself is valid
        // for this run key.
        if open(
            &shard_path(dir, shard, n_shards),
            KIND_SHARD_CANDIDATES,
            key,
        )
        .is_some()
        {
            best = Some(n_shards);
        }
    }
    best
}

/// Removes every spill file (`*.sfsp`, plus stray `*.sfsp.tmp`) in `dir`,
/// tolerating files that vanish concurrently.
pub(crate) fn clear(dir: &Path) -> Result<()> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.ends_with(".sfsp") || name.ends_with(".sfsp.tmp") {
            match std::fs::remove_file(entry.path()) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PipelineConfig, Scheme};

    fn dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sfa-spill-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("create test dir");
        d
    }

    fn key() -> RunKey {
        RunKey::new(
            &PipelineConfig::new(Scheme::Mh { k: 8, delta: 0.2 }, 0.5, 7),
            100,
            50,
        )
    }

    fn cands() -> Vec<CandidatePair> {
        vec![
            CandidatePair::new(0, 3, 0.75),
            CandidatePair::new(2, 9, 0.5),
            CandidatePair::new(7, 49, 1.0),
        ]
    }

    #[test]
    fn shard_candidates_round_trip() {
        let d = dir("shard-rt");
        let written = cands();
        save_shard_candidates(&d, key(), 1, 4, &written).expect("save");
        let loaded = load_shard_candidates(&d, key(), 1, 4).expect("load");
        assert_eq!(loaded, written);
        // Wrong shard coordinates: advisory miss, not an error.
        assert!(load_shard_candidates(&d, key(), 0, 4).is_none());
        assert!(load_shard_candidates(&d, key(), 1, 8).is_none());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn wrong_run_key_is_ignored() {
        let d = dir("wrong-key");
        save_shard_candidates(&d, key(), 0, 2, &cands()).expect("save");
        let other = RunKey::new(
            &PipelineConfig::new(Scheme::Mh { k: 9, delta: 0.2 }, 0.5, 7),
            100,
            50,
        );
        assert!(load_shard_candidates(&d, other, 0, 2).is_none());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn corruption_is_rejected() {
        let d = dir("corrupt");
        save_shard_candidates(&d, key(), 0, 2, &cands()).expect("save");
        let path = shard_path(&d, 0, 2);
        let mut bytes = std::fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).expect("write");
        assert!(load_shard_candidates(&d, key(), 0, 2).is_none());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn group_result_round_trip() {
        let d = dir("group-rt");
        let verified = vec![VerifiedPair {
            i: 0,
            j: 3,
            intersection: 5,
            union: 9,
            similarity: 5.0 / 9.0,
            estimate: 0.75,
        }];
        let counts: Vec<u32> = (0..50).collect();
        save_group_result(&d, key(), 2, 0xdead_beef, &verified, &counts, 123).expect("save");
        let (v, c, probes) = load_group_result(&d, key(), 2, 0xdead_beef).expect("load");
        assert_eq!(v, verified);
        assert_eq!(c, counts);
        assert_eq!(probes, 123);
        // A different candidate fingerprint must not resume this group.
        assert!(load_group_result(&d, key(), 2, 0xdead_beee).is_none());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn validate_file_checks_container_not_run_key() {
        let d = dir("validate-file");
        save_shard_candidates(&d, key(), 0, 2, &cands()).expect("save");
        let path = shard_path(&d, 0, 2);
        validate_file(&path).expect("intact file validates");
        assert!(valid_for(&path, key()));
        let other = RunKey {
            fingerprint: 0,
            n_rows: 1,
            n_cols: 2,
        };
        assert!(!valid_for(&path, other), "wrong key fails valid_for");
        validate_file(&path).expect("but the container is still intact");
        let mut bytes = std::fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).expect("write");
        assert!(validate_file(&path).is_err(), "trailer flip rejected");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn max_valid_shard_count_prefers_widest_valid_partition() {
        let d = dir("max-g");
        assert_eq!(max_valid_shard_count(&d, key()), None);
        save_shard_candidates(&d, key(), 0, 2, &cands()).expect("save");
        save_shard_candidates(&d, key(), 3, 4, &cands()).expect("save");
        assert_eq!(max_valid_shard_count(&d, key()), Some(4));
        // A wider but corrupt file is not adopted.
        std::fs::write(shard_path(&d, 0, 8), b"SFSPgarbage").expect("write");
        assert_eq!(max_valid_shard_count(&d, key()), Some(4));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn clear_removes_only_spill_files() {
        let d = dir("clear");
        save_shard_candidates(&d, key(), 0, 1, &cands()).expect("save");
        save_group_result(&d, key(), 0, 1, &[], &[0; 50], 0).expect("save");
        let keep = d.join("keep.txt");
        std::fs::write(&keep, b"x").expect("write");
        clear(&d).expect("clear");
        assert!(keep.exists());
        assert!(load_shard_candidates(&d, key(), 0, 1).is_none());
        assert!(load_group_result(&d, key(), 0, 1).is_none());
        let _ = std::fs::remove_dir_all(&d);
    }
}
