/root/repo/target/debug/deps/fig3_similarity_distribution-44bada9ff5c60c00.d: crates/experiments/src/bin/fig3_similarity_distribution.rs

/root/repo/target/debug/deps/libfig3_similarity_distribution-44bada9ff5c60c00.rmeta: crates/experiments/src/bin/fig3_similarity_distribution.rs

crates/experiments/src/bin/fig3_similarity_distribution.rs:
