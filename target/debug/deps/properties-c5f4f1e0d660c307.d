/root/repo/target/debug/deps/properties-c5f4f1e0d660c307.d: crates/minhash/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-c5f4f1e0d660c307.rmeta: crates/minhash/tests/properties.rs Cargo.toml

crates/minhash/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
