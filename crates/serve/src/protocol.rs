//! The line protocol: request grammar, hardened parser, reply formats.
//!
//! One request per `\n`-terminated ASCII line (a trailing `\r` is
//! tolerated for telnet-style clients). The parser is total over
//! arbitrary bytes: anything outside the grammar yields a bounded
//! [`ParseError`] — never a panic — which the server answers with a
//! single `ERR <reason>` line. See `docs/SERVING.md` for the grammar.
//!
//! ```text
//! TOPK <col> <k>      → OK <n>          then n lines "<col> <sim>"
//! SIM <a> <b>         → OK <sim> <inter> <union>
//! PAIRS <s*>          → OK <n>          then n lines "<i> <j> <sim>"
//! HEALTH              → OK epoch=<e> rows=<r> cols=<m> pairs=<p> inflight=<f>
//! INGEST <c1> <c2> …  → OK <row_id>     (strictly ascending column ids)
//! QUIT                → OK bye          (server closes the connection)
//! ```

use std::fmt;

/// Hard cap on one request line, newline included. A line that reaches
/// this length without a `\n` is malformed; the server replies `ERR` and
/// closes the connection (framing cannot be trusted past an oversized
/// line).
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Upper bound on `k` in `TOPK` — a single reply stays small even when a
/// hostile client asks for the universe.
pub const MAX_TOPK: u64 = 10_000;

/// One parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `TOPK <col> <k>`: the up-to-`k` most similar partners of `col`.
    TopK {
        /// Queried column.
        col: u32,
        /// Maximum partners returned.
        k: usize,
    },
    /// `SIM <a> <b>`: exact similarity of one pair.
    Sim {
        /// First column.
        a: u32,
        /// Second column.
        b: u32,
    },
    /// `PAIRS <s*>`: every verified pair with similarity ≥ `s*`.
    Pairs {
        /// Similarity threshold in `[0, 1]`.
        s_star: f64,
    },
    /// `HEALTH`: snapshot epoch and server gauges.
    Health,
    /// `INGEST <c1> <c2> …`: append one row (strictly ascending columns).
    Ingest {
        /// The row's column ids.
        cols: Vec<u32>,
    },
    /// `QUIT`: polite close.
    Quit,
}

/// Why a request failed to parse. The reason is a short static token —
/// hostile bytes never echo back into the reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseError {
    /// Static, newline-free reason token for the `ERR` reply.
    pub reason: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.reason)
    }
}

impl std::error::Error for ParseError {}

const fn err(reason: &'static str) -> ParseError {
    ParseError { reason }
}

fn parse_u32(token: &str, what: &'static str) -> Result<u32, ParseError> {
    token.parse::<u32>().map_err(|_| err(what))
}

/// Parses one complete request line (without its terminating `\n`).
///
/// Total over arbitrary bytes: embedded NULs, non-ASCII, bad UTF-8, and
/// out-of-grammar tokens all map to a [`ParseError`], never a panic.
///
/// # Errors
///
/// [`ParseError`] with a static reason token.
pub fn parse_request(line: &[u8]) -> Result<Request, ParseError> {
    if line.len() >= MAX_LINE_BYTES {
        return Err(err("line too long"));
    }
    // Tolerate one trailing carriage return (CRLF clients).
    let line = line.strip_suffix(b"\r").unwrap_or(line);
    if line.is_empty() {
        return Err(err("empty request"));
    }
    // The grammar is printable ASCII; reject control bytes (including
    // NUL) before any string handling.
    if !line.iter().all(|&b| b.is_ascii_graphic() || b == b' ') {
        return Err(err("non-printable byte"));
    }
    let line = std::str::from_utf8(line).map_err(|_| err("invalid utf-8"))?;
    let mut tokens = line.split(' ').filter(|t| !t.is_empty());
    let verb = tokens.next().ok_or(err("empty request"))?;
    let rest: Vec<&str> = tokens.collect();
    match verb {
        "TOPK" => {
            let [col, k] = rest[..] else {
                return Err(err("usage: TOPK <col> <k>"));
            };
            let col = parse_u32(col, "bad column id")?;
            let k = k.parse::<u64>().map_err(|_| err("bad k"))?;
            if k == 0 || k > MAX_TOPK {
                return Err(err("k out of range"));
            }
            Ok(Request::TopK { col, k: k as usize })
        }
        "SIM" => {
            let [a, b] = rest[..] else {
                return Err(err("usage: SIM <a> <b>"));
            };
            Ok(Request::Sim {
                a: parse_u32(a, "bad column id")?,
                b: parse_u32(b, "bad column id")?,
            })
        }
        "PAIRS" => {
            let [s] = rest[..] else {
                return Err(err("usage: PAIRS <s*>"));
            };
            let s_star = s.parse::<f64>().map_err(|_| err("bad threshold"))?;
            if !(0.0..=1.0).contains(&s_star) {
                return Err(err("threshold out of range"));
            }
            Ok(Request::Pairs { s_star })
        }
        "HEALTH" => {
            if rest.is_empty() {
                Ok(Request::Health)
            } else {
                Err(err("usage: HEALTH"))
            }
        }
        "INGEST" => {
            if rest.is_empty() {
                return Err(err("usage: INGEST <c1> <c2> ..."));
            }
            let mut cols = Vec::with_capacity(rest.len());
            for token in rest {
                cols.push(parse_u32(token, "bad column id")?);
            }
            if !cols.windows(2).all(|w| w[0] < w[1]) {
                return Err(err("columns not strictly ascending"));
            }
            Ok(Request::Ingest { cols })
        }
        "QUIT" => {
            if rest.is_empty() {
                Ok(Request::Quit)
            } else {
                Err(err("usage: QUIT"))
            }
        }
        _ => Err(err("unknown verb")),
    }
}

/// Formats a similarity for the wire: fixed six decimal places, so
/// replies are byte-deterministic across platforms.
#[must_use]
pub fn fmt_sim(sim: f64) -> String {
    format!("{sim:.6}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        assert_eq!(
            parse_request(b"TOPK 3 10"),
            Ok(Request::TopK { col: 3, k: 10 })
        );
        assert_eq!(parse_request(b"SIM 1 2"), Ok(Request::Sim { a: 1, b: 2 }));
        assert_eq!(
            parse_request(b"PAIRS 0.8"),
            Ok(Request::Pairs { s_star: 0.8 })
        );
        assert_eq!(parse_request(b"HEALTH"), Ok(Request::Health));
        assert_eq!(
            parse_request(b"INGEST 0 4 9"),
            Ok(Request::Ingest {
                cols: vec![0, 4, 9]
            })
        );
        assert_eq!(parse_request(b"QUIT"), Ok(Request::Quit));
    }

    #[test]
    fn tolerates_crlf_and_repeated_spaces() {
        assert_eq!(
            parse_request(b"SIM  1   2\r"),
            Ok(Request::Sim { a: 1, b: 2 })
        );
    }

    #[test]
    fn rejects_malformed_without_panicking() {
        for bad in [
            &b""[..],
            b"\r",
            b"BOGUS",
            b"TOPK",
            b"TOPK 1",
            b"TOPK 1 2 3",
            b"TOPK x 2",
            b"TOPK 1 0",
            b"TOPK 1 99999999",
            b"SIM 1",
            b"SIM -1 2",
            b"SIM 1 99999999999999999999",
            b"PAIRS",
            b"PAIRS nan",
            b"PAIRS 1.5",
            b"PAIRS -0.1",
            b"HEALTH now",
            b"INGEST",
            b"INGEST 3 1",
            b"INGEST 2 2",
            b"INGEST 1 two",
            b"QUIT now",
            b"SIM 1 2\0",
            b"\0\0\0\0",
            b"\xff\xfe TOPK 1 2",
            b"sim 1 2",
        ] {
            let e = parse_request(bad).expect_err("must reject");
            assert!(!e.reason.is_empty() && !e.reason.contains('\n'));
        }
    }

    #[test]
    fn pairs_accepts_the_threshold_boundaries() {
        assert_eq!(
            parse_request(b"PAIRS 0"),
            Ok(Request::Pairs { s_star: 0.0 })
        );
        assert_eq!(
            parse_request(b"PAIRS 1"),
            Ok(Request::Pairs { s_star: 1.0 })
        );
    }

    #[test]
    fn sim_formatting_is_fixed_width() {
        assert_eq!(fmt_sim(0.5), "0.500000");
        assert_eq!(fmt_sim(1.0), "1.000000");
        assert_eq!(fmt_sim(1.0 / 3.0), "0.333333");
    }
}
