/root/repo/target/debug/deps/fig9_comparison-5a0b23634d44c41b.d: crates/experiments/src/bin/fig9_comparison.rs

/root/repo/target/debug/deps/libfig9_comparison-5a0b23634d44c41b.rmeta: crates/experiments/src/bin/fig9_comparison.rs

crates/experiments/src/bin/fig9_comparison.rs:
