//! Property-based tests for the a priori baseline.

use proptest::prelude::*;

use sfa_apriori::{apriori_similar_pairs, frequent_itemsets, generate_rules};
use sfa_matrix::RowMajorMatrix;

fn row_set(bound: u32, max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0..bound, 0..=max_len)
        .prop_map(|s| s.into_iter().collect::<Vec<u32>>())
}

fn small_matrix() -> impl Strategy<Value = RowMajorMatrix> {
    (1u32..12, 2u32..7).prop_flat_map(|(n_rows, n_cols)| {
        prop::collection::vec(row_set(n_cols, n_cols as usize), n_rows as usize)
            .prop_map(move |rows| RowMajorMatrix::from_rows(n_cols, rows).unwrap())
    })
}

fn brute_support(m: &RowMajorMatrix, items: &[u32]) -> u32 {
    m.rows()
        .filter(|(_, row)| items.iter().all(|i| row.contains(i)))
        .count() as u32
}

proptest! {
    #[test]
    fn all_reported_itemsets_have_exact_support(m in small_matrix(), min in 1u32..4) {
        let (sets, _) = frequent_itemsets(&m, min, usize::MAX);
        for s in &sets {
            prop_assert_eq!(s.support, brute_support(&m, &s.items), "{:?}", s.items);
            prop_assert!(s.support >= min);
        }
    }

    #[test]
    fn no_frequent_itemset_is_missed_up_to_size_three(m in small_matrix(), min in 1u32..4) {
        let (sets, _) = frequent_itemsets(&m, min, 3);
        let found: std::collections::HashSet<Vec<u32>> =
            sets.iter().map(|s| s.items.clone()).collect();
        let n = m.n_cols();
        for a in 0..n {
            if brute_support(&m, &[a]) >= min {
                prop_assert!(found.contains(&vec![a]), "missing singleton {}", a);
            }
            for b in (a + 1)..n {
                if brute_support(&m, &[a, b]) >= min {
                    prop_assert!(found.contains(&vec![a, b]), "missing pair ({}, {})", a, b);
                }
                for c in (b + 1)..n {
                    if brute_support(&m, &[a, b, c]) >= min {
                        prop_assert!(
                            found.contains(&vec![a, b, c]),
                            "missing triple ({}, {}, {})", a, b, c
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn downward_closure_holds(m in small_matrix(), min in 1u32..4) {
        let (sets, _) = frequent_itemsets(&m, min, usize::MAX);
        let found: std::collections::HashSet<&[u32]> =
            sets.iter().map(|s| s.items.as_slice()).collect();
        for s in &sets {
            if s.items.len() < 2 {
                continue;
            }
            for drop in 0..s.items.len() {
                let mut sub = s.items.clone();
                sub.remove(drop);
                prop_assert!(found.contains(sub.as_slice()), "subset of {:?}", s.items);
            }
        }
    }

    #[test]
    fn rules_have_exact_confidence_and_threshold(m in small_matrix(), min in 1u32..3) {
        let (sets, _) = frequent_itemsets(&m, min, usize::MAX);
        let rules = generate_rules(&sets, 0.6);
        for r in &rules {
            let all: Vec<u32> = {
                let mut v = r.antecedent.clone();
                v.extend(&r.consequent);
                v.sort_unstable();
                v
            };
            let exact = f64::from(brute_support(&m, &all))
                / f64::from(brute_support(&m, &r.antecedent));
            prop_assert!((r.confidence - exact).abs() < 1e-12);
            prop_assert!(r.confidence >= 0.6);
        }
    }

    #[test]
    fn similar_pairs_match_exact_similarity(m in small_matrix(), min in 1u32..3) {
        let csc = m.transpose();
        let pairs = apriori_similar_pairs(&m, min, 0.2);
        for p in &pairs {
            prop_assert!((p.similarity - csc.similarity(p.i, p.j)).abs() < 1e-12);
            prop_assert!(p.similarity >= 0.2);
            prop_assert!(p.support >= min);
        }
        // Completeness within a priori's reach.
        for i in 0..m.n_cols() {
            for j in (i + 1)..m.n_cols() {
                let support = csc.intersection_size(i, j) as u32;
                let sim = csc.similarity(i, j);
                if support >= min && sim >= 0.2 {
                    prop_assert!(
                        pairs.iter().any(|p| (p.i, p.j) == (i, j)),
                        "missing ({}, {})", i, j
                    );
                }
            }
        }
    }
}
