/root/repo/target/release/deps/sfa-3f2f7e44c3c0df8f.d: src/bin/sfa.rs

/root/repo/target/release/deps/sfa-3f2f7e44c3c0df8f: src/bin/sfa.rs

src/bin/sfa.rs:
