//! The level-wise a priori algorithm.

use sfa_hash::bucket::FastHashSet;
use sfa_matrix::RowMajorMatrix;

/// A frequent itemset: ascending item (column) ids and its support count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentItemset {
    /// Ascending column ids.
    pub items: Vec<u32>,
    /// Number of transactions containing every item.
    pub support: u32,
}

/// Per-level bookkeeping returned alongside the itemsets, matching the
/// numbers an a priori implementation reports (candidate counts are the
/// cost driver the paper's Fig. 4 measures indirectly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelSummary {
    /// The level (itemset size) `k`.
    pub k: usize,
    /// Candidates generated for this level.
    pub candidates: usize,
    /// Candidates that met the support threshold.
    pub frequent: usize,
}

/// Runs a priori over the transaction matrix (rows = transactions,
/// columns = items) with an absolute support threshold.
///
/// Returns all frequent itemsets of size ≥ 1 (grouped in one flat vector,
/// ordered by size then lexicographically) plus per-level summaries.
/// `max_k` caps the level; use `usize::MAX` for no cap.
///
/// # Examples
///
/// ```
/// use sfa_apriori::frequent_itemsets;
/// use sfa_matrix::RowMajorMatrix;
///
/// let tx = RowMajorMatrix::from_rows(3, vec![
///     vec![0, 1], vec![0, 1], vec![0, 2],
/// ]).unwrap();
/// let (sets, _) = frequent_itemsets(&tx, 2, usize::MAX);
/// assert!(sets.iter().any(|s| s.items == vec![0, 1] && s.support == 2));
/// ```
///
/// # Panics
///
/// Panics if `min_support == 0` (every itemset would qualify).
#[must_use]
pub fn frequent_itemsets(
    matrix: &RowMajorMatrix,
    min_support: u32,
    max_k: usize,
) -> (Vec<FrequentItemset>, Vec<LevelSummary>) {
    assert!(min_support > 0, "support threshold must be positive");
    let mut all = Vec::new();
    let mut summaries = Vec::new();

    // L1: column counts.
    let counts = matrix.column_counts();
    let mut current: Vec<FrequentItemset> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c >= min_support)
        .map(|(j, &c)| FrequentItemset {
            items: vec![j as u32],
            support: c,
        })
        .collect();
    summaries.push(LevelSummary {
        k: 1,
        candidates: counts.len(),
        frequent: current.len(),
    });

    // Level 2 is special-cased: joining L1 with itself would materialize
    // O(|L1|²) candidate vectors before counting; instead count co-occurring
    // frequent pairs directly per transaction (the standard triangular
    // counting optimization of Agrawal & Srikant).
    if max_k >= 2 && !current.is_empty() {
        let frequent_item: Vec<bool> = {
            let mut v = vec![false; counts.len()];
            for f in &current {
                v[f.items[0] as usize] = true;
            }
            v
        };
        let n_l1 = current.len();
        let mut pair_counts = sfa_hash::PairCounter::new();
        let mut projection = Vec::new();
        for (_, row) in matrix.rows() {
            projection.clear();
            projection.extend(row.iter().copied().filter(|&c| frequent_item[c as usize]));
            for (a, &ci) in projection.iter().enumerate() {
                for &cj in &projection[a + 1..] {
                    pair_counts.increment(ci, cj);
                }
            }
        }
        let mut level2: Vec<FrequentItemset> = pair_counts
            .iter()
            .filter(|&(_, _, c)| c >= min_support)
            .map(|(i, j, c)| FrequentItemset {
                items: vec![i, j],
                support: c,
            })
            .collect();
        level2.sort_by(|a, b| a.items.cmp(&b.items));
        summaries.push(LevelSummary {
            k: 2,
            candidates: n_l1 * (n_l1 - 1) / 2,
            frequent: level2.len(),
        });
        all.append(&mut current);
        current = level2;
    }

    let mut k = 3;
    while !current.is_empty() && k <= max_k {
        let candidates = generate_candidates(&current);
        let n_candidates = candidates.len();
        if candidates.is_empty() {
            all.append(&mut current);
            break;
        }
        let frequent = count_and_filter(matrix, &candidates, min_support, k);
        summaries.push(LevelSummary {
            k,
            candidates: n_candidates,
            frequent: frequent.len(),
        });
        all.append(&mut current);
        current = frequent;
        k += 1;
    }
    all.append(&mut current);
    (all, summaries)
}

/// Candidate generation: join `L_{k−1}` itemsets sharing a (k−2)-prefix,
/// then prune candidates with an infrequent (k−1)-subset.
fn generate_candidates(frequent: &[FrequentItemset]) -> Vec<Vec<u32>> {
    let prev: FastHashSet<&[u32]> = frequent.iter().map(|f| f.items.as_slice()).collect();
    let mut out = Vec::new();
    for (a, fa) in frequent.iter().enumerate() {
        for fb in &frequent[a + 1..] {
            let ka = &fa.items;
            let kb = &fb.items;
            let klen = ka.len();
            // Sorted prefix join: equal on all but the last item.
            if ka[..klen - 1] != kb[..klen - 1] {
                // frequent is lexicographically sorted, so once prefixes
                // diverge no later fb matches fa.
                break;
            }
            let mut cand = ka.clone();
            cand.push(kb[klen - 1]);
            debug_assert!(cand.windows(2).all(|w| w[0] < w[1]));
            // Prune: every (k−1)-subset must be frequent. The two subsets
            // formed by dropping one of the last two items are ka and kb
            // themselves; test the rest.
            let mut ok = true;
            for drop in 0..klen - 1 {
                let mut sub = cand.clone();
                sub.remove(drop);
                if !prev.contains(sub.as_slice()) {
                    ok = false;
                    break;
                }
            }
            if ok {
                out.push(cand);
            }
        }
    }
    out
}

/// Counts candidate supports by scanning transactions and enumerating the
/// k-subsets of each transaction's projection onto candidate items.
fn count_and_filter(
    matrix: &RowMajorMatrix,
    candidates: &[Vec<u32>],
    min_support: u32,
    k: usize,
) -> Vec<FrequentItemset> {
    use std::collections::HashMap;
    let mut counts: HashMap<&[u32], u32> =
        candidates.iter().map(|c| (c.as_slice(), 0u32)).collect();
    // Items appearing in any candidate, for transaction projection.
    let mut in_candidates = FastHashSet::default();
    for c in candidates {
        in_candidates.extend(c.iter().copied());
    }
    let mut projection = Vec::new();
    let mut subset = Vec::with_capacity(k);
    for (_, row) in matrix.rows() {
        projection.clear();
        projection.extend(row.iter().copied().filter(|c| in_candidates.contains(c)));
        if projection.len() < k {
            continue;
        }
        enumerate_subsets(&projection, k, &mut subset, 0, &mut |s| {
            if let Some(c) = counts.get_mut(s) {
                *c += 1;
            }
        });
    }
    let mut out: Vec<FrequentItemset> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_support)
        .map(|(items, support)| FrequentItemset {
            items: items.to_vec(),
            support,
        })
        .collect();
    out.sort_by(|a, b| a.items.cmp(&b.items));
    out
}

/// Filters frequent itemsets down to the *maximal* ones: itemsets with no
/// frequent proper superset. Maximal itemsets are the compact summary of
/// the frequent-set lattice (all frequent sets are their subsets).
#[must_use]
pub fn maximal_itemsets(itemsets: &[FrequentItemset]) -> Vec<FrequentItemset> {
    // Group by size for superset probing.
    let by_size: std::collections::BTreeMap<usize, Vec<&FrequentItemset>> =
        itemsets
            .iter()
            .fold(std::collections::BTreeMap::new(), |mut m, f| {
                m.entry(f.items.len()).or_default().push(f);
                m
            });
    let is_subset = |small: &[u32], big: &[u32]| -> bool {
        let mut it = big.iter();
        small.iter().all(|x| it.any(|y| y == x))
    };
    let mut out = Vec::new();
    for f in itemsets {
        let has_super = by_size
            .range((f.items.len() + 1)..)
            .flat_map(|(_, v)| v.iter())
            .any(|g| is_subset(&f.items, &g.items));
        if !has_super {
            out.push(f.clone());
        }
    }
    out
}

/// Recursively enumerates ascending k-subsets of `items`, invoking `f`.
fn enumerate_subsets(
    items: &[u32],
    k: usize,
    current: &mut Vec<u32>,
    start: usize,
    f: &mut impl FnMut(&[u32]),
) {
    if current.len() == k {
        f(current);
        return;
    }
    let remaining = k - current.len();
    for i in start..=items.len().saturating_sub(remaining) {
        current.push(items[i]);
        enumerate_subsets(items, k, current, i + 1, f);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic toy dataset: 4 transactions over 5 items.
    fn transactions() -> RowMajorMatrix {
        RowMajorMatrix::from_rows(
            5,
            vec![
                vec![0, 1, 4],
                vec![1, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![0, 2],
                vec![1, 2],
                vec![0, 2],
                vec![0, 1, 2, 4],
                vec![0, 1, 2],
            ],
        )
        .unwrap()
    }

    fn brute_force_support(m: &RowMajorMatrix, items: &[u32]) -> u32 {
        m.rows()
            .filter(|(_, row)| items.iter().all(|i| row.contains(i)))
            .count() as u32
    }

    #[test]
    fn level1_counts_are_exact() {
        let m = transactions();
        let (sets, summaries) = frequent_itemsets(&m, 2, 1);
        assert_eq!(summaries.len(), 1);
        for s in &sets {
            assert_eq!(s.items.len(), 1);
            assert_eq!(s.support, brute_force_support(&m, &s.items));
        }
        // Item 4 has support 2; item 3 has support 2 — both kept at 2.
        assert_eq!(sets.len(), 5);
    }

    #[test]
    fn all_levels_match_brute_force() {
        let m = transactions();
        let (sets, _) = frequent_itemsets(&m, 2, usize::MAX);
        for s in &sets {
            assert_eq!(
                s.support,
                brute_force_support(&m, &s.items),
                "itemset {:?}",
                s.items
            );
            assert!(s.support >= 2);
        }
        // Completeness: every frequent pair appears.
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                let sup = brute_force_support(&m, &[i, j]);
                let found = sets.iter().any(|s| s.items == vec![i, j]);
                assert_eq!(found, sup >= 2, "pair ({i}, {j}) support {sup}");
            }
        }
    }

    #[test]
    fn triples_found_when_supported() {
        let m = transactions();
        let (sets, _) = frequent_itemsets(&m, 2, usize::MAX);
        // {0, 1, 2} appears in rows 7 and 8 → support 2.
        assert!(sets.iter().any(|s| s.items == vec![0, 1, 2]));
        // {0, 1, 4} also has support 2.
        assert!(sets.iter().any(|s| s.items == vec![0, 1, 4]));
    }

    #[test]
    fn higher_threshold_prunes_more() {
        let m = transactions();
        let (at2, _) = frequent_itemsets(&m, 2, usize::MAX);
        let (at4, _) = frequent_itemsets(&m, 4, usize::MAX);
        assert!(at4.len() < at2.len());
        for s in &at4 {
            assert!(s.support >= 4);
        }
    }

    #[test]
    fn max_k_caps_levels() {
        let m = transactions();
        let (sets, summaries) = frequent_itemsets(&m, 2, 2);
        assert!(sets.iter().all(|s| s.items.len() <= 2));
        assert!(summaries.iter().all(|s| s.k <= 2));
    }

    #[test]
    fn summaries_track_pruning() {
        let m = transactions();
        let (_, summaries) = frequent_itemsets(&m, 2, usize::MAX);
        assert_eq!(summaries[0].k, 1);
        assert_eq!(summaries[0].candidates, 5);
        for s in &summaries {
            assert!(s.frequent <= s.candidates, "level {}", s.k);
        }
    }

    #[test]
    fn apriori_monotonicity_holds() {
        // Every subset of a frequent itemset is frequent (the a priori
        // property itself).
        let m = transactions();
        let (sets, _) = frequent_itemsets(&m, 2, usize::MAX);
        let all: FastHashSet<&[u32]> = sets.iter().map(|s| s.items.as_slice()).collect();
        for s in &sets {
            if s.items.len() >= 2 {
                for drop in 0..s.items.len() {
                    let mut sub = s.items.clone();
                    sub.remove(drop);
                    assert!(
                        all.contains(sub.as_slice()),
                        "missing subset of {:?}",
                        s.items
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "support threshold must be positive")]
    fn zero_support_panics() {
        let m = transactions();
        let _ = frequent_itemsets(&m, 0, 2);
    }

    #[test]
    fn empty_matrix_yields_nothing() {
        let m = RowMajorMatrix::from_rows(3, vec![]).unwrap();
        let (sets, _) = frequent_itemsets(&m, 1, usize::MAX);
        assert!(sets.is_empty());
    }

    #[test]
    fn maximal_itemsets_have_no_frequent_supersets() {
        let m = transactions();
        let (sets, _) = frequent_itemsets(&m, 2, usize::MAX);
        let maximal = maximal_itemsets(&sets);
        assert!(!maximal.is_empty());
        assert!(maximal.len() < sets.len());
        // No maximal set is a subset of another frequent set.
        for mx in &maximal {
            for f in &sets {
                if f.items.len() > mx.items.len() {
                    let is_subset = mx.items.iter().all(|x| f.items.contains(x));
                    assert!(!is_subset, "{:?} ⊂ frequent {:?}", mx.items, f.items);
                }
            }
        }
        // Every frequent set is a subset of some maximal set.
        for f in &sets {
            assert!(
                maximal
                    .iter()
                    .any(|mx| f.items.iter().all(|x| mx.items.contains(x))),
                "{:?} not covered",
                f.items
            );
        }
    }

    #[test]
    fn subset_enumeration_is_complete() {
        let mut seen = Vec::new();
        let mut cur = Vec::new();
        enumerate_subsets(&[1, 2, 3, 4], 2, &mut cur, 0, &mut |s| {
            seen.push(s.to_vec());
        });
        assert_eq!(seen.len(), 6);
        assert!(seen.contains(&vec![1, 4]));
        assert!(seen.contains(&vec![2, 3]));
    }
}
