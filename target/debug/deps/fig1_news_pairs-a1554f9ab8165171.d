/root/repo/target/debug/deps/fig1_news_pairs-a1554f9ab8165171.d: crates/experiments/src/bin/fig1_news_pairs.rs

/root/repo/target/debug/deps/libfig1_news_pairs-a1554f9ab8165171.rmeta: crates/experiments/src/bin/fig1_news_pairs.rs

crates/experiments/src/bin/fig1_news_pairs.rs:
