//! The MH signature pass (§3).
//!
//! "While scanning the table and assigning random hash values to the rows,
//! for each column `c_i`, we keep track of the *minimum* hash value of the
//! rows which contain a 1 in that column." With `k` independent hash
//! functions this yields the `k × m` matrix `M̂` in one pass and `O(mk)`
//! memory.

use sfa_matrix::{Result, RowMajorMatrix, RowStream};

use crate::signature::SignatureMatrix;

/// Computes the `k × m` MH signature matrix in a single pass over `stream`.
///
/// Cost: `k` hash evaluations per row plus `k` min-merges per 1-entry —
/// the `O(k)`-per-entry cost that motivates K-MH (§3.2).
///
/// # Errors
///
/// Propagates stream errors.
///
/// # Examples
///
/// ```
/// use sfa_matrix::{MemoryRowStream, RowMajorMatrix};
/// use sfa_minhash::compute_signatures;
///
/// let m = RowMajorMatrix::from_rows(2, vec![vec![0, 1], vec![0]]).unwrap();
/// let sigs = compute_signatures(&mut MemoryRowStream::new(&m), 16, 7).unwrap();
/// assert_eq!(sigs.k(), 16);
/// assert_eq!(sigs.m(), 2);
/// // Column 0 ⊋ column 1 share row 0, S = 1/2; Ŝ is between 0 and 1.
/// let s = sigs.s_hat(0, 1);
/// assert!((0.0..=1.0).contains(&s));
/// ```
pub fn compute_signatures<S: RowStream>(
    stream: &mut S,
    k: usize,
    seed: u64,
) -> Result<SignatureMatrix> {
    let mut builder = crate::builder::MhBuilder::new(k, stream.n_cols() as usize, seed);
    let mut buf = Vec::new();
    while let Some(row_id) = stream.read_row(&mut buf)? {
        builder.push_row(row_id, &buf);
    }
    Ok(builder.finish())
}

/// Parallel MH signature computation over an in-memory matrix.
///
/// Convenience wrapper that builds a one-shot [`sfa_par::ThreadPool`];
/// pipeline code reuses a pool across phases via
/// [`compute_signatures_pool`].
///
/// # Panics
///
/// Panics if `n_threads == 0`.
#[must_use]
pub fn compute_signatures_parallel(
    matrix: &RowMajorMatrix,
    k: usize,
    seed: u64,
    n_threads: usize,
) -> SignatureMatrix {
    assert!(n_threads > 0, "need at least one thread");
    compute_signatures_pool(matrix, k, seed, &sfa_par::ThreadPool::new(n_threads))
}

/// Pool-based parallel MH signature computation.
///
/// Row ranges are dealt out dynamically over the pool; each worker folds
/// its rows into a local [`MhBuilder`](crate::builder::MhBuilder), and
/// the locals are merged by component-wise minimum (min-hash is a
/// commutative idempotent fold, so the merge is exact). Workers share
/// nothing but the read-only matrix.
#[must_use]
pub fn compute_signatures_pool(
    matrix: &RowMajorMatrix,
    k: usize,
    seed: u64,
    pool: &sfa_par::ThreadPool,
) -> SignatureMatrix {
    let n = matrix.n_rows() as usize;
    let m = matrix.n_cols() as usize;
    if pool.threads() == 1 || n < 2 {
        let mut stream = sfa_matrix::MemoryRowStream::new(matrix);
        return compute_signatures(&mut stream, k, seed).expect("memory stream cannot fail");
    }
    let merged = pool.par_map_reduce(
        n,
        pool.chunk_for(n),
        |_| crate::builder::MhBuilder::new(k, m, seed),
        |local, rows| {
            for row_id in rows {
                local.push_row(row_id as u32, matrix.row(row_id as u32));
            }
        },
        |mut a, b| {
            a.merge(&b);
            a
        },
    );
    merged.finish()
}

/// Paper-fidelity mode: 32-bit row hashes.
///
/// §3 assumes `n ≤ 2^16` so that "it will suffice to choose the hash value
/// as a random 32-bit integer, avoiding the 'birthday paradox' of having
/// two rows get identical hash value". This variant folds every hash to 32
/// bits, reproducing that setting exactly; with `n` beyond ~2^16, row-hash
/// collisions start to bias `Ŝ` upward — which is why the library defaults
/// to 64 bits.
///
/// # Errors
///
/// Propagates stream errors.
pub fn compute_signatures_32<S: RowStream>(
    stream: &mut S,
    k: usize,
    seed: u64,
) -> Result<SignatureMatrix> {
    let m = stream.n_cols() as usize;
    let family = sfa_hash::HashFamily::new(k, seed);
    // Column-major work buffer, like MhBuilder's: every value is either a
    // zero-extended folded u32 or the u64::MAX sentinel, which is exactly
    // the shape the lo32 kernel arm requires.
    let mut work = vec![crate::signature::EMPTY_SIGNATURE; k * m];
    let mut row_hashes = vec![0u64; k];
    let mut buf = Vec::new();
    while let Some(row_id) = stream.read_row(&mut buf)? {
        for (l, slot) in row_hashes.iter_mut().enumerate() {
            *slot = u64::from(sfa_hash::mix::fold32(family.hash(l, u64::from(row_id))));
        }
        for &col in &buf {
            let start = col as usize * k;
            crate::kernel::min_merge_u64_lo32(&mut work[start..start + k], &row_hashes);
        }
    }
    Ok(SignatureMatrix::from_col_major(k, m, &work))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfa_hash::HashFamily;
    use sfa_matrix::MemoryRowStream;

    fn paper_like_matrix() -> RowMajorMatrix {
        // Example 1: c1 = {r1, r2}, c2 = {r1, r2, r3}, c3 = {r3, r4}.
        RowMajorMatrix::from_rows(3, vec![vec![0, 1], vec![0, 1], vec![1, 2], vec![2]]).unwrap()
    }

    #[test]
    fn signatures_are_deterministic() {
        let m = paper_like_matrix();
        let a = compute_signatures(&mut MemoryRowStream::new(&m), 8, 1).unwrap();
        let b = compute_signatures(&mut MemoryRowStream::new(&m), 8, 1).unwrap();
        assert_eq!(a, b);
        let c = compute_signatures(&mut MemoryRowStream::new(&m), 8, 2).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn signature_is_min_over_column_rows() {
        let m = paper_like_matrix();
        let k = 4;
        let sigs = compute_signatures(&mut MemoryRowStream::new(&m), k, 5).unwrap();
        let fam = HashFamily::new(k, 5);
        // Column 0 = rows {0, 1}.
        for l in 0..k {
            let expected = fam.hash(l, 0).min(fam.hash(l, 1));
            assert_eq!(sigs.get(l, 0), expected);
        }
        // Column 2 = rows {2, 3}.
        for l in 0..k {
            let expected = fam.hash(l, 2).min(fam.hash(l, 3));
            assert_eq!(sigs.get(l, 2), expected);
        }
    }

    #[test]
    fn empty_column_keeps_sentinel() {
        let m = RowMajorMatrix::from_rows(2, vec![vec![0], vec![0]]).unwrap();
        let sigs = compute_signatures(&mut MemoryRowStream::new(&m), 3, 9).unwrap();
        for l in 0..3 {
            assert_eq!(sigs.get(l, 1), crate::signature::EMPTY_SIGNATURE);
        }
        assert_eq!(sigs.s_hat(0, 1), 0.0);
    }

    #[test]
    fn proposition_1_collision_probability() {
        // Empirically: Pr[h(c_i) = h(c_j)] ≈ S(c_i, c_j). With S = 1/2 and
        // k = 4000, Ŝ should be within ±0.04 of 0.5 (3.2 σ).
        let m = RowMajorMatrix::from_rows(
            2,
            vec![vec![0, 1], vec![0, 1], vec![0], vec![1]], // S = 2/4
        )
        .unwrap();
        let sigs = compute_signatures(&mut MemoryRowStream::new(&m), 4000, 12).unwrap();
        let s_hat = sigs.s_hat(0, 1);
        assert!((s_hat - 0.5).abs() < 0.04, "Ŝ = {s_hat}");
    }

    #[test]
    fn disjoint_columns_rarely_agree() {
        let m = RowMajorMatrix::from_rows(2, vec![vec![0], vec![0], vec![1], vec![1]]).unwrap();
        let sigs = compute_signatures(&mut MemoryRowStream::new(&m), 1000, 3).unwrap();
        assert!(sigs.s_hat(0, 1) < 0.01);
    }

    #[test]
    fn parallel_matches_sequential() {
        let m = paper_like_matrix();
        let seq = compute_signatures(&mut MemoryRowStream::new(&m), 16, 21).unwrap();
        for threads in [1, 2, 3, 8] {
            let par = compute_signatures_parallel(&m, 16, 21, threads);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_on_larger_matrix() {
        // 400 rows, 20 columns, striped pattern.
        let rows: Vec<Vec<u32>> = (0..400u32)
            .map(|i| vec![i % 20, (i * 7 + 3) % 20])
            .map(|mut v| {
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let m = RowMajorMatrix::from_rows(20, rows).unwrap();
        let seq = compute_signatures(&mut MemoryRowStream::new(&m), 32, 77).unwrap();
        let par = compute_signatures_parallel(&m, 32, 77, 4);
        assert_eq!(par, seq);
    }

    #[test]
    fn thirty_two_bit_mode_estimates_similarity() {
        // Values all fit in 32 bits, and Ŝ still concentrates on S.
        let m = RowMajorMatrix::from_rows(
            2,
            vec![vec![0, 1], vec![0, 1], vec![0], vec![1]], // S = 1/2
        )
        .unwrap();
        let sigs = compute_signatures_32(&mut MemoryRowStream::new(&m), 3000, 4).unwrap();
        for l in 0..sigs.k() {
            for j in 0..2 {
                assert!(sigs.get(l, j) <= u64::from(u32::MAX));
            }
        }
        assert!((sigs.s_hat(0, 1) - 0.5).abs() < 0.05);
    }

    #[test]
    fn single_pass_over_stream() {
        let m = paper_like_matrix();
        let mut counter = sfa_matrix::stream::PassCounter::new(MemoryRowStream::new(&m));
        let _ = compute_signatures(&mut counter, 4, 1).unwrap();
        assert_eq!(counter.passes(), 1);
        assert_eq!(counter.rows_read(), 4);
    }
}
