/root/repo/target/debug/deps/sfa-108f0070600fa88f.d: src/lib.rs src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libsfa-108f0070600fa88f.rmeta: src/lib.rs src/cli.rs Cargo.toml

src/lib.rs:
src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
