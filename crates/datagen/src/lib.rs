//! # sfa-datagen — workload generators for the reproduction
//!
//! The paper evaluates on two real datasets we cannot obtain (Reuters news
//! articles; the www.sun.com web-server log) plus a synthetic benchmark it
//! describes precisely. This crate rebuilds all three as seeded,
//! deterministic generators (see DESIGN.md §4 for the substitution
//! argument):
//!
//! * [`synthetic`] — the paper's §5 synthetic data, verbatim: 10⁴ columns,
//!   10⁴–10⁶ rows, densities 1–5%, and one planted similar pair per 100
//!   columns — 20 pairs in each of the similarity bands (45,55) … (85,95).
//! * [`weblog`] — a Sun-weblog-like URL × client-IP matrix: power-law page
//!   popularity and parent pages whose embedded images/applets are fetched
//!   alongside them, the exact mechanism the paper credits for its similar
//!   URL pairs. Reproduces the Fig. 3 similarity-distribution shape.
//! * [`news`] — a Reuters-like word × document matrix: Zipfian vocabulary,
//!   planted low-support collocations (the "Beluga caviar / Ketel vodka"
//!   regime of Fig. 1), a planted multi-word cluster, and frequent
//!   background words that a priori *can* mine.
//! * [`zipf`] — the shared power-law sampler.
//! * [`planted`] — machinery to plant a column pair with an exact target
//!   Jaccard similarity.
//! * [`cf`] — a collaborative-filtering workload (item × user matrix with
//!   latent taste communities), for the §1 recommendation application.
//! * [`basket`] — IBM Quest-style `T10.I4`-like transactions, the a priori
//!   literature's home workload (Agrawal & Srikant, VLDB '94).

pub mod basket;
pub mod cf;
pub mod news;
pub mod planted;
pub mod synthetic;
pub mod weblog;
pub mod zipf;

pub use basket::{BasketConfig, BasketData};
pub use cf::{CfConfig, CfData};
pub use news::{NewsConfig, NewsData};
pub use planted::{plant_pair, PlantedPair};
pub use synthetic::{SyntheticConfig, SyntheticData};
pub use weblog::{WeblogConfig, WeblogData};
pub use zipf::ZipfSampler;
