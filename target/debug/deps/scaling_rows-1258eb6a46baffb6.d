/root/repo/target/debug/deps/scaling_rows-1258eb6a46baffb6.d: crates/experiments/src/bin/scaling_rows.rs Cargo.toml

/root/repo/target/debug/deps/libscaling_rows-1258eb6a46baffb6.rmeta: crates/experiments/src/bin/scaling_rows.rs Cargo.toml

crates/experiments/src/bin/scaling_rows.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
