//! Graceful shutdown: signal handling, deadlines, and the cooperative
//! [`CancelToken`] the streaming pipelines poll.
//!
//! Mid-run kills are routine at the paper's §5 scale; the difference
//! between a kill and a *graceful* shutdown is whether the run gets to
//! flush its frontier first. The CLI installs handlers for `SIGINT` and
//! `SIGTERM` that do nothing but set an atomic flag; the pipeline polls a
//! [`CancelToken`] at row, pass, and shard boundaries, and on
//! cancellation persists a final checkpoint before returning
//! [`MatrixError::Canceled`] — which the CLI maps to its documented
//! resumable exit code 3. The `--deadline-secs` flag uses the same token
//! with a wall-clock deadline, for batch schedulers that would otherwise
//! SIGKILL at the slot boundary.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sfa_matrix::{MatrixError, Result};

/// Set by the signal handler; observed by tokens built with
/// [`CancelToken::watching_signals`].
static SIGNAL_FLAG: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    use super::{Ordering, SIGNAL_FLAG};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// POSIX `signal(2)`; libc is always linked on unix targets, so no
        /// external crate is needed for this one symbol.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // The only async-signal-safe thing worth doing: set the flag. The
        // pipeline notices at its next boundary poll.
        SIGNAL_FLAG.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        // SAFETY: `signal` is the POSIX API; the handler performs a single
        // atomic store, which is async-signal-safe.
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub(super) fn install() {}
}

/// Installs `SIGINT`/`SIGTERM` handlers that request a graceful shutdown,
/// and clears any previously latched signal so a new run starts fresh.
/// Idempotent; a no-op on non-unix platforms (where runs remain killable
/// but not gracefully interruptible).
pub fn install_signal_handlers() {
    SIGNAL_FLAG.store(false, Ordering::SeqCst);
    sys::install();
}

/// Whether a shutdown signal has been received since the handlers were
/// (last) installed.
#[must_use]
pub fn signal_received() -> bool {
    SIGNAL_FLAG.load(Ordering::SeqCst)
}

/// A cooperative cancellation token polled by the streaming pipelines.
///
/// A token cancels for any of three reasons: [`cancel`](Self::cancel) was
/// called on it (or a clone — clones share the flag), its deadline
/// passed, or — for tokens built with
/// [`watching_signals`](Self::watching_signals) — a shutdown signal
/// arrived. The default token never cancels, so non-interactive callers
/// pay one atomic load per poll and nothing else.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
    watch_signals: bool,
}

impl CancelToken {
    /// A token that only cancels when [`cancel`](Self::cancel) is called.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Also cancels once `timeout` has elapsed from now.
    #[must_use]
    pub fn with_deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Also cancels when a `SIGINT`/`SIGTERM` arrives (requires
    /// [`install_signal_handlers`] to have been called).
    #[must_use]
    pub fn watching_signals(mut self) -> Self {
        self.watch_signals = true;
        self
    }

    /// Requests cancellation; every clone of this token observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Why the token is canceled, if it is.
    fn cause(&self) -> Option<&'static str> {
        if self.flag.load(Ordering::SeqCst) {
            return Some("request");
        }
        if self.watch_signals && signal_received() {
            return Some("signal");
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some("deadline");
        }
        None
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_canceled(&self) -> bool {
        self.cause().is_some()
    }

    /// `Err(MatrixError::Canceled)` if cancellation has been requested,
    /// `Ok(())` otherwise — the form the pipeline's `?`-chains poll.
    ///
    /// # Errors
    ///
    /// [`MatrixError::Canceled`] naming the cause.
    pub fn check(&self) -> Result<()> {
        match self.cause() {
            Some(reason) => Err(MatrixError::Canceled { reason }),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_token_never_cancels() {
        let t = CancelToken::new();
        assert!(!t.is_canceled());
        t.check().expect("not canceled");
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_canceled());
        let err = t.check().expect_err("canceled");
        assert!(err.is_canceled());
        assert_eq!(err.to_string(), "canceled by request");
    }

    #[test]
    fn deadline_cancels_once_elapsed() {
        let t = CancelToken::new().with_deadline(Duration::from_secs(3600));
        assert!(!t.is_canceled(), "an hour has not passed");
        let t = CancelToken::new().with_deadline(Duration::ZERO);
        assert!(t.is_canceled());
        assert_eq!(
            t.check().expect_err("canceled").to_string(),
            "canceled by deadline"
        );
    }

    #[test]
    fn signal_flag_is_observed_only_by_watching_tokens() {
        install_signal_handlers();
        SIGNAL_FLAG.store(true, Ordering::SeqCst);
        assert!(signal_received());
        assert!(!CancelToken::new().is_canceled(), "non-watching is immune");
        let t = CancelToken::new().watching_signals();
        assert!(t.is_canceled());
        assert_eq!(
            t.check().expect_err("canceled").to_string(),
            "canceled by signal"
        );
        // Re-installing clears the latch for the next run.
        install_signal_handlers();
        assert!(!t.is_canceled());
    }
}
