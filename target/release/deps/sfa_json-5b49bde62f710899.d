/root/repo/target/release/deps/sfa_json-5b49bde62f710899.d: crates/json/src/lib.rs crates/json/src/parse.rs crates/json/src/ser.rs

/root/repo/target/release/deps/sfa_json-5b49bde62f710899: crates/json/src/lib.rs crates/json/src/parse.rs crates/json/src/ser.rs

crates/json/src/lib.rs:
crates/json/src/parse.rs:
crates/json/src/ser.rs:
