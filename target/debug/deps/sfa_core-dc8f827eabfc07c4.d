/root/repo/target/debug/deps/sfa_core-dc8f827eabfc07c4.d: crates/core/src/lib.rs crates/core/src/boolean.rs crates/core/src/cluster.rs crates/core/src/confidence.rs crates/core/src/config.rs crates/core/src/metrics.rs crates/core/src/pipeline.rs crates/core/src/quality.rs crates/core/src/report.rs crates/core/src/streaming.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/libsfa_core-dc8f827eabfc07c4.rmeta: crates/core/src/lib.rs crates/core/src/boolean.rs crates/core/src/cluster.rs crates/core/src/confidence.rs crates/core/src/config.rs crates/core/src/metrics.rs crates/core/src/pipeline.rs crates/core/src/quality.rs crates/core/src/report.rs crates/core/src/streaming.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/boolean.rs:
crates/core/src/cluster.rs:
crates/core/src/confidence.rs:
crates/core/src/config.rs:
crates/core/src/metrics.rs:
crates/core/src/pipeline.rs:
crates/core/src/quality.rs:
crates/core/src/report.rs:
crates/core/src/streaming.rs:
crates/core/src/verify.rs:
