/root/repo/target/debug/deps/sfa-37c86f5f00aee526.d: src/bin/sfa.rs

/root/repo/target/debug/deps/sfa-37c86f5f00aee526: src/bin/sfa.rs

src/bin/sfa.rs:
