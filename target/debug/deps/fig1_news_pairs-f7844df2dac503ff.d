/root/repo/target/debug/deps/fig1_news_pairs-f7844df2dac503ff.d: crates/experiments/src/bin/fig1_news_pairs.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_news_pairs-f7844df2dac503ff.rmeta: crates/experiments/src/bin/fig1_news_pairs.rs Cargo.toml

crates/experiments/src/bin/fig1_news_pairs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
