//! Adversarial load generator CLI for `sfa serve` (see [`loadgen`]).
//!
//! ```text
//! cargo run --release -p sfa-experiments --bin serve-loadgen -- \
//!     --addr 127.0.0.1:4617 --cols 1300 [--seed N] [--clients N] \
//!     [--requests N] [--adversarial true|false] [--ingest-every N]
//! ```
//!
//! Prints a disposition table and one machine-readable JSON summary line
//! (`loadgen: {...}`). Exit codes: 0 clean run, 1 the server violated the
//! client-visible protocol (a reply line that is not `OK`/`ERR`/
//! `OVERLOADED`, or a truncated multi-line body), 2 usage error.
//!
//! [`loadgen`]: sfa_experiments::loadgen

use std::process::ExitCode;

use sfa_experiments::loadgen::{run_load, LoadConfig};
use sfa_experiments::print_table;
use sfa_json::Json;

fn usage() -> ExitCode {
    eprintln!(
        "usage: serve-loadgen --addr HOST:PORT --cols N [--seed N] [--clients N] \
         [--requests N] [--adversarial true|false] [--ingest-every N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut cols: Option<u32> = None;
    let mut seed = 1u64;
    let mut clients = 24usize;
    let mut requests = 64usize;
    let mut adversarial = true;
    let mut ingest_every = 7usize;
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(value) = it.next() else {
            return usage();
        };
        let ok = match key.as_str() {
            "--addr" => {
                addr = Some(value.clone());
                true
            }
            "--cols" => value.parse().map(|v| cols = Some(v)).is_ok(),
            "--seed" => value.parse().map(|v| seed = v).is_ok(),
            "--clients" => value.parse().map(|v| clients = v).is_ok(),
            "--requests" => value.parse().map(|v| requests = v).is_ok(),
            "--adversarial" => value.parse().map(|v| adversarial = v).is_ok(),
            "--ingest-every" => value.parse().map(|v| ingest_every = v).is_ok(),
            _ => false,
        };
        if !ok {
            return usage();
        }
    }
    let (Some(addr), Some(cols)) = (addr, cols) else {
        return usage();
    };
    let cfg = LoadConfig {
        addr,
        seed,
        clients,
        requests_per_client: requests,
        n_cols: cols,
        adversarial,
        ingest_every,
    };

    let report = run_load(&cfg);
    print_table(
        &format!(
            "serve-loadgen (seed {seed}, {clients} clients × {requests} requests, \
             adversarial: {adversarial})"
        ),
        &["disposition", "count"],
        &[
            vec!["sent".into(), report.sent.to_string()],
            vec!["ok".into(), report.ok.to_string()],
            vec!["err".into(), report.err.to_string()],
            vec!["overloaded".into(), report.overloaded.to_string()],
            vec!["closed".into(), report.closed.to_string()],
            vec!["violations".into(), report.violations.to_string()],
            vec![
                "acked ingests".into(),
                report.acked_ingests.len().to_string(),
            ],
        ],
    );
    let summary = Json::obj()
        .field("seed", seed)
        .field("ok", report.ok)
        .field("err", report.err)
        .field("overloaded", report.overloaded)
        .field("closed", report.closed)
        .field("violations", report.violations)
        .field("acked_ingests", report.acked_ingests.len())
        .field("p50_micros", report.percentile_micros(0.50))
        .field("p99_micros", report.percentile_micros(0.99))
        .field("qps", report.qps());
    println!("loadgen: {summary}");
    if report.violations == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("serve-loadgen: {} protocol violations", report.violations);
        ExitCode::from(1)
    }
}
