//! Signature-phase cost: MH (linear in k) vs K-MH (sublinear on sparse
//! data) — the Fig. 5b / Fig. 6b claims — plus the parallel MH option.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfa_bench::bench_weblog;
use sfa_matrix::MemoryRowStream;
use sfa_minhash::{compute_bottom_k, compute_signatures, mh::compute_signatures_parallel};

fn signatures(c: &mut Criterion) {
    let (_, rows) = bench_weblog();
    let mut group = c.benchmark_group("signatures");
    group.sample_size(10);
    for &k in &[50usize, 100, 200, 400] {
        group.bench_with_input(BenchmarkId::new("mh", k), &k, |b, &k| {
            b.iter(|| compute_signatures(&mut MemoryRowStream::new(&rows), k, 7).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("kmh", k), &k, |b, &k| {
            b.iter(|| compute_bottom_k(&mut MemoryRowStream::new(&rows), k, 7).unwrap());
        });
    }
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("mh_parallel_k200", threads),
            &threads,
            |b, &threads| {
                b.iter(|| compute_signatures_parallel(&rows, 200, 7, threads));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, signatures);
criterion_main!(benches);
