/root/repo/target/debug/deps/basket_benchmark-7f692185978bb039.d: crates/experiments/src/bin/basket_benchmark.rs

/root/repo/target/debug/deps/basket_benchmark-7f692185978bb039: crates/experiments/src/bin/basket_benchmark.rs

crates/experiments/src/bin/basket_benchmark.rs:
