/root/repo/target/release/deps/sfa-67384b1b329bfef1.d: src/lib.rs src/cli.rs

/root/repo/target/release/deps/sfa-67384b1b329bfef1: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
