//! Property tests for the `sfa serve` line protocol: the parser is total
//! over arbitrary bytes, and a live server survives garbage streams,
//! random write splits, NUL bytes, oversized lines, and half-closed
//! sockets — replying `ERR` or closing, never panicking.
//!
//! Mirrors `tests/corruption_properties.rs`: the pure parser gets the
//! wide proptest sweep; the socket-level schedules run seeded against one
//! in-process server and end with a liveness probe.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use proptest::prelude::*;

use sfa::core::CancelToken;
use sfa::hash::hash64_with_seed;
use sfa::matrix::RowMajorMatrix;
use sfa::serve::{parse_request, Request, Server, ServerConfig, MAX_LINE_BYTES};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_is_total_over_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        // Never panics; an error reason is printable and newline-free
        // (it travels inside a one-line `ERR` reply).
        if let Err(e) = parse_request(&bytes) {
            prop_assert!(!e.reason.is_empty());
            prop_assert!(!e.reason.contains('\n'));
            prop_assert!(e.reason.is_ascii());
        }
    }

    #[test]
    fn drawn_valid_requests_always_parse(
        col in 0u32..10_000,
        other in 0u32..10_000,
        k in 1usize..=10_000,
        tenths in 0u64..=10,
    ) {
        let lines = [
            format!("TOPK {col} {k}"),
            format!("SIM {col} {other}"),
            format!("PAIRS 0.{}", tenths.min(9)),
            "HEALTH".to_owned(),
            "QUIT".to_owned(),
            format!("INGEST {col}"),
        ];
        for line in &lines {
            let parsed = parse_request(line.as_bytes());
            prop_assert!(parsed.is_ok(), "{line:?} -> {parsed:?}");
        }
        // Verbs are case-sensitive on purpose (the grammar is exact).
        prop_assert!(parse_request(b"topk 0 1").is_err());
    }

    #[test]
    fn mutated_valid_lines_parse_or_fail_cleanly(
        pos_raw in 0usize..64,
        mask in 1u8..=255,
        col in 0u32..100,
        k in 1usize..=100,
    ) {
        let line = format!("TOPK {col} {k}");
        let mut bytes = line.into_bytes();
        let pos = pos_raw % bytes.len();
        bytes[pos] ^= mask;
        // Anything goes except a panic; errors keep the one-line shape.
        if let Err(e) = parse_request(&bytes) {
            prop_assert!(!e.reason.contains('\n'));
        }
    }

    #[test]
    fn ingest_rejects_unsorted_and_out_of_grammar_noise(
        a in 0u32..1000,
        b in 0u32..1000,
    ) {
        prop_assume!(a != b);
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(parse_request(format!("INGEST {lo} {hi}").as_bytes()).is_ok());
        prop_assert!(parse_request(format!("INGEST {hi} {lo}").as_bytes()).is_err());
        prop_assert!(parse_request(format!("INGEST {lo} {lo}").as_bytes()).is_err());
    }
}

#[test]
fn oversized_lines_are_rejected_before_allocation_grows() {
    let blob = vec![b'A'; MAX_LINE_BYTES + 1];
    assert!(parse_request(&blob).is_err());
    // At the limit the line is still structurally judged (and rejected
    // here only because "AAA…" is no verb).
    let at_limit = vec![b'A'; MAX_LINE_BYTES - 1];
    assert!(parse_request(&at_limit).is_err());
    assert!(matches!(parse_request(b"HEALTH"), Ok(Request::Health)));
}

/// One in-process server on a loopback port for the socket-level
/// schedules, torn down via the cancel token.
fn with_live_server(f: impl FnOnce(&str)) {
    let matrix = RowMajorMatrix::from_rows(3, vec![vec![0, 1], vec![0, 1, 2], vec![2]]).unwrap();
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 2,
        queue_depth: 8,
        request_timeout: Duration::from_millis(200),
        drain: Duration::from_secs(1),
        ..ServerConfig::default()
    };
    let server = Server::bind(config, &matrix).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let cancel = CancelToken::new();
    std::thread::scope(|s| {
        let run = s.spawn(|| server.run(&cancel));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&addr)));
        cancel.cancel();
        let metrics = run.join().expect("server thread").expect("clean drain");
        assert!(metrics.balances(), "{metrics:?}");
        if let Err(panic) = outcome {
            std::panic::resume_unwind(panic);
        }
    });
}

/// Seeded garbage: NULs, high bytes, newlines, and occasional valid-ish
/// prefixes, written in random-sized chunks.
fn garbage_stream(seed: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut state = seed | 1;
    while out.len() < len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        match state % 16 {
            0 => out.extend_from_slice(b"TOPK "),
            1 => out.push(b'\n'),
            2 => out.push(0),
            _ => out.push((state >> 24) as u8),
        }
    }
    out
}

#[test]
fn garbage_floods_in_random_splits_never_kill_the_server() {
    with_live_server(|addr| {
        for case in 0u64..24 {
            let seed = hash64_with_seed(case, 0x5EEDED);
            let bytes = garbage_stream(seed, 64 + (seed % 512) as usize);
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .unwrap();
            // Random split points: write in chunks of 1..32 bytes.
            let mut off = 0;
            let mut chunk_seed = seed;
            while off < bytes.len() {
                chunk_seed = hash64_with_seed(chunk_seed, 3);
                let take = (1 + chunk_seed % 31) as usize;
                let end = (off + take).min(bytes.len());
                if stream.write_all(&bytes[off..end]).is_err() {
                    break; // server already closed on us: acceptable
                }
                off = end;
            }
            // Every third case half-closes the write side mid-line.
            if case % 3 == 0 {
                let _ = stream.shutdown(Shutdown::Write);
            }
            // Whatever comes back must be ERR lines and then a close.
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            loop {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => assert!(
                        line.starts_with("ERR") || line.starts_with("OVERLOADED"),
                        "case {case}: unexpected reply {line:?}"
                    ),
                }
            }
        }
        // Liveness probe: a fresh well-formed client still gets answers.
        let mut probe = TcpStream::connect(addr).expect("connect");
        probe
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        probe.write_all(b"SIM 0 1\n").unwrap();
        let mut reply = String::new();
        BufReader::new(&probe).read_line(&mut reply).unwrap();
        assert!(
            reply.starts_with("OK "),
            "server unresponsive after garbage floods: {reply:?}"
        );
    });
}

#[test]
fn half_open_and_instantly_dropped_connections_leave_no_debris() {
    with_live_server(|addr| {
        for case in 0..16u64 {
            let stream = TcpStream::connect(addr).expect("connect");
            match case % 3 {
                0 => drop(stream), // connect-and-vanish
                1 => {
                    // Half a request, then half-close, then vanish.
                    let mut s = stream;
                    let _ = s.write_all(b"SIM 0");
                    let _ = s.shutdown(Shutdown::Write);
                    let mut sink = Vec::new();
                    let _ = s
                        .set_read_timeout(Some(Duration::from_millis(500)))
                        .map(|()| (&s).read_to_end(&mut sink));
                }
                _ => {
                    // A request sent and abandoned before the reply.
                    let mut s = stream;
                    let _ = s.write_all(b"TOPK 0 5\n");
                }
            }
        }
        let mut probe = TcpStream::connect(addr).expect("connect");
        probe
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        probe.write_all(b"HEALTH\n").unwrap();
        let mut reply = String::new();
        BufReader::new(&probe).read_line(&mut reply).unwrap();
        assert!(reply.starts_with("OK "), "{reply:?}");
    });
}
