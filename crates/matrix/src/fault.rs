//! Deterministic fault injection and bounded-retry recovery for row streams.
//!
//! Out-of-core mining means multi-minute sequential passes over disk (or
//! network-mounted) storage, where transient IO failures are a matter of
//! *when*, not *if*. This module provides both halves of the fault story:
//!
//! * [`FaultyRowStream`] — a deterministic, seeded wrapper that injects
//!   transient IO errors, fatal faults, simulated truncation and corrupted
//!   rows at configurable rates and positions, so every recovery path in
//!   the pipeline is testable without real flaky hardware.
//! * [`RetryingRowStream`] — a wrapper that classifies failures with
//!   [`MatrixError::is_transient`], retries transient ones up to a bounded
//!   number of times (with optional backoff), and transparently
//!   [`reset`](RowStream::reset)s and fast-forwards past already-delivered
//!   rows so the consumer never notices the hiccup.
//!
//! The taxonomy, retry semantics and their interaction with
//! checkpoint/resume are documented in `docs/ROBUSTNESS.md`.

use std::collections::BTreeSet;
use std::time::Duration;

use sfa_hash::hash64_with_seed;

use crate::error::{MatrixError, Result};
use crate::stream::RowStream;

/// What faults a [`FaultyRowStream`] injects, and where.
///
/// All injection is a pure function of the row id and [`seed`](Self::seed),
/// so two streams with the same config fault identically — runs are
/// reproducible.
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// Seed for the hash that decides which rows suffer rate-based
    /// transient faults.
    pub seed: u64,
    /// Expected transient IO errors per 1000 rows: a row `r` faults when
    /// `hash(r, seed) mod 1000 < transient_per_mille`. Each such fault
    /// fires **once**; re-reading the row after the error succeeds, so
    /// progress under retry is monotone.
    pub transient_per_mille: u32,
    /// Rows that always suffer one transient fault, regardless of the rate
    /// (for tests that need a fault at an exact position).
    pub transient_at_rows: Vec<u32>,
    /// Row at which every read fails with a *fatal* (non-transient) IO
    /// error — simulates a crash/kill mid-pass for checkpoint/resume tests.
    pub fatal_at_row: Option<u32>,
    /// Row at which the stream reports `UnexpectedEof`, simulating a file
    /// truncated under the reader (fatal by the taxonomy).
    pub truncate_at_row: Option<u32>,
    /// Row delivered with a corrupted payload (an out-of-range column id
    /// appended) — exercises downstream validation, not the retry path.
    pub corrupt_at_row: Option<u32>,
}

/// A [`RowStream`] wrapper injecting deterministic faults per
/// [`FaultConfig`].
///
/// Transient faults fire once per row and are remembered across
/// [`reset`](RowStream::reset), so a retrying consumer makes progress;
/// fatal and truncation faults fire on every attempt. Skipped rows
/// ([`skip_rows`](RowStream::skip_rows)) are not inspected and never fault
/// — fast-forward is a recovery primitive, not a data path.
#[derive(Debug)]
pub struct FaultyRowStream<S> {
    inner: S,
    config: FaultConfig,
    /// Index of the next row a `read_row` call would deliver.
    pos: u32,
    /// Rows whose one-shot transient fault has already fired.
    fired: BTreeSet<u32>,
    transient_injected: u64,
}

impl<S: RowStream> FaultyRowStream<S> {
    /// Wraps `inner` with the given fault plan.
    #[must_use]
    pub fn new(inner: S, config: FaultConfig) -> Self {
        Self {
            inner,
            config,
            pos: 0,
            fired: BTreeSet::new(),
            transient_injected: 0,
        }
    }

    /// How many transient faults have been injected so far.
    #[must_use]
    pub const fn transient_injected(&self) -> u64 {
        self.transient_injected
    }

    /// Unwraps the inner stream.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Whether row `row` is scheduled for a (one-shot) transient fault.
    fn transient_due(&self, row: u32) -> bool {
        if self.fired.contains(&row) {
            return false;
        }
        if self.config.transient_at_rows.contains(&row) {
            return true;
        }
        self.config.transient_per_mille > 0
            && hash64_with_seed(u64::from(row), self.config.seed) % 1000
                < u64::from(self.config.transient_per_mille)
    }
}

impl<S: RowStream> RowStream for FaultyRowStream<S> {
    fn n_rows(&self) -> u32 {
        self.inner.n_rows()
    }

    fn n_cols(&self) -> u32 {
        self.inner.n_cols()
    }

    fn read_row(&mut self, buf: &mut Vec<u32>) -> Result<Option<u32>> {
        let row = self.pos;
        if self.config.fatal_at_row == Some(row) {
            return Err(std::io::Error::other(format!("injected fatal fault at row {row}")).into());
        }
        if self.config.truncate_at_row == Some(row) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("injected truncation at row {row}"),
            )
            .into());
        }
        if self.transient_due(row) {
            self.fired.insert(row);
            self.transient_injected += 1;
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                format!("injected transient fault at row {row}"),
            )
            .into());
        }
        let r = self.inner.read_row(buf)?;
        if r.is_some() {
            if self.config.corrupt_at_row == Some(row) {
                // An out-of-range column id: structurally invalid, so any
                // validating consumer must reject the row.
                buf.push(self.inner.n_cols());
            }
            self.pos += 1;
        }
        Ok(r)
    }

    fn reset(&mut self) -> Result<()> {
        self.inner.reset()?;
        self.pos = 0;
        Ok(())
    }

    fn skip_rows(&mut self, count: u64) -> Result<u64> {
        let skipped = self.inner.skip_rows(count)?;
        self.pos += u32::try_from(skipped).expect("bounded by n_rows");
        Ok(skipped)
    }
}

/// Counters describing what a [`RetryingRowStream`] had to do to keep its
/// consumer oblivious to transient failures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Transient errors that were absorbed and retried.
    pub retries: u64,
    /// Rows fast-forwarded past during recovery (reset + skip back to the
    /// failure point).
    pub rows_refetched: u64,
}

/// A [`RowStream`] wrapper that survives transient failures.
///
/// On a transient error (per [`MatrixError::is_transient`]) during
/// [`read_row`](RowStream::read_row), the wrapper sleeps for the configured
/// backoff, [`reset`](RowStream::reset)s the inner stream, fast-forwards
/// past the rows already delivered in the current pass, and retries — up to
/// `max_retries` times per incident. Fatal errors, and transient errors
/// beyond the budget, propagate unchanged.
#[derive(Debug)]
pub struct RetryingRowStream<S> {
    inner: S,
    max_retries: u32,
    backoff: Duration,
    /// Rows consumed (delivered or skipped) in the current pass — the
    /// cursor recovery fast-forwards to.
    consumed: u64,
    stats: RetryStats,
}

impl<S: RowStream> RetryingRowStream<S> {
    /// Wraps `inner`, retrying each transient incident up to `max_retries`
    /// times with no backoff.
    #[must_use]
    pub fn new(inner: S, max_retries: u32) -> Self {
        Self {
            inner,
            max_retries,
            backoff: Duration::ZERO,
            consumed: 0,
            stats: RetryStats::default(),
        }
    }

    /// Sets a fixed sleep before each retry attempt.
    #[must_use]
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// What the wrapper has absorbed so far.
    #[must_use]
    pub const fn stats(&self) -> RetryStats {
        self.stats
    }

    /// Unwraps the inner stream.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Rewinds the inner stream and fast-forwards past the `consumed`-row
    /// prefix of the current pass.
    fn recover(&mut self) -> Result<()> {
        self.inner.reset()?;
        let skipped = self.inner.skip_rows(self.consumed)?;
        self.stats.rows_refetched += skipped;
        if skipped != self.consumed {
            return Err(MatrixError::DimensionMismatch {
                detail: format!(
                    "stream shrank during retry: could only fast-forward {skipped} of {} rows",
                    self.consumed
                ),
            });
        }
        Ok(())
    }
}

impl<S: RowStream> RowStream for RetryingRowStream<S> {
    fn n_rows(&self) -> u32 {
        self.inner.n_rows()
    }

    fn n_cols(&self) -> u32 {
        self.inner.n_cols()
    }

    fn read_row(&mut self, buf: &mut Vec<u32>) -> Result<Option<u32>> {
        let mut attempts = 0u32;
        // After a transient failure the inner stream's position is suspect,
        // so every subsequent attempt re-establishes it via reset +
        // fast-forward before re-reading.
        let mut need_recover = false;
        loop {
            if need_recover {
                match self.recover() {
                    Ok(()) => {}
                    Err(e) if e.is_transient() && attempts < self.max_retries => {
                        attempts += 1;
                        self.stats.retries += 1;
                        if !self.backoff.is_zero() {
                            std::thread::sleep(self.backoff);
                        }
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
            match self.inner.read_row(buf) {
                Ok(r) => {
                    if r.is_some() {
                        self.consumed += 1;
                    }
                    return Ok(r);
                }
                Err(e) if e.is_transient() && attempts < self.max_retries => {
                    attempts += 1;
                    self.stats.retries += 1;
                    if !self.backoff.is_zero() {
                        std::thread::sleep(self.backoff);
                    }
                    need_recover = true;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn reset(&mut self) -> Result<()> {
        self.inner.reset()?;
        self.consumed = 0;
        Ok(())
    }

    fn skip_rows(&mut self, count: u64) -> Result<u64> {
        // Fast-forward is itself a recovery primitive (and never faults in
        // the injection harness), so errors here propagate without retry.
        let skipped = self.inner.skip_rows(count)?;
        self.consumed += skipped;
        Ok(skipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::RowMajorMatrix;
    use crate::stream::MemoryRowStream;

    fn sample() -> RowMajorMatrix {
        let rows = (0..50u32).map(|r| vec![r % 7, (r % 7) + 1]).collect();
        RowMajorMatrix::from_rows(8, rows).unwrap()
    }

    fn drain(stream: &mut impl RowStream) -> Vec<(u32, Vec<u32>)> {
        let mut out = Vec::new();
        let mut buf = Vec::new();
        while let Some(id) = stream.read_row(&mut buf).unwrap() {
            out.push((id, buf.clone()));
        }
        out
    }

    #[test]
    fn injection_is_deterministic_and_rate_controlled() {
        let m = sample();
        let config = FaultConfig {
            seed: 7,
            transient_per_mille: 200,
            ..FaultConfig::default()
        };
        let faulted_rows = |seed: u64| -> Vec<u32> {
            let mut s = FaultyRowStream::new(
                MemoryRowStream::new(&m),
                FaultConfig {
                    seed,
                    ..config.clone()
                },
            );
            let mut buf = Vec::new();
            let mut faulted = Vec::new();
            loop {
                match s.read_row(&mut buf) {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(e) => {
                        assert!(e.is_transient());
                        // The fault is one-shot: the immediate re-read of
                        // the same row succeeds.
                        faulted.push(s.pos);
                    }
                }
            }
            faulted
        };
        let a = faulted_rows(7);
        let b = faulted_rows(7);
        let c = faulted_rows(8);
        assert_eq!(a, b, "same seed must fault identically");
        assert!(!a.is_empty(), "200‰ over 50 rows should fault somewhere");
        assert_ne!(a, c, "different seeds should fault differently");
    }

    #[test]
    fn transient_fault_fires_once_per_row() {
        let m = sample();
        let mut s = FaultyRowStream::new(
            MemoryRowStream::new(&m),
            FaultConfig {
                transient_at_rows: vec![3],
                ..FaultConfig::default()
            },
        );
        let mut buf = Vec::new();
        for _ in 0..3 {
            assert!(s.read_row(&mut buf).unwrap().is_some());
        }
        let err = s.read_row(&mut buf).unwrap_err();
        assert!(err.is_transient());
        // No reset needed: the wrapper did not advance, and the fault is
        // spent, so the same row now succeeds.
        assert_eq!(s.read_row(&mut buf).unwrap(), Some(3));
        assert_eq!(s.transient_injected(), 1);
        // …and it stays spent across a reset.
        s.reset().unwrap();
        assert_eq!(drain(&mut s).len(), 50);
    }

    #[test]
    fn fatal_and_truncation_faults_are_not_transient() {
        let m = sample();
        for (config, expect_eof) in [
            (
                FaultConfig {
                    fatal_at_row: Some(5),
                    ..FaultConfig::default()
                },
                false,
            ),
            (
                FaultConfig {
                    truncate_at_row: Some(5),
                    ..FaultConfig::default()
                },
                true,
            ),
        ] {
            let mut s = FaultyRowStream::new(MemoryRowStream::new(&m), config);
            let mut buf = Vec::new();
            for _ in 0..5 {
                assert!(s.read_row(&mut buf).unwrap().is_some());
            }
            let err = s.read_row(&mut buf).unwrap_err();
            assert!(!err.is_transient(), "must be fatal: {err}");
            if expect_eof {
                assert!(err.to_string().contains("truncation"), "{err}");
            }
            // Fatal faults fire on every attempt.
            assert!(s.read_row(&mut buf).is_err());
        }
    }

    #[test]
    fn corrupt_row_carries_out_of_range_column() {
        let m = sample();
        let mut s = FaultyRowStream::new(
            MemoryRowStream::new(&m),
            FaultConfig {
                corrupt_at_row: Some(2),
                ..FaultConfig::default()
            },
        );
        let rows = drain(&mut s);
        assert_eq!(rows.len(), 50);
        let bad = &rows[2].1;
        assert!(
            bad.iter().any(|&c| c >= s.n_cols()),
            "row 2 should be corrupted: {bad:?}"
        );
        assert!(rows[3].1.iter().all(|&c| c < s.n_cols()));
    }

    #[test]
    fn retrying_stream_masks_transient_faults() {
        let m = sample();
        let clean = drain(&mut MemoryRowStream::new(&m));
        let faulty = FaultyRowStream::new(
            MemoryRowStream::new(&m),
            FaultConfig {
                seed: 42,
                transient_per_mille: 150,
                transient_at_rows: vec![0, 49],
                ..FaultConfig::default()
            },
        );
        let mut retrying = RetryingRowStream::new(faulty, 3);
        let recovered = drain(&mut retrying);
        assert_eq!(
            recovered, clean,
            "recovery must be invisible to the consumer"
        );
        let stats = retrying.stats();
        assert!(
            stats.retries >= 2,
            "at least the two forced faults: {stats:?}"
        );
        assert_eq!(
            stats.retries,
            retrying.into_inner().transient_injected(),
            "every injected transient fault should cost exactly one retry"
        );
    }

    #[test]
    fn retry_budget_is_bounded() {
        let m = sample();
        // max_retries = 0: the first transient error must propagate.
        let faulty = FaultyRowStream::new(
            MemoryRowStream::new(&m),
            FaultConfig {
                transient_at_rows: vec![1],
                ..FaultConfig::default()
            },
        );
        let mut retrying = RetryingRowStream::new(faulty, 0);
        let mut buf = Vec::new();
        assert_eq!(retrying.read_row(&mut buf).unwrap(), Some(0));
        assert!(retrying.read_row(&mut buf).unwrap_err().is_transient());
    }

    #[test]
    fn fatal_faults_pass_through_retry() {
        let m = sample();
        let faulty = FaultyRowStream::new(
            MemoryRowStream::new(&m),
            FaultConfig {
                fatal_at_row: Some(4),
                ..FaultConfig::default()
            },
        );
        let mut retrying = RetryingRowStream::new(faulty, 10);
        let mut buf = Vec::new();
        for _ in 0..4 {
            assert!(retrying.read_row(&mut buf).unwrap().is_some());
        }
        let err = retrying.read_row(&mut buf).unwrap_err();
        assert!(!err.is_transient());
        assert_eq!(retrying.stats().retries, 0, "fatal errors are not retried");
    }

    #[test]
    fn recovery_fast_forwards_not_redelivers() {
        let m = sample();
        let faulty = FaultyRowStream::new(
            MemoryRowStream::new(&m),
            FaultConfig {
                transient_at_rows: vec![10],
                ..FaultConfig::default()
            },
        );
        let mut retrying = RetryingRowStream::new(faulty, 2);
        let rows = drain(&mut retrying);
        assert_eq!(rows.len(), 50);
        let stats = retrying.stats();
        assert_eq!(stats.retries, 1);
        assert_eq!(
            stats.rows_refetched, 10,
            "recovery at row 10 fast-forwards exactly the delivered prefix"
        );
    }

    #[test]
    fn skip_rows_bypasses_faults() {
        let m = sample();
        let mut s = FaultyRowStream::new(
            MemoryRowStream::new(&m),
            FaultConfig {
                transient_at_rows: vec![0, 1, 2],
                ..FaultConfig::default()
            },
        );
        assert_eq!(s.skip_rows(3).unwrap(), 3);
        let mut buf = Vec::new();
        assert_eq!(s.read_row(&mut buf).unwrap(), Some(3));
    }
}
