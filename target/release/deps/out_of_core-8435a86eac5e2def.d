/root/repo/target/release/deps/out_of_core-8435a86eac5e2def.d: tests/out_of_core.rs

/root/repo/target/release/deps/out_of_core-8435a86eac5e2def: tests/out_of_core.rs

tests/out_of_core.rs:
