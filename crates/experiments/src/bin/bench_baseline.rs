//! Reproducible pipeline baseline: every scheme over the seeded synthetic
//! and weblog generators, with the full [`MiningMetrics`] counters.
//!
//! Writes `BENCH_pipeline.json` at the repository root. Everything in the
//! file is deterministic for the fixed [`EXPERIMENT_SEED`] — scan volumes,
//! signature bytes, per-stage candidate counts, bucket histograms, and
//! verification outcomes — so a re-run on any machine reproduces it
//! byte-for-byte and a diff means behavior actually changed. Wall-clock
//! timings are machine-dependent and therefore go to stdout only.
//!
//! ```text
//! cargo run --release -p sfa-experiments --bin bench-baseline
//! ```
//!
//! [`MiningMetrics`]: sfa_core::MiningMetrics

use std::path::PathBuf;

use sfa_core::{MiningResult, Scheme, METRICS_SCHEMA_VERSION};
use sfa_datagen::{SyntheticConfig, WeblogConfig};
use sfa_experiments::{print_table, run_scheme, EXPERIMENT_SEED};
use sfa_json::Json;
use sfa_matrix::RowMajorMatrix;

/// Similarity threshold shared by every baseline run.
const S_STAR: f64 = 0.7;

fn schemes() -> Vec<Scheme> {
    vec![
        Scheme::Mh { k: 100, delta: 0.2 },
        Scheme::MhRowSort { k: 100, delta: 0.2 },
        Scheme::Kmh { k: 64, delta: 0.2 },
        Scheme::MLsh {
            k: 100,
            r: 5,
            l: 20,
            sampled: false,
        },
        Scheme::HLsh {
            r: 8,
            l: 8,
            t: 4,
            max_levels: 12,
        },
    ]
}

fn run_json(result: &MiningResult) -> Json {
    Json::obj()
        .field("scheme", result.config.scheme.name())
        .field("config", result.config)
        .field("pairs_found", result.similar_pairs().len())
        .field(
            "candidate_false_positives",
            result.false_positive_candidates(),
        )
        .field("metrics", &result.metrics)
}

fn dataset_json(name: &str, rows: &RowMajorMatrix, table: &mut Vec<Vec<String>>) -> Json {
    let mut runs = Vec::new();
    for scheme in schemes() {
        let result = run_scheme(rows, scheme, S_STAR, EXPERIMENT_SEED);
        table.push(vec![
            name.to_owned(),
            scheme.name().to_owned(),
            format!("{:.3}", result.timings.total().as_secs_f64()),
            result.candidates_generated().to_string(),
            result.similar_pairs().len().to_string(),
            result.metrics.verification.intersection_work.to_string(),
        ]);
        runs.push(run_json(&result));
    }
    Json::obj()
        .field("name", name)
        .field("rows", rows.n_rows())
        .field("cols", rows.n_cols())
        .field("nonzeros", rows.nnz())
        .field("s_star", S_STAR)
        .field("runs", runs)
}

fn main() {
    let synthetic = SyntheticConfig::small(2_000, EXPERIMENT_SEED)
        .generate()
        .matrix
        .transpose();
    let weblog = WeblogConfig::tiny(EXPERIMENT_SEED)
        .generate()
        .matrix
        .transpose();

    let mut table = Vec::new();
    let datasets = vec![
        dataset_json("synthetic", &synthetic, &mut table),
        dataset_json("weblog", &weblog, &mut table),
    ];
    print_table(
        "bench-baseline (timings are informational; JSON holds only deterministic counters)",
        &[
            "dataset",
            "scheme",
            "time(s)",
            "candidates",
            "pairs",
            "probe work",
        ],
        &table,
    );

    let doc = Json::obj()
        .field("schema_version", METRICS_SCHEMA_VERSION)
        .field("seed", EXPERIMENT_SEED)
        .field("datasets", datasets);
    let path = out_path();
    std::fs::write(&path, doc.to_string_pretty()).expect("write BENCH_pipeline.json");
    println!("\nwrote {}", path.display());
}

/// `$SFA_BENCH_OUT` or `<repo root>/BENCH_pipeline.json`.
fn out_path() -> PathBuf {
    std::env::var_os("SFA_BENCH_OUT").map_or_else(
        || {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_pipeline.json")
        },
        PathBuf::from,
    )
}
