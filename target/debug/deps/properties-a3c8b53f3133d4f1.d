/root/repo/target/debug/deps/properties-a3c8b53f3133d4f1.d: crates/lsh/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a3c8b53f3133d4f1.rmeta: crates/lsh/tests/properties.rs Cargo.toml

crates/lsh/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
