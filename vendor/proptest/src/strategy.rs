//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically produces values from a
//! [`TestRng`](crate::test_runner::TestRng). Unlike real proptest there
//! is no value tree / shrinking — `generate` returns the final value.

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy: Sized {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Builds a second strategy from every generated value and samples it
    /// (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }
}

/// References to strategies are themselves strategies, so `proptest!`
/// can both consume expressions and borrow named strategies.
impl<S: Strategy> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields clones of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;

    /// The full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// A strategy over the entire domain of `T` (like `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for a primitive; the `any::<T>()` result type.
pub struct AnyPrimitive<T> {
    _marker: core::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary {
    ($($t:ty => |$rng:ident| $gen:expr),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn generate(&self, $rng: &mut TestRng) -> $t {
                $gen
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive { _marker: core::marker::PhantomData }
            }
        }
    )*};
}

impl_arbitrary! {
    u8 => |rng| (rng.next_u64() >> 56) as u8,
    u16 => |rng| (rng.next_u64() >> 48) as u16,
    u32 => |rng| (rng.next_u64() >> 32) as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize,
    bool => |rng| rng.next_u64() >> 63 == 1,
    f64 => |rng| rng.unit_f64(),
}

macro_rules! impl_int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategies!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategies {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
}

// Signed int ranges go through i64 arithmetic to avoid overflow on the
// span computation above; re-check with a targeted test.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn signed_ranges_are_in_bounds() {
        let mut rng = TestRng::for_test("signed");
        for _ in 0..1000 {
            let x = (-5i64..7).generate(&mut rng);
            assert!((-5..7).contains(&x));
            let y = (-3i32..=3).generate(&mut rng);
            assert!((-3..=3).contains(&y));
        }
    }

    #[test]
    fn just_yields_the_value() {
        let mut rng = TestRng::for_test("just");
        assert_eq!(Just(41u8).generate(&mut rng), 41);
    }
}
