/root/repo/target/debug/deps/bench_baseline-d72dc2a871f85019.d: crates/experiments/src/bin/bench_baseline.rs

/root/repo/target/debug/deps/libbench_baseline-d72dc2a871f85019.rmeta: crates/experiments/src/bin/bench_baseline.rs

crates/experiments/src/bin/bench_baseline.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/experiments
