/root/repo/target/debug/deps/sfa_hash-3cbf785c292e3ed6.d: crates/hash/src/lib.rs crates/hash/src/bucket.rs crates/hash/src/family.rs crates/hash/src/mix.rs crates/hash/src/rng.rs crates/hash/src/tabulation.rs crates/hash/src/topk.rs

/root/repo/target/debug/deps/sfa_hash-3cbf785c292e3ed6: crates/hash/src/lib.rs crates/hash/src/bucket.rs crates/hash/src/family.rs crates/hash/src/mix.rs crates/hash/src/rng.rs crates/hash/src/tabulation.rs crates/hash/src/topk.rs

crates/hash/src/lib.rs:
crates/hash/src/bucket.rs:
crates/hash/src/family.rs:
crates/hash/src/mix.rs:
crates/hash/src/rng.rs:
crates/hash/src/tabulation.rs:
crates/hash/src/topk.rs:
