/root/repo/target/debug/deps/apriori_agreement-c4017d6c7cb6e4ad.d: tests/apriori_agreement.rs Cargo.toml

/root/repo/target/debug/deps/libapriori_agreement-c4017d6c7cb6e4ad.rmeta: tests/apriori_agreement.rs Cargo.toml

tests/apriori_agreement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
