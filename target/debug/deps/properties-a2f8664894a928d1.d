/root/repo/target/debug/deps/properties-a2f8664894a928d1.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a2f8664894a928d1.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
