/root/repo/target/release/deps/sfa_lsh-30d9e3b56ce05dbd.d: crates/lsh/src/lib.rs crates/lsh/src/filter.rs crates/lsh/src/hamming.rs crates/lsh/src/hlsh.rs crates/lsh/src/mlsh.rs crates/lsh/src/online.rs crates/lsh/src/optimize.rs

/root/repo/target/release/deps/libsfa_lsh-30d9e3b56ce05dbd.rlib: crates/lsh/src/lib.rs crates/lsh/src/filter.rs crates/lsh/src/hamming.rs crates/lsh/src/hlsh.rs crates/lsh/src/mlsh.rs crates/lsh/src/online.rs crates/lsh/src/optimize.rs

/root/repo/target/release/deps/libsfa_lsh-30d9e3b56ce05dbd.rmeta: crates/lsh/src/lib.rs crates/lsh/src/filter.rs crates/lsh/src/hamming.rs crates/lsh/src/hlsh.rs crates/lsh/src/mlsh.rs crates/lsh/src/online.rs crates/lsh/src/optimize.rs

crates/lsh/src/lib.rs:
crates/lsh/src/filter.rs:
crates/lsh/src/hamming.rs:
crates/lsh/src/hlsh.rs:
crates/lsh/src/mlsh.rs:
crates/lsh/src/online.rs:
crates/lsh/src/optimize.rs:
