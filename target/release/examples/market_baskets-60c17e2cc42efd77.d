/root/repo/target/release/examples/market_baskets-60c17e2cc42efd77.d: examples/market_baskets.rs

/root/repo/target/release/examples/market_baskets-60c17e2cc42efd77: examples/market_baskets.rs

examples/market_baskets.rs:
