/root/repo/target/debug/deps/cli_end_to_end-db301dd41e4b850b.d: tests/cli_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libcli_end_to_end-db301dd41e4b850b.rmeta: tests/cli_end_to_end.rs Cargo.toml

tests/cli_end_to_end.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_sfa=placeholder:sfa
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
