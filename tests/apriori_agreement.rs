//! The support-free schemes against the classical baseline: wherever
//! a priori *can* see (above its support threshold), both must agree; below
//! it, only the support-free schemes see anything.

use sfa::apriori::apriori_similar_pairs;
use sfa::core::{Pipeline, PipelineConfig, Scheme};
use sfa::datagen::NewsConfig;
use sfa::matrix::{ops::prune_support, MemoryRowStream};

#[test]
fn mh_finds_everything_apriori_finds_and_more() {
    let data = NewsConfig::small(41).generate();
    let s_star = 0.6;
    let min_support = 30u32; // above the planted collocations' support

    // a priori on support-pruned data (as the paper's Fig. 4 setup).
    let (pruned, kept) = prune_support(&data.matrix, min_support as usize);
    let pruned_rows = pruned.transpose();
    let apairs = apriori_similar_pairs(&pruned_rows, min_support, s_star);
    // Map back to original column ids.
    let apriori_found: std::collections::HashSet<(u32, u32)> = apairs
        .iter()
        .map(|p| (kept[p.i as usize], kept[p.j as usize]))
        .collect();

    // MH on the *unpruned* data.
    let rows = data.matrix.transpose();
    let result = Pipeline::new(PipelineConfig::new(
        Scheme::Mh {
            k: 250,
            delta: 0.25,
        },
        s_star,
        11,
    ))
    .run(&mut MemoryRowStream::new(&rows))
    .unwrap();
    let mh_found: std::collections::HashSet<(u32, u32)> =
        result.similar_pairs().iter().map(|p| (p.i, p.j)).collect();

    // Superset: everything a priori sees, MH sees.
    for pair in &apriori_found {
        assert!(
            mh_found.contains(pair),
            "MH missed the apriori-visible pair {pair:?}"
        );
    }

    // Strictly more: the planted low-support collocations are invisible to
    // a priori but found by MH.
    let mut recovered_hidden = 0;
    for &(a, b) in &data.collocations {
        assert!(
            !apriori_found.contains(&(a, b)),
            "collocation ({a}, {b}) should be below apriori's support threshold"
        );
        if mh_found.contains(&(a, b)) {
            recovered_hidden += 1;
        }
    }
    assert!(
        recovered_hidden * 10 >= data.collocations.len() * 8,
        "MH recovered only {recovered_hidden}/{} hidden collocations",
        data.collocations.len()
    );
}

#[test]
fn apriori_pair_measurements_match_exact_columns() {
    let data = NewsConfig::small(43).generate();
    let rows = data.matrix.transpose();
    let pairs = apriori_similar_pairs(&rows, 10, 0.3);
    assert!(!pairs.is_empty());
    for p in pairs.iter().take(50) {
        assert_eq!(
            p.support as usize,
            data.matrix.intersection_size(p.i, p.j),
            "support mismatch for ({}, {})",
            p.i,
            p.j
        );
        assert!((p.similarity - data.matrix.similarity(p.i, p.j)).abs() < 1e-12);
        assert!((p.conf_ij - data.matrix.confidence(p.i, p.j)).abs() < 1e-12);
        assert!((p.conf_ji - data.matrix.confidence(p.j, p.i)).abs() < 1e-12);
    }
}

#[test]
fn association_rules_from_frequent_head_words() {
    // The Zipf head gives a priori plenty of high-support material; rules
    // generated from it must have exact confidences.
    let data = NewsConfig::small(47).generate();
    let rows = data.matrix.transpose();
    let (sets, _) = sfa::apriori::frequent_itemsets(&rows, 300, 2);
    let rules = sfa::apriori::generate_rules(&sets, 0.5);
    for r in rules.iter().take(20) {
        assert_eq!(r.antecedent.len(), 1);
        assert_eq!(r.consequent.len(), 1);
        let exact = data.matrix.confidence(r.antecedent[0], r.consequent[0]);
        assert!(
            (r.confidence - exact).abs() < 1e-12,
            "rule {:?} ⇒ {:?}",
            r.antecedent,
            r.consequent
        );
    }
}
