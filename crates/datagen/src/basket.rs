//! IBM Quest-style synthetic market-basket data.
//!
//! The a priori literature (Agrawal & Srikant, VLDB '94 — reference \[2\] of
//! the paper) evaluates on synthetic transaction data named `T10.I4.D100K`:
//! average transaction size `T`, average pattern size `I`, `D` transactions
//! drawn from a pool of correlated "maximal potentially large itemsets".
//! This generator reproduces that scheme so the baseline can be exercised
//! on its home turf, and so the support-free schemes can be compared on
//! data with genuine frequent-itemset structure.

use rand::{Rng, SeedableRng};

use sfa_matrix::{MatrixBuilder, SparseMatrix};

use crate::zipf::ZipfSampler;

/// Configuration for the Quest-style generator.
#[derive(Debug, Clone)]
pub struct BasketConfig {
    /// Number of transactions `D`.
    pub n_transactions: u32,
    /// Number of items `N`.
    pub n_items: u32,
    /// Average transaction size `T` (Poisson-ish via geometric).
    pub avg_transaction_len: f64,
    /// Average pattern size `I`.
    pub avg_pattern_len: f64,
    /// Number of potentially-large itemsets `L`.
    pub n_patterns: usize,
    /// Probability a chosen pattern item is actually emitted (corruption
    /// level; Quest uses ~0.5–0.9).
    pub pattern_fidelity: f64,
    /// Root seed.
    pub seed: u64,
}

impl BasketConfig {
    /// A scaled-down `T10.I4` preset.
    #[must_use]
    pub fn t10_i4(n_transactions: u32, seed: u64) -> Self {
        Self {
            n_transactions,
            n_items: 1_000,
            avg_transaction_len: 10.0,
            avg_pattern_len: 4.0,
            n_patterns: 200,
            pattern_fidelity: 0.75,
            seed,
        }
    }
}

/// The generated transactions with their source patterns (ground truth for
/// "these itemsets should be frequent").
#[derive(Debug, Clone)]
pub struct BasketData {
    /// Transactions × items, column-major (columns are items).
    pub matrix: SparseMatrix,
    /// The potentially-large itemsets the transactions were built from.
    pub patterns: Vec<Vec<u32>>,
}

impl BasketConfig {
    /// Generates the dataset.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configuration.
    #[must_use]
    pub fn generate(&self) -> BasketData {
        assert!(self.n_transactions > 0 && self.n_items > 0, "empty config");
        assert!(self.n_patterns > 0, "need at least one pattern");
        assert!((0.0..=1.0).contains(&self.pattern_fidelity), "bad fidelity");
        assert!(
            self.avg_transaction_len >= 1.0 && self.avg_pattern_len >= 1.0,
            "lengths must be >= 1"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);

        // Patterns: random item sets with geometric sizes around I; item
        // choice is Zipf-weighted so patterns share popular items, as in
        // Quest ("items in the large itemsets are picked so that some are
        // common").
        let zipf = ZipfSampler::new(self.n_items as usize, 0.8);
        let pattern_stop = 1.0 / self.avg_pattern_len;
        let mut patterns: Vec<Vec<u32>> = Vec::with_capacity(self.n_patterns);
        while patterns.len() < self.n_patterns {
            let mut len = 1;
            while rng.gen::<f64>() > pattern_stop && len < 20 {
                len += 1;
            }
            let mut items: Vec<u32> = (0..len).map(|_| zipf.sample(&mut rng) as u32).collect();
            items.sort_unstable();
            items.dedup();
            if !items.is_empty() {
                patterns.push(items);
            }
        }
        // Pattern popularity is itself skewed.
        let pattern_pick = ZipfSampler::new(self.n_patterns, 1.0);

        let tx_stop = 1.0 / self.avg_transaction_len;
        let mut builder = MatrixBuilder::with_capacity(
            self.n_transactions,
            self.n_items,
            (f64::from(self.n_transactions) * self.avg_transaction_len) as usize,
        );
        for t in 0..self.n_transactions {
            // Target length ~ Geometric(mean T).
            let mut target = 1usize;
            while rng.gen::<f64>() > tx_stop && target < 100 {
                target += 1;
            }
            let mut emitted = 0usize;
            while emitted < target {
                let pat = &patterns[pattern_pick.sample(&mut rng)];
                for &item in pat {
                    if rng.gen::<f64>() < self.pattern_fidelity {
                        builder.add_entry(t, item).expect("item id in range");
                        emitted += 1;
                    }
                }
                // Guard against zero-progress loops on tiny fidelity.
                if self.pattern_fidelity < 0.05 {
                    break;
                }
            }
        }
        BasketData {
            matrix: builder.build_csc(),
            patterns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_config() {
        let cfg = BasketConfig::t10_i4(2_000, 1);
        let data = cfg.generate();
        assert_eq!(data.matrix.n_rows(), 2_000);
        assert_eq!(data.matrix.n_cols(), 1_000);
        assert_eq!(data.patterns.len(), 200);
    }

    #[test]
    fn transaction_lengths_average_near_t() {
        let cfg = BasketConfig::t10_i4(3_000, 2);
        let data = cfg.generate();
        let rows = data.matrix.transpose();
        let avg = rows.nnz() as f64 / f64::from(rows.n_rows());
        assert!(
            (5.0..20.0).contains(&avg),
            "average transaction length {avg} too far from T = 10"
        );
    }

    #[test]
    fn popular_patterns_become_frequent_itemsets() {
        // The head pattern should reach meaningful support as an itemset.
        let cfg = BasketConfig::t10_i4(3_000, 3);
        let data = cfg.generate();
        let rows = data.matrix.transpose();
        let counts = rows.column_counts();
        // The most popular pattern's items are individually frequent.
        let head = &data.patterns[0];
        for &item in head {
            assert!(
                counts[item as usize] > 30,
                "head pattern item {item} support {}",
                counts[item as usize]
            );
        }
        // And apriori finds frequent pairs at a support a priori can use.
        let (sets, _) = sfa_apriori_shim::frequent_itemsets(&rows, 30, 2);
        assert!(
            sets.iter().any(|s| s.items.len() == 2),
            "no frequent pairs at support 30"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            BasketConfig::t10_i4(500, 9).generate().matrix,
            BasketConfig::t10_i4(500, 9).generate().matrix
        );
    }

    /// Local shim so the test can call a priori without a circular
    /// dev-dependency (`sfa-apriori` dev-depends on `sfa-datagen`): a
    /// minimal level-1/2 counter sufficient for the assertion above.
    mod sfa_apriori_shim {
        use sfa_matrix::RowMajorMatrix;

        pub struct ItemSet {
            pub items: Vec<u32>,
        }

        pub fn frequent_itemsets(
            m: &RowMajorMatrix,
            min_support: u32,
            _max_k: usize,
        ) -> (Vec<ItemSet>, ()) {
            let counts = m.column_counts();
            let mut out: Vec<ItemSet> = counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c >= min_support)
                .map(|(j, _)| ItemSet {
                    items: vec![j as u32],
                })
                .collect();
            let mut pair_counts = sfa_hash::PairCounter::new();
            for (_, row) in m.rows() {
                let frequent: Vec<u32> = row
                    .iter()
                    .copied()
                    .filter(|&c| counts[c as usize] >= min_support)
                    .collect();
                for (a, &ci) in frequent.iter().enumerate() {
                    for &cj in &frequent[a + 1..] {
                        pair_counts.increment(ci, cj);
                    }
                }
            }
            out.extend(
                pair_counts
                    .iter()
                    .filter(|&(_, _, c)| c >= min_support)
                    .map(|(i, j, _)| ItemSet { items: vec![i, j] }),
            );
            (out, ())
        }
    }
}
