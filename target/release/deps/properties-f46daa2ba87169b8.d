/root/repo/target/release/deps/properties-f46daa2ba87169b8.d: crates/minhash/tests/properties.rs

/root/repo/target/release/deps/properties-f46daa2ba87169b8: crates/minhash/tests/properties.rs

crates/minhash/tests/properties.rs:
