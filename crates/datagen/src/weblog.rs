//! Sun-weblog-like URL × client matrix.
//!
//! The paper's real dataset is "the log of HTTP requests made over a period
//! of nine days to the Sun Microsystems Web server": ~13 000 URL columns,
//! over 200 000 client-IP rows, most column densities below 0.01%. The similar
//! pairs it finds are "URLs corresponding to gif images or Java applets
//! which are loaded automatically when a client IP accesses a parent URL".
//!
//! This generator rebuilds that mechanism: parent pages with power-law
//! popularity own a handful of embedded child resources fetched with high
//! probability on every parent visit, plus background noise hits. Columns
//! for children of one parent are therefore highly similar (but
//! low-support), and everything else is sparse and dissimilar — yielding
//! the Fig. 3 histogram shape: a huge mass of near-zero similarities and a
//! thin tail of high-similarity pairs.

use rand::{Rng, SeedableRng};

use sfa_matrix::{MatrixBuilder, SparseMatrix};

use crate::zipf::ZipfSampler;

/// Configuration for the weblog generator.
#[derive(Debug, Clone)]
pub struct WeblogConfig {
    /// Number of client rows.
    pub n_clients: u32,
    /// Number of parent pages.
    pub n_parents: u32,
    /// Children per parent are drawn uniformly from `0..=max_children`.
    pub max_children: u32,
    /// Probability a child resource is fetched when its parent is visited.
    pub child_fetch_prob: f64,
    /// Zipf exponent of parent-page popularity.
    pub zipf_exponent: f64,
    /// Mean page visits per client (geometric, ≥ 1).
    pub mean_visits: f64,
    /// Per-client probability of one extra uniform-random URL hit.
    pub noise_prob: f64,
    /// Root seed.
    pub seed: u64,
}

impl WeblogConfig {
    /// Paper-scale preset: ≈ 13 000 URLs, 200 000 clients.
    #[must_use]
    pub fn paper_scale(seed: u64) -> Self {
        Self {
            n_clients: 200_000,
            n_parents: 4_000,
            max_children: 4,
            child_fetch_prob: 0.92,
            zipf_exponent: 1.0,
            mean_visits: 4.0,
            noise_prob: 0.3,
            seed,
        }
    }

    /// Small preset for tests and quick experiments (≈ 1 300 URLs).
    #[must_use]
    pub fn small(seed: u64) -> Self {
        Self {
            n_clients: 20_000,
            n_parents: 400,
            max_children: 4,
            child_fetch_prob: 0.92,
            zipf_exponent: 1.0,
            mean_visits: 4.0,
            noise_prob: 0.3,
            seed,
        }
    }

    /// Tiny preset for unit tests.
    #[must_use]
    pub fn tiny(seed: u64) -> Self {
        Self {
            n_clients: 2_000,
            n_parents: 60,
            max_children: 3,
            child_fetch_prob: 0.9,
            zipf_exponent: 1.0,
            mean_visits: 3.0,
            noise_prob: 0.2,
            seed,
        }
    }
}

/// The generated weblog dataset.
#[derive(Debug, Clone)]
pub struct WeblogData {
    /// URL columns × client rows, column-major.
    pub matrix: SparseMatrix,
    /// For each URL column: the parent page it belongs to (parents map to
    /// themselves). `children_of[p]` can be recovered by scanning.
    pub parent_of: Vec<u32>,
    /// Number of parent-page columns (ids `0..n_parent_cols` are parents;
    /// the rest are embedded child resources).
    pub n_parent_cols: u32,
}

impl WeblogConfig {
    /// Generates the dataset.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configuration (zero parents/clients,
    /// probabilities outside `[0, 1]`).
    #[must_use]
    pub fn generate(&self) -> WeblogData {
        assert!(self.n_parents > 0 && self.n_clients > 0, "empty config");
        assert!((0.0..=1.0).contains(&self.child_fetch_prob), "bad prob");
        assert!((0.0..=1.0).contains(&self.noise_prob), "bad noise prob");
        assert!(self.mean_visits >= 1.0, "mean visits must be >= 1");
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);

        // Lay out URL ids: parents first, then children grouped by parent.
        let mut parent_of: Vec<u32> = (0..self.n_parents).collect();
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); self.n_parents as usize];
        for p in 0..self.n_parents {
            let k = rng.gen_range(0..=self.max_children);
            for _ in 0..k {
                let id = parent_of.len() as u32;
                parent_of.push(p);
                children[p as usize].push(id);
            }
        }
        let n_urls = parent_of.len() as u32;

        let popularity = ZipfSampler::new(self.n_parents as usize, self.zipf_exponent);
        // Geometric with mean `mean_visits`: success prob 1/mean.
        let stop_prob = 1.0 / self.mean_visits;

        let mut builder = MatrixBuilder::with_capacity(
            self.n_clients,
            n_urls,
            (f64::from(self.n_clients) * self.mean_visits * 2.0) as usize,
        );
        for client in 0..self.n_clients {
            // Number of page visits ~ Geometric(stop_prob), at least 1.
            let mut visits = 1;
            while rng.gen::<f64>() > stop_prob && visits < 200 {
                visits += 1;
            }
            for _ in 0..visits {
                let p = popularity.sample(&mut rng) as u32;
                builder
                    .add_entry(client, p)
                    .expect("parent URL id in range");
                for &child in &children[p as usize] {
                    if rng.gen::<f64>() < self.child_fetch_prob {
                        builder
                            .add_entry(client, child)
                            .expect("child URL id in range");
                    }
                }
            }
            if rng.gen::<f64>() < self.noise_prob {
                let noise = rng.gen_range(0..n_urls);
                builder.add_entry(client, noise).expect("noise id in range");
            }
        }
        WeblogData {
            matrix: builder.build_csc(),
            parent_of,
            n_parent_cols: self.n_parents,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_config() {
        let data = WeblogConfig::tiny(1).generate();
        assert_eq!(data.matrix.n_rows(), 2_000);
        assert!(data.matrix.n_cols() >= 60);
        assert_eq!(data.parent_of.len(), data.matrix.n_cols() as usize);
    }

    #[test]
    fn parents_map_to_themselves() {
        let data = WeblogConfig::tiny(2).generate();
        for p in 0..data.n_parent_cols {
            assert_eq!(data.parent_of[p as usize], p);
        }
        for c in data.n_parent_cols..data.matrix.n_cols() {
            assert!(data.parent_of[c as usize] < data.n_parent_cols);
        }
    }

    #[test]
    fn children_are_similar_to_their_parent() {
        let data = WeblogConfig::tiny(3).generate();
        // Find a popular parent with at least one child and check S.
        let mut checked = 0;
        for c in data.n_parent_cols..data.matrix.n_cols() {
            let p = data.parent_of[c as usize];
            if data.matrix.column_count(p) >= 30 {
                let s = data.matrix.similarity(p, c);
                assert!(s > 0.6, "child {c} of parent {p} only has similarity {s}");
                checked += 1;
            }
        }
        assert!(checked > 5, "too few parent-child pairs to check");
    }

    #[test]
    fn sibling_children_are_similar() {
        let data = WeblogConfig::tiny(4).generate();
        let mut checked = 0;
        for c1 in data.n_parent_cols..data.matrix.n_cols() {
            for c2 in (c1 + 1)..data.matrix.n_cols() {
                if data.parent_of[c1 as usize] == data.parent_of[c2 as usize]
                    && data.matrix.column_count(c1) >= 30
                {
                    let s = data.matrix.similarity(c1, c2);
                    assert!(s > 0.5, "siblings {c1},{c2} similarity {s}");
                    checked += 1;
                }
            }
        }
        assert!(checked > 2, "too few sibling pairs to check");
    }

    #[test]
    fn columns_are_sparse() {
        let data = WeblogConfig::tiny(5).generate();
        let stats = sfa_matrix::stats::density_stats(&data.matrix);
        assert!(stats.mean < 0.1, "mean density {}", stats.mean);
    }

    #[test]
    fn similarity_distribution_has_heavy_low_tail() {
        // The Fig. 3 shape: overwhelmingly many low-similarity pairs, few
        // high-similarity ones.
        let data = WeblogConfig::tiny(6).generate();
        let hist = sfa_matrix::stats::similarity_histogram(&data.matrix, 10);
        let low: u64 = hist[..3].iter().sum();
        let high: u64 = hist[7..].iter().sum();
        assert!(high > 0, "no high-similarity pairs at all");
        assert!(
            low > high * 10,
            "expected heavy low tail, got low {low}, high {high}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = WeblogConfig::tiny(7).generate();
        let b = WeblogConfig::tiny(7).generate();
        assert_eq!(a.matrix, b.matrix);
    }
}
