/root/repo/target/debug/deps/fig9_comparison-f0c87cea7e661241.d: crates/experiments/src/bin/fig9_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_comparison-f0c87cea7e661241.rmeta: crates/experiments/src/bin/fig9_comparison.rs Cargo.toml

crates/experiments/src/bin/fig9_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
