/root/repo/target/debug/deps/synthetic_sweep-6a50ae3595c7a62d.d: crates/experiments/src/bin/synthetic_sweep.rs

/root/repo/target/debug/deps/libsynthetic_sweep-6a50ae3595c7a62d.rmeta: crates/experiments/src/bin/synthetic_sweep.rs

crates/experiments/src/bin/synthetic_sweep.rs:
