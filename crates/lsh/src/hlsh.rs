//! H-LSH: Hamming LSH over a density-doubling ladder (§4.2).
//!
//! Direct row-sampling LSH fails on sparse data ("if the matrix is sparse,
//! most of the subsets just contain zeros"), so H-LSH works on a *sequence*
//! of matrices `M_0, M_1, M_2, …` where `M_{i+1}` ORs random row pairs of
//! `M_i` — halving rows and roughly doubling column densities. At each
//! level, only columns whose density lies in `(1/t, (t−1)/t)` participate
//! (the paper uses `t = 4`), and each of `l` runs samples `r` rows and
//! buckets columns by their `r`-bit patterns. A pair is a candidate if it
//! shares a bucket in any run at any level.

use sfa_hash::bucket::{
    add_hist, count_sorted_runs, default_shards, merge_sharded, BucketTable, BudgetedPairCounter,
    FastHashMap, PairCounter, PairShard, ShardPassOutcome, ShardedPairCounter,
};
use sfa_hash::SeedSequence;
use sfa_matrix::ops::or_fold_random;
use sfa_matrix::RowMajorMatrix;
use sfa_minhash::{CandidateGenStats, CandidatePair};
use sfa_par::ThreadPool;

/// H-LSH parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HLshParams {
    /// Rows sampled per run (the pattern width; ≤ 64).
    pub r: usize,
    /// Runs per ladder level (the paper's `k` repetitions; we call it `l`
    /// to match the Fig. 7 axis).
    pub l: usize,
    /// Density gate: a column participates at a level only if its density
    /// there lies strictly inside `(1/t, (t−1)/t)`. The paper uses `t = 4`.
    pub t: u32,
    /// Maximum number of ladder levels (level 0 is the input matrix).
    pub max_levels: usize,
    /// Whether all-zero sampled patterns form a bucket. The paper leaves
    /// this open; `false` (default) avoids a flood of false positives from
    /// columns invisible in the sample. Kept as an ablation knob.
    pub include_zero_keys: bool,
    /// Root seed for ladder pairings and row sampling.
    pub seed: u64,
}

impl HLshParams {
    /// The paper's configuration shape: gate `t = 4`, zero keys off.
    #[must_use]
    pub const fn new(r: usize, l: usize, seed: u64) -> Self {
        Self {
            r,
            l,
            t: 4,
            max_levels: 24,
            include_zero_keys: false,
            seed,
        }
    }
}

/// The density ladder `M_0, M_1, …`.
///
/// Folding stops when rows run out (`n_rows < 2`) or `max_levels` is
/// reached. Level 0 is a borrowed view of the input; folded levels are
/// owned.
#[derive(Debug)]
pub struct DensityLadder<'a> {
    base: &'a RowMajorMatrix,
    folded: Vec<RowMajorMatrix>,
}

impl<'a> DensityLadder<'a> {
    /// Builds the ladder with seeded random pairings.
    #[must_use]
    pub fn build(base: &'a RowMajorMatrix, max_levels: usize, seed: u64) -> Self {
        let mut seq = SeedSequence::new(seed);
        let mut folded = Vec::new();
        let mut current = base;
        while folded.len() + 1 < max_levels && current.n_rows() >= 2 {
            let next = or_fold_random(current, seq.next_seed());
            folded.push(next);
            current = folded.last().expect("just pushed");
        }
        Self { base, folded }
    }

    /// Number of levels (including level 0).
    #[must_use]
    pub fn n_levels(&self) -> usize {
        1 + self.folded.len()
    }

    /// The matrix at `level` (0 = input).
    ///
    /// # Panics
    ///
    /// Panics if `level >= n_levels()`.
    #[must_use]
    pub fn level(&self, level: usize) -> &RowMajorMatrix {
        if level == 0 {
            self.base
        } else {
            &self.folded[level - 1]
        }
    }
}

/// Samples `r` distinct row ids from `0..n` (partial Fisher–Yates).
fn sample_distinct_rows(n: u32, r: usize, seq: &mut SeedSequence) -> Vec<u32> {
    let r = r.min(n as usize);
    let mut pool: Vec<u32> = (0..n).collect();
    for i in 0..r {
        let j = i + (seq.next_seed() % (n as usize - i) as u64) as usize;
        pool.swap(i, j);
    }
    pool.truncate(r);
    pool
}

/// Per-pair collision counts across all levels and runs.
#[must_use]
pub fn hlsh_collision_counts(base: &RowMajorMatrix, params: &HLshParams) -> PairCounter {
    hlsh_collision_counts_with_histogram(base, params, &mut Vec::new())
}

/// [`hlsh_collision_counts`], additionally accumulating the occupancy
/// histogram of every run's pattern bucket table into `hist`
/// (`hist[s]` = buckets holding exactly `s` columns).
#[must_use]
pub fn hlsh_collision_counts_with_histogram(
    base: &RowMajorMatrix,
    params: &HLshParams,
    hist: &mut Vec<u64>,
) -> PairCounter {
    assert!(
        params.r >= 1 && params.r <= 64,
        "pattern width must be 1..=64"
    );
    assert!(params.t >= 3, "density gate needs t >= 3");
    let ladder = DensityLadder::build(base, params.max_levels, params.seed);
    let mut seq = SeedSequence::new(params.seed ^ 0x5f5f_5f5f);
    let mut counter = PairCounter::new();
    let lo_gate = 1.0 / f64::from(params.t);
    let hi_gate = f64::from(params.t - 1) / f64::from(params.t);

    for level in 0..ladder.n_levels() {
        let matrix = ladder.level(level);
        let n = matrix.n_rows();
        if (n as usize) < params.r {
            break;
        }
        let counts = matrix.column_counts();
        // A column participates only inside the density gate.
        let gated: Vec<bool> = counts
            .iter()
            .map(|&c| {
                let d = f64::from(c) / f64::from(n);
                d > lo_gate && d < hi_gate
            })
            .collect();
        if !gated.iter().any(|&g| g) {
            continue;
        }
        for _run in 0..params.l {
            let rows = sample_distinct_rows(n, params.r, &mut seq);
            // Sparse pattern assembly: only columns present in a sampled
            // row get bits.
            let mut patterns: FastHashMap<u32, u64> = FastHashMap::default();
            for (bit, &row) in rows.iter().enumerate() {
                for &col in matrix.row(row) {
                    if gated[col as usize] {
                        *patterns.entry(col).or_insert(0) |= 1u64 << bit;
                    }
                }
            }
            let mut table = BucketTable::with_capacity(patterns.len());
            for (&col, &bits) in &patterns {
                table.insert(bits, col);
            }
            if params.include_zero_keys {
                for (col, &g) in gated.iter().enumerate() {
                    if g && !patterns.contains_key(&(col as u32)) {
                        table.insert(0, col as u32);
                    }
                }
            }
            table.accumulate_occupancy(hist);
            for (_, bucket) in table.iter() {
                // Buckets are unordered; sort for deterministic pairing.
                let mut cols = bucket.to_vec();
                cols.sort_unstable();
                for (a, &ci) in cols.iter().enumerate() {
                    for &cj in &cols[a + 1..] {
                        counter.increment(ci, cj);
                    }
                }
            }
        }
    }
    counter
}

/// H-LSH candidate generation: pairs colliding at least once, with
/// `estimate = collisions / (levels·runs)` as a crude score.
#[must_use]
pub fn hlsh_candidates(base: &RowMajorMatrix, params: &HLshParams) -> Vec<CandidatePair> {
    let counts = hlsh_collision_counts(base, params);
    let total_runs = (params.max_levels * params.l) as f64;
    let mut out: Vec<CandidatePair> = counts
        .iter()
        .map(|(i, j, c)| CandidatePair::new(i, j, f64::from(c) / total_runs))
        .collect();
    out.sort_by_key(CandidatePair::ids);
    out
}

/// [`hlsh_candidates`] plus instrumentation: the `colliding-pairs` /
/// `emitted` counters and the aggregated bucket-occupancy histogram over
/// every run at every ladder level.
#[must_use]
pub fn hlsh_candidates_with_stats(
    base: &RowMajorMatrix,
    params: &HLshParams,
) -> (Vec<CandidatePair>, CandidateGenStats) {
    let (out, stats, _) = hlsh_candidates_sharded(base, params, PairShard::all(), usize::MAX);
    (out, stats)
}

/// One budgeted shard pass of [`hlsh_candidates_with_stats`]: only pairs
/// in `shard` are counted and the collision counter's heap is capped at
/// `cap_bytes`. The ladder, the density gates, and the sampled row
/// patterns are all independent of the pair filter, so per-shard
/// collision counts equal the unsharded counts and the union over a full
/// partition is exactly the unsharded candidate set; with
/// [`PairShard::all`] and an unbounded cap the output is byte-identical
/// to the unsharded generator (which delegates here). On overflow the
/// pass aborts with an empty candidate list and `overflowed` set.
///
/// # Panics
///
/// Panics on the same parameter violations as
/// [`hlsh_collision_counts_with_histogram`].
#[must_use]
pub fn hlsh_candidates_sharded(
    base: &RowMajorMatrix,
    params: &HLshParams,
    shard: PairShard,
    cap_bytes: usize,
) -> (Vec<CandidatePair>, CandidateGenStats, ShardPassOutcome) {
    assert!(
        params.r >= 1 && params.r <= 64,
        "pattern width must be 1..=64"
    );
    assert!(params.t >= 3, "density gate needs t >= 3");
    let mut stats = CandidateGenStats::default();
    let ladder = DensityLadder::build(base, params.max_levels, params.seed);
    let mut seq = SeedSequence::new(params.seed ^ 0x5f5f_5f5f);
    let mut counter = BudgetedPairCounter::new(shard, cap_bytes);
    let lo_gate = 1.0 / f64::from(params.t);
    let hi_gate = f64::from(params.t - 1) / f64::from(params.t);

    'levels: for level in 0..ladder.n_levels() {
        let matrix = ladder.level(level);
        let n = matrix.n_rows();
        if (n as usize) < params.r {
            break;
        }
        let counts = matrix.column_counts();
        // A column participates only inside the density gate.
        let gated: Vec<bool> = counts
            .iter()
            .map(|&c| {
                let d = f64::from(c) / f64::from(n);
                d > lo_gate && d < hi_gate
            })
            .collect();
        if !gated.iter().any(|&g| g) {
            continue;
        }
        for _run in 0..params.l {
            if counter.overflowed() {
                break 'levels;
            }
            let rows = sample_distinct_rows(n, params.r, &mut seq);
            // Sparse pattern assembly: only columns present in a sampled
            // row get bits.
            let mut patterns: FastHashMap<u32, u64> = FastHashMap::default();
            for (bit, &row) in rows.iter().enumerate() {
                for &col in matrix.row(row) {
                    if gated[col as usize] {
                        *patterns.entry(col).or_insert(0) |= 1u64 << bit;
                    }
                }
            }
            let mut table = BucketTable::with_capacity(patterns.len());
            for (&col, &bits) in &patterns {
                table.insert(bits, col);
            }
            if params.include_zero_keys {
                for (col, &g) in gated.iter().enumerate() {
                    if g && !patterns.contains_key(&(col as u32)) {
                        table.insert(0, col as u32);
                    }
                }
            }
            table.accumulate_occupancy(&mut stats.bucket_histogram);
            for (_, bucket) in table.iter() {
                // Buckets are unordered; sort for deterministic pairing.
                let mut cols = bucket.to_vec();
                cols.sort_unstable();
                for (a, &ci) in cols.iter().enumerate() {
                    for &cj in &cols[a + 1..] {
                        counter.increment(ci, cj);
                    }
                }
            }
        }
    }
    let outcome = counter.outcome();
    if outcome.overflowed {
        return (Vec::new(), stats, outcome);
    }
    stats.record("colliding-pairs", counter.len() as u64);
    let total_runs = (params.max_levels * params.l) as f64;
    let mut out: Vec<CandidatePair> = counter
        .iter()
        .map(|(i, j, c)| CandidatePair::new(i, j, f64::from(c) / total_runs))
        .collect();
    out.sort_by_key(CandidatePair::ids);
    stats.record("emitted", out.len() as u64);
    (out, stats, outcome)
}

/// A ladder level's prepared work: which columns pass the density gate and
/// the `l` seeded row samples for its runs.
struct HlshLevelPlan {
    level: usize,
    gated: Vec<bool>,
    runs: Vec<Vec<u32>>,
}

/// Per-worker state for the parallel (level, run) bucket scans.
struct HlshLocal {
    counter: ShardedPairCounter,
    hist: Vec<u64>,
    buf: Vec<(u64, u32)>,
    patterns: FastHashMap<u32, u64>,
}

/// Pool-based [`hlsh_candidates_with_stats`]: the ladder construction and
/// the seeded sampling stream stay sequential (so the row samples — and
/// hence the output — are byte-identical to the sequential scan), then the
/// independent (level, run) bucket scans are dealt out dynamically over
/// the pool.
///
/// # Panics
///
/// Panics on the same parameter violations as
/// [`hlsh_collision_counts_with_histogram`].
#[must_use]
pub fn hlsh_candidates_with_stats_pool(
    base: &RowMajorMatrix,
    params: &HLshParams,
    pool: &ThreadPool,
) -> (Vec<CandidatePair>, CandidateGenStats) {
    if pool.threads() == 1 {
        return hlsh_candidates_with_stats(base, params);
    }
    assert!(
        params.r >= 1 && params.r <= 64,
        "pattern width must be 1..=64"
    );
    assert!(params.t >= 3, "density gate needs t >= 3");
    let ladder = DensityLadder::build(base, params.max_levels, params.seed);
    let mut seq = SeedSequence::new(params.seed ^ 0x5f5f_5f5f);
    let lo_gate = 1.0 / f64::from(params.t);
    let hi_gate = f64::from(params.t - 1) / f64::from(params.t);
    let mut plans: Vec<HlshLevelPlan> = Vec::new();
    for level in 0..ladder.n_levels() {
        let matrix = ladder.level(level);
        let n = matrix.n_rows();
        if (n as usize) < params.r {
            break;
        }
        let counts = matrix.column_counts();
        let gated: Vec<bool> = counts
            .iter()
            .map(|&c| {
                let d = f64::from(c) / f64::from(n);
                d > lo_gate && d < hi_gate
            })
            .collect();
        if !gated.iter().any(|&g| g) {
            // No seeds are consumed here, matching the sequential scan.
            continue;
        }
        let runs: Vec<Vec<u32>> = (0..params.l)
            .map(|_| sample_distinct_rows(n, params.r, &mut seq))
            .collect();
        plans.push(HlshLevelPlan { level, gated, runs });
    }
    let tasks: Vec<(usize, usize)> = plans
        .iter()
        .enumerate()
        .flat_map(|(p, plan)| (0..plan.runs.len()).map(move |r| (p, r)))
        .collect();
    let ladder = &ladder;
    let plans = &plans;
    let tasks = &tasks;
    let shards = default_shards(pool.threads());
    let locals = pool.par_fold(
        tasks.len(),
        1,
        |_| HlshLocal {
            counter: ShardedPairCounter::new(shards),
            hist: Vec::new(),
            buf: Vec::new(),
            patterns: FastHashMap::default(),
        },
        |local, range| {
            for idx in range {
                let (p, run) = tasks[idx];
                let plan = &plans[p];
                let matrix = ladder.level(plan.level);
                local.patterns.clear();
                for (bit, &row) in plan.runs[run].iter().enumerate() {
                    for &col in matrix.row(row) {
                        if plan.gated[col as usize] {
                            *local.patterns.entry(col).or_insert(0) |= 1u64 << bit;
                        }
                    }
                }
                local.buf.clear();
                for (&col, &bits) in &local.patterns {
                    local.buf.push((bits, col));
                }
                if params.include_zero_keys {
                    for (col, &g) in plan.gated.iter().enumerate() {
                        if g && !local.patterns.contains_key(&(col as u32)) {
                            local.buf.push((0, col as u32));
                        }
                    }
                }
                local.buf.sort_unstable();
                let _ = count_sorted_runs(&local.buf, &mut local.counter, &mut local.hist, 1);
            }
        },
    );
    let mut hist = Vec::new();
    let mut counters = Vec::with_capacity(locals.len());
    for local in locals {
        add_hist(&mut hist, &local.hist);
        counters.push(local.counter);
    }
    let counter = merge_sharded(counters, pool);
    let mut stats = CandidateGenStats {
        bucket_histogram: hist,
        ..CandidateGenStats::default()
    };
    stats.record("colliding-pairs", counter.len() as u64);
    let total_runs = (params.max_levels * params.l) as f64;
    let mut out: Vec<CandidatePair> = counter
        .iter()
        .map(|(i, j, c)| CandidatePair::new(i, j, f64::from(c) / total_runs))
        .collect();
    out.sort_by_key(CandidatePair::ids);
    stats.record("emitted", out.len() as u64);
    (out, stats)
}

/// Per-level diagnostics of an H-LSH run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HlshLevelStats {
    /// Ladder level (0 = input matrix).
    pub level: usize,
    /// Rows at this level.
    pub n_rows: u32,
    /// Columns inside the density gate `(1/t, (t−1)/t)`.
    pub gated_columns: usize,
    /// Distinct candidate pairs first discovered at this level.
    pub new_pairs: usize,
}

/// Runs H-LSH while recording where in the ladder each column becomes
/// active and each pair is first found — the introspection behind the
/// "a pair can become a candidate only on a matrix `M_i` in which they are
/// both sufficiently dense" analysis of §4.2.
#[must_use]
pub fn hlsh_trace(base: &RowMajorMatrix, params: &HLshParams) -> Vec<HlshLevelStats> {
    assert!(
        params.r >= 1 && params.r <= 64,
        "pattern width must be 1..=64"
    );
    assert!(params.t >= 3, "density gate needs t >= 3");
    let ladder = DensityLadder::build(base, params.max_levels, params.seed);
    let mut seq = SeedSequence::new(params.seed ^ 0x5f5f_5f5f);
    let lo_gate = 1.0 / f64::from(params.t);
    let hi_gate = f64::from(params.t - 1) / f64::from(params.t);
    let mut seen: sfa_hash::bucket::FastHashSet<u64> = sfa_hash::bucket::FastHashSet::default();
    let mut out = Vec::new();
    for level in 0..ladder.n_levels() {
        let matrix = ladder.level(level);
        let n = matrix.n_rows();
        if (n as usize) < params.r {
            break;
        }
        let counts = matrix.column_counts();
        let gated: Vec<bool> = counts
            .iter()
            .map(|&c| {
                let d = f64::from(c) / f64::from(n);
                d > lo_gate && d < hi_gate
            })
            .collect();
        let gated_columns = gated.iter().filter(|&&g| g).count();
        let mut new_pairs = 0usize;
        if gated_columns > 0 {
            for _run in 0..params.l {
                let rows = sample_distinct_rows(n, params.r, &mut seq);
                let mut patterns: FastHashMap<u32, u64> = FastHashMap::default();
                for (bit, &row) in rows.iter().enumerate() {
                    for &col in matrix.row(row) {
                        if gated[col as usize] {
                            *patterns.entry(col).or_insert(0) |= 1u64 << bit;
                        }
                    }
                }
                let mut table = BucketTable::with_capacity(patterns.len());
                for (&col, &bits) in &patterns {
                    table.insert(bits, col);
                }
                for (_, bucket) in table.iter() {
                    let mut cols = bucket.to_vec();
                    cols.sort_unstable();
                    for (a, &ci) in cols.iter().enumerate() {
                        for &cj in &cols[a + 1..] {
                            if seen.insert(sfa_hash::bucket::pack_pair(ci, cj)) {
                                new_pairs += 1;
                            }
                        }
                    }
                }
            }
        } else if params.l > 0 {
            // Keep the sampling stream aligned with hlsh_collision_counts,
            // which skips runs for fully-gated-out levels.
        }
        out.push(HlshLevelStats {
            level,
            n_rows: n,
            gated_columns,
            new_pairs,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 256 rows; columns 0, 1 identical (dense enough to gate at level 0
    /// or 1); columns 2, 3 dissimilar; column 4 ultra-sparse.
    fn matrix() -> RowMajorMatrix {
        let mut rows = Vec::new();
        for i in 0..256u32 {
            let mut r = Vec::new();
            if i % 3 == 0 {
                r.push(0);
                r.push(1);
            }
            if i % 4 == 0 {
                r.push(2);
            }
            if i % 4 == 2 {
                r.push(3);
            }
            if i == 7 {
                r.push(4);
            }
            rows.push(r);
        }
        RowMajorMatrix::from_rows(5, rows).unwrap()
    }

    #[test]
    fn ladder_halves_rows() {
        let m = matrix();
        let ladder = DensityLadder::build(&m, 5, 3);
        assert_eq!(ladder.n_levels(), 5);
        assert_eq!(ladder.level(0).n_rows(), 256);
        assert_eq!(ladder.level(1).n_rows(), 128);
        assert_eq!(ladder.level(4).n_rows(), 16);
    }

    #[test]
    fn ladder_densities_increase() {
        let m = matrix();
        let ladder = DensityLadder::build(&m, 4, 3);
        let d = |lvl: usize, col: u32| {
            let mat = ladder.level(lvl);
            mat.column_counts()[col as usize] as f64 / f64::from(mat.n_rows())
        };
        for col in 0..4 {
            assert!(
                d(3, col) >= d(0, col),
                "column {col}: density did not increase"
            );
        }
    }

    #[test]
    fn ladder_stops_at_tiny_matrices() {
        let m = RowMajorMatrix::from_rows(1, vec![vec![0], vec![0]]).unwrap();
        let ladder = DensityLadder::build(&m, 50, 1);
        assert!(ladder.n_levels() <= 2, "folded a 1-row matrix");
    }

    #[test]
    fn identical_columns_are_found() {
        let m = matrix();
        let params = HLshParams::new(8, 6, 5);
        let cands = hlsh_candidates(&m, &params);
        assert!(
            cands.iter().any(|c| c.ids() == (0, 1)),
            "identical pair not found: {cands:?}"
        );
    }

    #[test]
    fn disjoint_columns_rarely_collide() {
        let m = matrix();
        let params = HLshParams::new(12, 4, 5);
        let cands = hlsh_candidates(&m, &params);
        // Columns 2 and 3 are disjoint (density each 1/4): any collision
        // would need identical 12-bit patterns, overwhelmingly unlikely.
        assert!(
            !cands.iter().any(|c| c.ids() == (2, 3)),
            "disjoint pair collided: {cands:?}"
        );
    }

    #[test]
    fn density_gate_excludes_levels() {
        // With t = 4, a column only participates where its density is in
        // (0.25, 0.75). An ultra-sparse column never qualifies before the
        // ladder runs out of levels at max_levels = 2.
        let m = matrix();
        let params = HLshParams {
            r: 8,
            l: 4,
            t: 4,
            max_levels: 2,
            include_zero_keys: true,
            seed: 9,
        };
        let cands = hlsh_candidates(&m, &params);
        assert!(
            cands.iter().all(|c| c.i != 4 && c.j != 4),
            "sparse column should be gated out: {cands:?}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let m = matrix();
        let params = HLshParams::new(8, 6, 77);
        assert_eq!(hlsh_candidates(&m, &params), hlsh_candidates(&m, &params));
    }

    #[test]
    fn stats_variant_matches_plain_generator() {
        let m = matrix();
        let params = HLshParams::new(8, 6, 5);
        let (cands, stats) = hlsh_candidates_with_stats(&m, &params);
        assert_eq!(cands, hlsh_candidates(&m, &params));
        assert_eq!(stats.stage("emitted"), Some(cands.len() as u64));
        assert!(stats.bucket_histogram.iter().sum::<u64>() > 0);
    }

    #[test]
    fn zero_key_knob_only_adds_candidates() {
        let m = matrix();
        let off = HLshParams::new(8, 6, 13);
        let on = HLshParams {
            include_zero_keys: true,
            ..off
        };
        let c_off: std::collections::HashSet<(u32, u32)> = hlsh_candidates(&m, &off)
            .iter()
            .map(CandidatePair::ids)
            .collect();
        let c_on: std::collections::HashSet<(u32, u32)> = hlsh_candidates(&m, &on)
            .iter()
            .map(CandidatePair::ids)
            .collect();
        assert!(c_off.is_subset(&c_on));
    }

    #[test]
    fn trace_levels_match_ladder() {
        let m = matrix();
        let params = HLshParams::new(8, 4, 5);
        let trace = hlsh_trace(&m, &params);
        assert!(!trace.is_empty());
        // Levels halve in rows.
        for w in trace.windows(2) {
            assert_eq!(w[1].n_rows, w[0].n_rows.div_ceil(2));
            assert_eq!(w[1].level, w[0].level + 1);
        }
    }

    #[test]
    fn trace_total_pairs_cover_candidates() {
        let m = matrix();
        let params = HLshParams::new(8, 6, 5);
        let trace = hlsh_trace(&m, &params);
        let total: usize = trace.iter().map(|s| s.new_pairs).sum();
        let candidates = hlsh_candidates(&m, &params);
        assert_eq!(total, candidates.len(), "trace must account for every pair");
    }

    #[test]
    fn trace_shows_sparse_columns_gating_in_later() {
        // The ultra-sparse column 4 only passes the gate at deep levels, if
        // at all; the dense columns gate in early.
        let m = matrix();
        let params = HLshParams::new(8, 4, 7);
        let trace = hlsh_trace(&m, &params);
        let early = trace.first().unwrap();
        // Columns 0,1 (density 1/3) and 2,3 (1/4 boundary — excluded at
        // t = 4) give at least two gated columns at level 0.
        assert!(early.gated_columns >= 2, "{early:?}");
    }

    #[test]
    fn pool_variant_matches_sequential_at_every_thread_count() {
        let m = matrix();
        for params in [
            HLshParams::new(8, 6, 5),
            HLshParams {
                include_zero_keys: true,
                ..HLshParams::new(8, 4, 13)
            },
        ] {
            let seq = hlsh_candidates_with_stats(&m, &params);
            for threads in [1, 2, 4, 7] {
                let pool = sfa_par::ThreadPool::new(threads);
                let par = hlsh_candidates_with_stats_pool(&m, &params, &pool);
                assert_eq!(par.0, seq.0, "candidates, threads = {threads}");
                assert_eq!(par.1.stages, seq.1.stages, "stages, threads = {threads}");
                assert_eq!(
                    par.1.bucket_histogram, seq.1.bucket_histogram,
                    "histogram, threads = {threads}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "pattern width")]
    fn rejects_oversized_patterns() {
        let m = matrix();
        let _ = hlsh_candidates(&m, &HLshParams::new(65, 2, 1));
    }
}
