//! End-to-end tests of the compiled `sfa` binary: generate a table on
//! disk, inspect it, sketch it, mine it — all through the real process
//! boundary (`CARGO_BIN_EXE_sfa`).

use std::path::PathBuf;
use std::process::Command;

fn sfa(args: &[&str]) -> (bool, String, String) {
    let (code, stdout, stderr) = sfa_code(args);
    (code == 0, stdout, stderr)
}

/// Like [`sfa`] but returns the raw exit code, for the exit-code contract
/// tests (0 = ok, 1 = data error, 2 = usage error).
fn sfa_code(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_sfa"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code().expect("no signal"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("sfa_cli_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn help_succeeds_and_unknown_fails() {
    let (ok, stdout, _) = sfa(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    let (ok, _, stderr) = sfa(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown subcommand"));
}

#[test]
fn full_workflow_gen_info_sketch_mine() {
    let table = tmp("workflow.sfab");
    let table_s = table.to_str().unwrap();

    let (ok, stdout, stderr) = sfa(&[
        "gen", "--kind", "weblog", "--out", table_s, "--scale", "tiny", "--seed", "5",
    ]);
    assert!(ok, "gen failed: {stderr}");
    assert!(stdout.contains("wrote 2000 rows"));

    let (ok, stdout, _) = sfa(&["info", "--input", table_s]);
    assert!(ok);
    assert!(stdout.contains("2000 rows"));

    let sketch = tmp("workflow.sfkm");
    let (ok, stdout, _) = sfa(&[
        "sketch",
        "--input",
        table_s,
        "--out",
        sketch.to_str().unwrap(),
        "--scheme",
        "kmh",
        "--k",
        "24",
    ]);
    assert!(ok);
    assert!(stdout.contains("K-MH sketch"));
    assert!(sketch.exists());

    let csv = tmp("workflow_pairs.csv");
    let (ok, stdout, _) = sfa(&[
        "mine",
        "--input",
        table_s,
        "--scheme",
        "mlsh",
        "--threshold",
        "0.8",
        "--r",
        "4",
        "--l",
        "12",
        "--k",
        "48",
        "--csv",
        csv.to_str().unwrap(),
    ]);
    assert!(ok);
    assert!(stdout.contains("M-LSH:"));
    let pairs = std::fs::read_to_string(&csv).unwrap();
    assert!(pairs.lines().count() > 1, "mining found nothing:\n{stdout}");
    // Every CSV row reports similarity ≥ the threshold.
    for line in pairs.lines().skip(1) {
        let s: f64 = line.split(',').nth(2).unwrap().parse().unwrap();
        assert!(s >= 0.8, "below-threshold pair in output: {line}");
    }

    for p in [table, sketch, csv] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn mine_missing_file_reports_error() {
    let (ok, _, stderr) = sfa(&[
        "mine",
        "--input",
        "/nonexistent/table.sfab",
        "--scheme",
        "mh",
    ]);
    assert!(!ok);
    assert!(stderr.contains("error"));
}

#[test]
fn usage_errors_exit_2_and_print_usage() {
    // Unknown subcommand, missing required option, malformed number, and a
    // bad enum value are all the operator's mistake: exit code 2 + USAGE.
    for args in [
        vec!["frobnicate"],
        vec!["mine"],
        vec![
            "mine",
            "--input",
            "/nonexistent.sfab",
            "--scheme",
            "mh",
            "--k",
            "NaN",
        ],
        vec![
            "gen",
            "--kind",
            "weblog",
            "--out",
            "/dev/null",
            "--scale",
            "galactic",
        ],
    ] {
        let (code, _, stderr) = sfa_code(&args);
        assert_eq!(code, 2, "{args:?} should be a usage error: {stderr}");
        assert!(stderr.contains("error:"), "{args:?}: {stderr}");
        assert!(
            stderr.contains("USAGE"),
            "{args:?} should print usage: {stderr}"
        );
    }
}

#[test]
fn data_errors_exit_1_with_a_one_line_diagnostic() {
    // A missing input file is a data problem, not a usage problem: exit
    // code 1, a single diagnostic line, and no usage dump.
    let (code, _, stderr) = sfa_code(&["mine", "--input", "/nonexistent/t.sfab", "--scheme", "mh"]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("error:"), "{stderr}");
    assert!(
        !stderr.contains("USAGE"),
        "data errors must not dump usage: {stderr}"
    );
    assert_eq!(
        stderr.trim_end().lines().count(),
        1,
        "one line only: {stderr}"
    );

    // Same for a file that exists but holds garbage…
    let garbage = tmp("garbage.sfab");
    std::fs::write(&garbage, b"not a matrix at all").unwrap();
    let (code, _, stderr) = sfa_code(&["info", "--input", garbage.to_str().unwrap()]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("error:"), "{stderr}");
    assert!(!stderr.contains("USAGE"), "{stderr}");

    // …and for a checksummed v2 file with a flipped payload byte.
    let table = tmp("flipped.sfab");
    let table_s = table.to_str().unwrap();
    let (ok, _, _) = sfa(&[
        "gen", "--kind", "weblog", "--out", table_s, "--scale", "tiny",
    ]);
    assert!(ok);
    let mut bytes = std::fs::read(&table).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&table, &bytes).unwrap();
    let (code, _, stderr) = sfa_code(&["mine", "--input", table_s, "--scheme", "mh"]);
    assert_eq!(code, 1, "corruption must be a data error: {stderr}");
    assert!(stderr.contains("error:"), "{stderr}");

    for p in [garbage, table] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn mine_with_retries_and_checkpoints_from_the_cli() {
    let table = tmp("robust.sfab");
    let table_s = table.to_str().unwrap();
    let (ok, _, _) = sfa(&[
        "gen", "--kind", "weblog", "--out", table_s, "--scale", "tiny",
    ]);
    assert!(ok);

    let ckpt_dir = tmp("robust_ckpt");
    let metrics = tmp("robust_metrics.json");
    let (code, stdout, stderr) = sfa_code(&[
        "mine",
        "--input",
        table_s,
        "--scheme",
        "mh",
        "--threshold",
        "0.7",
        "--max-retries",
        "3",
        "--checkpoint-dir",
        ckpt_dir.to_str().unwrap(),
        "--checkpoint-every",
        "512",
        "--metrics-json",
        metrics.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "robust mine failed: {stderr}");
    assert!(stdout.contains("pairs at S >= 0.7"));

    let doc = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        doc.contains("\"recovery\""),
        "metrics must report recovery: {doc}"
    );
    assert!(doc.contains("\"checkpoints_written\""), "{doc}");
    // The run succeeded, so its checkpoints were cleared.
    assert!(!ckpt_dir.join("phase1.sfcp").exists());
    assert!(!ckpt_dir.join("phase3.sfcp").exists());

    // --checkpoint-every 0 is rejected as a usage mistake.
    let (code, _, stderr) = sfa_code(&[
        "mine",
        "--input",
        table_s,
        "--scheme",
        "mh",
        "--checkpoint-every",
        "0",
    ]);
    assert_eq!(code, 2, "{stderr}");

    std::fs::remove_file(&table).ok();
    std::fs::remove_file(&metrics).ok();
    std::fs::remove_dir_all(&ckpt_dir).ok();
}

#[test]
fn optimize_then_mine_with_suggested_parameters() {
    let table = tmp("opt.sfab");
    let table_s = table.to_str().unwrap();
    let (ok, _, _) = sfa(&[
        "gen", "--kind", "weblog", "--out", table_s, "--scale", "tiny",
    ]);
    assert!(ok);
    let (ok, stdout, stderr) = sfa(&[
        "optimize",
        "--input",
        table_s,
        "--threshold",
        "0.7",
        "--sample",
        "0.5",
    ]);
    assert!(ok, "optimize failed: {stderr}");
    // Parse the suggested r / l back out of the output line.
    let line = stdout
        .lines()
        .find(|l| l.contains("r ="))
        .expect("suggestion line");
    let grab = |tag: &str| -> usize {
        line.split(tag)
            .nth(1)
            .unwrap()
            .trim_start()
            .split([',', ' ', ')'])
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    let (r, l) = (grab("r ="), grab("l ="));
    assert!(r >= 1 && l >= 1);
    let (ok, stdout, _) = sfa(&[
        "mine",
        "--input",
        table_s,
        "--scheme",
        "mlsh",
        "--threshold",
        "0.7",
        "--r",
        &r.to_string(),
        "--l",
        &l.to_string(),
        "--k",
        &(r * l).to_string(),
    ]);
    assert!(ok);
    assert!(stdout.contains("pairs at S >= 0.7"));
    std::fs::remove_file(table).ok();
}
