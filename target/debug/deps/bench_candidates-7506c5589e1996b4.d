/root/repo/target/debug/deps/bench_candidates-7506c5589e1996b4.d: crates/bench/benches/bench_candidates.rs Cargo.toml

/root/repo/target/debug/deps/libbench_candidates-7506c5589e1996b4.rmeta: crates/bench/benches/bench_candidates.rs Cargo.toml

crates/bench/benches/bench_candidates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
