/root/repo/target/debug/deps/sfa_bench-1699c770f4d5cdb0.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsfa_bench-1699c770f4d5cdb0.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
