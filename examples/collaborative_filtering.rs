//! Collaborative-filtering scenario (paper §1: "tracking user behavior and
//! making recommendations to individuals based on similarity of their
//! preferences to those of other users").
//!
//! Columns are *users*, rows are *items*; similar columns are users with
//! similar taste. Recommendations for a user are items their most similar
//! peers have that they lack.
//!
//! ```sh
//! cargo run --release --example collaborative_filtering
//! ```

use sfa::core::{Pipeline, PipelineConfig, Scheme};
use sfa::datagen::CfConfig;
use sfa::matrix::MemoryRowStream;

fn main() {
    let data = CfConfig::small(2026).generate();
    let matrix = data.matrix.transpose();
    println!(
        "ratings matrix: {} items × {} users, {} ratings",
        matrix.n_rows(),
        matrix.n_cols(),
        matrix.nnz()
    );

    // Find similar user pairs. Taste overlap is moderate, so use a low
    // threshold with a sharp sketch.
    let config = PipelineConfig::new(Scheme::Kmh { k: 80, delta: 0.2 }, 0.15, 5);
    let result = Pipeline::new(config)
        .run(&mut MemoryRowStream::new(&matrix))
        .expect("in-memory run");
    let pairs = result.similar_pairs();
    println!(
        "found {} similar user pairs ({})",
        pairs.len(),
        result.timings
    );

    // Sanity: similar users should overwhelmingly share a community.
    let same = pairs
        .iter()
        .filter(|p| data.community_of[p.i as usize] == data.community_of[p.j as usize])
        .count();
    println!(
        "{same}/{} similar pairs are within one taste community",
        pairs.len()
    );
    assert!(same * 10 >= pairs.len() * 9, "communities should dominate");

    // Recommend: for the user in the most similar pair, suggest items the
    // peer has that they lack.
    let top = pairs.first().expect("at least one pair");
    let user_items = data.matrix.column(top.i);
    let peer_items = data.matrix.column(top.j);
    let recommendations: Vec<u32> = peer_items
        .iter()
        .filter(|item| user_items.binary_search(item).is_err())
        .copied()
        .take(5)
        .collect();
    println!(
        "\nuser {} (community {}) — most similar peer: user {} (S = {:.2})",
        top.i, data.community_of[top.i as usize], top.j, top.similarity
    );
    println!("recommended items from the peer's history: {recommendations:?}");
    assert!(!recommendations.is_empty() || user_items.len() >= peer_items.len());
}
