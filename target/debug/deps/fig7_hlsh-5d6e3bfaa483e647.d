/root/repo/target/debug/deps/fig7_hlsh-5d6e3bfaa483e647.d: crates/experiments/src/bin/fig7_hlsh.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_hlsh-5d6e3bfaa483e647.rmeta: crates/experiments/src/bin/fig7_hlsh.rs Cargo.toml

crates/experiments/src/bin/fig7_hlsh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
