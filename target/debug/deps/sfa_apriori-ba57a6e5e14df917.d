/root/repo/target/debug/deps/sfa_apriori-ba57a6e5e14df917.d: crates/apriori/src/lib.rs crates/apriori/src/apriori.rs crates/apriori/src/pairs.rs crates/apriori/src/rules.rs

/root/repo/target/debug/deps/sfa_apriori-ba57a6e5e14df917: crates/apriori/src/lib.rs crates/apriori/src/apriori.rs crates/apriori/src/pairs.rs crates/apriori/src/rules.rs

crates/apriori/src/lib.rs:
crates/apriori/src/apriori.rs:
crates/apriori/src/pairs.rs:
crates/apriori/src/rules.rs:
