//! §6: high-confidence association rules without support.
//!
//! Mines directed rules `c_i ⇒ c_j` with confidence ≥ c* from the weblog
//! data (child-resource ⇒ parent-page rules are the natural ground truth:
//! a child URL is only ever fetched alongside its parent).

use sfa_core::confidence::mine_confidence_rules;
use sfa_experiments::{print_table, write_csv, WeblogExperiment, EXPERIMENT_SEED};
use sfa_matrix::MemoryRowStream;

fn main() {
    println!("# §6 — high-confidence rules without support (weblog data)");
    let weblog = WeblogExperiment::load();
    let conf_threshold = 0.9;
    let t = std::time::Instant::now();
    let rules = mine_confidence_rules(
        &mut MemoryRowStream::new(&weblog.rows),
        300,
        EXPERIMENT_SEED,
        conf_threshold,
        0.25,
    )
    .expect("in-memory stream");
    println!(
        "found {} rules with confidence ≥ {conf_threshold} in {:.2}s",
        rules.len(),
        t.elapsed().as_secs_f64()
    );

    // How many recovered rules are child ⇒ parent relations?
    let mut child_parent = 0;
    let mut table = Vec::new();
    for r in rules.iter().take(25) {
        let relation = if weblog.data.parent_of[r.antecedent as usize] == r.consequent {
            child_parent += 1;
            "child=>parent"
        } else if weblog.data.parent_of[r.consequent as usize] == r.antecedent {
            "parent=>child"
        } else if weblog.data.parent_of[r.antecedent as usize]
            == weblog.data.parent_of[r.consequent as usize]
        {
            "siblings"
        } else {
            "other"
        };
        table.push(vec![
            format!("url{} => url{}", r.antecedent, r.consequent),
            format!("{:.3}", r.confidence),
            r.support.to_string(),
            relation.to_string(),
        ]);
    }
    print_table(
        "Top high-confidence rules",
        &["rule", "confidence", "support", "relation"],
        &table,
    );
    println!("\n{child_parent} of the top 25 are child⇒parent rules (embedded resources)");

    let csv: Vec<Vec<String>> = rules
        .iter()
        .map(|r| {
            vec![
                r.antecedent.to_string(),
                r.consequent.to_string(),
                format!("{:.5}", r.confidence),
                r.support.to_string(),
            ]
        })
        .collect();
    write_csv(
        "confidence_rules.csv",
        &["antecedent", "consequent", "confidence", "support"],
        &csv,
    );

    // Exactness check: every reported rule really has conf ≥ threshold.
    for r in &rules {
        let exact = weblog.data.matrix.confidence(r.antecedent, r.consequent);
        assert!(
            (exact - r.confidence).abs() < 1e-9,
            "reported confidence differs from exact"
        );
        assert!(exact >= conf_threshold);
    }
    assert!(!rules.is_empty(), "weblog data must contain such rules");
    println!("exactness checks passed");
}
