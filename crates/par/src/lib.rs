//! Persistent scoped worker pool with chunked dynamic scheduling.
//!
//! Phase 2 of the pipeline — candidate generation over in-memory
//! summaries — is embarrassingly parallel but *skewed*: bucket sizes and
//! per-column sketch lengths vary by orders of magnitude, so a static
//! even partition of the index space serializes on the unlucky worker.
//! Prior to this crate every parallel call site spawned fresh
//! `std::thread::scope` workers with exactly that static split.
//!
//! [`ThreadPool`] fixes both costs:
//!
//! * **Persistent**: worker threads are spawned once (default count from
//!   [`std::thread::available_parallelism`]) and reused across rounds, so
//!   a pipeline run pays thread start-up once, not once per phase.
//! * **Scoped**: [`ThreadPool::run`] accepts a *borrowing* closure — it
//!   blocks until every worker has finished the round, which is what
//!   makes handing a non-`'static` closure to long-lived threads sound
//!   (the one `unsafe` in this crate, see `run`).
//! * **Dynamic**: [`ThreadPool::par_for`] and [`ThreadPool::par_fold`]
//!   deal out fixed-size chunks of an index range from a shared atomic
//!   cursor, so fast workers steal the tail of the range instead of
//!   idling behind a skewed static partition.
//!
//! No external dependencies; the registry is unreachable in this build
//! environment (see `vendor/`).

use std::ops::Range;

/// Minimum estimated elementary operations per round before the pool
/// beats the caller thread.
///
/// One epoch hand-off (lock, condvar broadcast, workers wake, drain,
/// final notify) costs on the order of tens of microseconds; at roughly
/// a few ops per nanosecond the round needs ~10⁵–10⁶ elementary
/// operations before the workers repay that. `2¹⁸ ≈ 262k` sits at the
/// conservative end: small pipeline workloads (the bench baseline's
/// 2000×1000 synthetic) stay serial, while anything that takes
/// milliseconds parallelizes. Tuned against the `phase2_speedup` sweep
/// in `BENCH_pipeline.json`, which recorded 0.60–0.74× "speedups" on
/// exactly these small inputs before the cutoff existed.
pub const SERIAL_CUTOFF: u64 = 1 << 18;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread::JoinHandle;

/// Type-erased borrowed task; only dereferenced while the submitting
/// `run` call is blocked, which keeps the borrow alive.
#[derive(Clone, Copy)]
struct Task(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from any thread are fine)
// and `run` guarantees it outlives every dereference by blocking until
// all workers finish the round.
unsafe impl Send for Task {}

struct State {
    /// Round counter; workers run one task per epoch bump.
    epoch: u64,
    task: Option<Task>,
    /// Workers still executing the current round.
    active: usize,
    /// A worker's task panicked this round.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for a new epoch.
    work: Condvar,
    /// The submitter waits here for `active == 0`.
    done: Condvar,
}

/// A persistent pool of `threads() - 1` worker threads; the calling
/// thread participates in every round as worker 0.
pub struct ThreadPool {
    shared: std::sync::Arc<Shared>,
    /// Serializes concurrent `run` calls (the pool runs one round at a time).
    submit: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool with `n_threads` total workers (including the
    /// caller). `0` means auto: [`std::thread::available_parallelism`].
    pub fn new(n_threads: usize) -> Self {
        let threads = if n_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            n_threads
        };
        let shared = std::sync::Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                task: None,
                active: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|idx| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sfa-par-{idx}"))
                    .spawn(move || worker_loop(&shared, idx))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            submit: Mutex::new(()),
            handles,
            threads,
        }
    }

    /// Creates a pool sized from [`std::thread::available_parallelism`].
    pub fn auto() -> Self {
        Self::new(0)
    }

    /// Total parallelism: background workers plus the calling thread.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(w)` once for every worker index `w in 0..threads()`,
    /// blocking until all calls return. The closure may borrow from the
    /// caller's stack. Panics (after the round drains) if any call
    /// panicked.
    pub fn run<F: Fn(usize) + Sync>(&self, f: F) {
        if self.threads == 1 {
            f(0);
            return;
        }
        let _round = lock(&self.submit);
        let erased: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: only the lifetime is widened. The pointer is
        // dereferenced exclusively between the epoch bump below and the
        // `active == 0` wait, and this function does not return (or drop
        // `f`) until that wait completes — so the borrow is live for
        // every dereference.
        let task = Task(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(erased)
        });
        {
            let mut st = lock(&self.shared.state);
            st.task = Some(task);
            st.active = self.threads - 1;
            st.panicked = false;
            st.epoch += 1;
            self.shared.work.notify_all();
        }
        // The caller is worker 0; run its share before blocking.
        let caller = catch_unwind(AssertUnwindSafe(|| f(0)));
        let worker_panicked = {
            let mut st = lock(&self.shared.state);
            while st.active > 0 {
                st = wait(&self.shared.done, st);
            }
            st.task = None;
            st.panicked
        };
        match caller {
            Err(payload) => resume_unwind(payload),
            Ok(()) if worker_panicked => panic!("sfa-par worker panicked"),
            Ok(()) => {}
        }
    }

    /// A load-balancing chunk size for `n_items` of roughly uniform
    /// cost: ~8 chunks per worker, never zero.
    #[inline]
    pub fn chunk_for(&self, n_items: usize) -> usize {
        (n_items / (self.threads * 8)).max(1)
    }

    /// Whether a round of `estimated_ops` elementary operations is worth
    /// dispatching to the pool at all (see [`SERIAL_CUTOFF`]). Callers
    /// that can estimate their work use this (or the `*_bounded`
    /// variants) to fall back to the caller thread on small inputs,
    /// where epoch/condvar hand-off costs more than the work itself.
    #[inline]
    pub fn worth_parallel(&self, estimated_ops: u64) -> bool {
        self.threads > 1 && estimated_ops >= SERIAL_CUTOFF
    }

    /// [`par_for`](Self::par_for) with a serial fallback: runs entirely
    /// on the caller thread when `estimated_ops` is below
    /// [`SERIAL_CUTOFF`]. Identical iteration semantics either way.
    pub fn par_for_bounded<F: Fn(Range<usize>) + Sync>(
        &self,
        n_items: usize,
        chunk: usize,
        estimated_ops: u64,
        f: F,
    ) {
        assert!(chunk > 0, "chunk size must be positive");
        if !self.worth_parallel(estimated_ops) {
            if n_items > 0 {
                f(0..n_items);
            }
            return;
        }
        self.par_for(n_items, chunk, f);
    }

    /// [`par_fold`](Self::par_fold) with a serial fallback: folds on the
    /// caller thread when `estimated_ops` is below [`SERIAL_CUTOFF`].
    /// Callers already merge the returned accumulators commutatively, so
    /// collapsing to one accumulator never changes the merged result.
    pub fn par_fold_bounded<T, I, F>(
        &self,
        n_items: usize,
        chunk: usize,
        estimated_ops: u64,
        init: I,
        fold: F,
    ) -> Vec<T>
    where
        T: Send,
        I: Fn(usize) -> T + Sync,
        F: Fn(&mut T, Range<usize>) + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        if !self.worth_parallel(estimated_ops) {
            let mut acc = init(0);
            if n_items > 0 {
                fold(&mut acc, 0..n_items);
            }
            return vec![acc];
        }
        self.par_fold(n_items, chunk, init, fold)
    }

    /// Dynamically-scheduled parallel loop over `0..n_items`: workers
    /// repeatedly claim the next `chunk`-sized index range from a shared
    /// atomic cursor and call `f(range)` until the range is exhausted.
    pub fn par_for<F: Fn(Range<usize>) + Sync>(&self, n_items: usize, chunk: usize, f: F) {
        assert!(chunk > 0, "chunk size must be positive");
        if n_items == 0 {
            return;
        }
        if self.threads == 1 || n_items <= chunk {
            f(0..n_items);
            return;
        }
        let cursor = AtomicUsize::new(0);
        self.run(|_| loop {
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= n_items {
                break;
            }
            f(start..n_items.min(start + chunk));
        });
    }

    /// Like [`par_for`](Self::par_for), but each worker folds its chunks
    /// into a private accumulator created by `init(worker)`. Returns the
    /// accumulators of every worker that claimed at least one chunk, in
    /// unspecified order — callers must merge commutatively.
    pub fn par_fold<T, I, F>(&self, n_items: usize, chunk: usize, init: I, fold: F) -> Vec<T>
    where
        T: Send,
        I: Fn(usize) -> T + Sync,
        F: Fn(&mut T, Range<usize>) + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        if self.threads == 1 || n_items <= chunk {
            let mut acc = init(0);
            if n_items > 0 {
                fold(&mut acc, 0..n_items);
            }
            return vec![acc];
        }
        let cursor = AtomicUsize::new(0);
        let out = Mutex::new(Vec::with_capacity(self.threads));
        self.run(|worker| {
            let mut acc = None;
            loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n_items {
                    break;
                }
                let acc = acc.get_or_insert_with(|| init(worker));
                fold(acc, start..n_items.min(start + chunk));
            }
            if let Some(acc) = acc {
                out.lock().unwrap().push(acc);
            }
        });
        out.into_inner().unwrap()
    }

    /// Chunked map-reduce: `par_fold` followed by a left fold of the
    /// per-worker accumulators with `reduce`. Because accumulator order
    /// is unspecified, `reduce` must be commutative and associative
    /// (all the pipeline's merges — min, union, addition — are).
    pub fn par_map_reduce<T, I, F, R>(
        &self,
        n_items: usize,
        chunk: usize,
        init: I,
        fold: F,
        reduce: R,
    ) -> T
    where
        T: Send,
        I: Fn(usize) -> T + Sync,
        F: Fn(&mut T, Range<usize>) + Sync,
        R: Fn(T, T) -> T,
    {
        let mut locals = self.par_fold(n_items, chunk, &init, fold).into_iter();
        let first = locals.next().unwrap_or_else(|| init(0));
        locals.fold(first, reduce)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Locks ignoring poisoning: every critical section in this module
/// leaves `State` consistent (panics are caught and recorded as a flag),
/// so a poisoned mutex carries no torn state.
fn lock<'a, T>(mutex: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn wait<'a, T>(cv: &Condvar, guard: std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn worker_loop(shared: &Shared, worker: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let task = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch > seen_epoch {
                    seen_epoch = st.epoch;
                    break st.task.expect("task set for new epoch");
                }
                st = wait(&shared.work, st);
            }
        };
        // SAFETY: the submitter blocks in `run` until this worker
        // decrements `active` below, so the borrow behind the pointer is
        // still live here.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*task.0)(worker) }));
        let mut st = lock(&shared.state);
        if result.is_err() {
            st.panicked = true;
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn auto_pool_has_at_least_one_thread() {
        let pool = ThreadPool::auto();
        assert!(pool.threads() >= 1);
        assert_eq!(ThreadPool::new(0).threads(), pool.threads());
    }

    #[test]
    fn run_visits_every_worker_once() {
        for threads in [1, 2, 4, 7] {
            let pool = ThreadPool::new(threads);
            let visits = AtomicU64::new(0);
            pool.run(|w| {
                assert!(w < threads);
                visits.fetch_add(1 << (8 * w as u64), Ordering::Relaxed);
            });
            let v = visits.load(Ordering::Relaxed);
            for w in 0..threads {
                assert_eq!((v >> (8 * w)) & 0xff, 1, "worker {w} ran once");
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_rounds() {
        let pool = ThreadPool::new(3);
        let total = AtomicU64::new(0);
        for _ in 0..50 {
            pool.run(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 50 * 3);
    }

    #[test]
    fn par_for_covers_each_index_exactly_once() {
        for threads in [1, 2, 4, 7] {
            for n in [0usize, 1, 5, 64, 1000] {
                let pool = ThreadPool::new(threads);
                let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
                pool.par_for(n, 7, |range| {
                    for i in range {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            }
        }
    }

    #[test]
    fn par_fold_sums_match_sequential() {
        for threads in [1, 2, 4, 7] {
            let pool = ThreadPool::new(threads);
            let locals = pool.par_fold(
                1000,
                13,
                |_| 0u64,
                |acc, range| {
                    for i in range {
                        *acc += i as u64;
                    }
                },
            );
            assert!(locals.len() <= threads);
            let total: u64 = locals.into_iter().sum();
            assert_eq!(total, (0..1000u64).sum());
        }
    }

    #[test]
    fn par_map_reduce_handles_skewed_costs() {
        let pool = ThreadPool::new(4);
        // Quadratic cost in the index: a static split would serialize on
        // the last worker; dynamic chunks just need the sum to be right.
        let total = pool.par_map_reduce(
            200,
            1,
            |_| 0u64,
            |acc, range| {
                for i in range {
                    let mut s = 0u64;
                    for j in 0..=(i as u64) {
                        s = s.wrapping_add(j);
                    }
                    *acc += s;
                }
            },
            |a, b| a + b,
        );
        let expected: u64 = (0..200u64).map(|i| i * (i + 1) / 2).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn empty_range_returns_single_init() {
        let pool = ThreadPool::new(4);
        let locals = pool.par_fold(0, 8, |_| 41u32, |_, _| unreachable!());
        assert_eq!(locals, vec![41]);
        assert_eq!(pool.par_map_reduce(0, 8, |_| 7u32, |_, _| (), |a, _| a), 7);
    }

    #[test]
    fn worth_parallel_respects_cutoff_and_pool_size() {
        let solo = ThreadPool::new(1);
        assert!(!solo.worth_parallel(u64::MAX));
        let pool = ThreadPool::new(4);
        assert!(!pool.worth_parallel(SERIAL_CUTOFF - 1));
        assert!(pool.worth_parallel(SERIAL_CUTOFF));
    }

    #[test]
    fn bounded_variants_match_unbounded_results() {
        let pool = ThreadPool::new(4);
        for ops in [0u64, SERIAL_CUTOFF, u64::MAX] {
            let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
            pool.par_for_bounded(100, 7, ops, |range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "ops {ops}"
            );

            let locals = pool.par_fold_bounded(
                1000,
                13,
                ops,
                |_| 0u64,
                |acc, range| {
                    for i in range {
                        *acc += i as u64;
                    }
                },
            );
            assert_eq!(locals.iter().sum::<u64>(), (0..1000u64).sum(), "ops {ops}");
        }
        // Serial path still returns one init on an empty range.
        let locals = pool.par_fold_bounded(0, 8, 0, |_| 41u32, |_, _| unreachable!());
        assert_eq!(locals, vec![41]);
        pool.par_for_bounded(0, 8, 0, |_| unreachable!());
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(3);
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.run(|w| {
                if w == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(res.is_err());
        // The pool must remain usable after a panicked round.
        let total = AtomicU64::new(0);
        pool.run(|_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 3);
    }
}
