//! CRC-32 (IEEE 802.3) implemented in-tree.
//!
//! The v2 binary formats (`.sfab`/`.sfmh`/`.sfkm`, see `docs/FORMATS.md`)
//! append a CRC-32 of everything after the magic so that readers detect
//! bit flips and truncation instead of silently accepting them. The
//! polynomial is the reflected IEEE one (`0xEDB88320`) — the same checksum
//! as zlib/gzip — so external tooling can verify files.

/// Reflected IEEE CRC-32 lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC-32 hasher.
///
/// # Examples
///
/// ```
/// use sfa_matrix::crc32::Crc32;
///
/// let mut h = Crc32::new();
/// h.update(b"123456789");
/// assert_eq!(h.finalize(), 0xCBF4_3926); // the standard check value
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    #[must_use]
    pub const fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything folded in so far (does not consume the
    /// hasher; further updates continue from the same state).
    #[must_use]
    pub const fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finalize()
}

/// A [`Write`](std::io::Write) adapter that checksums everything written
/// through it — used by the v2 format writers so large payloads are
/// checksummed without buffering them in memory.
#[derive(Debug)]
pub struct CrcWriter<W> {
    inner: W,
    crc: Crc32,
}

impl<W: std::io::Write> CrcWriter<W> {
    /// Wraps a writer with a fresh checksum.
    pub const fn new(inner: W) -> Self {
        Self {
            inner,
            crc: Crc32::new(),
        }
    }

    /// The checksum of all bytes written so far.
    #[must_use]
    pub const fn digest(&self) -> u32 {
        self.crc.finalize()
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// The inner writer (e.g. to append the trailer after the digest is
    /// taken).
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }
}

impl<W: std::io::Write> std::io::Write for CrcWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data = b"hello, out-of-core world";
        let mut h = Crc32::new();
        h.update(&data[..7]);
        h.update(&data[7..]);
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        for i in 0..64 {
            data[i] ^= 1;
            assert_ne!(crc32(&data), base, "flip at byte {i} undetected");
            data[i] ^= 1;
        }
    }

    #[test]
    fn crc_writer_checksums_what_it_writes() {
        let mut w = CrcWriter::new(Vec::new());
        std::io::Write::write_all(&mut w, b"1234").unwrap();
        std::io::Write::write_all(&mut w, b"56789").unwrap();
        assert_eq!(w.digest(), 0xCBF4_3926);
        assert_eq!(w.into_inner(), b"123456789");
    }
}
