//! §5 synthetic-data validation: "we have also performed tests for the
//! synthetic data, and all algorithms behave similarly."
//!
//! Generates the paper's synthetic benchmark, runs all four schemes, and
//! checks each recovers the planted pairs across the five similarity
//! bands.
//!
//! Two scales:
//!
//! * default — 20 000 × 2 000, 4 pairs per band, mined in memory; quick
//!   enough for a laptop sanity run.
//! * `--scale paper` — the paper's §5 configuration itself: 10⁴ columns,
//!   10⁴ rows (the low end of its 10⁴–10⁶ row sweep), densities 1–5%,
//!   20 planted pairs per band. At this width the MH-family phase-2
//!   counter state runs to hundreds of megabytes, so the sweep mines
//!   out-of-core through [`Pipeline::run_sharded`] under a 64 MiB budget
//!   and reports the shard count per scheme.
//!
//! [`Pipeline::run_sharded`]: sfa_core::Pipeline

use sfa_core::{MemoryBudget, MiningResult, Pipeline, PipelineConfig, Scheme};
use sfa_datagen::SyntheticConfig;
use sfa_experiments::{print_table, run_scheme, write_csv, EXPERIMENT_SEED};
use sfa_matrix::{MemoryRowStream, RowMajorMatrix};

/// Budget for the `--scale paper` sharded runs.
const PAPER_BUDGET_BYTES: usize = 64 << 20;

/// Threshold below every band, so recovery exercises all five.
const S_STAR: f64 = 0.45;

fn schemes() -> [(&'static str, Scheme); 4] {
    [
        ("MH", Scheme::Mh { k: 200, delta: 0.2 }),
        ("K-MH", Scheme::Kmh { k: 200, delta: 0.2 }),
        (
            "M-LSH",
            Scheme::MLsh {
                k: 200,
                r: 4,
                l: 50,
                sampled: false,
            },
        ),
        (
            "H-LSH",
            Scheme::HLsh {
                r: 16,
                l: 8,
                t: 4,
                max_levels: 16,
            },
        ),
    ]
}

/// Runs one scheme, sharded under the paper budget or in memory.
fn run_one(rows: &RowMajorMatrix, scheme: Scheme, budget: Option<&MemoryBudget>) -> MiningResult {
    match budget {
        Some(budget) => Pipeline::new(PipelineConfig::new(scheme, S_STAR, EXPERIMENT_SEED))
            .run_sharded(&mut MemoryRowStream::new(rows), budget, None)
            .expect("in-memory stream cannot fail"),
        None => run_scheme(rows, scheme, S_STAR, EXPERIMENT_SEED),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper = match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        [] => false,
        ["--scale", "paper"] => true,
        _ => {
            eprintln!("usage: synthetic-sweep [--scale paper]");
            std::process::exit(2);
        }
    };

    println!("# §5 synthetic benchmark — all schemes on planted-pair data");
    let cfg = if paper {
        SyntheticConfig::paper(10_000, EXPERIMENT_SEED)
    } else {
        SyntheticConfig {
            n_rows: 20_000,
            n_cols: 2_000,
            density_range: (0.01, 0.05),
            pairs_per_band: 4,
            bands: sfa_datagen::synthetic::PAPER_BANDS.to_vec(),
            seed: EXPERIMENT_SEED,
        }
    };
    let data = cfg.generate();
    let rows = data.matrix.transpose();
    println!(
        "[synthetic: {} rows × {} cols, {} 1s, {} planted pairs{}]",
        rows.n_rows(),
        rows.n_cols(),
        rows.nnz(),
        data.planted.len(),
        if paper {
            format!("; sharded under a {PAPER_BUDGET_BYTES}-byte budget")
        } else {
            String::new()
        }
    );
    let planted: std::collections::HashSet<(u32, u32)> =
        data.planted.iter().map(|p| (p.i, p.j)).collect();

    let spill = std::env::temp_dir().join(format!("sfa-sweep-spill-{}", std::process::id()));
    let budget = paper.then(|| MemoryBudget::new(PAPER_BUDGET_BYTES, spill.clone()));

    let mut table = Vec::new();
    let mut csv = Vec::new();
    for (name, scheme) in schemes() {
        let result = run_one(&rows, scheme, budget.as_ref());
        let found: std::collections::HashSet<(u32, u32)> =
            result.similar_pairs().iter().map(|p| (p.i, p.j)).collect();
        let recovered = data
            .planted
            .iter()
            .filter(|p| found.contains(&(p.i, p.j)))
            .count();
        // Per-band recovery.
        let mut per_band = Vec::new();
        for &(lo, hi) in &sfa_datagen::synthetic::PAPER_BANDS {
            let band: Vec<_> = data
                .planted
                .iter()
                .filter(|p| p.similarity >= lo && p.similarity < hi + 0.001)
                .collect();
            let got = band.iter().filter(|p| found.contains(&(p.i, p.j))).count();
            per_band.push(format!("{got}/{}", band.len()));
        }
        let spurious = found.len() - found.iter().filter(|f| planted.contains(f)).count();
        let shards = result
            .metrics
            .sharding
            .as_ref()
            .map_or_else(|| "-".to_owned(), |s| s.shards.to_string());
        table.push(vec![
            name.to_string(),
            format!("{:.2}", result.timings.total().as_secs_f64()),
            format!("{recovered}/{}", data.planted.len()),
            per_band.join(" "),
            spurious.to_string(),
            shards.clone(),
        ]);
        csv.push(vec![
            name.to_string(),
            format!("{:.5}", result.timings.total().as_secs_f64()),
            recovered.to_string(),
            data.planted.len().to_string(),
            spurious.to_string(),
            shards,
        ]);
        assert_eq!(
            spurious, 0,
            "{name}: verification must remove all non-planted pairs"
        );
        assert!(
            recovered * 10 >= data.planted.len() * 8,
            "{name}: recovered only {recovered}/{} planted pairs",
            data.planted.len()
        );
    }
    let _ = std::fs::remove_dir(&spill);
    print_table(
        "Planted-pair recovery, s* = 0.45 (bands 85-95 … 45-55)",
        &[
            "scheme",
            "time(s)",
            "recovered",
            "per band (hi→lo)",
            "spurious",
            "shards",
        ],
        &table,
    );
    write_csv(
        if paper {
            "synthetic_sweep_paper.csv"
        } else {
            "synthetic_sweep.csv"
        },
        &[
            "scheme",
            "time_s",
            "recovered",
            "planted",
            "spurious",
            "shards",
        ],
        &csv,
    );
    println!("\nall schemes behave similarly on synthetic data — as the paper reports");
}
