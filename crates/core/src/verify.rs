//! Phase 3: exact candidate verification in one streaming pass.
//!
//! "While scanning the table data, maintain for each candidate column-pair
//! `(c_i, c_j)` the counts of the number of rows having a 1 in at least one
//! of the two columns and also the number of rows having a 1 in both
//! columns." We count intersections directly and column cardinalities for
//! the union via `|C_i ∪ C_j| = |C_i| + |C_j| − |C_i ∩ C_j|`.

use sfa_matrix::{MatrixError, Result, RowStream, SparseMatrix};
use sfa_minhash::CandidatePair;

use crate::report::VerifiedPair;
use crate::shutdown::{CancelToken, CANCEL_POLL_STRIDE};

/// Flat CSR-style partner adjacency: for each column, its `(partner,
/// candidate-index)` list, in one allocation instead of `m` heap vectors.
/// The inner row loop of every verification pass walks these lists, so
/// keeping them contiguous removes a pointer chase per touched column.
struct PartnerAdjacency {
    /// `offsets[c]..offsets[c + 1]` indexes column `c`'s slice of `partners`.
    offsets: Vec<usize>,
    partners: Vec<(u32, u32)>,
}

impl PartnerAdjacency {
    /// Builds the adjacency over `m` columns; per-column entries keep
    /// candidate order (counting sort with a cursor per column).
    fn new(m: usize, candidates: &[CandidatePair]) -> Self {
        let mut counts = vec![0usize; m];
        for c in candidates {
            counts[c.i as usize] += 1;
            counts[c.j as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(m + 1);
        offsets.push(0usize);
        for &c in &counts {
            offsets.push(offsets.last().unwrap() + c);
        }
        let mut cursor = offsets.clone();
        let mut partners = vec![(0u32, 0u32); 2 * candidates.len()];
        for (idx, c) in candidates.iter().enumerate() {
            partners[cursor[c.i as usize]] = (c.j, idx as u32);
            cursor[c.i as usize] += 1;
            partners[cursor[c.j as usize]] = (c.i, idx as u32);
            cursor[c.j as usize] += 1;
        }
        Self { offsets, partners }
    }

    /// Column `col`'s `(partner, candidate-index)` entries.
    #[inline]
    fn partners_of(&self, col: u32) -> &[(u32, u32)] {
        &self.partners[self.offsets[col as usize]..self.offsets[col as usize + 1]]
    }
}

/// Assembles the sorted [`VerifiedPair`] list from per-candidate
/// intersections and per-column counts — the single definition every
/// verification path (streaming, pooled, in-memory bitmap) funnels
/// through, so their outputs are identical by construction.
fn assemble_verified(
    candidates: &[CandidatePair],
    intersections: &[u32],
    column_counts: &[u32],
) -> Vec<VerifiedPair> {
    let mut verified: Vec<VerifiedPair> = candidates
        .iter()
        .zip(intersections)
        .map(|(c, &inter)| {
            let ci = column_counts[c.i as usize];
            let cj = column_counts[c.j as usize];
            let union = ci + cj - inter;
            VerifiedPair {
                i: c.i,
                j: c.j,
                intersection: inter,
                union,
                similarity: if union == 0 {
                    0.0
                } else {
                    f64::from(inter) / f64::from(union)
                },
                estimate: c.estimate,
            }
        })
        .collect();
    verified.sort_by_key(|p| (p.i, p.j));
    verified
}

/// Mid-pass verification counters: everything phase 3 needs to continue
/// from row `rows_done` instead of row 0. This is the payload of a phase-3
/// checkpoint (see [`crate::checkpoint`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyProgress {
    /// Rows already folded into the counters.
    pub rows_done: u64,
    /// Per-candidate intersection counts (indexed like the candidate list).
    pub intersections: Vec<u32>,
    /// Per-column 1-counts.
    pub column_counts: Vec<u32>,
    /// Partner probes performed so far.
    pub probes: u64,
}

/// Verifies candidates in one pass over `stream`; returns the verified
/// pairs (all of them, including those that turn out dissimilar) sorted by
/// `(i, j)`, plus the exact column counts of the touched columns.
///
/// The pass costs, per row, the row's 1-entries plus, for each entry whose
/// column participates in a candidate, a probe per partner column.
///
/// # Errors
///
/// Propagates stream errors.
pub fn verify_candidates<S: RowStream>(
    stream: &mut S,
    candidates: &[CandidatePair],
) -> Result<(Vec<VerifiedPair>, Vec<u32>)> {
    let (verified, counts, _) = verify_candidates_with_stats(stream, candidates)?;
    Ok((verified, counts))
}

/// [`verify_candidates`] plus the pass's intersection work: the total
/// number of partner probes performed by the inner loop (each probe
/// belongs to exactly one candidate pair, so this is the per-pair
/// verification cost summed over pairs).
///
/// # Errors
///
/// Propagates stream errors.
pub fn verify_candidates_with_stats<S: RowStream>(
    stream: &mut S,
    candidates: &[CandidatePair],
) -> Result<(Vec<VerifiedPair>, Vec<u32>, u64)> {
    verify_candidates_resumable(
        stream,
        candidates,
        None,
        u64::MAX,
        &mut |_| Ok(()),
        &CancelToken::default(),
    )
}

/// [`verify_candidates_with_stats`] with checkpoint/resume support: starts
/// from `resume` (counters captured mid-pass) instead of row 0 when given,
/// fast-forwarding the stream past the rows already counted, and invokes
/// `on_checkpoint` with a snapshot of the counters every `every_rows`
/// processed rows.
///
/// Output is identical to an uninterrupted [`verify_candidates_with_stats`]
/// pass — the counters are pure functions of the rows folded in, so
/// "resume + suffix" equals "full pass".
///
/// `cancel` is polled after every row; on cancellation the current
/// counters are flushed through `on_checkpoint` first (so a graceful
/// shutdown always leaves a resumable frontier), then the pass returns
/// [`MatrixError::Canceled`].
///
/// # Errors
///
/// Propagates stream and `on_checkpoint` errors, reports a dimension
/// mismatch if the stream holds fewer rows than `resume` claims were
/// already processed, and returns [`MatrixError::Canceled`] when `cancel`
/// fires.
///
/// # Panics
///
/// Panics if `resume`'s counter lengths disagree with `candidates` /
/// `stream.n_cols()` — callers must validate provenance (see
/// [`crate::checkpoint`]'s fingerprint checks) before resuming.
pub fn verify_candidates_resumable<S: RowStream>(
    stream: &mut S,
    candidates: &[CandidatePair],
    resume: Option<VerifyProgress>,
    every_rows: u64,
    on_checkpoint: &mut dyn FnMut(&VerifyProgress) -> Result<()>,
    cancel: &CancelToken,
) -> Result<(Vec<VerifiedPair>, Vec<u32>, u64)> {
    let m = stream.n_cols() as usize;
    let partners = PartnerAdjacency::new(m, candidates);
    let (mut rows_done, mut intersections, mut column_counts, mut probes) = match resume {
        Some(p) => {
            assert_eq!(
                p.intersections.len(),
                candidates.len(),
                "resume state belongs to a different candidate list"
            );
            assert_eq!(
                p.column_counts.len(),
                m,
                "resume state belongs to a different table"
            );
            let skipped = stream.skip_rows(p.rows_done)?;
            if skipped != p.rows_done {
                return Err(MatrixError::DimensionMismatch {
                    detail: format!(
                        "checkpoint claims {} rows processed but the stream holds only {skipped}",
                        p.rows_done
                    ),
                });
            }
            (p.rows_done, p.intersections, p.column_counts, p.probes)
        }
        None => (0, vec![0u32; candidates.len()], vec![0u32; m], 0u64),
    };
    let mut present = vec![false; m];
    let mut buf = Vec::new();
    let mut cancel = cancel.throttled(CANCEL_POLL_STRIDE);
    while stream.read_row(&mut buf)?.is_some() {
        for &col in &buf {
            present[col as usize] = true;
        }
        for &col in &buf {
            column_counts[col as usize] += 1;
            // Probe partners once per pair: only from the smaller side.
            let adj = partners.partners_of(col);
            probes += adj.len() as u64;
            for &(partner, idx) in adj {
                if partner > col && present[partner as usize] {
                    intersections[idx as usize] += 1;
                }
            }
        }
        for &col in &buf {
            present[col as usize] = false;
        }
        rows_done += 1;
        let canceled = cancel.is_canceled();
        if rows_done % every_rows == 0 || canceled {
            on_checkpoint(&VerifyProgress {
                rows_done,
                intersections: intersections.clone(),
                column_counts: column_counts.clone(),
                probes,
            })?;
        }
        if canceled {
            cancel.check()?;
        }
    }
    let verified = assemble_verified(candidates, &intersections, &column_counts);
    Ok((verified, column_counts, probes))
}

/// Bounded-memory verification: processes candidates in chunks of at most
/// `chunk_size`, making one streaming pass per chunk.
///
/// The paper assumes "all of the candidates can fit in main memory"; when a
/// loose scheme floods phase 3 with more pairs than memory allows, this
/// variant trades extra sequential passes (`⌈candidates / chunk_size⌉`) for
/// an `O(chunk_size + m)` memory bound.
///
/// Output is identical to [`verify_candidates`] (same order, same counts).
///
/// # Errors
///
/// Propagates stream errors.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn verify_candidates_chunked<S: RowStream>(
    stream: &mut S,
    candidates: &[CandidatePair],
    chunk_size: usize,
) -> Result<(Vec<VerifiedPair>, Vec<u32>)> {
    assert!(chunk_size > 0, "chunk size must be positive");
    if candidates.len() <= chunk_size {
        return verify_candidates(stream, candidates);
    }
    let mut verified = Vec::with_capacity(candidates.len());
    let mut column_counts = vec![0u32; stream.n_cols() as usize];
    for (idx, chunk) in candidates.chunks(chunk_size).enumerate() {
        if idx > 0 {
            stream.reset()?;
        }
        let (mut part, counts) = verify_candidates(stream, chunk)?;
        verified.append(&mut part);
        column_counts = counts;
    }
    verified.sort_by_key(|p| (p.i, p.j));
    Ok((verified, column_counts))
}

/// Parallel verification over an in-memory matrix: rows are dealt out
/// dynamically across `n_threads` workers, each counting intersections and
/// column cardinalities for its row ranges; the partial counts sum exactly.
///
/// Output is identical to [`verify_candidates`]. Convenience wrapper over
/// a one-shot pool; pipeline code reuses a pool across phases via
/// [`verify_candidates_pool`].
///
/// # Panics
///
/// Panics if `n_threads == 0`.
#[must_use]
pub fn verify_candidates_parallel(
    matrix: &sfa_matrix::RowMajorMatrix,
    candidates: &[CandidatePair],
    n_threads: usize,
) -> (Vec<VerifiedPair>, Vec<u32>) {
    assert!(n_threads > 0, "need at least one thread");
    verify_candidates_pool(matrix, candidates, &sfa_par::ThreadPool::new(n_threads))
}

/// Pool-based [`verify_candidates_parallel`]: the partner adjacency is
/// built once, row ranges are dealt out dynamically, and per-worker
/// `(intersections, column_counts)` vectors add exactly.
#[must_use]
pub fn verify_candidates_pool(
    matrix: &sfa_matrix::RowMajorMatrix,
    candidates: &[CandidatePair],
    pool: &sfa_par::ThreadPool,
) -> (Vec<VerifiedPair>, Vec<u32>) {
    let n = matrix.n_rows() as usize;
    let m = matrix.n_cols() as usize;
    if pool.threads() == 1 || n < 2 {
        let mut stream = sfa_matrix::MemoryRowStream::new(matrix);
        return verify_candidates(&mut stream, candidates).expect("memory stream cannot fail");
    }
    let partners = PartnerAdjacency::new(m, candidates);
    let partners = &partners;
    let partials = pool.par_fold(
        n,
        pool.chunk_for(n),
        |_| (vec![0u32; candidates.len()], vec![0u32; m], vec![false; m]),
        |(intersections, column_counts, present), rows| {
            for row_id in rows {
                let row = matrix.row(row_id as u32);
                for &col in row {
                    present[col as usize] = true;
                }
                for &col in row {
                    column_counts[col as usize] += 1;
                    for &(partner, idx) in partners.partners_of(col) {
                        if partner > col && present[partner as usize] {
                            intersections[idx as usize] += 1;
                        }
                    }
                }
                for &col in row {
                    present[col as usize] = false;
                }
            }
        },
    );

    let mut intersections = vec![0u32; candidates.len()];
    let mut column_counts = vec![0u32; m];
    for (inter, counts, _) in partials {
        for (acc, v) in intersections.iter_mut().zip(&inter) {
            *acc += v;
        }
        for (acc, v) in column_counts.iter_mut().zip(&counts) {
            *acc += v;
        }
    }
    let verified = assemble_verified(candidates, &intersections, &column_counts);
    (verified, column_counts)
}

/// Memory budget for the in-memory fast path: the materialized hybrid
/// containers for the candidate-touched columns may use at most this
/// much payload. The charge is the *actual* container bytes
/// ([`sfa_matrix::HybridColumns::payload_bytes_for_subset`]), not the
/// dense `⌈n/64⌉ · 8` bitmap bytes the pre-container accounting
/// assumed, so compressed columns raise the effective capacity. Past
/// the cap, each pair falls back to the adaptive per-pair kernel,
/// which needs no extra memory.
const IN_MEMORY_CONTAINER_CAP_BYTES: usize = 256 << 20;

/// What the in-memory verifier's kernel layer did for one run — the
/// source of the `metrics.kernels` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InMemoryKernelReport {
    /// The process-wide kernel arm (`"scalar"` | `"avx2"` | `"neon"`).
    pub dispatch_arm: &'static str,
    /// Whether hybrid containers were materialized (false = the
    /// candidate columns busted the cap and the per-pair adaptive
    /// kernel ran instead).
    pub used_containers: bool,
    /// Container tallies of the materialized columns (all zero when
    /// `used_containers` is false).
    pub container: sfa_matrix::ContainerStats,
}

/// In-memory phase 3: verifies candidates directly against a resident
/// [`SparseMatrix`] (the column-major transpose of the table) instead of
/// re-scanning rows.
///
/// Column counts are read off the CSC structure; per-candidate
/// intersections dispatch through roaring-style hybrid containers
/// ([`sfa_matrix::HybridColumns::from_csc_subset`]) materialized for
/// exactly the columns the candidate list touches — each 2^16-row chunk
/// in its smallest array/bitmap/run representation, each pair counted
/// by the cheapest container-vs-container kernel (bitmap chunks
/// AND-popcount through the SIMD-dispatched
/// [`sfa_matrix::kernel`] layer). If the containers would exceed
/// [`IN_MEMORY_CONTAINER_CAP_BYTES`], each pair falls back to the
/// adaptive merge/gallop/bitmap kernel on the CSC slices.
///
/// Output is identical to [`verify_candidates`] over a fault-free stream
/// of the same table: both compute the exact `|C_i ∩ C_j|` and `|C_j|`
/// integers and share the final [`VerifiedPair`] assembly.
#[must_use]
pub fn verify_candidates_in_memory(
    columns: &SparseMatrix,
    candidates: &[CandidatePair],
) -> (Vec<VerifiedPair>, Vec<u32>) {
    let (verified, column_counts, _) = verify_candidates_in_memory_with_report(columns, candidates);
    (verified, column_counts)
}

/// [`verify_candidates_in_memory`] plus the kernel-layer report.
#[must_use]
pub fn verify_candidates_in_memory_with_report(
    columns: &SparseMatrix,
    candidates: &[CandidatePair],
) -> (Vec<VerifiedPair>, Vec<u32>, InMemoryKernelReport) {
    let column_counts = csc_column_counts(columns);
    let (intersections, report) =
        in_memory_intersections(columns, candidates, None, IN_MEMORY_CONTAINER_CAP_BYTES);
    let verified = assemble_verified(candidates, &intersections, &column_counts);
    (verified, column_counts, report)
}

/// Pool-based [`verify_candidates_in_memory`]: candidates are dealt out
/// dynamically; each worker counts its share against the shared
/// containers. Identical output (each intersection is written by exactly
/// one worker). Small candidate lists stay on the caller thread (the
/// pool's serial cutoff).
#[must_use]
pub fn verify_candidates_in_memory_pool(
    columns: &SparseMatrix,
    candidates: &[CandidatePair],
    pool: &sfa_par::ThreadPool,
) -> (Vec<VerifiedPair>, Vec<u32>) {
    let (verified, column_counts, _) =
        verify_candidates_in_memory_pool_with_report(columns, candidates, pool);
    (verified, column_counts)
}

/// [`verify_candidates_in_memory_pool`] plus the kernel-layer report.
#[must_use]
pub fn verify_candidates_in_memory_pool_with_report(
    columns: &SparseMatrix,
    candidates: &[CandidatePair],
    pool: &sfa_par::ThreadPool,
) -> (Vec<VerifiedPair>, Vec<u32>, InMemoryKernelReport) {
    let column_counts = csc_column_counts(columns);
    let (intersections, report) = in_memory_intersections(
        columns,
        candidates,
        Some(pool),
        IN_MEMORY_CONTAINER_CAP_BYTES,
    );
    let verified = assemble_verified(candidates, &intersections, &column_counts);
    (verified, column_counts, report)
}

/// Exact `|C_j|` for every column, off the CSC column pointers.
fn csc_column_counts(columns: &SparseMatrix) -> Vec<u32> {
    (0..columns.n_cols())
        .map(|j| columns.column_count(j) as u32)
        .collect()
}

/// Per-candidate exact intersections via subset hybrid containers (or
/// the adaptive per-pair kernel when the containers would bust the
/// memory cap), serial or pool-parallel over candidates. The cap is a
/// parameter so tests can pin the accounting; production callers pass
/// [`IN_MEMORY_CONTAINER_CAP_BYTES`].
fn in_memory_intersections(
    columns: &SparseMatrix,
    candidates: &[CandidatePair],
    pool: Option<&sfa_par::ThreadPool>,
    cap_bytes: usize,
) -> (Vec<u32>, InMemoryKernelReport) {
    // Touched columns, deduplicated; slot[t] holds the containers of
    // touched[t].
    let mut touched: Vec<u32> = candidates.iter().flat_map(|c| [c.i, c.j]).collect();
    touched.sort_unstable();
    touched.dedup();
    // Charge what the containers will actually allocate — compressed
    // columns fit many more than the dense n/8-bytes-per-column charge
    // would admit.
    let container_bytes = sfa_matrix::HybridColumns::payload_bytes_for_subset(columns, &touched);
    let hybrid = (container_bytes <= cap_bytes).then(|| {
        let slots = sfa_matrix::HybridColumns::from_csc_subset(columns, &touched);
        let mut slot_of = vec![u32::MAX; columns.n_cols() as usize];
        for (t, &j) in touched.iter().enumerate() {
            slot_of[j as usize] = t as u32;
        }
        (slots, slot_of)
    });
    let report = InMemoryKernelReport {
        dispatch_arm: sfa_matrix::kernel::arm_name(),
        used_containers: hybrid.is_some(),
        container: hybrid
            .as_ref()
            .map_or_else(Default::default, |(slots, _)| slots.stats()),
    };
    let intersect = |c: &CandidatePair| -> u32 {
        let inter = match &hybrid {
            Some((slots, slot_of)) => slots.intersection_size(
                slot_of[c.i as usize] as usize,
                slot_of[c.j as usize] as usize,
            ),
            None => columns.intersection_size(c.i, c.j),
        };
        inter as u32
    };
    let intersections = match pool {
        Some(pool) => {
            // One container (or adaptive) scan per candidate.
            let words_per_col = sfa_matrix::bitmap::words_for(columns.n_rows());
            let est_ops = (candidates.len() as u64).saturating_mul(words_per_col as u64);
            let chunks = pool.par_fold_bounded(
                candidates.len(),
                pool.chunk_for(candidates.len()),
                est_ops,
                |_| Vec::new(),
                |acc: &mut Vec<(usize, u32)>, range| {
                    for idx in range {
                        acc.push((idx, intersect(&candidates[idx])));
                    }
                },
            );
            let mut intersections = vec![0u32; candidates.len()];
            for (idx, inter) in chunks.into_iter().flatten() {
                intersections[idx] = inter;
            }
            intersections
        }
        None => candidates.iter().map(intersect).collect(),
    };
    (intersections, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfa_matrix::{MemoryRowStream, RowMajorMatrix};

    fn matrix() -> RowMajorMatrix {
        RowMajorMatrix::from_rows(
            4,
            vec![
                vec![0, 1],
                vec![0, 1],
                vec![0, 2],
                vec![1, 3],
                vec![2, 3],
                vec![3],
            ],
        )
        .unwrap()
    }

    #[test]
    fn exact_counts_match_columns() {
        let m = matrix();
        let candidates = vec![
            CandidatePair::new(0, 1, 0.9),
            CandidatePair::new(2, 3, 0.5),
            CandidatePair::new(0, 3, 0.1),
        ];
        let (verified, counts) =
            verify_candidates(&mut MemoryRowStream::new(&m), &candidates).unwrap();
        let csc = m.transpose();
        assert_eq!(counts, vec![3, 3, 2, 3]);
        for v in &verified {
            assert_eq!(
                v.intersection as usize,
                csc.intersection_size(v.i, v.j),
                "pair ({}, {})",
                v.i,
                v.j
            );
            assert!((v.similarity - csc.similarity(v.i, v.j)).abs() < 1e-12);
            assert_eq!(
                v.union as usize,
                csc.column_count(v.i) + csc.column_count(v.j) - csc.intersection_size(v.i, v.j)
            );
        }
    }

    #[test]
    fn estimates_are_preserved() {
        let m = matrix();
        let candidates = vec![CandidatePair::new(0, 1, 0.77)];
        let (verified, _) = verify_candidates(&mut MemoryRowStream::new(&m), &candidates).unwrap();
        assert!((verified[0].estimate - 0.77).abs() < 1e-12);
    }

    #[test]
    fn empty_candidates_still_count_columns() {
        let m = matrix();
        let (verified, counts) = verify_candidates(&mut MemoryRowStream::new(&m), &[]).unwrap();
        assert!(verified.is_empty());
        assert_eq!(counts.iter().sum::<u32>() as usize, m.nnz());
    }

    #[test]
    fn single_pass_is_used() {
        let m = matrix();
        let mut counter = sfa_matrix::stream::PassCounter::new(MemoryRowStream::new(&m));
        let _ = verify_candidates(&mut counter, &[CandidatePair::new(0, 1, 1.0)]).unwrap();
        assert_eq!(counter.passes(), 1);
    }

    #[test]
    fn chunked_matches_unchunked() {
        let m = matrix();
        let candidates = vec![
            CandidatePair::new(0, 1, 0.9),
            CandidatePair::new(0, 2, 0.4),
            CandidatePair::new(0, 3, 0.1),
            CandidatePair::new(1, 2, 0.2),
            CandidatePair::new(2, 3, 0.5),
        ];
        let (full, counts_full) =
            verify_candidates(&mut MemoryRowStream::new(&m), &candidates).unwrap();
        for chunk_size in [1, 2, 3, 5, 100] {
            let (chunked, counts) =
                verify_candidates_chunked(&mut MemoryRowStream::new(&m), &candidates, chunk_size)
                    .unwrap();
            assert_eq!(chunked, full, "chunk_size {chunk_size}");
            assert_eq!(counts, counts_full);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        // A larger striped matrix so every thread sees real work.
        let rows: Vec<Vec<u32>> = (0..500u32)
            .map(|i| {
                let mut v = vec![i % 8, (i * 3 + 1) % 8];
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let m = RowMajorMatrix::from_rows(8, rows).unwrap();
        let candidates: Vec<CandidatePair> = (0..8u32)
            .flat_map(|i| ((i + 1)..8).map(move |j| CandidatePair::new(i, j, 0.5)))
            .collect();
        let (seq, counts_seq) =
            verify_candidates(&mut MemoryRowStream::new(&m), &candidates).unwrap();
        for threads in [1, 2, 4, 7] {
            let (par, counts_par) = verify_candidates_parallel(&m, &candidates, threads);
            assert_eq!(par, seq, "threads = {threads}");
            assert_eq!(counts_par, counts_seq);
        }
    }

    #[test]
    fn in_memory_matches_streaming() {
        let m = matrix();
        let candidates = vec![
            CandidatePair::new(0, 1, 0.9),
            CandidatePair::new(0, 2, 0.4),
            CandidatePair::new(1, 3, 0.3),
            CandidatePair::new(2, 3, 0.5),
        ];
        let (stream_v, stream_c) =
            verify_candidates(&mut MemoryRowStream::new(&m), &candidates).unwrap();
        let csc = m.transpose();
        let (mem_v, mem_c) = verify_candidates_in_memory(&csc, &candidates);
        assert_eq!(mem_v, stream_v);
        assert_eq!(mem_c, stream_c);
        for threads in [1, 2, 4] {
            let pool = sfa_par::ThreadPool::new(threads);
            let (pv, pc) = verify_candidates_in_memory_pool(&csc, &candidates, &pool);
            assert_eq!(pv, stream_v, "threads {threads}");
            assert_eq!(pc, stream_c, "threads {threads}");
        }
    }

    #[test]
    fn in_memory_handles_empty_candidates() {
        let csc = matrix().transpose();
        let (verified, counts) = verify_candidates_in_memory(&csc, &[]);
        assert!(verified.is_empty());
        assert_eq!(counts, vec![3, 3, 2, 3]);
    }

    #[test]
    fn cap_charges_actual_container_bytes_not_dense_bitmaps() {
        // Two sparse 100-element columns over a million rows: dense
        // bitmaps would charge 2 · ⌈n/64⌉ · 8 = 250 KB; the hybrid
        // containers actually allocate a few hundred bytes.
        let n_rows = 1_000_000u32;
        let a: Vec<u32> = (0..100u32).map(|i| i * 9_973).collect();
        let b: Vec<u32> = (0..100u32).map(|i| i * 7_919).collect();
        let csc =
            sfa_matrix::SparseMatrix::from_columns(n_rows, vec![a.clone(), b.clone()]).unwrap();
        let candidates = vec![CandidatePair::new(0, 1, 0.5)];
        let container_bytes = sfa_matrix::HybridColumns::payload_bytes_for_subset(&csc, &[0, 1]);
        let dense_bytes = 2 * sfa_matrix::bitmap::words_for(n_rows) * 8;
        assert!(
            container_bytes * 100 < dense_bytes,
            "containers must be far smaller: {container_bytes} vs {dense_bytes}"
        );
        // A cap between the two: the old dense accounting would have
        // refused the fast path; the container accounting admits it.
        let cap = dense_bytes / 2;
        let (inter, report) = in_memory_intersections(&csc, &candidates, None, cap);
        assert!(report.used_containers, "containers fit under {cap}");
        assert_eq!(report.container.container_bytes, container_bytes as u64);
        assert_eq!(report.container.raw_bitmap_bytes, dense_bytes as u64);
        assert!(!report.dispatch_arm.is_empty());
        // Below the actual container bytes the per-pair fallback engages
        // and still produces identical counts.
        let (inter_fb, report_fb) =
            in_memory_intersections(&csc, &candidates, None, container_bytes - 1);
        assert!(!report_fb.used_containers);
        assert_eq!(report_fb.container, sfa_matrix::ContainerStats::default());
        assert_eq!(inter, inter_fb);
        assert_eq!(
            inter[0] as usize,
            sfa_matrix::column::intersection_size(&a, &b)
        );
    }

    #[test]
    fn chunked_pass_count_is_ceil_division() {
        let m = matrix();
        let candidates: Vec<CandidatePair> =
            (1..4).map(|j| CandidatePair::new(0, j, 0.5)).collect();
        let mut counter = sfa_matrix::stream::PassCounter::new(MemoryRowStream::new(&m));
        let _ = verify_candidates_chunked(&mut counter, &candidates, 2).unwrap();
        assert_eq!(counter.passes(), 2, "3 candidates / chunk 2 = 2 passes");
    }

    #[test]
    fn stats_count_partner_probes() {
        let m = matrix();
        let candidates = vec![CandidatePair::new(0, 1, 0.9)];
        let (_, _, probes) =
            verify_candidates_with_stats(&mut MemoryRowStream::new(&m), &candidates).unwrap();
        // Columns 0 and 1 hold 3 ones each; every occurrence probes its
        // single partner once.
        assert_eq!(probes, 6);
    }

    #[test]
    fn resumed_pass_equals_full_pass_and_rereads_only_the_suffix() {
        let m = matrix(); // 6 rows
        let candidates = vec![CandidatePair::new(0, 1, 0.9), CandidatePair::new(2, 3, 0.5)];
        let full =
            verify_candidates_with_stats(&mut MemoryRowStream::new(&m), &candidates).unwrap();

        // Take checkpoints every 2 rows.
        let mut checkpoints = Vec::new();
        let _ = verify_candidates_resumable(
            &mut MemoryRowStream::new(&m),
            &candidates,
            None,
            2,
            &mut |p| {
                checkpoints.push(p.clone());
                Ok(())
            },
            &CancelToken::default(),
        )
        .unwrap();
        assert_eq!(
            checkpoints.iter().map(|p| p.rows_done).collect::<Vec<_>>(),
            vec![2, 4, 6]
        );

        // Resume from the row-4 snapshot on a fresh stream: the counters
        // must match the uninterrupted pass while only rows 4..6 are read.
        let mut counter = sfa_matrix::stream::PassCounter::new(MemoryRowStream::new(&m));
        let resumed = verify_candidates_resumable(
            &mut counter,
            &candidates,
            Some(checkpoints[1].clone()),
            u64::MAX,
            &mut |_| Ok(()),
            &CancelToken::default(),
        )
        .unwrap();
        assert_eq!(counter.rows_read(), 2, "only the suffix is re-read");
        assert_eq!(resumed, full);
    }

    #[test]
    fn canceled_pass_flushes_a_frontier_then_returns_canceled() {
        let m = matrix();
        let candidates = vec![CandidatePair::new(0, 1, 0.9)];
        let token = CancelToken::new();
        token.cancel();
        let mut checkpoints = Vec::new();
        let err = verify_candidates_resumable(
            &mut MemoryRowStream::new(&m),
            &candidates,
            None,
            u64::MAX,
            &mut |p| {
                checkpoints.push(p.clone());
                Ok(())
            },
            &token,
        )
        .unwrap_err();
        assert!(err.is_canceled());
        assert_eq!(
            checkpoints.iter().map(|p| p.rows_done).collect::<Vec<_>>(),
            vec![1],
            "the frontier is flushed once, after the first row"
        );
    }

    #[test]
    fn resume_beyond_stream_end_is_a_dimension_mismatch() {
        let m = matrix();
        let progress = VerifyProgress {
            rows_done: 99,
            intersections: vec![0],
            column_counts: vec![0; 4],
            probes: 0,
        };
        let err = verify_candidates_resumable(
            &mut MemoryRowStream::new(&m),
            &[CandidatePair::new(0, 1, 0.9)],
            Some(progress),
            u64::MAX,
            &mut |_| Ok(()),
            &CancelToken::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            sfa_matrix::MatrixError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn disjoint_pair_verifies_to_zero() {
        let m = RowMajorMatrix::from_rows(2, vec![vec![0], vec![1]]).unwrap();
        let (verified, _) = verify_candidates(
            &mut MemoryRowStream::new(&m),
            &[CandidatePair::new(0, 1, 0.8)],
        )
        .unwrap();
        assert_eq!(verified[0].intersection, 0);
        assert_eq!(verified[0].similarity, 0.0);
        assert_eq!(verified[0].union, 2);
    }
}
