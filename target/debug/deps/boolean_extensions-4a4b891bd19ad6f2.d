/root/repo/target/debug/deps/boolean_extensions-4a4b891bd19ad6f2.d: crates/experiments/src/bin/boolean_extensions.rs

/root/repo/target/debug/deps/libboolean_extensions-4a4b891bd19ad6f2.rmeta: crates/experiments/src/bin/boolean_extensions.rs

crates/experiments/src/bin/boolean_extensions.rs:
