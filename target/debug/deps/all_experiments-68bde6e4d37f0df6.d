/root/repo/target/debug/deps/all_experiments-68bde6e4d37f0df6.d: crates/experiments/src/bin/all_experiments.rs Cargo.toml

/root/repo/target/debug/deps/liball_experiments-68bde6e4d37f0df6.rmeta: crates/experiments/src/bin/all_experiments.rs Cargo.toml

crates/experiments/src/bin/all_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
