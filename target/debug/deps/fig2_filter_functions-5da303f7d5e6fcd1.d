/root/repo/target/debug/deps/fig2_filter_functions-5da303f7d5e6fcd1.d: crates/experiments/src/bin/fig2_filter_functions.rs

/root/repo/target/debug/deps/libfig2_filter_functions-5da303f7d5e6fcd1.rmeta: crates/experiments/src/bin/fig2_filter_functions.rs

crates/experiments/src/bin/fig2_filter_functions.rs:
