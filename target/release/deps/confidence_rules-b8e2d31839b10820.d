/root/repo/target/release/deps/confidence_rules-b8e2d31839b10820.d: crates/experiments/src/bin/confidence_rules.rs

/root/repo/target/release/deps/confidence_rules-b8e2d31839b10820: crates/experiments/src/bin/confidence_rules.rs

crates/experiments/src/bin/confidence_rules.rs:
