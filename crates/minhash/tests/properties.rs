//! Property-based tests for signatures, estimators and candidate
//! generation.

use proptest::prelude::*;

use sfa_matrix::{MemoryRowStream, RowMajorMatrix};
use sfa_minhash::estimate::{kmh_biased, kmh_unbiased, lemma1_bounds};
use sfa_minhash::hashcount::{kmh_overlap_counts, mh_agreement_counts};
use sfa_minhash::rowsort::rowsort_agreement_counts;
use sfa_minhash::theory::agreement_threshold;
use sfa_minhash::{compute_bottom_k, compute_signatures, KmhBuilder, MhBuilder};

fn row_set(bound: u32, max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0..bound, 0..=max_len)
        .prop_map(|s| s.into_iter().collect::<Vec<u32>>())
}

fn small_matrix() -> impl Strategy<Value = RowMajorMatrix> {
    (1u32..14, 2u32..8).prop_flat_map(|(n_rows, n_cols)| {
        prop::collection::vec(row_set(n_cols, n_cols as usize), n_rows as usize)
            .prop_map(move |rows| RowMajorMatrix::from_rows(n_cols, rows).unwrap())
    })
}

proptest! {
    #[test]
    fn s_hat_is_a_bounded_symmetric_score(m in small_matrix(), seed in any::<u64>()) {
        let sigs = compute_signatures(&mut MemoryRowStream::new(&m), 12, seed).unwrap();
        for i in 0..m.n_cols() {
            for j in 0..m.n_cols() {
                let s = sigs.s_hat(i, j);
                prop_assert!((0.0..=1.0).contains(&s));
                prop_assert_eq!(s, sigs.s_hat(j, i));
            }
        }
    }

    #[test]
    fn identical_columns_have_s_hat_one(rows in row_set(12, 8), seed in any::<u64>()) {
        prop_assume!(!rows.is_empty());
        // Build a matrix where columns 0 and 1 have identical content.
        let matrix_rows: Vec<Vec<u32>> = (0..12u32)
            .map(|r| if rows.contains(&r) { vec![0, 1] } else { vec![] })
            .collect();
        let m = RowMajorMatrix::from_rows(2, matrix_rows).unwrap();
        let sigs = compute_signatures(&mut MemoryRowStream::new(&m), 10, seed).unwrap();
        prop_assert_eq!(sigs.s_hat(0, 1), 1.0);
        let ksigs = compute_bottom_k(&mut MemoryRowStream::new(&m), 6, seed).unwrap();
        prop_assert_eq!(ksigs.unbiased_similarity(0, 1), 1.0);
    }

    #[test]
    fn all_candidate_generators_agree_on_counts(m in small_matrix(), seed in any::<u64>()) {
        let sigs = compute_signatures(&mut MemoryRowStream::new(&m), 16, seed).unwrap();
        let by_hash = mh_agreement_counts(&sigs);
        let by_sort = rowsort_agreement_counts(&sigs);
        for i in 0..m.n_cols() {
            for j in (i + 1)..m.n_cols() {
                prop_assert_eq!(by_hash.get(i, j), by_sort.get(i, j), "pair ({}, {})", i, j);
                prop_assert_eq!(
                    by_hash.get(i, j) as usize,
                    sigs.agreement_count(i, j),
                    "pair ({}, {})", i, j
                );
            }
        }
    }

    #[test]
    fn kmh_overlap_counts_match_intersection(m in small_matrix(), seed in any::<u64>()) {
        let sigs = compute_bottom_k(&mut MemoryRowStream::new(&m), 5, seed).unwrap();
        let counts = kmh_overlap_counts(&sigs);
        for i in 0..m.n_cols() {
            for j in (i + 1)..m.n_cols() {
                prop_assert_eq!(counts.get(i, j) as usize, sigs.intersection_size(i, j));
            }
        }
    }

    #[test]
    fn estimators_are_bounded(
        overlap in 0usize..20,
        k in 1usize..20,
        ci in 0usize..100,
        cj in 0usize..100,
    ) {
        let s = kmh_biased(overlap, k, ci, cj);
        prop_assert!((0.0..=1.0).contains(&s));
        let (lo, hi) = lemma1_bounds(overlap as f64, k, ci + cj);
        prop_assert!(lo <= hi + 1e-12);
        prop_assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    }

    #[test]
    fn unbiased_estimator_bounded_and_exact_when_small(
        a in prop::collection::btree_set(any::<u64>(), 0..10),
        b in prop::collection::btree_set(any::<u64>(), 0..10),
    ) {
        let a: Vec<u64> = a.into_iter().collect();
        let b: Vec<u64> = b.into_iter().collect();
        let est = kmh_unbiased(&a, &b, 64);
        prop_assert!((0.0..=1.0).contains(&est));
        // k ≥ |a ∪ b| makes the sketch exhaustive: exact Jaccard of values.
        let inter = a.iter().filter(|v| b.contains(v)).count();
        let union = a.len() + b.len() - inter;
        let exact = if union == 0 { 0.0 } else { inter as f64 / union as f64 };
        prop_assert!((est - exact).abs() < 1e-12);
    }

    #[test]
    fn agreement_threshold_monotonicity(
        k in 1usize..500,
        s1 in 0.01f64..1.0,
        s2 in 0.01f64..1.0,
        delta in 0.0f64..0.9,
    ) {
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        prop_assert!(agreement_threshold(k, lo, delta) <= agreement_threshold(k, hi, delta));
        prop_assert!(agreement_threshold(k, hi, delta) >= 1);
    }

    #[test]
    fn builders_are_split_invariant(m in small_matrix(), seed in any::<u64>(), split in 0u32..14) {
        // Pushing rows in two builders and merging equals one builder.
        let split = split.min(m.n_rows());
        let mcols = m.n_cols() as usize;
        let mut whole_mh = MhBuilder::new(6, mcols, seed);
        let mut left_mh = MhBuilder::new(6, mcols, seed);
        let mut right_mh = MhBuilder::new(6, mcols, seed);
        let mut whole_kmh = KmhBuilder::new(4, mcols, seed);
        let mut left_kmh = KmhBuilder::new(4, mcols, seed);
        let mut right_kmh = KmhBuilder::new(4, mcols, seed);
        for (id, cols) in m.rows() {
            whole_mh.push_row(id, cols);
            whole_kmh.push_row(id, cols);
            if id < split {
                left_mh.push_row(id, cols);
                left_kmh.push_row(id, cols);
            } else {
                right_mh.push_row(id, cols);
                right_kmh.push_row(id, cols);
            }
        }
        left_mh.merge(&right_mh);
        left_kmh.merge(&right_kmh);
        prop_assert_eq!(left_mh.finish(), whole_mh.finish());
        prop_assert_eq!(left_kmh.finish(), whole_kmh.finish());
    }

    #[test]
    fn persisted_sketches_roundtrip(m in small_matrix(), seed in any::<u64>(), tag in 0u64..1_000_000) {
        let dir = std::env::temp_dir().join("sfa_minhash_prop_io");
        std::fs::create_dir_all(&dir).unwrap();
        let sigs = compute_signatures(&mut MemoryRowStream::new(&m), 4, seed).unwrap();
        let p = dir.join(format!("s{tag}.sfmh"));
        sfa_minhash::persist::write_signatures(&sigs, &p).unwrap();
        prop_assert_eq!(sfa_minhash::persist::read_signatures(&p).unwrap(), sigs);
        std::fs::remove_file(&p).ok();

        let ksigs = compute_bottom_k(&mut MemoryRowStream::new(&m), 4, seed).unwrap();
        let p = dir.join(format!("s{tag}.sfkm"));
        sfa_minhash::persist::write_bottom_k(&ksigs, &p).unwrap();
        prop_assert_eq!(sfa_minhash::persist::read_bottom_k(&p).unwrap(), ksigs);
        std::fs::remove_file(&p).ok();
    }
}
