/root/repo/target/debug/examples/market_baskets-5651e929767200e8.d: examples/market_baskets.rs

/root/repo/target/debug/examples/libmarket_baskets-5651e929767200e8.rmeta: examples/market_baskets.rs

examples/market_baskets.rs:
