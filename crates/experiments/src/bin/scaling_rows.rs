//! §5 scaling: "the number of rows vary from 10⁴ to 10⁶".
//!
//! Sweeps the synthetic benchmark's row count and reports per-phase times
//! for each scheme, verifying the expected scaling: signature time linear
//! in rows (the single data pass), candidate time essentially independent
//! of rows (it works on sketches of fixed size).

use sfa_core::Scheme;
use sfa_datagen::SyntheticConfig;
use sfa_experiments::{print_table, run_scheme, write_csv, EXPERIMENT_SEED};

fn main() {
    println!("# §5 scaling — synthetic data, rows from 10^4 to 2.5x10^5");
    let row_counts = [10_000u32, 50_000, 100_000, 250_000];
    let schemes = [
        ("MH", Scheme::Mh { k: 100, delta: 0.2 }),
        ("K-MH", Scheme::Kmh { k: 100, delta: 0.2 }),
        (
            "M-LSH",
            Scheme::MLsh {
                k: 100,
                r: 4,
                l: 25,
                sampled: false,
            },
        ),
    ];
    let mut table = Vec::new();
    let mut csv = Vec::new();
    let mut sig_times: Vec<(String, f64)> = Vec::new();
    for &n_rows in &row_counts {
        let cfg = SyntheticConfig {
            n_rows,
            n_cols: 1_000,
            density_range: (0.01, 0.05),
            pairs_per_band: 2,
            bands: sfa_datagen::synthetic::PAPER_BANDS.to_vec(),
            seed: EXPERIMENT_SEED,
        };
        let data = cfg.generate();
        let rows = data.matrix.transpose();
        let mut row_out = vec![format!("{n_rows}")];
        let mut csv_row = vec![n_rows.to_string()];
        for (name, scheme) in schemes {
            let result = run_scheme(&rows, scheme, 0.45, EXPERIMENT_SEED);
            let found = result.similar_pairs().len();
            row_out.push(format!(
                "{:.2}+{:.2}+{:.2} ({found}p)",
                result.timings.signatures.as_secs_f64(),
                result.timings.candidates.as_secs_f64(),
                result.timings.verify.as_secs_f64(),
            ));
            csv_row.push(format!("{:.5}", result.timings.signatures.as_secs_f64()));
            csv_row.push(format!("{:.5}", result.timings.candidates.as_secs_f64()));
            csv_row.push(format!("{:.5}", result.timings.verify.as_secs_f64()));
            sig_times.push((
                format!("{name}@{n_rows}"),
                result.timings.signatures.as_secs_f64(),
            ));
            // Every scale recovers the planted pairs.
            assert!(
                found >= data.planted.len() * 8 / 10,
                "{name} at n = {n_rows}: only {found}/{} pairs",
                data.planted.len()
            );
        }
        table.push(row_out);
        csv.push(csv_row);
    }
    print_table(
        "Per-phase seconds (signatures+candidates+verify) vs rows",
        &["rows", "MH", "K-MH", "M-LSH"],
        &table,
    );
    write_csv(
        "scaling_rows.csv",
        &[
            "rows",
            "mh_sig_s",
            "mh_cand_s",
            "mh_ver_s",
            "kmh_sig_s",
            "kmh_cand_s",
            "kmh_ver_s",
            "mlsh_sig_s",
            "mlsh_cand_s",
            "mlsh_ver_s",
        ],
        &csv,
    );

    // Linearity: MH signature time at 250k rows ≈ 25× the 10k time
    // (tolerate a wide band; constant overheads flatter small runs).
    let at = |label: &str| {
        sig_times
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, t)| *t)
            .expect("measured")
    };
    let ratio = at("MH@250000") / at("MH@10000").max(1e-9);
    println!("\nMH signature-time ratio 250k/10k rows: {ratio:.1} (linear would be 25)");
    assert!(ratio > 5.0, "signature pass should scale with rows");
    println!("shape check passed");
}
