/root/repo/target/debug/deps/fig9_comparison-2670b3cf6b3407c7.d: crates/experiments/src/bin/fig9_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_comparison-2670b3cf6b3407c7.rmeta: crates/experiments/src/bin/fig9_comparison.rs Cargo.toml

crates/experiments/src/bin/fig9_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
