//! Property-based equivalence of the intersection kernels.
//!
//! The sorted two-pointer merge ([`column::intersection_size`]) is the
//! reference implementation; every faster kernel — galloping search, the
//! adaptive dispatcher, the u32 auto dispatcher with its bitmap arm, and
//! the blocked [`BitMatrix`] all-pairs driver — must return exactly the
//! same integer counts on every input, including the adversarially skewed
//! shapes the dispatcher uses to pick a kernel.

use proptest::prelude::*;

use sfa_matrix::bitmap::{intersection_size_scratch, BitColumn, BitMatrix};
use sfa_matrix::column::{
    intersection_size, intersection_size_adaptive, intersection_size_auto, intersection_size_gallop,
};
use sfa_matrix::MatrixBuilder;

fn row_set(bound: u32, max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0..bound, 0..=max_len)
        .prop_map(|s| s.into_iter().collect::<Vec<u32>>())
}

/// A pair of columns where one side is forced to be far longer than the
/// other (`|small| <= 3`, `|large| >= 48`), so the adaptive dispatcher's
/// galloping arm actually engages (`large / small >= GALLOP_SKEW_CUTOFF`).
fn skewed_pair() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    let small = row_set(4_096, 3);
    let large = prop::collection::btree_set(0u32..4_096, 48..=600)
        .prop_map(|s| s.into_iter().collect::<Vec<u32>>());
    (small, large)
}

proptest! {
    #[test]
    fn all_kernels_match_merge_on_random_columns(
        a in row_set(512, 200),
        b in row_set(512, 200),
    ) {
        let expected = intersection_size(&a, &b);
        prop_assert_eq!(intersection_size_gallop(&a, &b), expected);
        prop_assert_eq!(intersection_size_gallop(&b, &a), expected);
        prop_assert_eq!(intersection_size_adaptive(&a, &b), expected);
        prop_assert_eq!(intersection_size_auto(&a, &b), expected);
        prop_assert_eq!(intersection_size_scratch(&a, &b), expected);
    }

    #[test]
    fn all_kernels_match_merge_on_skewed_columns((small, large) in skewed_pair()) {
        let expected = intersection_size(&small, &large);
        prop_assert_eq!(intersection_size_gallop(&small, &large), expected);
        prop_assert_eq!(intersection_size_adaptive(&small, &large), expected);
        prop_assert_eq!(intersection_size_adaptive(&large, &small), expected);
        prop_assert_eq!(intersection_size_auto(&small, &large), expected);
        prop_assert_eq!(intersection_size_auto(&large, &small), expected);
        prop_assert_eq!(intersection_size_scratch(&small, &large), expected);
    }

    #[test]
    fn bit_columns_match_merge(
        a in row_set(300, 150),
        b in row_set(300, 150),
    ) {
        let ca = BitColumn::from_rows(300, &a);
        let cb = BitColumn::from_rows(300, &b);
        let expected = intersection_size(&a, &b);
        prop_assert_eq!(ca.intersection_size(&cb), expected);
        let union = a.len() + b.len() - expected;
        prop_assert_eq!(ca.union_size(&cb), union);
        let want_jaccard = if union == 0 { 0.0 } else { expected as f64 / union as f64 };
        prop_assert!((ca.jaccard(&cb) - want_jaccard).abs() < 1e-12);
    }

    #[test]
    fn blocked_driver_matches_per_pair_merge(
        entries in prop::collection::vec((0u32..60, 0u32..40), 0..400),
    ) {
        let mut builder = MatrixBuilder::new(60, 40);
        for &(r, c) in &entries {
            builder.add_entry(r, c).unwrap();
        }
        let matrix = builder.build_csc();
        let bits = BitMatrix::from_csc(&matrix);
        // Collect the driver's visits, then check them against the merge
        // kernel on the raw CSC columns: same pairs, same counts, no
        // duplicates, nothing skipped.
        let mut visited = std::collections::BTreeMap::new();
        let mut duplicate = false;
        bits.for_each_cooccurring_pair(|i, j, inter| {
            duplicate |= i >= j || inter == 0 || visited.insert((i, j), inter).is_some();
        });
        prop_assert!(!duplicate, "driver visited a pair twice, out of order, or empty");
        for i in 0..matrix.n_cols() {
            for j in (i + 1)..matrix.n_cols() {
                let expected = intersection_size(matrix.column(i), matrix.column(j));
                let got = visited.get(&(i as usize, j as usize)).copied().unwrap_or(0);
                prop_assert_eq!(got, expected, "pair ({}, {})", i, j);
            }
        }
    }
}
