//! Fig. 1: interesting similar word pairs mined from news articles.
//!
//! The paper lists pairs like (Dalai, Lama) and the cluster
//! (chess, Timman, Karpov, Soviet, Ivanchuk, Polger), all with very low
//! support. We mine the news-like corpus with the MH pipeline and print
//! the discovered pairs with their labels, supports and similarities,
//! checking the planted collocations are recovered.

use sfa_core::Scheme;
use sfa_experiments::{print_table, run_scheme, write_csv, NewsExperiment, EXPERIMENT_SEED};

fn main() {
    println!("# Fig. 1 — similar pairs in news articles (support-free)");
    let news = NewsExperiment::load();
    let result = run_scheme(
        &news.rows,
        Scheme::Kmh { k: 60, delta: 0.2 },
        0.7,
        EXPERIMENT_SEED,
    );
    let pairs = result.similar_pairs();
    println!(
        "pipeline found {} pairs at s* = 0.7 ({} candidates, {})",
        pairs.len(),
        result.candidates_generated(),
        result.timings
    );

    // The Fig. 1 table: discovered planted collocations with labels.
    let planted: std::collections::HashSet<(u32, u32)> =
        news.data.collocations.iter().copied().collect();
    let mut rows = Vec::new();
    let mut found_planted = 0;
    let mut cluster_pairs = 0;
    let cluster: std::collections::HashSet<u32> = news.data.cluster.iter().copied().collect();
    for p in &pairs {
        let kind = if planted.contains(&(p.i, p.j)) {
            found_planted += 1;
            "collocation"
        } else if cluster.contains(&p.i) && cluster.contains(&p.j) {
            cluster_pairs += 1;
            "cluster"
        } else {
            "background"
        };
        rows.push(vec![
            news.data.word_label(p.i),
            news.data.word_label(p.j),
            format!("{:.3}", p.similarity),
            p.intersection.to_string(),
            kind.to_string(),
        ]);
    }
    rows.sort_by(|a, b| {
        b[2].partial_cmp(&a[2])
            .expect("finite")
            .then(a[0].cmp(&b[0]))
    });
    print_table(
        "Similar pairs found (cf. paper Fig. 1)",
        &["word A", "word B", "similarity", "support", "kind"],
        &rows,
    );

    let n_cluster_pairs = news.data.cluster.len() * (news.data.cluster.len() - 1) / 2;
    println!(
        "\nplanted collocations recovered: {found_planted}/{}",
        news.data.collocations.len()
    );
    println!("cluster pairs recovered: {cluster_pairs}/{n_cluster_pairs}");
    let colloc_support_max = pairs
        .iter()
        .filter(|p| planted.contains(&(p.i, p.j)))
        .map(|p| p.union)
        .max()
        .unwrap_or(0);
    println!(
        "(collocation pairs occur in ≤ {colloc_support_max} of {} docs — \
         far below any practical a priori support threshold)",
        news.rows.n_rows()
    );

    write_csv(
        "fig1_news_pairs.csv",
        &["word_a", "word_b", "similarity", "support", "kind"],
        &rows,
    );

    assert!(
        found_planted * 10 >= news.data.collocations.len() * 9,
        "fewer than 90% of planted collocations recovered"
    );
}
