//! Parallel execution layer: sharded counter merge and every pool-based
//! phase-2 generator at 1, 2, and 4 workers.
//!
//! On a single-core host the multi-worker points measure scheduling
//! overhead only (expect ~1x); on multi-core CI runners they show the
//! actual speedup of the chunked dynamic scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfa_bench::bench_weblog;
use sfa_hash::bucket::{merge_sharded, CounterTable, ShardedPairCounter};
use sfa_lsh::{
    hlsh_candidates_with_stats_pool, mlsh_candidates_with_stats_pool, HLshParams, MLshParams,
};
use sfa_matrix::MemoryRowStream;
use sfa_minhash::hashcount::{kmh_candidates_with_stats_pool, mh_candidates_with_stats_pool};
use sfa_minhash::rowsort::rowsort_candidates_with_stats_pool;
use sfa_minhash::{compute_bottom_k, compute_signatures};
use sfa_par::ThreadPool;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Deterministic per-worker shard sets: 16 shards, 200k increments spread
/// over a synthetic pair universe (splitmix-style key stream).
fn synthetic_locals(n_locals: usize) -> Vec<Vec<CounterTable>> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..n_locals)
        .map(|_| {
            let mut local = ShardedPairCounter::new(16);
            for _ in 0..200_000 / n_locals {
                let x = next();
                let i = (x >> 32) as u32 % 4096;
                let j = x as u32 % 4096;
                if i != j {
                    local.increment(i.min(j), i.max(j));
                }
            }
            local.into_shards()
        })
        .collect()
}

fn sharded_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_merge");
    group.sample_size(20);
    for threads in THREAD_COUNTS {
        let pool = ThreadPool::new(threads);
        let locals = synthetic_locals(4);
        group.bench_with_input(
            BenchmarkId::new("merge_sharded_4_locals", threads),
            &pool,
            |b, pool| {
                b.iter(|| {
                    let locals: Vec<ShardedPairCounter> = locals
                        .iter()
                        .map(|shards| ShardedPairCounter::from_shards(shards.clone()))
                        .collect();
                    merge_sharded(locals, pool)
                });
            },
        );
    }
    group.finish();
}

fn parallel_generators(c: &mut Criterion) {
    let (_, rows) = bench_weblog();
    let sigs = compute_signatures(&mut MemoryRowStream::new(&rows), 100, 7).unwrap();
    let ksigs = compute_bottom_k(&mut MemoryRowStream::new(&rows), 64, 7).unwrap();
    let mlsh = MLshParams::banded(5, 20, 7);
    let hlsh = HLshParams::new(8, 8, 7);

    let mut group = c.benchmark_group("par_candidates");
    group.sample_size(10);
    for threads in THREAD_COUNTS {
        let pool = ThreadPool::new(threads);
        group.bench_with_input(BenchmarkId::new("mh_k100", threads), &pool, |b, pool| {
            b.iter(|| mh_candidates_with_stats_pool(&sigs, 0.5, 0.2, pool));
        });
        group.bench_with_input(
            BenchmarkId::new("rowsort_k100", threads),
            &pool,
            |b, pool| {
                b.iter(|| rowsort_candidates_with_stats_pool(&sigs, 0.5, 0.2, pool));
            },
        );
        group.bench_with_input(BenchmarkId::new("kmh_k64", threads), &pool, |b, pool| {
            b.iter(|| kmh_candidates_with_stats_pool(&ksigs, 0.5, 0.2, pool));
        });
        group.bench_with_input(
            BenchmarkId::new("mlsh_r5_l20", threads),
            &pool,
            |b, pool| {
                b.iter(|| mlsh_candidates_with_stats_pool(&sigs, &mlsh, pool));
            },
        );
        group.bench_with_input(BenchmarkId::new("hlsh_r8_l8", threads), &pool, |b, pool| {
            b.iter(|| hlsh_candidates_with_stats_pool(&rows, &hlsh, pool));
        });
    }
    group.finish();
}

criterion_group!(benches, sharded_merge, parallel_generators);
criterion_main!(benches);
