/root/repo/target/debug/deps/fig2_filter_functions-2adc8179167e8d96.d: crates/experiments/src/bin/fig2_filter_functions.rs

/root/repo/target/debug/deps/fig2_filter_functions-2adc8179167e8d96: crates/experiments/src/bin/fig2_filter_functions.rs

crates/experiments/src/bin/fig2_filter_functions.rs:
