/root/repo/target/debug/deps/all_experiments-a92ecf27c73a8f01.d: crates/experiments/src/bin/all_experiments.rs

/root/repo/target/debug/deps/liball_experiments-a92ecf27c73a8f01.rmeta: crates/experiments/src/bin/all_experiments.rs

crates/experiments/src/bin/all_experiments.rs:
