//! Runs every experiment binary in sequence (same process, same seeds),
//! refreshing all CSVs under `results/`.

use std::process::Command;

fn main() {
    let binaries = [
        "fig1_news_pairs",
        "fig2_filter_functions",
        "fig3_similarity_distribution",
        "fig4_apriori_comparison",
        "fig5_mh",
        "fig6_kmh",
        "fig7_hlsh",
        "fig8_mlsh",
        "fig9_comparison",
        "synthetic_sweep",
        "confidence_rules",
        "scaling_rows",
        "boolean_extensions",
        "basket_benchmark",
    ];
    // Find sibling binaries next to this one (works for cargo run and for
    // direct target/release invocation).
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("exe dir");
    let mut failed = Vec::new();
    for bin in binaries {
        println!("\n=============================== {bin} ===============================");
        let path = dir.join(bin);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            failed.push(bin);
        }
    }
    if failed.is_empty() {
        println!("\nall experiments completed; CSVs are in results/");
    } else {
        eprintln!("\nFAILED: {failed:?}");
        std::process::exit(1);
    }
}
