/root/repo/target/debug/deps/sfa_experiments-bbc7c9efe58e49dd.d: crates/experiments/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsfa_experiments-bbc7c9efe58e49dd.rmeta: crates/experiments/src/lib.rs Cargo.toml

crates/experiments/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
