/root/repo/target/release/deps/sfa-8d57c9f406e7c57f.d: src/bin/sfa.rs

/root/repo/target/release/deps/sfa-8d57c9f406e7c57f: src/bin/sfa.rs

src/bin/sfa.rs:
