/root/repo/target/debug/deps/paper_fidelity-2f01357e12d8ee53.d: tests/paper_fidelity.rs

/root/repo/target/debug/deps/libpaper_fidelity-2f01357e12d8ee53.rmeta: tests/paper_fidelity.rs

tests/paper_fidelity.rs:
