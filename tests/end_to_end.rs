//! Cross-crate integration: every scheme, end to end, against exact ground
//! truth on generated data.

use sfa::core::{evaluate_quality, Pipeline, PipelineConfig, Scheme};
use sfa::datagen::SyntheticConfig;
use sfa::matrix::MemoryRowStream;

fn schemes() -> Vec<(&'static str, Scheme, f64 /* max FN rate */)> {
    vec![
        ("MH", Scheme::Mh { k: 150, delta: 0.2 }, 0.0),
        ("MH-rowsort", Scheme::MhRowSort { k: 150, delta: 0.2 }, 0.0),
        ("K-MH", Scheme::Kmh { k: 100, delta: 0.2 }, 0.0),
        (
            "M-LSH",
            Scheme::MLsh {
                k: 150,
                r: 3,
                l: 50,
                sampled: false,
            },
            0.05,
        ),
        (
            "M-LSH-sampled",
            Scheme::MLsh {
                k: 60,
                r: 3,
                l: 50,
                sampled: true,
            },
            0.05,
        ),
        (
            "H-LSH",
            Scheme::HLsh {
                r: 12,
                l: 8,
                t: 4,
                max_levels: 14,
            },
            0.45, // H-LSH misses low-similarity pairs by design
        ),
    ]
}

#[test]
fn all_schemes_recover_planted_pairs_with_zero_output_false_positives() {
    let data = SyntheticConfig::small(4_000, 77).generate();
    let rows = data.matrix.transpose();
    let truth = sfa::matrix::stats::exact_similar_pairs(&data.matrix, 0.05);
    let s_star = 0.45;
    let real_above = truth.iter().filter(|p| p.similarity >= s_star).count();
    assert!(real_above >= 10, "data should plant 10 pairs");

    for (name, scheme, max_fn) in schemes() {
        let result = Pipeline::new(PipelineConfig::new(scheme, s_star, 5))
            .run(&mut MemoryRowStream::new(&rows))
            .unwrap();
        // Output exactness: every output pair is genuinely above threshold.
        for p in result.similar_pairs() {
            let exact = data.matrix.similarity(p.i, p.j);
            assert!(
                (p.similarity - exact).abs() < 1e-12 && exact >= s_star,
                "{name}: wrong output pair ({}, {})",
                p.i,
                p.j
            );
        }
        // Recall vs the declared tolerance of the scheme.
        let found: Vec<(u32, u32, f64)> = result
            .verified
            .iter()
            .map(|p| (p.i, p.j, p.similarity))
            .collect();
        let q = evaluate_quality(&found, &truth, 10, s_star);
        assert!(
            q.false_negative_rate() <= max_fn + 1e-9,
            "{name}: FN rate {} exceeds tolerance {max_fn}",
            q.false_negative_rate()
        );
    }
}

#[test]
fn planted_pairs_are_found_with_exact_similarity() {
    let data = SyntheticConfig::small(4_000, 3).generate();
    let rows = data.matrix.transpose();
    let result = Pipeline::new(PipelineConfig::new(
        Scheme::Mh {
            k: 200,
            delta: 0.25,
        },
        0.45,
        9,
    ))
    .run(&mut MemoryRowStream::new(&rows))
    .unwrap();
    let found: std::collections::HashMap<(u32, u32), f64> = result
        .similar_pairs()
        .iter()
        .map(|p| ((p.i, p.j), p.similarity))
        .collect();
    for planted in &data.planted {
        let got = found
            .get(&(planted.i, planted.j))
            .unwrap_or_else(|| panic!("planted pair ({}, {}) missed", planted.i, planted.j));
        assert!(
            (got - planted.similarity).abs() < 1e-12,
            "similarity mismatch for ({}, {})",
            planted.i,
            planted.j
        );
    }
}

#[test]
fn higher_threshold_output_is_subset_of_lower() {
    let data = SyntheticConfig::small(3_000, 21).generate();
    let rows = data.matrix.transpose();
    let run = |s_star: f64| -> std::collections::HashSet<(u32, u32)> {
        Pipeline::new(PipelineConfig::new(
            Scheme::Kmh { k: 80, delta: 0.2 },
            s_star,
            4,
        ))
        .run(&mut MemoryRowStream::new(&rows))
        .unwrap()
        .similar_pairs()
        .iter()
        .map(|p| (p.i, p.j))
        .collect()
    };
    let at_low = run(0.45);
    let at_high = run(0.75);
    assert!(
        at_high.is_subset(&at_low),
        "raising s* must only remove pairs"
    );
    assert!(at_low.len() > at_high.len());
}

#[test]
fn seeds_change_internals_not_correctness() {
    let data = SyntheticConfig::small(3_000, 8).generate();
    let rows = data.matrix.transpose();
    let mut outputs = Vec::new();
    for seed in [1u64, 2, 3] {
        let result = Pipeline::new(PipelineConfig::new(
            Scheme::Mh {
                k: 200,
                delta: 0.25,
            },
            0.45,
            seed,
        ))
        .run(&mut MemoryRowStream::new(&rows))
        .unwrap();
        let mut pairs: Vec<(u32, u32)> =
            result.similar_pairs().iter().map(|p| (p.i, p.j)).collect();
        pairs.sort_unstable();
        outputs.push(pairs);
    }
    // All seeds recover all planted pairs (they might differ in extras
    // below threshold — but output filtering makes them equal here).
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);
}
