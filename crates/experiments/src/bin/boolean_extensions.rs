//! §7 extensions exercised end to end: OR-composition, AND implication
//! and support-floored anticorrelation, on the weblog data.

use sfa_core::boolean::{and_implication, anticorrelated_pairs, find_or_associations};
use sfa_experiments::{print_table, write_csv, WeblogExperiment, EXPERIMENT_SEED};
use sfa_matrix::MemoryRowStream;
use sfa_minhash::compute_signatures;

fn main() {
    println!("# §7 — boolean extensions (OR / AND / anticorrelation)");
    let weblog = WeblogExperiment::load();
    let sigs = compute_signatures(
        &mut MemoryRowStream::new(&weblog.rows),
        400,
        EXPERIMENT_SEED,
    )
    .expect("in-memory stream");

    // --- OR composition: a parent URL should be similar to the OR of two
    // of its children (each child ⊂ parent visits, union ≈ parent).
    let mut or_rows = Vec::new();
    let mut or_hits = 0;
    let mut tried = 0;
    for parent in 0..weblog.data.n_parent_cols {
        let children: Vec<u32> = (weblog.data.n_parent_cols..weblog.rows.n_cols())
            .filter(|&c| weblog.data.parent_of[c as usize] == parent)
            .collect();
        if children.len() < 2 || weblog.data.matrix.column_count(parent) < 100 {
            continue;
        }
        tried += 1;
        if tried > 12 {
            break;
        }
        let pool = [(children[0], children[1])];
        let found = find_or_associations(&sigs, parent, &pool, 0.7, 0.15);
        let est = sfa_core::boolean::or_similarity(&sigs, parent, children[0], children[1]);
        if !found.is_empty() {
            or_hits += 1;
        }
        or_rows.push(vec![
            format!("url{parent}"),
            format!("url{} v url{}", children[0], children[1]),
            format!("{est:.3}"),
            if found.is_empty() { "-" } else { "match" }.to_string(),
        ]);
    }
    print_table(
        "OR composition: parent ~ child1 v child2",
        &["target", "OR of", "estimated S", "≥ 0.7?"],
        &or_rows,
    );
    assert!(
        or_hits * 10 >= tried.min(12) * 7,
        "only {or_hits}/{tried} OR compositions matched"
    );

    // --- AND implication: child ⇒ parent ∧ sibling (both fetched with the
    // same parent visits).
    let mut and_rows = Vec::new();
    let mut and_hits = 0;
    let mut and_tried = 0;
    for c in weblog.data.n_parent_cols..weblog.rows.n_cols() {
        let parent = weblog.data.parent_of[c as usize];
        let sibling = (weblog.data.n_parent_cols..weblog.rows.n_cols())
            .find(|&s| s != c && weblog.data.parent_of[s as usize] == parent);
        let Some(sibling) = sibling else { continue };
        if weblog.data.matrix.column_count(c) < 100 {
            continue;
        }
        and_tried += 1;
        if and_tried > 12 {
            break;
        }
        let imp = and_implication(&sigs, c, parent, sibling);
        if imp.holds_at(0.75) {
            and_hits += 1;
        }
        and_rows.push(vec![
            format!("url{c}"),
            format!("url{parent} ^ url{sibling}"),
            format!("{:.2}/{:.2}", imp.conf_first, imp.conf_second),
            if imp.holds_at(0.75) { "holds" } else { "-" }.to_string(),
        ]);
    }
    print_table(
        "AND implication: child => parent ^ sibling",
        &["antecedent", "consequent", "conf estimates", "@0.75"],
        &and_rows,
    );
    assert!(
        and_hits * 2 >= and_tried.min(12),
        "only {and_hits}/{and_tried} AND implications held"
    );

    // --- Anticorrelation needs columns that are frequent yet genuinely
    // mutually exclusive; taste communities in the CF workload are exactly
    // that (users of different communities share almost no items).
    let cf = sfa_datagen::CfConfig {
        n_items: 2_000,
        n_users: 120,
        n_communities: 4,
        ratings_range: (60, 120),
        affinity: 0.99,
        seed: EXPERIMENT_SEED,
    }
    .generate();
    let cf_rows = cf.matrix.transpose();
    let cf_sigs = compute_signatures(
        &mut MemoryRowStream::new(&cf_rows),
        400,
        EXPERIMENT_SEED ^ 1,
    )
    .expect("in-memory stream");
    let cf_counts: Vec<u32> = cf
        .matrix
        .column_counts()
        .iter()
        .map(|&c| c as u32)
        .collect();
    let floor = 40;
    let anti = anticorrelated_pairs(&cf_sigs, &cf_counts, floor, 0.005);
    println!(
        "\nanticorrelated user pairs (CF data, support ≥ {floor}): {}",
        anti.len()
    );
    let mut cross_community = 0;
    for c in &anti {
        let exact = cf.matrix.similarity(c.i, c.j);
        assert!(exact < 0.05, "flagged pair is not actually anticorrelated");
        if cf.community_of[c.i as usize] != cf.community_of[c.j as usize] {
            cross_community += 1;
        }
    }
    println!(
        "{cross_community}/{} flagged pairs span different taste communities",
        anti.len()
    );
    assert!(!anti.is_empty(), "disjoint communities must be detected");
    assert!(
        cross_community * 10 >= anti.len() * 9,
        "anticorrelation should align with community structure"
    );

    let csv: Vec<Vec<String>> = anti
        .iter()
        .map(|c| {
            vec![
                c.i.to_string(),
                c.j.to_string(),
                format!("{:.4}", c.estimate),
                format!("{:.4}", cf.matrix.similarity(c.i, c.j)),
            ]
        })
        .collect();
    write_csv(
        "boolean_extensions_anticorrelated.csv",
        &["user_i", "user_j", "estimated_s", "exact_s"],
        &csv,
    );
    println!("\nall §7 extension checks passed");
}
