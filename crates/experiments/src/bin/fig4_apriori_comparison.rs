//! Fig. 4 (table): running times on the news data — a priori vs the four
//! support-free schemes, at several support-pruning thresholds.
//!
//! The paper prunes columns below a support threshold so a priori can run
//! at all, then compares CPU times. The shape to reproduce: a priori is
//! orders of magnitude slower (and becomes infeasible as the threshold
//! drops), H-LSH and M-LSH are the fastest, MH and K-MH sit between.

use std::time::Instant;

use sfa_apriori::apriori_similar_pairs;
use sfa_core::Scheme;
use sfa_experiments::{print_table, run_scheme, write_csv, NewsExperiment, EXPERIMENT_SEED};
use sfa_matrix::ops::prune_support;

fn main() {
    println!("# Fig. 4 — running times: a priori vs support-free schemes (news data)");
    let news = NewsExperiment::load();
    let n_docs = news.rows.n_rows();
    let s_star = 0.5;

    // The paper's support thresholds (fractions of rows).
    let thresholds = [0.0001, 0.00015, 0.002];
    let mut table = Vec::new();
    let mut csv = Vec::new();
    for &thr in &thresholds {
        let min_count = ((f64::from(n_docs) * thr).ceil() as usize).max(1);
        let (pruned, _kept) = prune_support(&news.data.matrix, min_count);
        let pruned_rows = pruned.transpose();
        let m_after = pruned.n_cols();

        // a priori (level ≤ 2, similarity-filtered like ours).
        let t = Instant::now();
        let apairs = apriori_similar_pairs(&pruned_rows, min_count as u32, s_star);
        let apriori_time = t.elapsed().as_secs_f64();

        let mut row = vec![
            format!("{:.3}%", thr * 100.0),
            m_after.to_string(),
            format!("{apriori_time:.2}"),
        ];
        let mut csv_row = vec![
            format!("{thr}"),
            m_after.to_string(),
            format!("{apriori_time:.4}"),
        ];
        let schemes = [
            Scheme::Mh { k: 100, delta: 0.2 },
            Scheme::Kmh { k: 100, delta: 0.2 },
            Scheme::HLsh {
                r: 16,
                l: 4,
                t: 4,
                max_levels: 16,
            },
            Scheme::MLsh {
                k: 100,
                r: 5,
                l: 20,
                sampled: false,
            },
        ];
        let mut scheme_pairs = Vec::new();
        for scheme in schemes {
            let result = run_scheme(&pruned_rows, scheme, s_star, EXPERIMENT_SEED);
            let secs = result.timings.total().as_secs_f64();
            row.push(format!("{secs:.2}"));
            csv_row.push(format!("{secs:.4}"));
            scheme_pairs.push((scheme.name(), result.similar_pairs().len()));
        }
        println!(
            "  threshold {:.3}%: apriori found {} pairs; schemes found {:?}",
            thr * 100.0,
            apairs.len(),
            scheme_pairs
        );
        table.push(row);
        csv.push(csv_row);
    }

    print_table(
        "Running times (seconds), news data, s* = 0.5 (cf. paper Fig. 4)",
        &[
            "support", "columns", "a priori", "MH", "K-MH", "H-LSH", "M-LSH",
        ],
        &table,
    );
    write_csv(
        "fig4_apriori_comparison.csv",
        &[
            "support_threshold",
            "columns_after_pruning",
            "apriori_s",
            "mh_s",
            "kmh_s",
            "hlsh_s",
            "mlsh_s",
        ],
        &csv,
    );

    // The table's qualitative shape, asserted on the lowest threshold row:
    // a priori slower than every support-free scheme.
    let last = &csv[0];
    let apriori: f64 = last[2].parse().unwrap();
    for (idx, name) in ["MH", "K-MH", "H-LSH", "M-LSH"].iter().enumerate() {
        let t: f64 = last[3 + idx].parse().unwrap();
        assert!(
            apriori > t,
            "{name} ({t:.3}s) not faster than a priori ({apriori:.3}s) at the lowest threshold"
        );
    }
    println!("\nshape check passed: a priori dominated at the lowest support threshold");
}
