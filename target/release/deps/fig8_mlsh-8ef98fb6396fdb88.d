/root/repo/target/release/deps/fig8_mlsh-8ef98fb6396fdb88.d: crates/experiments/src/bin/fig8_mlsh.rs

/root/repo/target/release/deps/fig8_mlsh-8ef98fb6396fdb88: crates/experiments/src/bin/fig8_mlsh.rs

crates/experiments/src/bin/fig8_mlsh.rs:
