//! Reproducible pipeline baseline: every scheme over the seeded synthetic
//! and weblog generators, with the full [`MiningMetrics`] counters.
//!
//! Writes `BENCH_pipeline.json` at the repository root. Every counter in
//! the file is deterministic for the fixed [`EXPERIMENT_SEED`] — scan
//! volumes, signature bytes, per-stage candidate counts, bucket
//! histograms, and verification outcomes — so a re-run on any machine
//! reproduces those byte-for-byte and a diff means behavior actually
//! changed. Machine-dependent wall-clock data (per-phase seconds and the
//! 1-vs-4-thread phase-2 speedup sweep) lives exclusively under keys named
//! `"timing"`, which the CI `bench-diff` tool strips before comparing.
//!
//! ```text
//! cargo run --release -p sfa-experiments --bin bench-baseline -- --scale large
//! ```
//!
//! `--scale large` adds a third dataset at paper-exceeding width — 10⁵
//! columns, far past what the in-memory candidate phase was sized for —
//! mined through [`Pipeline::run_sharded`] under a fixed
//! [`MemoryBudget`], so the committed baseline also pins the sharding
//! counters (shard count, spill bytes, generation passes). Without the
//! flag only the two small datasets run.
//!
//! [`MiningMetrics`]: sfa_core::MiningMetrics
//! [`MemoryBudget`]: sfa_core::MemoryBudget

use std::path::PathBuf;
use std::time::Instant;

use sfa_core::{
    CancelToken, MemoryBudget, MiningResult, Pipeline, PipelineConfig, Scheme,
    METRICS_SCHEMA_VERSION,
};
use sfa_datagen::{SyntheticConfig, WeblogConfig};
use sfa_experiments::loadgen::{run_load, LoadConfig};
use sfa_experiments::{print_table, run_scheme, EXPERIMENT_SEED};
use sfa_json::Json;
use sfa_matrix::{stats, MemoryRowStream, RowMajorMatrix, SparseMatrix};
use sfa_par::ThreadPool;
use sfa_serve::{Server, ServerConfig};

/// Similarity threshold shared by every baseline run.
const S_STAR: f64 = 0.7;

/// Memory budget for the `--scale large` sharded runs: small enough that
/// the dense schemes must split the pair space into several shards, large
/// enough that the pass count stays in the single digits.
const LARGE_BUDGET_BYTES: usize = 16 << 20;

/// The `--scale large` dataset: 10⁵ columns (10× the paper's §5 width) at
/// a row count inside the paper's 10⁴–10⁶ sweep range. Densities are
/// scaled down so column cardinalities stay near the small preset's while
/// the pair space grows ~10 000×: the phase-2 counter state for MH-family
/// schemes runs to hundreds of megabits, which is exactly what the memory
/// budget shards.
fn large_synthetic() -> SyntheticConfig {
    SyntheticConfig {
        n_rows: 300_000,
        n_cols: 100_000,
        density_range: (4.0e-5, 6.0e-5),
        pairs_per_band: 20,
        bands: sfa_datagen::synthetic::PAPER_BANDS.to_vec(),
        seed: EXPERIMENT_SEED,
    }
}

fn schemes() -> Vec<Scheme> {
    vec![
        Scheme::Mh { k: 100, delta: 0.2 },
        Scheme::MhRowSort { k: 100, delta: 0.2 },
        Scheme::Kmh { k: 64, delta: 0.2 },
        Scheme::MLsh {
            k: 100,
            r: 5,
            l: 20,
            sampled: false,
        },
        Scheme::HLsh {
            r: 8,
            l: 8,
            t: 4,
            max_levels: 12,
        },
    ]
}

fn run_json(result: &MiningResult) -> Json {
    Json::obj()
        .field("scheme", result.config.scheme.name())
        .field("config", result.config)
        .field("pairs_found", result.similar_pairs().len())
        .field(
            "candidate_false_positives",
            result.false_positive_candidates(),
        )
        .field("metrics", &result.metrics)
        .field(
            "timing",
            Json::obj()
                .field("signatures_s", result.timings.signatures.as_secs_f64())
                .field("candidates_s", result.timings.candidates.as_secs_f64())
                .field("verify_s", result.timings.verify.as_secs_f64())
                .field("total_s", result.timings.total().as_secs_f64()),
        )
}

/// Best-of-`reps` phase-2 (candidate generation) seconds for one scheme
/// over a shared pool, via the parallel in-memory pipeline.
fn best_phase2_seconds(rows: &RowMajorMatrix, scheme: Scheme, pool: &ThreadPool) -> f64 {
    let pipeline = Pipeline::new(PipelineConfig::new(scheme, S_STAR, EXPERIMENT_SEED));
    (0..3)
        .map(|_| {
            pipeline
                .run_pool(rows, pool)
                .timings
                .candidates
                .as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// The machine-dependent speedup sweep: phase 2 of every scheme at one
/// worker vs. four, best of three runs each. Everything here goes under a
/// `"timing"` key so the CI diff ignores it. When the host has fewer than
/// four hardware threads the 4-worker column is oversubscribed — it would
/// measure scheduler contention, not scaling — so the sweep is marked
/// `"oversubscribed": true` and the 4-worker measurement is skipped
/// rather than reported as a bogus sub-1x "speedup".
fn speedup_json(rows: &RowMajorMatrix, table: &mut Vec<Vec<String>>) -> Json {
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let oversubscribed = host_threads < 4;
    let pool1 = ThreadPool::new(1);
    let pool4 = (!oversubscribed).then(|| ThreadPool::new(4));
    let mut per_scheme = Vec::new();
    for scheme in schemes() {
        let t1 = best_phase2_seconds(rows, scheme, &pool1);
        let mut entry = Json::obj()
            .field("scheme", scheme.name())
            .field("phase2_1t_s", t1);
        let (t4_cell, speedup_cell) = if let Some(pool4) = &pool4 {
            let t4 = best_phase2_seconds(rows, scheme, pool4);
            let speedup = t1 / t4;
            entry = entry.field("phase2_4t_s", t4).field("speedup_4t", speedup);
            (format!("{t4:.4}"), format!("{speedup:.2}x"))
        } else {
            ("skipped".to_owned(), "-".to_owned())
        };
        table.push(vec![
            scheme.name().to_owned(),
            format!("{t1:.4}"),
            t4_cell,
            speedup_cell,
        ]);
        per_scheme.push(entry);
    }
    Json::obj()
        .field("host_threads", host_threads)
        .field("oversubscribed", oversubscribed)
        .field("phase2_speedup", per_scheme)
}

/// Best-of-`reps` wall-clock seconds for `f`, plus its (stable) result.
fn best_seconds<T>(reps: u32, f: impl Fn() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        out = Some(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    (out.expect("reps >= 1"), best)
}

/// Exact ground-truth kernel timings on one baseline dataset: the
/// all-pairs sorted-merge reference vs. the auto dispatcher, the blocked
/// bitmap driver pinned to the scalar and (when the CPU has one) the SIMD
/// word-kernel arm, and the hybrid-container path. Every variant must
/// return identical pairs; the seconds are machine-dependent and live
/// under the `"timing"` subtree. The host arm name is recorded alongside
/// (also under `"timing"` — it is machine-dependent too).
fn kernel_json(name: &str, columns: &SparseMatrix, table: &mut Vec<Vec<String>>) -> Json {
    use sfa_matrix::{kernel, KernelChoice};

    let (merge_pairs, merge_s) =
        best_seconds(3, || stats::exact_similar_pairs_merge(columns, S_STAR));
    let (dispatch_pairs, dispatch_s) =
        best_seconds(3, || stats::exact_similar_pairs(columns, S_STAR));
    assert_eq!(
        merge_pairs, dispatch_pairs,
        "auto dispatch must match the sorted-merge ground truth exactly"
    );
    kernel::force(KernelChoice::Scalar).expect("scalar arm always available");
    let (scalar_pairs, scalar_s) =
        best_seconds(3, || stats::exact_similar_pairs_bitmap(columns, S_STAR));
    assert_eq!(scalar_pairs, merge_pairs, "scalar bitmap arm diverged");
    let simd = kernel::force(KernelChoice::Simd).ok().map(|arm| {
        let (simd_pairs, simd_s) =
            best_seconds(3, || stats::exact_similar_pairs_bitmap(columns, S_STAR));
        assert_eq!(simd_pairs, merge_pairs, "SIMD bitmap arm diverged");
        (arm, simd_s)
    });
    kernel::force(KernelChoice::Auto).expect("auto restores detection");
    let (hybrid_pairs, hybrid_s) =
        best_seconds(3, || stats::exact_similar_pairs_hybrid(columns, S_STAR));
    assert_eq!(hybrid_pairs, merge_pairs, "hybrid containers diverged");

    let (simd_cell, simd_speedup_cell) = simd.as_ref().map_or_else(
        || ("n/a".to_owned(), "-".to_owned()),
        |(_, simd_s)| (format!("{simd_s:.4}"), format!("{:.2}x", scalar_s / simd_s)),
    );
    table.push(vec![
        name.to_owned(),
        format!("{merge_s:.4}"),
        format!("{scalar_s:.4}"),
        simd_cell,
        format!("{hybrid_s:.4}"),
        simd_speedup_cell,
    ]);
    let mut json = Json::obj()
        .field("pairs", merge_pairs.len())
        .field("merge_s", merge_s)
        .field("dispatch_s", dispatch_s)
        .field(
            "dispatch_kernel",
            if stats::ground_truth_uses_bitmap(columns) {
                "bitmap"
            } else {
                "cooc"
            },
        )
        .field("bitmap_scalar_s", scalar_s)
        .field("hybrid_s", hybrid_s);
    if let Some((arm, simd_s)) = simd {
        json = json
            .field("simd_arm", arm.name())
            .field("bitmap_simd_s", simd_s)
            .field("simd_speedup", scalar_s / simd_s);
    }
    json
}

/// Phase-1 signature-build timings on one baseline dataset: the MH and
/// K-MH sketch builds pinned to the scalar and (when the CPU has one)
/// the SIMD kernel arm, plus a signature-cache hit, all best-of-5. The
/// sketches must be byte-identical across arms and across store/load,
/// and — the `--kernel` contract extended to whole mines — every scheme
/// must produce identical pairs under forced `scalar`, forced `simd`,
/// a cache miss, and a cache hit. The seconds are machine-dependent and
/// live under the `"timing"` subtree.
fn phase1_json(name: &str, rows: &RowMajorMatrix, table: &mut Vec<Vec<String>>) -> Json {
    use sfa_core::SignatureCache;
    use sfa_matrix::{kernel, KernelChoice};
    use sfa_minhash::{compute_bottom_k, compute_signatures};

    let cache_dir = std::env::temp_dir().join(format!("sfa-bench-sigcache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cache = SignatureCache::new(&cache_dir);
    let (n_rows, n_cols) = (rows.n_rows(), rows.n_cols());
    let mut per_scheme = Vec::new();

    // MH (k = 100): the k-wide min-merge inner loop.
    kernel::force(KernelChoice::Scalar).expect("scalar arm always available");
    let (mh_ref, mh_scalar_s) = best_seconds(5, || {
        compute_signatures(&mut MemoryRowStream::new(rows), 100, EXPERIMENT_SEED)
            .expect("in-memory stream cannot fail")
    });
    let mh_simd = kernel::force(KernelChoice::Simd).ok().map(|_| {
        let (sigs, s) = best_seconds(5, || {
            compute_signatures(&mut MemoryRowStream::new(rows), 100, EXPERIMENT_SEED)
                .expect("in-memory stream cannot fail")
        });
        assert_eq!(sigs, mh_ref, "SIMD MH signatures diverged from scalar");
        s
    });
    kernel::force(KernelChoice::Auto).expect("auto restores detection");
    assert!(cache.store_signatures(100, EXPERIMENT_SEED, n_rows, n_cols, &mh_ref));
    let (mh_loaded, mh_hit_s) = best_seconds(5, || {
        cache
            .load_signatures(100, EXPERIMENT_SEED, n_rows, n_cols)
            .expect("just stored")
    });
    assert_eq!(mh_loaded, mh_ref, "cache hit returned different signatures");

    // K-MH (k = 64): the single-hash sieve loop.
    kernel::force(KernelChoice::Scalar).expect("scalar arm always available");
    let (kmh_ref, kmh_scalar_s) = best_seconds(5, || {
        compute_bottom_k(&mut MemoryRowStream::new(rows), 64, EXPERIMENT_SEED)
            .expect("in-memory stream cannot fail")
    });
    let kmh_simd = kernel::force(KernelChoice::Simd).ok().map(|_| {
        let (sigs, s) = best_seconds(5, || {
            compute_bottom_k(&mut MemoryRowStream::new(rows), 64, EXPERIMENT_SEED)
                .expect("in-memory stream cannot fail")
        });
        assert_eq!(sigs, kmh_ref, "SIMD K-MH sketches diverged from scalar");
        s
    });
    kernel::force(KernelChoice::Auto).expect("auto restores detection");
    assert!(cache.store_bottom_k(64, EXPERIMENT_SEED, n_rows, n_cols, &kmh_ref));
    let (kmh_loaded, kmh_hit_s) = best_seconds(5, || {
        cache
            .load_bottom_k(64, EXPERIMENT_SEED, n_rows, n_cols)
            .expect("just stored")
    });
    assert_eq!(kmh_loaded, kmh_ref, "cache hit returned different sketches");

    for (label, scalar_s, simd, hit_s) in [
        ("MH k=100", mh_scalar_s, mh_simd, mh_hit_s),
        ("K-MH k=64", kmh_scalar_s, kmh_simd, kmh_hit_s),
    ] {
        let (simd_cell, speedup_cell) = simd.map_or_else(
            || ("n/a".to_owned(), "-".to_owned()),
            |s| (format!("{s:.4}"), format!("{:.2}x", scalar_s / s)),
        );
        table.push(vec![
            name.to_owned(),
            label.to_owned(),
            format!("{scalar_s:.4}"),
            simd_cell,
            speedup_cell,
            format!("{hit_s:.6}"),
        ]);
        let mut entry = Json::obj()
            .field("sketch", label)
            .field("scalar_s", scalar_s)
            .field("cache_hit_s", hit_s);
        if let Some(s) = simd {
            entry = entry.field("simd_s", s).field("simd_speedup", scalar_s / s);
        }
        per_scheme.push(entry);
    }

    // Whole-mine parity: every scheme, forced scalar vs forced simd vs
    // cache miss vs cache hit, must find the identical pair set.
    for scheme in schemes() {
        kernel::force(KernelChoice::Scalar).expect("scalar arm always available");
        let reference = run_scheme(rows, scheme, S_STAR, EXPERIMENT_SEED).similar_pairs();
        if kernel::force(KernelChoice::Simd).is_ok() {
            let simd_pairs = run_scheme(rows, scheme, S_STAR, EXPERIMENT_SEED).similar_pairs();
            assert_eq!(
                simd_pairs,
                reference,
                "{} diverged under simd",
                scheme.name()
            );
        }
        kernel::force(KernelChoice::Auto).expect("auto restores detection");
        let cached = Pipeline::new(PipelineConfig::new(scheme, S_STAR, EXPERIMENT_SEED))
            .with_signature_cache(&cache_dir);
        let miss = cached
            .run(&mut MemoryRowStream::new(rows))
            .expect("in-memory stream cannot fail");
        let hit = cached
            .run(&mut MemoryRowStream::new(rows))
            .expect("in-memory stream cannot fail");
        assert_eq!(
            miss.similar_pairs(),
            reference,
            "{} diverged on cache miss",
            scheme.name()
        );
        assert_eq!(
            hit.similar_pairs(),
            reference,
            "{} diverged on cache hit",
            scheme.name()
        );
        if !matches!(scheme, Scheme::HLsh { .. }) {
            let phase1 = hit
                .metrics
                .phase1
                .as_ref()
                .expect("sketch scheme records phase1");
            assert!(
                phase1.cache_hit,
                "{} second mine missed the cache",
                scheme.name()
            );
        }
    }
    let _ = std::fs::remove_dir_all(&cache_dir);

    Json::obj()
        .field("dispatch_arm", sfa_matrix::kernel::arm_name())
        .field("sketches", per_scheme)
}

/// One sharded (out-of-core) run's JSON entry. Identical in shape to
/// [`run_json`] except that the machine-dependent `timing` object gains a
/// `sharding` subtree — which the CI `bench-diff` strips along with the
/// rest of `timing` — while the deterministic shard counters (shard count,
/// spill bytes, generation passes, peak tracked bytes) travel inside
/// `metrics.sharding` and are diffed.
fn sharded_run_json(result: &MiningResult) -> Json {
    let sharding = result.metrics.sharding.as_ref().expect("sharded run");
    assert!(
        sharding.peak_tracked_bytes <= LARGE_BUDGET_BYTES as u64,
        "peak tracked bytes {} exceed the {LARGE_BUDGET_BYTES}-byte budget",
        sharding.peak_tracked_bytes
    );
    Json::obj()
        .field("scheme", result.config.scheme.name())
        .field("config", result.config)
        .field("pairs_found", result.similar_pairs().len())
        .field(
            "candidate_false_positives",
            result.false_positive_candidates(),
        )
        .field("metrics", &result.metrics)
        .field(
            "timing",
            Json::obj()
                .field("signatures_s", result.timings.signatures.as_secs_f64())
                .field("candidates_s", result.timings.candidates.as_secs_f64())
                .field("verify_s", result.timings.verify.as_secs_f64())
                .field("total_s", result.timings.total().as_secs_f64())
                .field(
                    "sharding",
                    Json::obj()
                        .field(
                            "generation_passes_s",
                            result.timings.candidates.as_secs_f64(),
                        )
                        .field("verify_groups_s", result.timings.verify.as_secs_f64()),
                ),
        )
}

/// Runs every scheme over `rows` through the budgeted sharded pipeline and
/// emits a dataset entry shaped like [`dataset_json`]'s, plus the budget.
///
/// H-LSH reports zero candidates here, and that is the honest result, not
/// a misconfiguration: a column enters an H-LSH ladder level only when its
/// density there lies in `(1/t, (t−1)/t)`, and 5×10⁻⁵-dense columns need
/// ~13 density doublings to reach that gate — past the 12-level cap. By
/// then the OR-folds have erased the planted signal anyway (every column
/// pair looks alike), so deepening the ladder only floods the buckets with
/// background collisions. This is the paper's own observation that direct
/// row-sampling LSH fails on sparse data, reproduced at scale; M-LSH is
/// the sparse-friendly variant and recovers the pairs in one shard.
fn sharded_dataset_json(name: &str, rows: &RowMajorMatrix, table: &mut Vec<Vec<String>>) -> Json {
    let spill = std::env::temp_dir().join(format!("sfa-bench-spill-{}", std::process::id()));
    let mut runs = Vec::new();
    for scheme in schemes() {
        let pipeline = Pipeline::new(PipelineConfig::new(scheme, S_STAR, EXPERIMENT_SEED));
        let budget = MemoryBudget::new(LARGE_BUDGET_BYTES, spill.clone());
        let result = pipeline
            .run_sharded(&mut MemoryRowStream::new(rows), &budget, None)
            .expect("in-memory stream cannot fail");
        let sharding = result.metrics.sharding.as_ref().expect("sharded run");
        table.push(vec![
            name.to_owned(),
            scheme.name().to_owned(),
            format!("{:.3}", result.timings.total().as_secs_f64()),
            result.candidates_generated().to_string(),
            result.similar_pairs().len().to_string(),
            format!("{} shards", sharding.shards),
        ]);
        runs.push(sharded_run_json(&result));
    }
    let _ = std::fs::remove_dir(&spill);
    Json::obj()
        .field("name", name)
        .field("rows", rows.n_rows())
        .field("cols", rows.n_cols())
        .field("nonzeros", rows.nnz())
        .field("s_star", S_STAR)
        .field("memory_budget", LARGE_BUDGET_BYTES)
        .field("runs", runs)
}

/// Serving latency under a short well-formed load: an in-process
/// `sfa serve` on a loopback port, driven by the load generator. Every
/// number here is machine-dependent (latencies, QPS) or load-race-
/// dependent (reply counts on a slow host), so the whole block lives
/// under `timing.serving` and the CI diff ignores it.
fn serving_json(rows: &RowMajorMatrix, table: &mut Vec<Vec<String>>) -> Json {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 2,
        s_star: S_STAR,
        seed: EXPERIMENT_SEED,
        ..ServerConfig::default()
    };
    let server = Server::bind(config, rows).expect("bind loopback");
    let addr = server.local_addr().expect("bound").to_string();
    let cancel = CancelToken::new();
    let (report, serving) = std::thread::scope(|s| {
        let run = s.spawn(|| server.run(&cancel));
        let report = run_load(&LoadConfig {
            clients: 4,
            requests_per_client: 200,
            adversarial: false,
            ingest_every: 0,
            ..LoadConfig::new(&addr, EXPERIMENT_SEED, rows.n_cols())
        });
        cancel.cancel();
        let serving = run.join().expect("server thread").expect("clean drain");
        (report, serving)
    });
    assert!(serving.balances(), "{serving:?}");
    assert_eq!(report.violations, 0, "{report:?}");
    let (p50, p99, qps) = (
        report.percentile_micros(0.50),
        report.percentile_micros(0.99),
        report.qps(),
    );
    table.push(vec![
        "serve (4 clients × 200)".to_owned(),
        format!("{p50}"),
        format!("{p99}"),
        format!("{qps:.0}"),
    ]);
    Json::obj()
        .field("clients", 4u32)
        .field("requests_per_client", 200u32)
        .field("replies", report.ok + report.err)
        .field("p50_micros", p50)
        .field("p99_micros", p99)
        .field("qps", qps)
        .field("server_p50_micros", serving.p50_micros)
        .field("server_p99_micros", serving.p99_micros)
}

/// Incremental vs cold serve rebuild after a ≤1%-row ingest. The cold
/// path re-sketches the full row set; the incremental path folds only
/// the delta into a clone of the warm miner (the clone happens outside
/// the timed region — the live server keeps one miner and never
/// clones). Both snapshots must be byte-identical; the seconds are
/// machine-dependent and live under `timing.serving.rebuild`.
fn rebuild_json(rows: &RowMajorMatrix, table: &mut Vec<Vec<String>>) -> Json {
    use sfa_core::streaming::StreamingMiner;
    use sfa_serve::Snapshot;

    const K: usize = 128; // ServerConfig::default sketch size
    let base: Vec<Vec<u32>> = rows.rows().map(|(_, cols)| cols.to_vec()).collect();
    let n_cols = rows.n_cols();
    let delta = (base.len() / 100).max(1);
    let delta_rows: Vec<Vec<u32>> = base.iter().take(delta).cloned().collect();
    let mut all = base.clone();
    all.extend(delta_rows.iter().cloned());

    let (cold, cold_s) = best_seconds(3, || {
        Snapshot::build(2, n_cols, &all, K, EXPERIMENT_SEED, S_STAR, 0.2).expect("valid rows")
    });
    let warm = StreamingMiner::from_rows(n_cols, K, EXPERIMENT_SEED, &base);
    let mut incremental_s = f64::INFINITY;
    let mut incremental = None;
    for _ in 0..3 {
        let mut miner = warm.clone();
        let t = Instant::now();
        for row in &delta_rows {
            miner.push_row(row);
        }
        let snap = Snapshot::build_from_miner(2, &miner, S_STAR, 0.2).expect("valid rows");
        incremental_s = incremental_s.min(t.elapsed().as_secs_f64());
        incremental = Some(snap);
    }
    let incremental = incremental.expect("reps >= 1");
    assert_eq!(
        incremental.pairs, cold.pairs,
        "incremental rebuild diverged from the cold build"
    );
    assert_eq!(
        (incremental.n_rows, incremental.n_cols),
        (cold.n_rows, cold.n_cols)
    );
    table.push(vec![
        format!("rebuild after {delta}-row ingest"),
        format!("{cold_s:.4}"),
        format!("{incremental_s:.4}"),
        format!("{:.2}x", cold_s / incremental_s),
    ]);
    Json::obj()
        .field("base_rows", base.len())
        .field("ingested_rows", delta)
        .field("rebuild_cold_s", cold_s)
        .field("rebuild_incremental_s", incremental_s)
        .field("incremental_speedup", cold_s / incremental_s)
}

/// Deterministic hybrid-container tallies for one dataset: per-type
/// chunk counts and the container bytes vs. what dense bitmaps would
/// cost. Pure functions of the seeded data, so these diff — a change
/// means the container selection heuristic actually moved.
fn container_json(columns: &SparseMatrix) -> Json {
    let stats = sfa_matrix::HybridColumns::from_csc(columns).stats();
    assert!(
        stats.container_bytes < stats.raw_bitmap_bytes,
        "hybrid containers ({} B) must undercut dense bitmaps ({} B) on the sparse baselines",
        stats.container_bytes,
        stats.raw_bitmap_bytes
    );
    Json::obj()
        .field("array_containers", stats.array_containers)
        .field("bitmap_containers", stats.bitmap_containers)
        .field("run_containers", stats.run_containers)
        .field("container_bytes", stats.container_bytes)
        .field("raw_bitmap_bytes", stats.raw_bitmap_bytes)
}

fn dataset_json(name: &str, rows: &RowMajorMatrix, table: &mut Vec<Vec<String>>) -> Json {
    let mut runs = Vec::new();
    for scheme in schemes() {
        let result = run_scheme(rows, scheme, S_STAR, EXPERIMENT_SEED);
        table.push(vec![
            name.to_owned(),
            scheme.name().to_owned(),
            format!("{:.3}", result.timings.total().as_secs_f64()),
            result.candidates_generated().to_string(),
            result.similar_pairs().len().to_string(),
            result.metrics.verification.intersection_work.to_string(),
        ]);
        runs.push(run_json(&result));
    }
    Json::obj()
        .field("name", name)
        .field("rows", rows.n_rows())
        .field("cols", rows.n_cols())
        .field("nonzeros", rows.nnz())
        .field("s_star", S_STAR)
        .field("containers", container_json(&rows.transpose()))
        .field("runs", runs)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let large = match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        [] => false,
        ["--scale", "large"] => true,
        _ => {
            eprintln!("usage: bench-baseline [--scale large]");
            std::process::exit(2);
        }
    };

    let synthetic = SyntheticConfig::small(2_000, EXPERIMENT_SEED)
        .generate()
        .matrix
        .transpose();
    let weblog = WeblogConfig::tiny(EXPERIMENT_SEED)
        .generate()
        .matrix
        .transpose();

    let mut table = Vec::new();
    let mut datasets = vec![
        dataset_json("synthetic", &synthetic, &mut table),
        dataset_json("weblog", &weblog, &mut table),
    ];
    if large {
        let rows = large_synthetic().generate().matrix.transpose();
        datasets.push(sharded_dataset_json("synthetic-large", &rows, &mut table));
    }
    print_table(
        "bench-baseline (counters are deterministic; \"timing\" keys are machine-dependent)",
        &[
            "dataset",
            "scheme",
            "time(s)",
            "candidates",
            "pairs",
            "probe work",
        ],
        &table,
    );

    let mut speedup_table = Vec::new();
    let speedups = speedup_json(&synthetic, &mut speedup_table);
    print_table(
        "phase-2 speedup, 1 vs 4 workers (synthetic; best of 3; \
         4-worker column skipped on hosts with < 4 threads)",
        &["scheme", "1t(s)", "4t(s)", "speedup"],
        &speedup_table,
    );

    let mut kernel_table = Vec::new();
    let kernels = Json::obj()
        .field(
            "synthetic",
            kernel_json("synthetic", &synthetic.transpose(), &mut kernel_table),
        )
        .field(
            "weblog",
            kernel_json("weblog", &weblog.transpose(), &mut kernel_table),
        );
    print_table(
        "exact ground-truth kernels (best of 3; judge SIMD wins by criterion \
         bench_kernels on an idle host, not these wall-clocks)",
        &[
            "dataset",
            "merge(s)",
            "scalar(s)",
            "simd(s)",
            "hybrid(s)",
            "simd speedup",
        ],
        &kernel_table,
    );

    let mut phase1_table = Vec::new();
    let phase1 = Json::obj()
        .field(
            "synthetic",
            phase1_json("synthetic", &synthetic, &mut phase1_table),
        )
        .field("weblog", phase1_json("weblog", &weblog, &mut phase1_table));
    print_table(
        "phase-1 signature kernels (best of 5; sketches byte-identical \
         across arms and across cache store/load)",
        &[
            "dataset",
            "sketch",
            "scalar(s)",
            "simd(s)",
            "simd speedup",
            "cache hit(s)",
        ],
        &phase1_table,
    );

    let mut serving_table = Vec::new();
    let serving = serving_json(&synthetic, &mut serving_table);
    print_table(
        "serving latency (in-process sfa serve, well-formed load)",
        &["load", "p50(µs)", "p99(µs)", "qps"],
        &serving_table,
    );

    let mut rebuild_table = Vec::new();
    let rebuild = rebuild_json(&synthetic, &mut rebuild_table);
    print_table(
        "serve snapshot rebuild, cold vs incremental (synthetic; best of 3)",
        &["rebuild", "cold(s)", "incremental(s)", "speedup"],
        &rebuild_table,
    );

    let doc = Json::obj()
        .field("schema_version", METRICS_SCHEMA_VERSION)
        .field("seed", EXPERIMENT_SEED)
        .field(
            "timing",
            speedups
                .field("kernels", kernels)
                .field("phase1", phase1)
                .field("serving", serving.field("rebuild", rebuild)),
        )
        .field("datasets", datasets);
    let path = out_path();
    std::fs::write(&path, doc.to_string_pretty()).expect("write BENCH_pipeline.json");
    println!("\nwrote {}", path.display());
}

/// `$SFA_BENCH_OUT` or `<repo root>/BENCH_pipeline.json`.
fn out_path() -> PathBuf {
    std::env::var_os("SFA_BENCH_OUT").map_or_else(
        || {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_pipeline.json")
        },
        PathBuf::from,
    )
}
