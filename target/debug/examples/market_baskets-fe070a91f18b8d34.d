/root/repo/target/debug/examples/market_baskets-fe070a91f18b8d34.d: examples/market_baskets.rs Cargo.toml

/root/repo/target/debug/examples/libmarket_baskets-fe070a91f18b8d34.rmeta: examples/market_baskets.rs Cargo.toml

examples/market_baskets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
