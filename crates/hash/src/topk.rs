//! Bounded bottom-k tracker.
//!
//! The K-MH scheme (paper §3.2) maintains, per column, the `k` smallest row
//! hash values seen so far: "a simple data structure that allows us to
//! insert a new value (smaller than the current maximum) and delete the
//! current maximum in `O(log k)` time", with "the maximum element among the
//! k current Min-Hash values readily available". That structure is a bounded
//! max-heap; [`BottomK`] implements it with set semantics (duplicate values
//! are ignored), matching the signature-as-set treatment of Theorem 2.

/// Retains the `k` smallest *distinct* `u64` values fed to it.
///
/// Backed by a flat-`Vec` max-heap so the current threshold (largest
/// retained value) is available in `O(1)` and each accepted insertion costs
/// `O(log k)`. Values that cannot displace the threshold are rejected in
/// `O(1)` before any heap work; a saturated tracker admits by *replacing*
/// the root and sifting down once, instead of the push-then-pop double
/// sift a generic heap would pay.
///
/// # Examples
///
/// ```
/// use sfa_hash::BottomK;
///
/// let mut bk = BottomK::new(3);
/// for v in [50, 10, 40, 30, 20, 10] {
///     bk.insert(v);
/// }
/// assert_eq!(bk.into_sorted_vec(), vec![10, 20, 30]);
/// ```
#[derive(Debug, Clone)]
pub struct BottomK {
    k: usize,
    /// Binary max-heap laid out in the classic flat array form:
    /// `heap[0]` is the maximum, children of `i` are `2i+1` and `2i+2`.
    heap: Vec<u64>,
}

impl BottomK {
    /// Creates a tracker retaining at most `k` values.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            heap: Vec::with_capacity(k),
        }
    }

    /// The capacity `k`.
    #[must_use]
    pub const fn k(&self) -> usize {
        self.k
    }

    /// Number of values currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no values are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current maximum retained value (the admission threshold once the
    /// tracker is full), or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        self.heap.first().copied()
    }

    /// The admission threshold as the K-MH sieve consumes it: the current
    /// maximum when the tracker is saturated, `u64::MAX` (admit anything)
    /// while it still has room.
    #[must_use]
    pub fn threshold(&self) -> u64 {
        if self.heap.len() < self.k {
            u64::MAX
        } else {
            self.heap[0]
        }
    }

    /// Whether `v` would be admitted by [`insert`](Self::insert).
    ///
    /// This is the `O(1)` threshold reject the K-MH inner loop relies on:
    /// one comparison against the heap root, no traversal.
    #[inline]
    #[must_use]
    pub fn would_admit(&self, v: u64) -> bool {
        self.heap.len() < self.k || v < self.heap[0]
    }

    /// Offers a value; returns `true` if it was admitted.
    ///
    /// A value is admitted when the tracker is not yet full or when it is
    /// strictly smaller than the current maximum, and it is not already
    /// present (set semantics). Rejected values cost one comparison; an
    /// admission into a saturated tracker replaces the root with a single
    /// `O(log k)` sift-down.
    pub fn insert(&mut self, v: u64) -> bool {
        if !self.would_admit(v) {
            return false;
        }
        // Set semantics: reject duplicates. A linear scan is acceptable
        // because admissions happen only O(k log n) times per column and
        // duplicates are vanishingly rare with 64-bit hashes.
        if self.heap.contains(&v) {
            return false;
        }
        if self.heap.len() < self.k {
            self.heap.push(v);
            self.sift_up(self.heap.len() - 1);
        } else {
            self.heap[0] = v;
            self.sift_down(0);
        }
        true
    }

    /// Moves `heap[i]` up toward the root until its parent is larger.
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[parent] >= self.heap[i] {
                break;
            }
            self.heap.swap(parent, i);
            i = parent;
        }
    }

    /// Moves `heap[i]` down, swapping with its larger child, until both
    /// children are smaller.
    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let child = if right < n && self.heap[right] > self.heap[left] {
                right
            } else {
                left
            };
            if self.heap[i] >= self.heap[child] {
                break;
            }
            self.heap.swap(i, child);
            i = child;
        }
    }

    /// Consumes the tracker, returning the retained values in ascending order.
    #[must_use]
    pub fn into_sorted_vec(self) -> Vec<u64> {
        let mut v = self.heap;
        v.sort_unstable();
        v
    }

    /// Copies the retained values into a fresh ascending `Vec`.
    #[must_use]
    pub fn to_sorted_vec(&self) -> Vec<u64> {
        let mut v = self.heap.clone();
        v.sort_unstable();
        v
    }

    /// Iterates over retained values in arbitrary (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.heap.iter().copied()
    }
}

/// Merges two ascending bottom-k signatures into the bottom-k of their union.
///
/// This is the `SIG_{i∪j}` computation of Theorem 2: "the set of the
/// smallest k elements from `SIG_i ∪ SIG_j`", computable in `O(k)` by merge.
/// Duplicate values (present in both inputs) contribute once.
#[must_use]
pub fn merge_bottom_k(a: &[u64], b: &[u64], k: usize) -> Vec<u64> {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "a must be sorted-unique");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "b must be sorted-unique");
    let mut out = Vec::with_capacity(k.min(a.len() + b.len()));
    let (mut i, mut j) = (0, 0);
    while out.len() < k && (i < a.len() || j < b.len()) {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) => {
                if x < y {
                    i += 1;
                    x
                } else if y < x {
                    j += 1;
                    y
                } else {
                    i += 1;
                    j += 1;
                    x
                }
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!("loop condition guarantees an element"),
        };
        out.push(next);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest() {
        let mut bk = BottomK::new(4);
        for v in [9, 3, 7, 1, 8, 2, 6, 4, 5] {
            bk.insert(v);
        }
        assert_eq!(bk.into_sorted_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut bk = BottomK::new(3);
        assert!(bk.insert(5));
        assert!(!bk.insert(5));
        assert!(bk.insert(1));
        assert!(!bk.insert(1));
        assert_eq!(bk.into_sorted_vec(), vec![1, 5]);
    }

    #[test]
    fn max_tracks_threshold() {
        let mut bk = BottomK::new(2);
        assert_eq!(bk.max(), None);
        bk.insert(10);
        assert_eq!(bk.max(), Some(10));
        bk.insert(20);
        assert_eq!(bk.max(), Some(20));
        bk.insert(5); // evicts 20
        assert_eq!(bk.max(), Some(10));
    }

    #[test]
    fn would_admit_matches_insert() {
        let mut bk = BottomK::new(2);
        bk.insert(10);
        bk.insert(20);
        assert!(!bk.would_admit(25));
        assert!(!bk.would_admit(20)); // equal to max: rejected
        assert!(bk.would_admit(15));
    }

    #[test]
    fn threshold_is_max_when_full_else_unbounded() {
        let mut bk = BottomK::new(2);
        assert_eq!(bk.threshold(), u64::MAX);
        bk.insert(10);
        assert_eq!(bk.threshold(), u64::MAX); // room left: admit anything
        bk.insert(20);
        assert_eq!(bk.threshold(), 20); // saturated: the current max
        bk.insert(5);
        assert_eq!(bk.threshold(), 10);
    }

    #[test]
    fn underfull_returns_everything() {
        let mut bk = BottomK::new(100);
        for v in [3, 1, 2] {
            bk.insert(v);
        }
        assert_eq!(bk.len(), 3);
        assert_eq!(bk.into_sorted_vec(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = BottomK::new(0);
    }

    #[test]
    fn matches_naive_sort_truncate_on_random_streams() {
        // The flat-heap rework (replace-max instead of push-then-pop) must
        // not change a single retained value: cross-check every prefix
        // against sort+dedup+truncate.
        let mut seq = crate::rng::SeedSequence::new(0xB077_03FF);
        for trial in 0..40 {
            let k = 1 + (trial % 9);
            let stream: Vec<u64> = (0..60).map(|_| seq.next_seed() % 50).collect();
            let mut bk = BottomK::new(k);
            for (i, &v) in stream.iter().enumerate() {
                let admitted = bk.insert(v);
                let mut naive: Vec<u64> = stream[..=i].to_vec();
                naive.sort_unstable();
                naive.dedup();
                naive.truncate(k);
                assert_eq!(bk.to_sorted_vec(), naive, "trial {trial}, step {i}");
                assert_eq!(bk.max(), naive.last().copied());
                // `insert` returned true iff the retained set gained `v`.
                assert_eq!(
                    admitted,
                    naive.contains(&v) && {
                        let mut before: Vec<u64> = stream[..i].to_vec();
                        before.sort_unstable();
                        before.dedup();
                        before.truncate(k);
                        !before.contains(&v)
                    }
                );
            }
        }
    }

    #[test]
    fn saturated_rejects_do_no_heap_work() {
        // After saturation with small values, a stream of larger values
        // must leave the retained set (and the threshold) untouched.
        let mut bk = BottomK::new(3);
        for v in [1, 2, 3] {
            bk.insert(v);
        }
        for v in 100..200 {
            assert!(!bk.insert(v));
        }
        assert_eq!(bk.threshold(), 3);
        assert_eq!(bk.into_sorted_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn merge_basic() {
        let a = vec![1, 4, 7];
        let b = vec![2, 4, 9];
        assert_eq!(merge_bottom_k(&a, &b, 4), vec![1, 2, 4, 7]);
    }

    #[test]
    fn merge_dedupes_shared_values() {
        let a = vec![1, 2, 3];
        let b = vec![1, 2, 3];
        assert_eq!(merge_bottom_k(&a, &b, 3), vec![1, 2, 3]);
    }

    #[test]
    fn merge_short_inputs() {
        assert_eq!(merge_bottom_k(&[5], &[], 3), vec![5]);
        assert_eq!(merge_bottom_k(&[], &[], 3), Vec::<u64>::new());
        assert_eq!(merge_bottom_k(&[1], &[2], 8), vec![1, 2]);
    }

    #[test]
    fn merge_matches_naive() {
        // Cross-check against sort+dedup+truncate on pseudo-random inputs.
        let mut seq = crate::rng::SeedSequence::new(17);
        for trial in 0..50 {
            let a: Vec<u64> = {
                let mut v: Vec<u64> = (0..20).map(|_| seq.next_seed() % 100).collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            let b: Vec<u64> = {
                let mut v: Vec<u64> = (0..20).map(|_| seq.next_seed() % 100).collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            let k = 1 + (trial % 15);
            let mut naive: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
            naive.sort_unstable();
            naive.dedup();
            naive.truncate(k);
            assert_eq!(merge_bottom_k(&a, &b, k), naive, "trial {trial}");
        }
    }
}
