/root/repo/target/debug/deps/sfa_bench-072bba43c42ba81a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsfa_bench-072bba43c42ba81a.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsfa_bench-072bba43c42ba81a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
