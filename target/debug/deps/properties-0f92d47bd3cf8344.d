/root/repo/target/debug/deps/properties-0f92d47bd3cf8344.d: crates/matrix/tests/properties.rs

/root/repo/target/debug/deps/libproperties-0f92d47bd3cf8344.rmeta: crates/matrix/tests/properties.rs

crates/matrix/tests/properties.rs:
