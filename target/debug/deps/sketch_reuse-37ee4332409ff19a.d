/root/repo/target/debug/deps/sketch_reuse-37ee4332409ff19a.d: tests/sketch_reuse.rs Cargo.toml

/root/repo/target/debug/deps/libsketch_reuse-37ee4332409ff19a.rmeta: tests/sketch_reuse.rs Cargo.toml

tests/sketch_reuse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
