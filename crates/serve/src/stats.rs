//! Lock-free request accounting and a log-bucketed latency histogram.
//!
//! Workers bump atomics on every disposition; at shutdown the counters
//! fold into the schema-v5 [`ServingMetrics`] block. The invariant the
//! CI smoke job asserts — `answered + shed + timed_out == accepted` — is
//! maintained here by construction: every admission increments `accepted`
//! exactly once, and every admitted request ends in exactly one of the
//! three disposition counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use sfa_core::ServingMetrics;

/// Latency histogram buckets: `bucket b` holds samples in
/// `[2^b, 2^(b+1))` microseconds, with bucket 0 catching sub-microsecond
/// replies and the last bucket open-ended.
const LATENCY_BUCKETS: usize = 32;

/// Shared request accounting. All methods are callable from any worker
/// concurrently; relaxed ordering suffices because the counters are only
/// read after the workers join.
#[derive(Debug, Default)]
pub struct ServerStats {
    accepted: AtomicU64,
    answered: AtomicU64,
    shed: AtomicU64,
    timed_out: AtomicU64,
    malformed: AtomicU64,
    ingested_rows: AtomicU64,
    snapshot_swaps: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
}

impl ServerStats {
    /// A request was admitted (read off a socket, or a connection shed at
    /// the gate — shed connections count one request).
    pub fn admit(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// An admitted request got its reply; record its service latency.
    pub fn answer(&self, latency: Duration) {
        self.answered.fetch_add(1, Ordering::Relaxed);
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - micros.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// An admitted request was refused with `OVERLOADED`.
    pub fn shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// An admitted request was dropped by a timeout or deadline.
    pub fn time_out(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    /// An answered request was malformed (its reply was `ERR`).
    pub fn malformed(&self) {
        self.malformed.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` rows were acknowledged via `INGEST`.
    pub fn ingested(&self, n: u64) {
        self.ingested_rows.fetch_add(n, Ordering::Relaxed);
    }

    /// A rebuilt snapshot was swapped in.
    pub fn swapped(&self) {
        self.snapshot_swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests answered so far (live gauge for `HEALTH`).
    #[must_use]
    pub fn answered_so_far(&self) -> u64 {
        self.answered.load(Ordering::Relaxed)
    }

    /// The `p`-th percentile latency in microseconds, from the histogram
    /// (upper bucket bound, so p50/p99 are conservative).
    fn percentile_micros(&self, counts: &[u64; LATENCY_BUCKETS], p: f64) -> u64 {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let rank = ((total as f64 * p).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (b, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << b;
            }
        }
        1u64 << (LATENCY_BUCKETS - 1)
    }

    /// Folds the counters into the schema-v5 metrics block.
    #[must_use]
    pub fn to_metrics(&self, uptime: Duration) -> ServingMetrics {
        let mut counts = [0u64; LATENCY_BUCKETS];
        for (slot, bucket) in counts.iter_mut().zip(&self.latency) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        let answered = self.answered.load(Ordering::Relaxed);
        let uptime_secs = uptime.as_secs_f64();
        #[allow(clippy::cast_precision_loss)]
        let qps = if uptime_secs > 0.0 {
            answered as f64 / uptime_secs
        } else {
            0.0
        };
        ServingMetrics {
            accepted: self.accepted.load(Ordering::Relaxed),
            answered,
            shed: self.shed.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            ingested_rows: self.ingested_rows.load(Ordering::Relaxed),
            snapshot_swaps: self.snapshot_swaps.load(Ordering::Relaxed),
            uptime_secs,
            qps,
            p50_micros: self.percentile_micros(&counts, 0.50),
            p99_micros: self.percentile_micros(&counts, 0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_disposition_balances() {
        let stats = ServerStats::default();
        for _ in 0..10 {
            stats.admit();
            stats.answer(Duration::from_micros(100));
        }
        for _ in 0..3 {
            stats.admit();
            stats.shed();
        }
        stats.admit();
        stats.time_out();
        stats.malformed();
        stats.ingested(5);
        stats.swapped();
        let m = stats.to_metrics(Duration::from_secs(2));
        assert!(m.balances(), "{m:?}");
        assert_eq!(
            (m.accepted, m.answered, m.shed, m.timed_out),
            (14, 10, 3, 1)
        );
        assert_eq!((m.malformed, m.ingested_rows, m.snapshot_swaps), (1, 5, 1));
        assert!((m.qps - 5.0).abs() < 1e-9);
        assert!(m.uptime_secs > 0.0);
    }

    #[test]
    fn percentiles_come_from_the_histogram() {
        let stats = ServerStats::default();
        // 99 fast replies (~64 µs bucket) and one slow outlier (~65 ms).
        for _ in 0..99 {
            stats.admit();
            stats.answer(Duration::from_micros(60));
        }
        stats.admit();
        stats.answer(Duration::from_millis(65));
        let m = stats.to_metrics(Duration::from_secs(1));
        assert!(m.p50_micros <= 128, "p50 in the fast bucket: {m:?}");
        assert!(m.p99_micros <= 128, "rank 99 of 100 is still fast: {m:?}");
        // All slow: p50 lands in the slow bucket.
        let slow = ServerStats::default();
        slow.admit();
        slow.answer(Duration::from_millis(65));
        let sm = slow.to_metrics(Duration::from_secs(1));
        assert!(sm.p50_micros > 32_000, "{sm:?}");
    }

    #[test]
    fn empty_stats_report_zeroes() {
        let m = ServerStats::default().to_metrics(Duration::ZERO);
        assert_eq!(m, ServingMetrics::default());
        assert!(m.balances());
    }
}
