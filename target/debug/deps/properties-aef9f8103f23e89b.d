/root/repo/target/debug/deps/properties-aef9f8103f23e89b.d: crates/lsh/tests/properties.rs

/root/repo/target/debug/deps/properties-aef9f8103f23e89b: crates/lsh/tests/properties.rs

crates/lsh/tests/properties.rs:
