/root/repo/target/debug/deps/fig3_similarity_distribution-f166bbdb056b3daf.d: crates/experiments/src/bin/fig3_similarity_distribution.rs

/root/repo/target/debug/deps/libfig3_similarity_distribution-f166bbdb056b3daf.rmeta: crates/experiments/src/bin/fig3_similarity_distribution.rs

crates/experiments/src/bin/fig3_similarity_distribution.rs:
