/root/repo/target/debug/deps/sfa_json-c1624571ce56ecc6.d: crates/json/src/lib.rs crates/json/src/parse.rs crates/json/src/ser.rs

/root/repo/target/debug/deps/libsfa_json-c1624571ce56ecc6.rmeta: crates/json/src/lib.rs crates/json/src/parse.rs crates/json/src/ser.rs

crates/json/src/lib.rs:
crates/json/src/parse.rs:
crates/json/src/ser.rs:
