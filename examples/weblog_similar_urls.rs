//! Copy-detection scenario: find URLs fetched by the same clients.
//!
//! Regenerates a Sun-weblog-like URL × client matrix, lets the §4.1
//! input-sensitive optimizer choose `(r, l)` for M-LSH from a sampled
//! similarity distribution, runs the pipeline, and interprets the output
//! against the generator's known parent/child structure.
//!
//! ```sh
//! cargo run --release --example weblog_similar_urls
//! ```

use sfa::core::{Pipeline, PipelineConfig, Scheme};
use sfa::datagen::WeblogConfig;
use sfa::lsh::{optimize_params, SimilarityDistribution};
use sfa::matrix::MemoryRowStream;

fn main() {
    let data = WeblogConfig::small(7).generate();
    let rows = data.matrix.transpose();
    println!(
        "weblog matrix: {} clients × {} URLs, {} hits",
        rows.n_rows(),
        rows.n_cols(),
        rows.nnz()
    );

    // Estimate the similarity distribution from a 20% column sample (the
    // paper: "we can approximate this distribution by sampling a small
    // fraction of columns") and solve the (r, l) minimization.
    let s_star = 0.7;
    let distr = SimilarityDistribution::estimate_by_sampling(&data.matrix, 0.2, 20, 3);
    let expected_similar = distr.pairs_at_least(s_star);
    let params = optimize_params(
        &distr,
        s_star,
        (expected_similar as f64 * 0.05).max(1.0), // ≤ 5% false negatives
        5_000.0,                                   // false-positive budget
        25,
        4_096,
    )
    .expect("feasible parameters");
    println!(
        "optimizer chose r = {}, l = {} (k = {} min-hash values) for ~{} similar pairs",
        params.r,
        params.l,
        params.k(),
        expected_similar
    );

    let config = PipelineConfig::new(
        Scheme::MLsh {
            k: params.k(),
            r: params.r,
            l: params.l,
            sampled: false,
        },
        s_star,
        7,
    );
    let result = Pipeline::new(config)
        .run(&mut MemoryRowStream::new(&rows))
        .expect("in-memory run");
    let pairs = result.similar_pairs();
    println!(
        "\nfound {} similar URL pairs ({})",
        pairs.len(),
        result.timings
    );

    // Interpret: how many are the generator's embedded-resource relations?
    let mut related = 0;
    for p in &pairs {
        if data.parent_of[p.i as usize] == data.parent_of[p.j as usize] {
            related += 1;
        }
    }
    println!(
        "{related} of {} pairs are same-page relations (parent page + its gifs/applets)",
        pairs.len()
    );
    for p in pairs.iter().take(8) {
        let kind = if data.parent_of[p.i as usize] == data.parent_of[p.j as usize] {
            "same page"
        } else {
            "cross page"
        };
        println!(
            "  url{} <-> url{}  S = {:.3}  ({} co-visits, {kind})",
            p.i, p.j, p.similarity, p.intersection
        );
    }
    assert!(related * 10 >= pairs.len() * 9, "structure should dominate");
}
