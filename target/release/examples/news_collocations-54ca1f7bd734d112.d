/root/repo/target/release/examples/news_collocations-54ca1f7bd734d112.d: examples/news_collocations.rs

/root/repo/target/release/examples/news_collocations-54ca1f7bd734d112: examples/news_collocations.rs

examples/news_collocations.rs:
