//! Incremental signature builders.
//!
//! Min-hash signatures are folds over rows with a commutative, idempotent
//! merge (component-wise minimum / bottom-k union), so they support
//! *append*: new rows can be pushed into an existing summary at any time
//! without touching old data. This enables the growing-table scenario —
//! keep a sketch per column while the log keeps arriving, and run candidate
//! generation on the current sketch whenever wanted.
//!
//! [`MhBuilder`] and [`KmhBuilder`] are the streaming forms of
//! [`compute_signatures`](crate::mh::compute_signatures) and
//! [`compute_bottom_k`](crate::kmh::compute_bottom_k); the batch functions
//! are thin wrappers over them.
//!
//! Both builders run their inner loops through the dispatched phase-1
//! kernels in [`crate::kernel`]: `MhBuilder` keeps its signatures in a
//! *column-major* work buffer so a row's `k`-wide hash vector min-merges
//! into each touched column as one contiguous SIMD pass (the public
//! [`SignatureMatrix`] stays row-major; the layouts meet at
//! [`finish`](MhBuilder::finish)/[`current`](MhBuilder::current)), and
//! `KmhBuilder` pre-filters each row's hash against a flat vector of
//! per-column admission thresholds before touching any tracker.

use sfa_hash::topk::BottomK;
use sfa_hash::{HashFamily, RowHasher};

use crate::kernel;
use crate::kmh::BottomKSignatures;
use crate::signature::{SignatureMatrix, EMPTY_SIGNATURE};

/// Streaming builder for the MH `k × m` signature matrix.
///
/// # Examples
///
/// ```
/// use sfa_minhash::builder::MhBuilder;
///
/// let mut b = MhBuilder::new(8, 3, 42);
/// b.push_row(0, &[0, 1]);
/// b.push_row(1, &[1, 2]);
/// let sigs = b.finish();
/// assert_eq!(sigs.k(), 8);
/// assert_eq!(sigs.m(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct MhBuilder {
    family: HashFamily,
    seed: u64,
    k: usize,
    m: usize,
    /// Column-major signatures: `work[j·k..(j+1)·k]` holds column `j`'s
    /// `k` running minima, contiguous for the min-merge kernel.
    work: Vec<u64>,
    row_hashes: Vec<u64>,
    rows_seen: u64,
}

impl MhBuilder {
    /// Creates a builder for `m` columns with `k` hash functions.
    #[must_use]
    pub fn new(k: usize, m: usize, seed: u64) -> Self {
        Self {
            family: HashFamily::new(k, seed),
            seed,
            k,
            m,
            work: vec![EMPTY_SIGNATURE; k * m],
            row_hashes: vec![0; k],
            rows_seen: 0,
        }
    }

    /// Reconstructs a builder from checkpointed state: the partial
    /// signatures of the first `rows_seen` rows, under configuration
    /// `(sigs.k(), sigs.m(), seed)`. Pushing the remaining rows yields
    /// exactly what an uninterrupted builder would have produced.
    #[must_use]
    pub fn from_state(seed: u64, rows_seen: u64, sigs: SignatureMatrix) -> Self {
        let (k, m) = (sigs.k(), sigs.m());
        let mut work = vec![EMPTY_SIGNATURE; k * m];
        for j in 0..m {
            for (l, slot) in work[j * k..(j + 1) * k].iter_mut().enumerate() {
                *slot = sigs.get(l, j as u32);
            }
        }
        Self {
            family: HashFamily::new(k, seed),
            seed,
            k,
            m,
            work,
            row_hashes: vec![0; k],
            rows_seen,
        }
    }

    /// The seed this builder's hash family was created with.
    #[must_use]
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of rows folded in so far.
    #[must_use]
    pub const fn rows_seen(&self) -> u64 {
        self.rows_seen
    }

    /// Folds one row (its ascending column ids) into the signatures.
    ///
    /// Row ids must be distinct across calls for the permutation semantics
    /// to hold; the builder does not (and cannot cheaply) check this.
    pub fn push_row(&mut self, row_id: u32, cols: &[u32]) {
        self.family
            .hash_all(u64::from(row_id), &mut self.row_hashes);
        for &col in cols {
            let start = col as usize * self.k;
            kernel::min_merge_u64(&mut self.work[start..start + self.k], &self.row_hashes);
        }
        self.rows_seen += 1;
    }

    /// A snapshot of the current signatures (usable mid-stream). Allocates
    /// a fresh row-major matrix from the column-major work buffer.
    #[must_use]
    pub fn current(&self) -> SignatureMatrix {
        SignatureMatrix::from_col_major(self.k, self.m, &self.work)
    }

    /// Consumes the builder, returning the signature matrix.
    #[must_use]
    pub fn finish(self) -> SignatureMatrix {
        SignatureMatrix::from_col_major(self.k, self.m, &self.work)
    }

    /// Merges another builder over the *same* `(k, m, seed)` configuration
    /// by component-wise minimum — the parallel-scan combine step. The two
    /// work buffers share one layout, so the merge is a single whole-buffer
    /// kernel pass.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ. (Seeds are the caller's contract; two
    /// different seeds produce a meaningless merge.)
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.k, other.k, "k mismatch");
        assert_eq!(self.m, other.m, "m mismatch");
        kernel::min_merge_u64(&mut self.work, &other.work);
        self.rows_seen += other.rows_seen;
    }
}

/// Streaming builder for K-MH bottom-k sketches.
#[derive(Debug, Clone)]
pub struct KmhBuilder {
    hasher: RowHasher,
    seed: u64,
    k: usize,
    trackers: Vec<BottomK>,
    /// `thresholds[j]` mirrors `trackers[j].threshold()`: the saturated
    /// tracker's max, or `u64::MAX` while it still has room. Kept flat so
    /// a row's admission tests gather into one contiguous sieve pass.
    thresholds: Vec<u64>,
    counts: Vec<u32>,
    rows_seen: u64,
    /// Per-row scratch: the touched columns' thresholds, then the sieve's
    /// surviving indices. Retained across rows to avoid reallocating.
    sieve_thresholds: Vec<u64>,
    sieve_admitted: Vec<u32>,
}

impl KmhBuilder {
    /// Creates a builder for `m` columns with sketch size `k`.
    #[must_use]
    pub fn new(k: usize, m: usize, seed: u64) -> Self {
        Self {
            hasher: RowHasher::new(seed),
            seed,
            k,
            trackers: (0..m).map(|_| BottomK::new(k)).collect(),
            thresholds: vec![u64::MAX; m],
            counts: vec![0; m],
            rows_seen: 0,
            sieve_thresholds: Vec::new(),
            sieve_admitted: Vec::new(),
        }
    }

    /// Reconstructs a builder from checkpointed state: per-column retained
    /// values (each ascending, at most `k` long) and 1-counts for the first
    /// `rows_seen` rows. Pushing the remaining rows yields exactly what an
    /// uninterrupted builder would have produced.
    ///
    /// # Panics
    ///
    /// Panics if `sigs` and `counts` lengths disagree or a column retains
    /// more than `k` values.
    #[must_use]
    pub fn from_state(
        k: usize,
        seed: u64,
        rows_seen: u64,
        sigs: Vec<Vec<u64>>,
        counts: Vec<u32>,
    ) -> Self {
        assert_eq!(sigs.len(), counts.len(), "per-column lengths disagree");
        let trackers: Vec<BottomK> = sigs
            .into_iter()
            .enumerate()
            .map(|(j, values)| {
                assert!(values.len() <= k, "column {j} retains more than k values");
                let mut t = BottomK::new(k);
                for v in values {
                    t.insert(v);
                }
                t
            })
            .collect();
        let thresholds = trackers.iter().map(BottomK::threshold).collect();
        Self {
            hasher: RowHasher::new(seed),
            seed,
            k,
            trackers,
            thresholds,
            counts,
            rows_seen,
            sieve_thresholds: Vec::new(),
            sieve_admitted: Vec::new(),
        }
    }

    /// The seed this builder's row hasher was created with.
    #[must_use]
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// Sketch size `k`.
    #[must_use]
    pub const fn k(&self) -> usize {
        self.k
    }

    /// Number of columns `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.trackers.len()
    }

    /// The current per-column state, for checkpointing: for each column its
    /// retained values in ascending order, and its 1-count so far.
    #[must_use]
    pub fn snapshot(&self) -> (Vec<Vec<u64>>, Vec<u32>) {
        let sigs = self.trackers.iter().map(BottomK::to_sorted_vec).collect();
        (sigs, self.counts.clone())
    }

    /// Number of rows folded in so far.
    #[must_use]
    pub const fn rows_seen(&self) -> u64 {
        self.rows_seen
    }

    /// Folds one row into the sketches.
    ///
    /// The row hash is first sieved against the touched columns' admission
    /// thresholds in one batched kernel pass; only surviving columns pay a
    /// tracker probe, so saturated sketches cost one compare per nonzero.
    pub fn push_row(&mut self, row_id: u32, cols: &[u32]) {
        let h = self.hasher.hash_row(row_id);
        self.sieve_thresholds.clear();
        self.sieve_thresholds
            .extend(cols.iter().map(|&c| self.thresholds[c as usize]));
        self.sieve_admitted.clear();
        kernel::sieve_le(h, &self.sieve_thresholds, &mut self.sieve_admitted);
        for &i in &self.sieve_admitted {
            let col = cols[i as usize] as usize;
            let t = &mut self.trackers[col];
            if t.insert(h) {
                self.thresholds[col] = t.threshold();
            }
        }
        for &col in cols {
            self.counts[col as usize] += 1;
        }
        self.rows_seen += 1;
    }

    /// Consumes the builder, returning the sketches.
    #[must_use]
    pub fn finish(self) -> BottomKSignatures {
        let sigs: Vec<Vec<u64>> = self
            .trackers
            .into_iter()
            .map(BottomK::into_sorted_vec)
            .collect();
        BottomKSignatures::from_parts(self.k, sigs, self.counts)
    }

    /// Merges another builder over the same `(k, m, seed)` configuration:
    /// bottom-k of the union of retained values, counts added.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.k, other.k, "k mismatch");
        assert_eq!(self.trackers.len(), other.trackers.len(), "m mismatch");
        for (j, (mine, theirs)) in self.trackers.iter_mut().zip(&other.trackers).enumerate() {
            let mut changed = false;
            for v in theirs.iter() {
                changed |= mine.insert(v);
            }
            if changed {
                self.thresholds[j] = mine.threshold();
            }
        }
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.rows_seen += other.rows_seen;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmh::compute_bottom_k;
    use crate::mh::compute_signatures;
    use sfa_matrix::{MemoryRowStream, RowMajorMatrix};

    fn matrix() -> RowMajorMatrix {
        RowMajorMatrix::from_rows(
            4,
            vec![vec![0, 1], vec![1, 2], vec![0, 3], vec![2, 3], vec![1]],
        )
        .unwrap()
    }

    #[test]
    fn mh_builder_matches_batch() {
        let m = matrix();
        let batch = compute_signatures(&mut MemoryRowStream::new(&m), 16, 9).unwrap();
        let mut b = MhBuilder::new(16, 4, 9);
        for (id, cols) in m.rows() {
            b.push_row(id, cols);
        }
        assert_eq!(b.rows_seen(), 5);
        assert_eq!(b.finish(), batch);
    }

    #[test]
    fn kmh_builder_matches_batch() {
        let m = matrix();
        let batch = compute_bottom_k(&mut MemoryRowStream::new(&m), 3, 9).unwrap();
        let mut b = KmhBuilder::new(3, 4, 9);
        for (id, cols) in m.rows() {
            b.push_row(id, cols);
        }
        assert_eq!(b.finish(), batch);
    }

    #[test]
    fn appending_rows_later_is_equivalent() {
        // Fold rows in two stages; result equals one-shot.
        let m = matrix();
        let mut staged = MhBuilder::new(8, 4, 5);
        for (id, cols) in m.rows().take(2) {
            staged.push_row(id, cols);
        }
        let mid = staged.current();
        for (id, cols) in m.rows().skip(2) {
            staged.push_row(id, cols);
        }
        let batch = compute_signatures(&mut MemoryRowStream::new(&m), 8, 5).unwrap();
        assert_eq!(staged.finish(), batch);
        // And the mid-stream view was a valid sketch of the prefix.
        let prefix =
            RowMajorMatrix::from_rows(4, m.rows().take(2).map(|(_, c)| c.to_vec()).collect())
                .unwrap();
        let prefix_batch = compute_signatures(&mut MemoryRowStream::new(&prefix), 8, 5).unwrap();
        assert_eq!(mid, prefix_batch);
    }

    #[test]
    fn mh_merge_equals_sequential() {
        let m = matrix();
        let mut left = MhBuilder::new(8, 4, 7);
        let mut right = MhBuilder::new(8, 4, 7);
        for (id, cols) in m.rows() {
            if id < 2 {
                left.push_row(id, cols);
            } else {
                right.push_row(id, cols);
            }
        }
        left.merge(&right);
        assert_eq!(left.rows_seen(), 5);
        let batch = compute_signatures(&mut MemoryRowStream::new(&m), 8, 7).unwrap();
        assert_eq!(left.finish(), batch);
    }

    #[test]
    fn kmh_merge_equals_sequential() {
        let m = matrix();
        let mut left = KmhBuilder::new(2, 4, 7);
        let mut right = KmhBuilder::new(2, 4, 7);
        for (id, cols) in m.rows() {
            if id % 2 == 0 {
                left.push_row(id, cols);
            } else {
                right.push_row(id, cols);
            }
        }
        left.merge(&right);
        let batch = compute_bottom_k(&mut MemoryRowStream::new(&m), 2, 7).unwrap();
        assert_eq!(left.finish(), batch);
    }

    #[test]
    fn mh_from_state_resumes_identically() {
        let m = matrix();
        let mut first = MhBuilder::new(8, 4, 5);
        for (id, cols) in m.rows().take(3) {
            first.push_row(id, cols);
        }
        // Checkpoint: partial signatures + row cursor. Then "crash" and
        // rebuild from the persisted state.
        let (rows_seen, sigs) = (first.rows_seen(), first.current());
        drop(first);
        let mut resumed = MhBuilder::from_state(5, rows_seen, sigs);
        assert_eq!(resumed.seed(), 5);
        for (id, cols) in m.rows().skip(3) {
            resumed.push_row(id, cols);
        }
        let batch = compute_signatures(&mut MemoryRowStream::new(&m), 8, 5).unwrap();
        assert_eq!(resumed.finish(), batch);
    }

    #[test]
    fn kmh_from_state_resumes_identically() {
        let m = matrix();
        let mut first = KmhBuilder::new(2, 4, 5);
        for (id, cols) in m.rows().take(3) {
            first.push_row(id, cols);
        }
        let (sigs, counts) = first.snapshot();
        let rows_seen = first.rows_seen();
        drop(first);
        let mut resumed = KmhBuilder::from_state(2, 5, rows_seen, sigs, counts);
        assert_eq!((resumed.k(), resumed.m(), resumed.seed()), (2, 4, 5));
        for (id, cols) in m.rows().skip(3) {
            resumed.push_row(id, cols);
        }
        let batch = compute_bottom_k(&mut MemoryRowStream::new(&m), 2, 5).unwrap();
        assert_eq!(resumed.finish(), batch);
    }

    #[test]
    fn kmh_thresholds_track_trackers_exactly() {
        // The sieve is only correct if the flat threshold vector never
        // lags the trackers; check the invariant along a long stream.
        let rows: Vec<Vec<u32>> = (0..200u32).map(|i| vec![i % 3, 3 + (i % 2)]).collect();
        let mut b = KmhBuilder::new(4, 5, 11);
        for (id, cols) in rows.iter().enumerate() {
            b.push_row(id as u32, cols);
            for (j, t) in b.trackers.iter().enumerate() {
                assert_eq!(b.thresholds[j], t.threshold(), "row {id}, column {j}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "m mismatch")]
    fn merge_rejects_shape_mismatch() {
        let mut a = MhBuilder::new(4, 3, 1);
        let b = MhBuilder::new(4, 5, 1);
        a.merge(&b);
    }
}
