//! Statistical validation: the analytic filter functions predict the
//! *measured* collision rates of the M-LSH implementation.

use sfa_lsh::mlsh::{mlsh_collision_counts, MLshParams};
use sfa_lsh::{p_filter, q_filter};
use sfa_matrix::{MemoryRowStream, RowMajorMatrix};
use sfa_minhash::compute_signatures;

/// Builds a two-column matrix with exact similarity `shared / total`.
fn pair_matrix(shared: u32, only_each: u32) -> RowMajorMatrix {
    let mut rows = Vec::new();
    for _ in 0..shared {
        rows.push(vec![0, 1]);
    }
    for _ in 0..only_each {
        rows.push(vec![0]);
        rows.push(vec![1]);
    }
    RowMajorMatrix::from_rows(2, rows).unwrap()
}

fn empirical_collision_rate(
    m: &RowMajorMatrix,
    k: usize,
    params_for: impl Fn(u64) -> MLshParams,
    trials: u64,
) -> f64 {
    let mut collisions = 0;
    for seed in 0..trials {
        let sigs = compute_signatures(&mut MemoryRowStream::new(m), k, seed * 7 + 1).unwrap();
        let counts = mlsh_collision_counts(&sigs, &params_for(seed));
        if counts.get(0, 1) > 0 {
            collisions += 1;
        }
    }
    collisions as f64 / trials as f64
}

#[test]
fn banded_collision_rate_matches_p_filter() {
    // S = 10/30 = 1/3; P_{3,4}(1/3) ≈ 1 − (1 − 1/27)^4 ≈ 0.140.
    let m = pair_matrix(10, 10);
    let (r, l) = (3, 4);
    let expected = p_filter(1.0 / 3.0, r, l);
    let rate = empirical_collision_rate(&m, r * l, |s| MLshParams::banded(r, l, s ^ 0xf00), 600);
    assert!(
        (rate - expected).abs() < 0.05,
        "measured {rate}, P predicts {expected}"
    );
}

#[test]
fn sampled_collision_rate_matches_q_filter() {
    // Same pair; sampled mode with k = 12 < r·l = 20.
    let m = pair_matrix(10, 10);
    let (r, l, k) = (3, 6, 12);
    let expected = q_filter(1.0 / 3.0, r, l, k);
    let rate = empirical_collision_rate(&m, k, |s| MLshParams::sampled(r, l, s ^ 0xabc), 600);
    assert!(
        (rate - expected).abs() < 0.06,
        "measured {rate}, Q predicts {expected}"
    );
}

#[test]
fn high_similarity_pairs_almost_always_collide() {
    // S = 0.9; P_{4,8}(0.9) ≈ 0.9997.
    let m = pair_matrix(90, 5);
    let rate = empirical_collision_rate(&m, 32, |s| MLshParams::banded(4, 8, s), 200);
    assert!(rate > 0.97, "measured {rate}");
}

#[test]
fn low_similarity_pairs_rarely_collide() {
    // S = 1/21 ≈ 0.048; P_{4,8}(0.048) ≈ 4e-5.
    let m = pair_matrix(1, 10);
    let rate = empirical_collision_rate(&m, 32, |s| MLshParams::banded(4, 8, s), 300);
    assert!(rate < 0.02, "measured {rate}");
}
