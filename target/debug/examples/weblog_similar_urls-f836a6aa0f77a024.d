/root/repo/target/debug/examples/weblog_similar_urls-f836a6aa0f77a024.d: examples/weblog_similar_urls.rs Cargo.toml

/root/repo/target/debug/examples/libweblog_similar_urls-f836a6aa0f77a024.rmeta: examples/weblog_similar_urls.rs Cargo.toml

examples/weblog_similar_urls.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
