//! The disk-resident contract: file-backed streaming matches in-memory
//! operation exactly, using only sequential passes.

use sfa::core::{Pipeline, PipelineConfig, Scheme};
use sfa::datagen::WeblogConfig;
use sfa::matrix::stream::PassCounter;
use sfa::matrix::{io, FileRowStream, MemoryRowStream};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("sfa_out_of_core_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn file_and_memory_pipelines_agree_for_every_scheme() {
    let data = WeblogConfig::tiny(13).generate();
    let rows = data.matrix.transpose();
    let path = tmp("pipelines_agree.sfab");
    io::write_binary(&rows, &path).unwrap();

    let schemes = [
        Scheme::Mh { k: 40, delta: 0.2 },
        Scheme::Kmh { k: 20, delta: 0.2 },
        Scheme::MLsh {
            k: 40,
            r: 4,
            l: 10,
            sampled: false,
        },
        Scheme::HLsh {
            r: 10,
            l: 4,
            t: 4,
            max_levels: 12,
        },
    ];
    for scheme in schemes {
        let cfg = PipelineConfig::new(scheme, 0.7, 31);
        let from_memory = Pipeline::new(cfg)
            .run(&mut MemoryRowStream::new(&rows))
            .unwrap();
        let mut fstream = FileRowStream::open(&path).unwrap();
        let from_file = Pipeline::new(cfg).run(&mut fstream).unwrap();
        assert_eq!(
            from_memory.verified,
            from_file.verified,
            "{} diverged between memory and file",
            scheme.name()
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn pipeline_makes_exactly_two_sequential_passes_over_the_file() {
    let data = WeblogConfig::tiny(17).generate();
    let rows = data.matrix.transpose();
    let path = tmp("two_passes.sfab");
    io::write_binary(&rows, &path).unwrap();

    let mut counter = PassCounter::new(FileRowStream::open(&path).unwrap());
    let cfg = PipelineConfig::new(Scheme::Kmh { k: 16, delta: 0.2 }, 0.7, 3);
    let _ = Pipeline::new(cfg).run(&mut counter).unwrap();
    assert_eq!(counter.passes(), 2);
    assert_eq!(counter.rows_read(), 2 * u64::from(rows.n_rows()));
    std::fs::remove_file(&path).ok();
}

#[test]
fn text_and_binary_roundtrips_preserve_pipeline_output() {
    let data = WeblogConfig::tiny(19).generate();
    let rows = data.matrix.transpose();
    let pt = tmp("roundtrip.sfat");
    let pb = tmp("roundtrip.sfab");
    io::write_text(&rows, &pt).unwrap();
    io::write_binary(&rows, &pb).unwrap();
    let from_text = io::read_text(&pt).unwrap();
    let from_binary = io::read_binary(&pb).unwrap();
    assert_eq!(from_text, rows);
    assert_eq!(from_binary, rows);
    std::fs::remove_file(&pt).ok();
    std::fs::remove_file(&pb).ok();
}
