/root/repo/target/debug/deps/sfa_bench-f0e1c1be28f4935d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/sfa_bench-f0e1c1be28f4935d: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
