//! Fig. 3: the similarity distribution of the (weblog) data.
//!
//! (a) the full histogram — dominated by near-zero similarities;
//! (b) the zoom on the interesting region `s ≥ 0.3` — a thin population of
//!     genuinely similar URL pairs (embedded images/applets).

use sfa_experiments::{write_csv, WeblogExperiment};
use sfa_matrix::stats::similarity_histogram;

fn main() {
    println!("# Fig. 3 — similarity distribution of the weblog data");
    let weblog = WeblogExperiment::load();

    let bins = 40;
    let hist = similarity_histogram(&weblog.data.matrix, bins);
    let total: u64 = hist.iter().sum();
    println!("\n(a) full distribution over {total} co-occurring pairs:");
    println!(
        "{:>12} {:>12} {:>9}  histogram",
        "similarity", "pairs", "fraction"
    );
    let max = *hist.iter().max().unwrap_or(&1) as f64;
    let mut rows = Vec::new();
    for (b, &count) in hist.iter().enumerate() {
        let lo = b as f64 / bins as f64;
        let hi = (b + 1) as f64 / bins as f64;
        let bar_len = if count == 0 {
            0
        } else {
            // log-scale bars so the tail is visible next to the huge head
            (40.0 * ((count as f64).ln() / max.ln())).max(1.0) as usize
        };
        println!(
            "{:>5.3}-{:<6.3} {count:>12} {:>9.5}  {}",
            lo,
            hi,
            count as f64 / total as f64,
            "#".repeat(bar_len)
        );
        rows.push(vec![
            format!("{lo:.4}"),
            format!("{hi:.4}"),
            count.to_string(),
        ]);
    }
    write_csv(
        "fig3_similarity_distribution.csv",
        &["low", "high", "pairs"],
        &rows,
    );

    println!("\n(b) zoom on the region of interest (s ≥ 0.3):");
    let tail: u64 = hist[(bins * 3 / 10)..].iter().sum();
    println!("pairs with s ≥ 0.30: {tail}");
    for cut in [0.5, 0.7, 0.9] {
        let from = (cut * bins as f64) as usize;
        let n: u64 = hist[from..].iter().sum();
        println!("pairs with s ≥ {cut:.2}: {n}");
    }

    // The Fig. 3 shape, asserted: a heavy low-similarity head and a
    // non-empty high-similarity tail orders of magnitude smaller.
    let head: u64 = hist[..bins / 4].iter().sum();
    let high: u64 = hist[(bins * 3 / 4)..].iter().sum();
    assert!(high > 0, "no high-similarity population");
    assert!(
        head > high * 20,
        "head {head} not dominating tail {high} — distribution shape off"
    );
    println!("\nshape check passed: head {head} pairs vs high tail {high} pairs");
}
