/root/repo/target/release/examples/quickstart-c9670afdfc146021.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-c9670afdfc146021: examples/quickstart.rs

examples/quickstart.rs:
