/root/repo/target/debug/examples/incremental_mining-daac4c7f0f405368.d: examples/incremental_mining.rs

/root/repo/target/debug/examples/incremental_mining-daac4c7f0f405368: examples/incremental_mining.rs

examples/incremental_mining.rs:
