/root/repo/target/release/deps/sfa-473d82b7a8132c59.d: src/bin/sfa.rs

/root/repo/target/release/deps/sfa-473d82b7a8132c59: src/bin/sfa.rs

src/bin/sfa.rs:
