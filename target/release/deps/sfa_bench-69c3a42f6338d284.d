/root/repo/target/release/deps/sfa_bench-69c3a42f6338d284.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/sfa_bench-69c3a42f6338d284: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
