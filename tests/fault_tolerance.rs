//! End-to-end fault tolerance: a mining run over a flaky, disk-backed
//! stream — transient IO errors absorbed by retry, a fatal mid-pass kill
//! recovered through checkpoint/resume — must produce output identical to
//! an undisturbed run, and account for every recovery event in the
//! metrics JSON.

use sfa::core::{CheckpointSpec, MemoryBudget, MetricsDocument, Pipeline, PipelineConfig, Scheme};
use sfa::datagen::WeblogConfig;
use sfa::json::ToJson;
use sfa::matrix::stream::PassCounter;
use sfa::matrix::{io, FaultConfig, FaultyRowStream, FileRowStream, RetryingRowStream, RowStream};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("sfa_fault_tolerance_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Writes the tiny weblog workload (2000 rows) to a binary file and
/// returns its path plus the mining config used by every test here.
fn fixture(name: &str, seed: u64) -> (std::path::PathBuf, PipelineConfig) {
    let data = WeblogConfig::tiny(seed).generate();
    let rows = data.matrix.transpose();
    let path = tmp(name);
    io::write_binary(&rows, &path).unwrap();
    let config = PipelineConfig::new(Scheme::Mh { k: 40, delta: 0.2 }, 0.7, 31);
    (path, config)
}

#[test]
fn transient_faults_under_retry_leave_no_trace_but_the_metrics() {
    let (path, config) = fixture("transient.sfab", 23);

    let clean = Pipeline::new(config)
        .run(&mut FileRowStream::open(&path).unwrap())
        .unwrap();

    // At least 1‰ of rows fault (the issue's floor); two forced faults at
    // exact positions make the assertion deterministic even under an
    // unlucky hash draw.
    let faulty = FaultyRowStream::new(
        FileRowStream::open(&path).unwrap(),
        FaultConfig {
            seed: 99,
            transient_per_mille: 5,
            transient_at_rows: vec![0, 1234],
            ..FaultConfig::default()
        },
    );
    let mut retrying = RetryingRowStream::new(faulty, 4);
    let mut result = Pipeline::new(config).run(&mut retrying).unwrap();

    assert_eq!(
        result.verified, clean.verified,
        "recovered run must report byte-identical pairs"
    );
    assert_eq!(result.column_counts, clean.column_counts);

    // Stitch the wrapper's counters into the run's metrics, exactly as the
    // CLI's --max-retries path does.
    let stats = retrying.stats();
    let injected = retrying.into_inner().transient_injected();
    assert!(
        stats.retries >= 2,
        "forced faults must have fired: {stats:?}"
    );
    assert_eq!(stats.retries, injected, "one retry per injected fault");
    result.metrics.recovery.transient_errors_retried += stats.retries;
    result.metrics.recovery.rows_refetched += stats.rows_refetched;

    // The retry counts must survive the metrics JSON round-trip.
    let doc = MetricsDocument::new(config, result.timings, result.metrics.clone());
    let json = doc.to_json().to_string_pretty();
    let back: MetricsDocument = sfa::json::from_str(&json).unwrap();
    assert_eq!(
        back.metrics.recovery.transient_errors_retried,
        stats.retries
    );
    assert_eq!(back.metrics.recovery.rows_refetched, stats.rows_refetched);
}

#[test]
fn fatal_fault_then_resume_rereads_only_the_uncheckpointed_suffix() {
    let (path, config) = fixture("resume.sfab", 29);
    let n_rows = u64::from(FileRowStream::open(&path).unwrap().n_rows());

    let clean = Pipeline::new(config)
        .run(&mut FileRowStream::open(&path).unwrap())
        .unwrap();

    let dir = tmp("resume_ckpt");
    std::fs::remove_dir_all(&dir).ok();
    let spec = CheckpointSpec::new(dir.clone()).with_every_rows(256);

    // Attempt 1: the stream dies fatally at row 1200, after the phase-1
    // checkpoint at row 1024 has been written.
    let mut doomed = FaultyRowStream::new(
        FileRowStream::open(&path).unwrap(),
        FaultConfig {
            fatal_at_row: Some(1200),
            ..FaultConfig::default()
        },
    );
    let err = Pipeline::new(config)
        .run_resumable(&mut doomed, &spec)
        .unwrap_err();
    assert!(!err.is_transient(), "the injected kill is fatal: {err}");

    // Attempt 2: a clean rerun resumes from row 1024, so it reads only the
    // 976-row phase-1 suffix plus the full verification pass. PassCounter
    // counts delivered reads and not skips, which is exactly the
    // "re-reads only the suffix" claim.
    let mut counter = PassCounter::new(FileRowStream::open(&path).unwrap());
    let resumed = Pipeline::new(config)
        .run_resumable(&mut counter, &spec)
        .unwrap();
    assert_eq!(counter.rows_read(), (n_rows - 1024) + n_rows);
    assert_eq!(resumed.metrics.recovery.resumed_from_row, 1024);
    assert_eq!(
        resumed.verified, clean.verified,
        "resume must not change output"
    );
    assert_eq!(resumed.column_counts, clean.column_counts);

    // Success clears the checkpoints: nothing left to resume from.
    assert!(!spec.dir.join("phase1.sfcp").exists());
    assert!(!spec.dir.join("phase3.sfcp").exists());
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&path).ok();
}

#[test]
fn sharded_run_survives_kills_in_both_streaming_passes() {
    let (path, config) = fixture("sharded_kill.sfab", 41);
    let n_rows = u64::from(FileRowStream::open(&path).unwrap().n_rows());

    let clean = Pipeline::new(config)
        .run(&mut FileRowStream::open(&path).unwrap())
        .unwrap();

    let dir = tmp("sharded_kill_state");
    std::fs::remove_dir_all(&dir).ok();
    let budget = MemoryBudget::new(1 << 20, dir.join("spill")).with_initial_shards(2);
    let spec = CheckpointSpec::new(dir.join("ckpt")).with_every_rows(256);

    // Attempt 1: killed mid-phase-1, after the row-1792 checkpoint.
    let mut doomed = FaultyRowStream::new(
        FileRowStream::open(&path).unwrap(),
        FaultConfig {
            fatal_at_row: Some(1800),
            ..FaultConfig::default()
        },
    );
    let err = Pipeline::new(config)
        .run_sharded(&mut doomed, &budget, Some(&spec))
        .unwrap_err();
    assert!(!err.is_transient(), "the injected kill is fatal: {err}");

    // Attempt 2: phase 1 resumes past the kill site (skips are never
    // inspected), both shards generate and spill, then the verify scan is
    // killed at row 300 — after its row-256 checkpoint.
    let mut doomed = FaultyRowStream::new(
        FileRowStream::open(&path).unwrap(),
        FaultConfig {
            fatal_at_row: Some(300),
            ..FaultConfig::default()
        },
    );
    let err = Pipeline::new(config)
        .run_sharded(&mut doomed, &budget, Some(&spec))
        .unwrap_err();
    assert!(!err.is_transient(), "the injected kill is fatal: {err}");

    // Attempt 3: a clean rerun loads phase 1 whole from its checkpoint,
    // every shard from its spill file, and re-reads only the verify
    // suffix past row 256.
    let mut counter = PassCounter::new(FileRowStream::open(&path).unwrap());
    let resumed = Pipeline::new(config)
        .run_sharded(&mut counter, &budget, Some(&spec))
        .unwrap();
    assert_eq!(
        resumed.verified, clean.verified,
        "sharded resume must not change output"
    );
    assert_eq!(resumed.column_counts, clean.column_counts);
    let sharding = resumed.metrics.sharding.expect("sharding metrics");
    assert_eq!(sharding.shards, 2);
    assert_eq!(
        sharding.generation_passes, 0,
        "every shard must come from its spill file"
    );
    assert_eq!(resumed.metrics.recovery.resumed_from_row, n_rows);
    assert_eq!(
        sharding.verify_groups, 1,
        "the roomy budget packs both shards into one verify group"
    );
    assert_eq!(
        counter.rows_read(),
        n_rows - 256,
        "phase 1 is skipped whole; only the verify suffix is re-read"
    );

    // Success clears both the spill files and the checkpoints.
    assert!(!dir.join("spill").join("shard_0_of_2.sfsp").exists());
    assert!(!dir.join("spill").join("shard_1_of_2.sfsp").exists());
    assert!(!dir.join("ckpt").join("phase1.sfcp").exists());
    assert!(!dir.join("ckpt").join("phase3.sfcp").exists());
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&path).ok();
}

#[test]
fn retry_and_checkpointing_compose_over_one_flaky_stream() {
    let (path, config) = fixture("composed.sfab", 37);

    let clean = Pipeline::new(config)
        .run(&mut FileRowStream::open(&path).unwrap())
        .unwrap();

    let dir = tmp("composed_ckpt");
    std::fs::remove_dir_all(&dir).ok();
    let spec = CheckpointSpec::new(dir.clone()).with_every_rows(512);

    let faulty = FaultyRowStream::new(
        FileRowStream::open(&path).unwrap(),
        FaultConfig {
            seed: 5,
            transient_per_mille: 3,
            transient_at_rows: vec![700],
            ..FaultConfig::default()
        },
    );
    let mut retrying = RetryingRowStream::new(faulty, 4);
    let result = Pipeline::new(config)
        .run_resumable(&mut retrying, &spec)
        .unwrap();

    assert_eq!(result.verified, clean.verified);
    assert!(result.metrics.recovery.checkpoints_written > 0);
    assert!(retrying.stats().retries >= 1);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&path).ok();
}
