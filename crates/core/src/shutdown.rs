//! Graceful shutdown: signal handling, deadlines, and the cooperative
//! [`CancelToken`] the streaming pipelines poll.
//!
//! Mid-run kills are routine at the paper's §5 scale; the difference
//! between a kill and a *graceful* shutdown is whether the run gets to
//! flush its frontier first. The CLI installs handlers for `SIGINT` and
//! `SIGTERM` that do nothing but set an atomic flag; the pipeline polls a
//! [`CancelToken`] at row, pass, and shard boundaries, and on
//! cancellation persists a final checkpoint before returning
//! [`MatrixError::Canceled`] — which the CLI maps to its documented
//! resumable exit code 3. The `--deadline-secs` flag uses the same token
//! with a wall-clock deadline, for batch schedulers that would otherwise
//! SIGKILL at the slot boundary.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sfa_matrix::{MatrixError, Result};

/// Set by the signal handler; observed by tokens built with
/// [`CancelToken::watching_signals`].
static SIGNAL_FLAG: AtomicBool = AtomicBool::new(false);

/// Signals delivered since the latch was last cleared. The second one
/// escalates: a drain that is too slow for the operator gets cut short
/// by an immediate `_exit` with [`FORCED_SHUTDOWN_EXIT_CODE`].
static SIGNAL_COUNT: AtomicU32 = AtomicU32::new(0);

/// Default [`CancelToken::throttled`] stride for per-row hot loops: small
/// enough that a deadline is noticed within a sub-millisecond window of
/// row work, large enough to amortize the clock read to noise.
pub const CANCEL_POLL_STRIDE: u32 = 64;

/// Exit code of a second-signal forced shutdown: the shell convention
/// `128 + SIGINT`. Unlike the graceful code 3, a forced exit skips every
/// flush — on-disk state is whatever the last durable write left behind
/// (crash-consistent, but the frontier may be stale).
pub const FORCED_SHUTDOWN_EXIT_CODE: i32 = 130;

#[cfg(unix)]
mod sys {
    use super::{Ordering, FORCED_SHUTDOWN_EXIT_CODE, SIGNAL_COUNT, SIGNAL_FLAG};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// POSIX `signal(2)`; libc is always linked on unix targets, so no
        /// external crate is needed for this one symbol.
        fn signal(signum: i32, handler: usize) -> usize;
        /// POSIX `_exit(2)`: async-signal-safe immediate termination (no
        /// atexit hooks, no buffered-stream flushing).
        fn _exit(code: i32) -> !;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe only: atomics, and on escalation `_exit`. The
        // first signal sets the flag and lets the drain path notice at its
        // next boundary poll; the second means the drain is too slow and
        // the operator wants out *now*.
        let prior = SIGNAL_COUNT.fetch_add(1, Ordering::SeqCst);
        SIGNAL_FLAG.store(true, Ordering::SeqCst);
        if prior >= 1 {
            // SAFETY: `_exit` is async-signal-safe per POSIX.
            unsafe { _exit(FORCED_SHUTDOWN_EXIT_CODE) }
        }
    }

    pub(super) fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        // SAFETY: `signal` is the POSIX API; the handler performs atomic
        // ops and (on escalation) `_exit`, all async-signal-safe.
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub(super) fn install() {}
}

/// Ensures the `signal(2)` registration itself happens once per process.
static HANDLERS_INSTALLED: AtomicBool = AtomicBool::new(false);

/// Installs `SIGINT`/`SIGTERM` handlers that request a graceful shutdown,
/// and clears any previously latched signal so a new run starts fresh.
///
/// Explicitly idempotent: the `signal(2)` registration happens once per
/// process no matter how many times this is called; every call clears the
/// signal latch and count. A second signal during a slow drain forces an
/// immediate exit with [`FORCED_SHUTDOWN_EXIT_CODE`]. A no-op on non-unix
/// platforms (where runs remain killable but not gracefully
/// interruptible).
pub fn install_signal_handlers() {
    SIGNAL_FLAG.store(false, Ordering::SeqCst);
    SIGNAL_COUNT.store(0, Ordering::SeqCst);
    if !HANDLERS_INSTALLED.swap(true, Ordering::SeqCst) {
        sys::install();
    }
}

/// Whether a shutdown signal has been received since the handlers were
/// (last) installed.
#[must_use]
pub fn signal_received() -> bool {
    SIGNAL_FLAG.load(Ordering::SeqCst)
}

/// How many shutdown signals have been delivered since the handlers were
/// (last) installed. In practice 0 or 1: the second escalates to `_exit`
/// inside the handler, so user code never observes 2.
#[must_use]
pub fn signal_count() -> u32 {
    SIGNAL_COUNT.load(Ordering::SeqCst)
}

/// A cooperative cancellation token polled by the streaming pipelines.
///
/// A token cancels for any of three reasons: [`cancel`](Self::cancel) was
/// called on it (or a clone — clones share the flag), its deadline
/// passed, or — for tokens built with
/// [`watching_signals`](Self::watching_signals) — a shutdown signal
/// arrived. The default token never cancels, so non-interactive callers
/// pay one atomic load per poll and nothing else.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
    watch_signals: bool,
}

impl CancelToken {
    /// A token that only cancels when [`cancel`](Self::cancel) is called.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Also cancels once `timeout` has elapsed from now.
    #[must_use]
    pub fn with_deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Also cancels when a `SIGINT`/`SIGTERM` arrives (requires
    /// [`install_signal_handlers`] to have been called).
    #[must_use]
    pub fn watching_signals(mut self) -> Self {
        self.watch_signals = true;
        self
    }

    /// Requests cancellation; every clone of this token observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Why the token is canceled, if it is.
    fn cause(&self) -> Option<&'static str> {
        if self.flag.load(Ordering::SeqCst) {
            return Some("request");
        }
        if self.watch_signals && signal_received() {
            return Some("signal");
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some("deadline");
        }
        None
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_canceled(&self) -> bool {
        self.cause().is_some()
    }

    /// `Err(MatrixError::Canceled)` if cancellation has been requested,
    /// `Ok(())` otherwise — the form the pipeline's `?`-chains poll.
    ///
    /// # Errors
    ///
    /// [`MatrixError::Canceled`] naming the cause.
    pub fn check(&self) -> Result<()> {
        match self.cause() {
            Some(reason) => Err(MatrixError::Canceled { reason }),
            None => Ok(()),
        }
    }

    /// A throttled view for per-row hot loops: flag and signal loads
    /// (cheap atomics) on every poll, but the deadline's `Instant::now()`
    /// only every `stride` polls. See [`ThrottledCancel`].
    #[must_use]
    pub fn throttled(&self, stride: u32) -> ThrottledCancel<'_> {
        ThrottledCancel {
            token: self,
            stride: stride.max(1),
            until_clock: 0,
            deadline_hit: false,
        }
    }
}

/// A per-loop throttle over a [`CancelToken`] that keeps explicit
/// cancellation and signal detection immediate (two relaxed-cost atomic
/// loads per poll) while amortizing the deadline's `Instant::now()` —
/// a vDSO call, syscall-adjacent on some platforms — across `stride`
/// polls. Deadline detection therefore lags by at most `stride - 1`
/// polls, which at per-row granularity is microseconds.
///
/// Borrows the token, so one throttle serves one loop; make a fresh one
/// (they are four words) per loop rather than storing them.
#[derive(Debug)]
pub struct ThrottledCancel<'a> {
    token: &'a CancelToken,
    stride: u32,
    until_clock: u32,
    deadline_hit: bool,
}

impl ThrottledCancel<'_> {
    /// Whether cancellation has been requested, consulting the wall clock
    /// only every `stride` calls. Once an expired deadline is observed it
    /// stays observed — cancellation never un-happens between polls.
    #[must_use]
    pub fn is_canceled(&mut self) -> bool {
        if self.token.flag.load(Ordering::SeqCst) || (self.token.watch_signals && signal_received())
        {
            return true;
        }
        if self.deadline_hit {
            return true;
        }
        if self.token.deadline.is_none() {
            return false;
        }
        if self.until_clock == 0 {
            self.until_clock = self.stride;
            self.deadline_hit = self.token.is_canceled();
            self.deadline_hit
        } else {
            self.until_clock -= 1;
            false
        }
    }

    /// Throttled form of [`CancelToken::check`].
    ///
    /// # Errors
    ///
    /// [`MatrixError::Canceled`] naming the cause.
    pub fn check(&mut self) -> Result<()> {
        if self.is_canceled() {
            self.token.check()
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// Tests that poke the process-global signal latch must not overlap.
    fn signal_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn default_token_never_cancels() {
        let t = CancelToken::new();
        assert!(!t.is_canceled());
        t.check().expect("not canceled");
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_canceled());
        let err = t.check().expect_err("canceled");
        assert!(err.is_canceled());
        assert_eq!(err.to_string(), "canceled by request");
    }

    #[test]
    fn deadline_cancels_once_elapsed() {
        let t = CancelToken::new().with_deadline(Duration::from_secs(3600));
        assert!(!t.is_canceled(), "an hour has not passed");
        let t = CancelToken::new().with_deadline(Duration::ZERO);
        assert!(t.is_canceled());
        assert_eq!(
            t.check().expect_err("canceled").to_string(),
            "canceled by deadline"
        );
    }

    #[test]
    fn signal_flag_is_observed_only_by_watching_tokens() {
        let _guard = signal_lock();
        install_signal_handlers();
        SIGNAL_FLAG.store(true, Ordering::SeqCst);
        assert!(signal_received());
        assert!(!CancelToken::new().is_canceled(), "non-watching is immune");
        let t = CancelToken::new().watching_signals();
        assert!(t.is_canceled());
        assert_eq!(
            t.check().expect_err("canceled").to_string(),
            "canceled by signal"
        );
        // Re-installing clears the latch for the next run.
        install_signal_handlers();
        assert!(!t.is_canceled());
    }

    #[test]
    fn install_clears_count_and_is_idempotent() {
        let _guard = signal_lock();
        install_signal_handlers();
        assert_eq!(signal_count(), 0);
        SIGNAL_COUNT.store(1, Ordering::SeqCst);
        SIGNAL_FLAG.store(true, Ordering::SeqCst);
        // Calling again (idempotent) resets the latch and the count.
        install_signal_handlers();
        assert_eq!(signal_count(), 0);
        assert!(!signal_received());
    }

    #[test]
    fn forced_exit_code_follows_shell_convention() {
        assert_eq!(FORCED_SHUTDOWN_EXIT_CODE, 128 + 2);
    }

    #[test]
    fn throttled_detects_flag_and_signal_immediately() {
        let _guard = signal_lock();
        install_signal_handlers();
        let t = CancelToken::new().with_deadline(Duration::from_secs(3600));
        let mut th = t.throttled(1_000_000);
        assert!(!th.is_canceled());
        t.cancel();
        assert!(th.is_canceled(), "explicit cancel bypasses the throttle");

        let t = CancelToken::new()
            .watching_signals()
            .with_deadline(Duration::from_secs(3600));
        let mut th = t.throttled(1_000_000);
        assert!(!th.is_canceled());
        SIGNAL_FLAG.store(true, Ordering::SeqCst);
        assert!(th.is_canceled(), "signals bypass the throttle");
        install_signal_handlers();
    }

    #[test]
    fn throttled_deadline_detected_within_stride() {
        let t = CancelToken::new().with_deadline(Duration::ZERO);
        let stride = 8;
        let mut th = t.throttled(stride);
        let polls_until_hit = (0..=stride)
            .position(|_| th.is_canceled())
            .expect("deadline observed within one stride");
        assert!(polls_until_hit as u32 <= stride);
        assert_eq!(
            th.check().expect_err("canceled").to_string(),
            "canceled by deadline"
        );
    }

    #[test]
    fn throttled_without_deadline_never_touches_clock_and_never_cancels() {
        let t = CancelToken::new();
        let mut th = t.throttled(2);
        for _ in 0..100 {
            assert!(!th.is_canceled());
            th.check().expect("not canceled");
        }
    }
}
