/root/repo/target/release/deps/sfa-b5384d4485e85c67.d: src/lib.rs src/cli.rs

/root/repo/target/release/deps/sfa-b5384d4485e85c67: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
