/root/repo/target/debug/deps/sfa_minhash-540aac492d968c6c.d: crates/minhash/src/lib.rs crates/minhash/src/builder.rs crates/minhash/src/candidates.rs crates/minhash/src/estimate.rs crates/minhash/src/explicit.rs crates/minhash/src/hashcount.rs crates/minhash/src/kmh.rs crates/minhash/src/mh.rs crates/minhash/src/persist.rs crates/minhash/src/rowsort.rs crates/minhash/src/signature.rs crates/minhash/src/theory.rs

/root/repo/target/debug/deps/libsfa_minhash-540aac492d968c6c.rmeta: crates/minhash/src/lib.rs crates/minhash/src/builder.rs crates/minhash/src/candidates.rs crates/minhash/src/estimate.rs crates/minhash/src/explicit.rs crates/minhash/src/hashcount.rs crates/minhash/src/kmh.rs crates/minhash/src/mh.rs crates/minhash/src/persist.rs crates/minhash/src/rowsort.rs crates/minhash/src/signature.rs crates/minhash/src/theory.rs

crates/minhash/src/lib.rs:
crates/minhash/src/builder.rs:
crates/minhash/src/candidates.rs:
crates/minhash/src/estimate.rs:
crates/minhash/src/explicit.rs:
crates/minhash/src/hashcount.rs:
crates/minhash/src/kmh.rs:
crates/minhash/src/mh.rs:
crates/minhash/src/persist.rs:
crates/minhash/src/rowsort.rs:
crates/minhash/src/signature.rs:
crates/minhash/src/theory.rs:
