/root/repo/target/debug/deps/sketch_reuse-593a71ebf4e007e5.d: tests/sketch_reuse.rs

/root/repo/target/debug/deps/sketch_reuse-593a71ebf4e007e5: tests/sketch_reuse.rs

tests/sketch_reuse.rs:
