/root/repo/target/release/examples/incremental_mining-fa799efb6003210e.d: examples/incremental_mining.rs

/root/repo/target/release/examples/incremental_mining-fa799efb6003210e: examples/incremental_mining.rs

examples/incremental_mining.rs:
