/root/repo/target/debug/deps/scaling_rows-53093e93f0b0b68e.d: crates/experiments/src/bin/scaling_rows.rs Cargo.toml

/root/repo/target/debug/deps/libscaling_rows-53093e93f0b0b68e.rmeta: crates/experiments/src/bin/scaling_rows.rs Cargo.toml

crates/experiments/src/bin/scaling_rows.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
