/root/repo/target/debug/deps/confidence_rules-a10475861624eb2c.d: crates/experiments/src/bin/confidence_rules.rs

/root/repo/target/debug/deps/libconfidence_rules-a10475861624eb2c.rmeta: crates/experiments/src/bin/confidence_rules.rs

crates/experiments/src/bin/confidence_rules.rs:
