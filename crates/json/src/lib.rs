//! Zero-dependency JSON support for the `sfa` workspace.
//!
//! The build environment cannot fetch `serde`/`serde_json`, so structured
//! documents (mining metrics, quality reports, persisted configs) go
//! through this small crate instead:
//!
//! * [`Json`] — an owned JSON value. Objects preserve insertion order so
//!   emitted documents are schema-stable (field order is part of the
//!   schema contract for `BENCH_pipeline.json` and `--metrics-json`).
//! * [`ToJson`] / [`FromJson`] — conversion traits playing the role of
//!   `Serialize` / `Deserialize`; implemented manually per type.
//! * [`Json::parse`] / [`Json::to_string_pretty`] — a strict RFC 8259
//!   parser and a serializer.
//!
//! Integers are kept exact: [`Json::U64`] and [`Json::I64`] survive a
//! round-trip bit-for-bit (a plain f64 would corrupt 64-bit seeds and
//! large counters above 2^53).

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

mod parse;
mod ser;

pub use parse::ParseError;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A negative integer (any non-negative integer parses as [`Json::U64`]).
    I64(i64),
    /// A non-negative integer.
    U64(u64),
    /// A number with a fraction or exponent.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on parse and emit.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an empty object.
    #[must_use]
    pub const fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object, builder-style.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl ToJson) -> Self {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_owned(), value.to_json())),
            other => panic!("Json::field on non-object {other:?}"),
        }
        self
    }

    /// Looks up a field of an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a required field, reporting its name on failure.
    ///
    /// # Errors
    ///
    /// Returns an error naming the missing `key`.
    pub fn req(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key).ok_or_else(|| JsonError::missing_field(key))
    }

    /// The value as `bool`, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(n) => Some(*n),
            Json::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (integers convert losslessly when possible).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(x) => Some(*x),
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice of elements, if it is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (strict: one value, no trailing input).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] with a byte offset on malformed input.
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        parse::parse(input)
    }

    /// Serializes compactly (no whitespace).
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        ser::write(self, &mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation and a trailing newline,
    /// suitable for committed artifacts like `BENCH_pipeline.json`.
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        ser::write(self, &mut out, Some(2), 0);
        out.push('\n');
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

/// Error produced when converting a [`Json`] value into a Rust type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
}

impl JsonError {
    /// An error with a custom message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// "missing field `key`".
    #[must_use]
    pub fn missing_field(key: &str) -> Self {
        Self::new(format!("missing field `{key}`"))
    }

    /// "expected `what`".
    #[must_use]
    pub fn expected(what: &str) -> Self {
        Self::new(format!("expected {what}"))
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for JsonError {}

/// Conversion into [`Json`]; plays the role of `serde::Serialize`.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

/// Conversion from [`Json`]; plays the role of `serde::Deserialize`.
pub trait FromJson: Sized {
    /// Reconstructs `Self` from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first mismatch.
    fn from_json(json: &Json) -> Result<Self, JsonError>;
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(json.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_bool().ok_or_else(|| JsonError::expected("bool"))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::U64(u64::from(*self))
            }
        }

        impl FromJson for $t {
            fn from_json(json: &Json) -> Result<Self, JsonError> {
                let n = json.as_u64().ok_or_else(|| JsonError::expected("unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| JsonError::expected(stringify!($t)))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::U64(*self as u64)
    }
}

impl FromJson for usize {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let n = json
            .as_u64()
            .ok_or_else(|| JsonError::expected("unsigned integer"))?;
        usize::try_from(n).map_err(|_| JsonError::expected("usize"))
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        if *self >= 0 {
            Json::U64(*self as u64)
        } else {
            Json::I64(*self)
        }
    }
}

impl FromJson for i64 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_i64().ok_or_else(|| JsonError::expected("integer"))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl FromJson for f64 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_f64().ok_or_else(|| JsonError::expected("number"))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsonError::expected("string"))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_arr()
            .ok_or_else(|| JsonError::expected("array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(value) => value.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<K: ToString + Ord, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let items = json.as_arr().ok_or_else(|| JsonError::expected("array"))?;
        if items.len() != 2 {
            return Err(JsonError::expected("2-element array"));
        }
        Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
    }
}

impl ToJson for std::time::Duration {
    /// Exact encoding as `{"secs": u64, "nanos": u32}` — an f64 of seconds
    /// would lose sub-microsecond precision on long runs.
    fn to_json(&self) -> Json {
        Json::obj()
            .field("secs", self.as_secs())
            .field("nanos", self.subsec_nanos())
    }
}

impl FromJson for std::time::Duration {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let secs = u64::from_json(json.req("secs")?)?;
        let nanos = u32::from_json(json.req("nanos")?)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

/// Serializes any [`ToJson`] value as a pretty document.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

/// Parses a document and converts it, like `serde_json::from_str`.
///
/// # Errors
///
/// Returns the parse or conversion error message.
pub fn from_str<T: FromJson>(input: &str) -> Result<T, JsonError> {
    let json = Json::parse(input).map_err(|e| JsonError::new(e.to_string()))?;
    T::from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let doc = Json::obj()
            .field("name", "MH")
            .field("k", 400u32)
            .field("ok", true)
            .field("ratio", 0.25f64);
        assert_eq!(doc.get("name").unwrap().as_str(), Some("MH"));
        assert_eq!(doc.get("k").unwrap().as_u64(), Some(400));
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
        assert!(doc.get("missing").is_none());
        assert!(doc.req("missing").is_err());
    }

    #[test]
    fn integers_round_trip_exactly() {
        for n in [0u64, 1, u64::from(u32::MAX), 1 << 53, u64::MAX] {
            let text = Json::U64(n).to_string_compact();
            assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(n));
        }
        for n in [-1i64, i64::MIN] {
            let text = n.to_json().to_string_compact();
            assert_eq!(Json::parse(&text).unwrap().as_i64(), Some(n));
        }
    }

    #[test]
    fn duration_round_trips() {
        let d = std::time::Duration::new(3, 141_592_653);
        let back = std::time::Duration::from_json(&d.to_json()).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn object_order_is_preserved() {
        let text = r#"{"z": 1, "a": 2, "m": 3}"#;
        let doc = Json::parse(text).unwrap();
        match &doc {
            Json::Obj(fields) => {
                let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["z", "a", "m"]);
            }
            other => panic!("expected object, got {other:?}"),
        }
        assert_eq!(doc.to_string_compact(), r#"{"z":1,"a":2,"m":3}"#);
    }

    #[test]
    fn options_and_vecs() {
        let v: Vec<u32> = vec![1, 2, 3];
        let json = v.to_json();
        assert_eq!(Vec::<u32>::from_json(&json).unwrap(), v);
        assert_eq!(Option::<u32>::from_json(&Json::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_json(&Json::U64(4)).unwrap(), Some(4));
        assert_eq!(None::<u32>.to_json(), Json::Null);
    }
}
