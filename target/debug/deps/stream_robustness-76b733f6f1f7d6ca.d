/root/repo/target/debug/deps/stream_robustness-76b733f6f1f7d6ca.d: crates/matrix/tests/stream_robustness.rs

/root/repo/target/debug/deps/libstream_robustness-76b733f6f1f7d6ca.rmeta: crates/matrix/tests/stream_robustness.rs

crates/matrix/tests/stream_robustness.rs:
