/root/repo/target/debug/deps/properties-7027509faaf79071.d: crates/apriori/tests/properties.rs

/root/repo/target/debug/deps/libproperties-7027509faaf79071.rmeta: crates/apriori/tests/properties.rs

crates/apriori/tests/properties.rs:
