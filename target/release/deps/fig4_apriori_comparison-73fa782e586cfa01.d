/root/repo/target/release/deps/fig4_apriori_comparison-73fa782e586cfa01.d: crates/experiments/src/bin/fig4_apriori_comparison.rs

/root/repo/target/release/deps/fig4_apriori_comparison-73fa782e586cfa01: crates/experiments/src/bin/fig4_apriori_comparison.rs

crates/experiments/src/bin/fig4_apriori_comparison.rs:
