/root/repo/target/debug/deps/properties-6e9ed449a2766ac3.d: crates/hash/tests/properties.rs

/root/repo/target/debug/deps/properties-6e9ed449a2766ac3: crates/hash/tests/properties.rs

crates/hash/tests/properties.rs:
