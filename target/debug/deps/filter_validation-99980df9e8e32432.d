/root/repo/target/debug/deps/filter_validation-99980df9e8e32432.d: crates/lsh/tests/filter_validation.rs

/root/repo/target/debug/deps/libfilter_validation-99980df9e8e32432.rmeta: crates/lsh/tests/filter_validation.rs

crates/lsh/tests/filter_validation.rs:
