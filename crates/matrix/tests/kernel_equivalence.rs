//! Property-based equivalence of the intersection kernels.
//!
//! The sorted two-pointer merge ([`column::intersection_size`]) is the
//! reference implementation; every faster kernel — galloping search, the
//! adaptive dispatcher, the u32 auto dispatcher with its bitmap arm, the
//! blocked [`BitMatrix`] all-pairs driver, the hybrid
//! (array/bitmap/run) containers, and the runtime-dispatched SIMD word
//! kernels — must return exactly the same integer counts on every input,
//! including the adversarially skewed shapes the dispatcher uses to pick
//! a kernel and every pairwise container-type combination.

use proptest::prelude::*;

use sfa_matrix::bitmap::{intersection_size_scratch, BitColumn, BitMatrix};
use sfa_matrix::column::{
    intersection_size, intersection_size_adaptive, intersection_size_auto, intersection_size_gallop,
};
use sfa_matrix::{kernel, HybridColumn, MatrixBuilder};

fn row_set(bound: u32, max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0..bound, 0..=max_len)
        .prop_map(|s| s.into_iter().collect::<Vec<u32>>())
}

/// Rows spanning three 2^16 chunks (`N_ROWS_HYBRID` = 3·65536), shaped to
/// land on a specific container type in the middle chunk:
/// * `array` — a sparse scatter (chunk cardinality ≤ 4096),
/// * `runs` — a handful of long intervals (few runs, huge cardinality),
/// * `bitmap` — a dense scatter (cardinality > 4096 with many runs).
const N_ROWS_HYBRID: u32 = 3 << 16;

fn shaped_rows() -> impl Strategy<Value = Vec<u32>> {
    let array = prop::collection::btree_set(0..N_ROWS_HYBRID, 0..=300)
        .prop_map(|s| s.into_iter().collect::<Vec<u32>>());
    let runs =
        prop::collection::vec((0..N_ROWS_HYBRID - 9000, 1u32..9000), 1..6).prop_map(|intervals| {
            let mut set = std::collections::BTreeSet::new();
            for (start, len) in intervals {
                set.extend(start..start + len);
            }
            set.into_iter().collect::<Vec<u32>>()
        });
    // Scattering ~6000 of every 8 rows of one chunk forces the bitmap
    // container: cardinality > 4096 and far too many runs to store.
    let bitmap = (
        0u32..3,
        prop::collection::btree_set(0u32..48_000, 4200..=4600),
    )
        .prop_map(|(chunk, offsets)| {
            offsets
                .into_iter()
                .map(|o| (chunk << 16) + (o % (1 << 16)))
                .collect::<std::collections::BTreeSet<u32>>()
                .into_iter()
                .collect::<Vec<u32>>()
        });
    // The vendored proptest shim has no `prop_oneof`; generate all three
    // shapes and let a selector pick one.
    (0u32..3, array, runs, bitmap).prop_map(|(sel, array, runs, bitmap)| match sel {
        0 => array,
        1 => runs,
        _ => bitmap,
    })
}

/// Sorted distinct `u64` values for the sorted-set SIMD merge, spread
/// over a narrow range so intersections are non-trivial.
fn sorted_u64s(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::btree_set(0u64..4_096, 0..=max_len)
        .prop_map(|s| s.into_iter().collect::<Vec<u64>>())
}

/// A pair of columns where one side is forced to be far longer than the
/// other (`|small| <= 3`, `|large| >= 48`), so the adaptive dispatcher's
/// galloping arm actually engages (`large / small >= GALLOP_SKEW_CUTOFF`).
fn skewed_pair() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    let small = row_set(4_096, 3);
    let large = prop::collection::btree_set(0u32..4_096, 48..=600)
        .prop_map(|s| s.into_iter().collect::<Vec<u32>>());
    (small, large)
}

proptest! {
    #[test]
    fn all_kernels_match_merge_on_random_columns(
        a in row_set(512, 200),
        b in row_set(512, 200),
    ) {
        let expected = intersection_size(&a, &b);
        prop_assert_eq!(intersection_size_gallop(&a, &b), expected);
        prop_assert_eq!(intersection_size_gallop(&b, &a), expected);
        prop_assert_eq!(intersection_size_adaptive(&a, &b), expected);
        prop_assert_eq!(intersection_size_auto(&a, &b), expected);
        prop_assert_eq!(intersection_size_scratch(&a, &b), expected);
    }

    #[test]
    fn all_kernels_match_merge_on_skewed_columns((small, large) in skewed_pair()) {
        let expected = intersection_size(&small, &large);
        prop_assert_eq!(intersection_size_gallop(&small, &large), expected);
        prop_assert_eq!(intersection_size_adaptive(&small, &large), expected);
        prop_assert_eq!(intersection_size_adaptive(&large, &small), expected);
        prop_assert_eq!(intersection_size_auto(&small, &large), expected);
        prop_assert_eq!(intersection_size_auto(&large, &small), expected);
        prop_assert_eq!(intersection_size_scratch(&small, &large), expected);
    }

    #[test]
    fn bit_columns_match_merge(
        a in row_set(300, 150),
        b in row_set(300, 150),
    ) {
        let ca = BitColumn::from_rows(300, &a);
        let cb = BitColumn::from_rows(300, &b);
        let expected = intersection_size(&a, &b);
        prop_assert_eq!(ca.intersection_size(&cb), expected);
        let union = a.len() + b.len() - expected;
        prop_assert_eq!(ca.union_size(&cb), union);
        let want_jaccard = if union == 0 { 0.0 } else { expected as f64 / union as f64 };
        prop_assert!((ca.jaccard(&cb) - want_jaccard).abs() < 1e-12);
    }

    #[test]
    fn hybrid_containers_match_merge_on_shaped_columns(
        a in shaped_rows(),
        b in shaped_rows(),
    ) {
        let ca = HybridColumn::from_rows(N_ROWS_HYBRID, &a);
        let cb = HybridColumn::from_rows(N_ROWS_HYBRID, &b);
        let expected = intersection_size(&a, &b);
        prop_assert_eq!(ca.intersection_size(&cb), expected);
        prop_assert_eq!(cb.intersection_size(&ca), expected, "container order asymmetry");
        let union = a.len() + b.len() - expected;
        prop_assert_eq!(ca.union_size(&cb), union);
        prop_assert_eq!(
            HybridColumn::payload_bytes_for_rows(&a),
            ca.heap_bytes(),
            "cap estimator diverged from the built payload bytes"
        );
    }

    #[test]
    fn simd_word_kernels_match_scalar(
        a in prop::collection::vec(any::<u64>(), 0..=300),
        b in prop::collection::vec(any::<u64>(), 0..=300),
    ) {
        // Lengths differ, so the AND truncates and the OR counts the
        // tail; >64-word inputs reach the Harley–Seal main loop.
        let and_expected = kernel::and_popcount_scalar(&a, &b);
        let or_expected = kernel::or_popcount_scalar(&a, &b);
        prop_assert_eq!(kernel::and_popcount(&a, &b), and_expected);
        prop_assert_eq!(kernel::or_popcount(&a, &b), or_expected);
        if let Some(simd) = kernel::and_popcount_simd(&a, &b) {
            prop_assert_eq!(simd, and_expected, "SIMD AND diverged from scalar");
        }
        if let Some(simd) = kernel::or_popcount_simd(&a, &b) {
            prop_assert_eq!(simd, or_expected, "SIMD OR diverged from scalar");
        }
    }

    #[test]
    fn simd_sorted_merge_matches_scalar(
        a in sorted_u64s(400),
        b in sorted_u64s(400),
    ) {
        let expected = kernel::intersect_sorted_u64_scalar(&a, &b);
        prop_assert_eq!(kernel::intersect_sorted_u64(&a, &b), expected);
        if let Some(simd) = kernel::intersect_sorted_u64_simd(&a, &b) {
            prop_assert_eq!(simd, expected, "SIMD block merge diverged from scalar");
        }
    }

    #[test]
    fn blocked_driver_matches_per_pair_merge(
        entries in prop::collection::vec((0u32..60, 0u32..40), 0..400),
    ) {
        let mut builder = MatrixBuilder::new(60, 40);
        for &(r, c) in &entries {
            builder.add_entry(r, c).unwrap();
        }
        let matrix = builder.build_csc();
        let bits = BitMatrix::from_csc(&matrix);
        // Collect the driver's visits, then check them against the merge
        // kernel on the raw CSC columns: same pairs, same counts, no
        // duplicates, nothing skipped.
        let mut visited = std::collections::BTreeMap::new();
        let mut duplicate = false;
        bits.for_each_cooccurring_pair(|i, j, inter| {
            duplicate |= i >= j || inter == 0 || visited.insert((i, j), inter).is_some();
        });
        prop_assert!(!duplicate, "driver visited a pair twice, out of order, or empty");
        for i in 0..matrix.n_cols() {
            for j in (i + 1)..matrix.n_cols() {
                let expected = intersection_size(matrix.column(i), matrix.column(j));
                let got = visited.get(&(i as usize, j as usize)).copied().unwrap_or(0);
                prop_assert_eq!(got, expected, "pair ({}, {})", i, j);
            }
        }
    }
}

/// Fixed representatives of each container shape in chunk 0 — checked by
/// `container_counts`, so a change to the selection heuristic that
/// breaks the premise fails loudly here.
fn shape_representatives() -> Vec<(&'static str, Vec<u32>)> {
    // array: 1000 scattered rows (card <= 4096, runs too many to win).
    let array: Vec<u32> = (0..1000u32).map(|i| i * 61 % (1 << 16)).collect();
    let array: Vec<u32> = {
        let set: std::collections::BTreeSet<u32> = array.into_iter().collect();
        set.into_iter().collect()
    };
    // bitmap: every other row of the chunk (card 32768, 32768 runs).
    let bitmap: Vec<u32> = (0..1u32 << 16).step_by(2).collect();
    // runs: three long intervals (card 15000, 3 runs).
    let runs: Vec<u32> = (100..5100u32)
        .chain(20_000..25_000)
        .chain(40_000..45_000)
        .collect();
    vec![("array", array), ("bitmap", bitmap), ("runs", runs)]
}

#[test]
fn every_container_type_pairing_matches_merge() {
    let shapes = shape_representatives();
    for (name, rows) in &shapes {
        let col = HybridColumn::from_rows(1 << 16, rows);
        let (arrays, bitmaps, run_chunks) = col.container_counts();
        let got = match (arrays, bitmaps, run_chunks) {
            (1, 0, 0) => "array",
            (0, 1, 0) => "bitmap",
            (0, 0, 1) => "runs",
            other => panic!("expected exactly one container, got {other:?}"),
        };
        assert_eq!(&got, name, "representative no longer builds a {name}");
    }
    for (na, a) in &shapes {
        for (nb, b) in &shapes {
            let ca = HybridColumn::from_rows(1 << 16, a);
            let cb = HybridColumn::from_rows(1 << 16, b);
            let expected = intersection_size(a, b);
            assert_eq!(
                ca.intersection_size(&cb),
                expected,
                "{na} ∩ {nb} diverged from the merge kernel"
            );
            assert_eq!(
                ca.union_size(&cb),
                a.len() + b.len() - expected,
                "{na} ∪ {nb} diverged"
            );
        }
    }
}

/// The dispatched entry points agree with the forced-scalar arm on a
/// deterministic workload, whatever arm the host CPU selects. The
/// per-arm functions make this race-free: nothing here mutates the
/// process-wide dispatch cache.
#[test]
fn dispatched_kernels_agree_with_forced_scalar_arm() {
    let a: Vec<u64> = (0..777u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let b: Vec<u64> = (0..777u64)
        .map(|i| (i + 3).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
        .collect();
    assert_eq!(
        kernel::and_popcount(&a, &b),
        kernel::and_popcount_scalar(&a, &b)
    );
    assert_eq!(
        kernel::or_popcount(&a, &b),
        kernel::or_popcount_scalar(&a, &b)
    );
    let sa: Vec<u64> = (0..2_000u64).map(|i| i * 7).collect();
    let sb: Vec<u64> = (0..2_000u64).map(|i| i * 3 + 1).collect();
    assert_eq!(
        kernel::intersect_sorted_u64(&sa, &sb),
        kernel::intersect_sorted_u64_scalar(&sa, &sb)
    );
    // On hosts with a SIMD arm the explicit SIMD entry points must agree
    // too; on scalar-only hosts they return None and the dispatcher
    // above already proved the fallback.
    if kernel::simd_arm().is_some() {
        assert_eq!(
            kernel::and_popcount_simd(&a, &b),
            Some(kernel::and_popcount_scalar(&a, &b))
        );
        assert_eq!(
            kernel::or_popcount_simd(&a, &b),
            Some(kernel::or_popcount_scalar(&a, &b))
        );
        assert_eq!(
            kernel::intersect_sorted_u64_simd(&sa, &sb),
            Some(kernel::intersect_sorted_u64_scalar(&sa, &sb))
        );
    }
}
