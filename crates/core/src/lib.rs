//! # sfa-core — the three-phase support-free association pipeline
//!
//! The paper's algorithms all share one skeleton: "compute signatures,
//! generate candidates, and prune candidates. … The last phase is identical
//! in all our algorithms: while scanning the table data, maintain for each
//! candidate column-pair `(c_i, c_j)` the counts of the number of rows
//! having a 1 in at least one of the two columns and also the number of
//! rows having a 1 in both columns."
//!
//! * [`config`] — which scheme to run (MH, K-MH, M-LSH, H-LSH) and with
//!   what parameters.
//! * [`pipeline`] — the driver: phase 1 + 2 per scheme, then the exact
//!   verification pass. Because phase 3 is exact, the pipeline's output
//!   contains **no false positives**; quality is entirely a matter of
//!   false negatives, which is how the paper frames its §5 comparison.
//! * [`verify`] — the phase-3 counting pass over a [`RowStream`].
//! * [`checkpoint`] — crash-safe checkpoint files for both streaming
//!   passes, behind [`Pipeline::run_resumable`](pipeline::Pipeline::run_resumable).
//! * [`spill`] — checksummed shard spill files for out-of-core mining
//!   under a [`MemoryBudget`], behind
//!   [`Pipeline::run_sharded`](pipeline::Pipeline::run_sharded).
//! * [`durable`] — crash-consistent atomic writes (fsync file, then
//!   parent dir), seeded write-side fault injection, and the startup
//!   recovery sweep that quarantines corrupt or stale state.
//! * [`shutdown`] — signal/deadline cancellation: the [`CancelToken`]
//!   the streaming pipelines poll so a `SIGTERM` flushes a resumable
//!   checkpoint instead of losing the pass.
//! * [`sigcache`] — the config-fingerprinted signature cache: phase-1
//!   sketches keyed on `(scheme kind, k, seed, table shape)` so repeated
//!   mines over the same table skip the signature pass entirely.
//! * [`report`] — result and timing types.
//! * [`metrics`] — structured per-phase counters and the schema-stable
//!   JSON document behind `--metrics-json` and the bench baseline.
//! * [`quality`] — S-curves and false-positive/negative accounting against
//!   exact ground truth (the §5.1 evaluation methodology).
//! * [`confidence`] — the §6 extension: high-confidence rules without
//!   support, from the same signatures.
//! * [`boolean`] — the §7 extensions: OR-composition of signatures, AND
//!   implications via cardinality, and (support-floored) anticorrelation.
//! * [`cluster`] — single-link and dense cluster extraction from the mined
//!   pair graph (the paper's §2 "clusters of words").
//! * [`streaming`] — an online miner over an append-only table: push rows
//!   as they arrive, mine (with exact verification) at any moment.
//!
//! [`RowStream`]: sfa_matrix::RowStream

#![warn(missing_docs)]

pub mod boolean;
pub mod checkpoint;
pub mod cluster;
pub mod confidence;
pub mod config;
pub mod durable;
pub mod metrics;
pub mod pipeline;
pub mod quality;
pub mod report;
pub mod shutdown;
pub mod sigcache;
pub mod spill;
pub mod streaming;
pub mod verify;

pub use checkpoint::CheckpointSpec;
pub use config::{PipelineConfig, Scheme};
pub use durable::{DurableDir, RecoveredDir, WriteFault, WriteFaultConfig};
pub use metrics::{
    KernelMetrics, MetricsDocument, MiningMetrics, PassMetrics, Phase1Metrics, RecoveryMetrics,
    ServingMetrics, ShardingMetrics, StageCount, VerifyMetrics, METRICS_SCHEMA_VERSION,
};
pub use pipeline::{MemoryBudget, Pipeline};
pub use quality::{evaluate_quality, QualityReport, SCurveBin};
pub use report::{MiningResult, PhaseTimings, VerifiedPair};
pub use shutdown::{install_signal_handlers, CancelToken, ThrottledCancel};
pub use sigcache::SignatureCache;
pub use verify::InMemoryKernelReport;
