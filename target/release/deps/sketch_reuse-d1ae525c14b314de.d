/root/repo/target/release/deps/sketch_reuse-d1ae525c14b314de.d: tests/sketch_reuse.rs

/root/repo/target/release/deps/sketch_reuse-d1ae525c14b314de: tests/sketch_reuse.rs

tests/sketch_reuse.rs:
