/root/repo/target/debug/deps/sfa-cf01ac5b88e0f59e.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libsfa-cf01ac5b88e0f59e.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
