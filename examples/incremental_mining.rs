//! Incremental operation on a growing table.
//!
//! Min-hash signatures are commutative, idempotent folds over rows, so a
//! deployment can keep per-column sketches updated as the log grows and
//! re-mine whenever it wants — no re-scan of history. This example streams
//! a week of simulated weblog traffic day by day, mining after each day,
//! and shows (a) the sketch after 7 incremental days equals the batch
//! sketch over the full log, and (b) similar pairs firm up as evidence
//! accumulates.
//!
//! ```sh
//! cargo run --release --example incremental_mining
//! ```

use sfa::core::verify::verify_candidates;
use sfa::datagen::WeblogConfig;
use sfa::matrix::{MemoryRowStream, RowMajorMatrix};
use sfa::minhash::hashcount::kmh_candidates;
use sfa::minhash::{compute_bottom_k, KmhBuilder};

fn main() {
    // The "full week" of traffic; we will reveal it one day at a time.
    let data = WeblogConfig::tiny(99).generate();
    let full = data.matrix.transpose();
    let n = full.n_rows();
    let days = 7;
    let per_day = n / days;
    println!(
        "simulated weblog: {} client rows total, revealed in {days} days of ~{per_day}",
        n
    );

    let (k, seed, s_star, delta) = (32usize, 2026u64, 0.8, 0.2);
    let mut sketch = KmhBuilder::new(k, full.n_cols() as usize, seed);
    for day in 0..days {
        let lo = day * per_day;
        let hi = if day == days - 1 {
            n
        } else {
            (day + 1) * per_day
        };
        for row_id in lo..hi {
            sketch.push_row(row_id, full.row(row_id));
        }
        // Mine the *current* sketch without touching historical rows. The
        // verification pass uses only the rows seen so far.
        let current = sketch.clone().finish();
        let candidates = kmh_candidates(&current, s_star, delta);
        let seen_rows: Vec<Vec<u32>> = (0..hi).map(|r| full.row(r).to_vec()).collect();
        let seen = RowMajorMatrix::from_rows(full.n_cols(), seen_rows).unwrap();
        let (verified, _) =
            verify_candidates(&mut MemoryRowStream::new(&seen), &candidates).unwrap();
        let confirmed = verified.iter().filter(|p| p.similarity >= s_star).count();
        println!(
            "  after day {}: {} rows folded, {} candidates, {} confirmed pairs",
            day + 1,
            sketch.rows_seen(),
            candidates.len(),
            confirmed
        );
    }

    // The incremental sketch is bit-identical to the batch computation.
    let incremental = sketch.finish();
    let batch = compute_bottom_k(&mut MemoryRowStream::new(&full), k, seed).unwrap();
    assert_eq!(incremental, batch);
    println!("\nincremental sketch == batch sketch over the full log ✓");
}
