/root/repo/target/release/deps/boolean_extensions-2b766d617feeb0fc.d: crates/experiments/src/bin/boolean_extensions.rs

/root/repo/target/release/deps/boolean_extensions-2b766d617feeb0fc: crates/experiments/src/bin/boolean_extensions.rs

crates/experiments/src/bin/boolean_extensions.rs:
