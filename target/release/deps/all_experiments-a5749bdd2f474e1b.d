/root/repo/target/release/deps/all_experiments-a5749bdd2f474e1b.d: crates/experiments/src/bin/all_experiments.rs

/root/repo/target/release/deps/all_experiments-a5749bdd2f474e1b: crates/experiments/src/bin/all_experiments.rs

crates/experiments/src/bin/all_experiments.rs:
