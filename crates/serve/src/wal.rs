//! Durable persistence of acknowledged `INGEST` rows.
//!
//! The server acknowledges ingests in memory and persists them in
//! batches: at every snapshot swap and — the guarantee the drain contract
//! rests on — at graceful shutdown. The log is one checksummed `.sfab`
//! table (`ingest.sfab`) rewritten in full through
//! [`sfa_core::durable::write_atomic`], so a crash mid-flush leaves
//! either the previous complete log or the new complete log, and a
//! lost-data fault leaves bytes that fail their CRC on reload. Restart
//! replays the log on top of the base table before serving.

use std::path::{Path, PathBuf};

use sfa_core::durable;
use sfa_matrix::{io, MatrixError, Result, RowMajorMatrix};

/// Name of the ingest log inside the state directory.
pub const INGEST_LOG: &str = "ingest.sfab";

/// The ingest log of one state directory.
#[derive(Debug, Clone)]
pub struct IngestLog {
    dir: PathBuf,
    n_cols: u32,
}

impl IngestLog {
    /// A log handle rooted at `dir` for a `n_cols`-column universe.
    /// Creates the directory if missing.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: &Path, n_cols: u32) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            n_cols,
        })
    }

    fn log_path(&self) -> PathBuf {
        self.dir.join(INGEST_LOG)
    }

    /// Replays the persisted rows, in ingest order. An absent log is an
    /// empty history; a corrupt or column-mismatched log is an error (the
    /// operator must move it aside rather than silently lose rows).
    ///
    /// # Errors
    ///
    /// Corrupt log (CRC/format) or a column-universe mismatch.
    pub fn replay(&self) -> Result<Vec<Vec<u32>>> {
        let path = self.log_path();
        if !path.exists() {
            return Ok(Vec::new());
        }
        let matrix = io::read_binary(&path)?;
        if matrix.n_cols() != self.n_cols {
            return Err(MatrixError::DimensionMismatch {
                detail: format!(
                    "ingest log has {} columns, the served table has {}",
                    matrix.n_cols(),
                    self.n_cols
                ),
            });
        }
        Ok(matrix.rows().map(|(_, cols)| cols.to_vec()).collect())
    }

    /// Durably replaces the log with the full ingested-row history.
    ///
    /// The rows are serialized in the checksummed `.sfab` v2 format (via
    /// a staging file, since the matrix writer is path-based) and the
    /// final bytes land through the crash-consistent `write_atomic`
    /// discipline, honoring any `SFA_WRITE_FAULTS` plan.
    ///
    /// # Errors
    ///
    /// Any IO failure, real or injected; the destination is never torn.
    pub fn flush(&self, rows: &[Vec<u32>]) -> Result<()> {
        let matrix = RowMajorMatrix::from_rows(self.n_cols, rows.to_vec())?;
        let staging = self.dir.join("ingest.staging");
        io::write_binary(&matrix, &staging)?;
        let bytes = std::fs::read(&staging)?;
        let _ = std::fs::remove_file(&staging);
        durable::write_atomic(&self.log_path(), &bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sfa_serve_wal_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn absent_log_replays_empty() {
        let log = IngestLog::open(&tmp("absent"), 4).unwrap();
        assert!(log.replay().unwrap().is_empty());
    }

    #[test]
    fn flush_then_replay_roundtrips() {
        let log = IngestLog::open(&tmp("roundtrip"), 5).unwrap();
        let rows = vec![vec![0, 2], vec![1, 3, 4], vec![]];
        log.flush(&rows).unwrap();
        assert_eq!(log.replay().unwrap(), rows);
        // A second flush replaces, not appends.
        let more = vec![vec![0], vec![4]];
        log.flush(&more).unwrap();
        assert_eq!(log.replay().unwrap(), more);
    }

    #[test]
    fn corrupt_log_is_an_error_not_silent_loss() {
        let dir = tmp("corrupt");
        let log = IngestLog::open(&dir, 3).unwrap();
        log.flush(&[vec![0, 1]]).unwrap();
        let path = dir.join(INGEST_LOG);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, bytes).unwrap();
        assert!(log.replay().is_err());
    }

    #[test]
    fn column_mismatch_is_rejected() {
        let dir = tmp("mismatch");
        let log = IngestLog::open(&dir, 3).unwrap();
        log.flush(&[vec![0, 2]]).unwrap();
        let reopened = IngestLog::open(&dir, 7).unwrap();
        assert!(reopened.replay().is_err());
    }
}
