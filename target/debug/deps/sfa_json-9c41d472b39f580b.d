/root/repo/target/debug/deps/sfa_json-9c41d472b39f580b.d: crates/json/src/lib.rs crates/json/src/parse.rs crates/json/src/ser.rs

/root/repo/target/debug/deps/sfa_json-9c41d472b39f580b: crates/json/src/lib.rs crates/json/src/parse.rs crates/json/src/ser.rs

crates/json/src/lib.rs:
crates/json/src/parse.rs:
crates/json/src/ser.rs:
