/root/repo/target/release/deps/sfa_hash-d73290eb0a10e741.d: crates/hash/src/lib.rs crates/hash/src/bucket.rs crates/hash/src/family.rs crates/hash/src/mix.rs crates/hash/src/rng.rs crates/hash/src/tabulation.rs crates/hash/src/topk.rs

/root/repo/target/release/deps/libsfa_hash-d73290eb0a10e741.rlib: crates/hash/src/lib.rs crates/hash/src/bucket.rs crates/hash/src/family.rs crates/hash/src/mix.rs crates/hash/src/rng.rs crates/hash/src/tabulation.rs crates/hash/src/topk.rs

/root/repo/target/release/deps/libsfa_hash-d73290eb0a10e741.rmeta: crates/hash/src/lib.rs crates/hash/src/bucket.rs crates/hash/src/family.rs crates/hash/src/mix.rs crates/hash/src/rng.rs crates/hash/src/tabulation.rs crates/hash/src/topk.rs

crates/hash/src/lib.rs:
crates/hash/src/bucket.rs:
crates/hash/src/family.rs:
crates/hash/src/mix.rs:
crates/hash/src/rng.rs:
crates/hash/src/tabulation.rs:
crates/hash/src/topk.rs:
