//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this in-repo crate
//! implements the subset of proptest's API that the workspace's property
//! tests use:
//!
//! * the [`proptest!`] macro (`fn name(pat in strategy, …) { body }`,
//!   with an optional `#![proptest_config(…)]` header),
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//!   implemented for numeric ranges and tuples,
//! * [`strategy::any`] for primitives,
//! * [`collection::vec`] and [`collection::btree_set`],
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.
//!
//! Semantics differ from real proptest in one deliberate way: there is
//! **no shrinking**. Failures report the generated inputs via the normal
//! panic message (values are produced deterministically from the test
//! name, so a failure reproduces by re-running the test). Each test runs
//! [`test_runner::Config::cases`] random cases.

#![warn(missing_docs)]

pub mod strategy;

pub mod test_runner {
    //! Test-runner configuration and the deterministic RNG.

    /// Per-test configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        #[must_use]
        pub const fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 128 }
        }
    }

    /// Deterministic test RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives a generator from a test's name, so every test has an
        /// independent but reproducible stream.
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound == 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform in `[0, 1)` with 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Anything acceptable as a size specifier: an exact `usize`, a
    /// `Range<usize>` or a `RangeInclusive<usize>`.
    pub trait IntoSizeRange {
        /// Resolves to inclusive `(min, max)` bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy producing a `Vec` of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A `Vec` with length drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing a `BTreeSet` of values from `element`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A `BTreeSet` with target size drawn from `size`. As in real
    /// proptest, the target is best-effort: duplicate draws from a small
    /// element domain can produce fewer elements (never fewer than
    /// achievable, and the generator retries a bounded number of times).
    pub fn btree_set<S>(element: S, size: impl IntoSizeRange) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        let (min, max) = size.bounds();
        BTreeSetStrategy { element, min, max }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            let mut out = std::collections::BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < 10 * (target + 1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// Only valid inside a [`proptest!`] body (which runs each case in a
/// closure, so `return` abandons just that case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Defines property tests.
///
/// ```text
/// use proptest::prelude::*;
///
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@config ($cfg) $($rest)*);
    };
    (@config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..config.cases {
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )*
                // Each case runs in a closure so `prop_assume!` can skip
                // it with `return`.
                #[allow(clippy::redundant_closure_call)]
                (move || $body)();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0.25f64..=0.75, z in any::<u8>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..=0.75).contains(&y));
            let _ = z;
        }

        #[test]
        fn assume_skips(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn collections_obey_sizes(
            v in prop::collection::vec(any::<u64>(), 2..5),
            s in prop::collection::btree_set(0u32..1000, 0..=4),
            exact in prop::collection::vec(0u32..10, 3),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(s.len() <= 4);
            prop_assert_eq!(exact.len(), 3);
        }

        #[test]
        fn combinators_compose(
            pair in (1u32..5, 10u32..20),
            mapped in (0u32..4).prop_map(|x| x * 2),
            nested in (1usize..4).prop_flat_map(|n| prop::collection::vec(0u32..10, n)),
        ) {
            prop_assert!(pair.0 < 5 && pair.1 >= 10);
            prop_assert!(mapped % 2 == 0 && mapped <= 6);
            prop_assert!(!nested.is_empty() && nested.len() < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_header_is_honored(_x in 0u32..10) {
            // Body runs; case count is config-driven (not observable here,
            // but the header must parse).
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_test("u");
        assert_ne!(
            crate::test_runner::TestRng::for_test("t").next_u64(),
            c.next_u64()
        );
    }
}
