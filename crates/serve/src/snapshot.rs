//! Immutable epoch snapshots of the mined index, atomically swappable.
//!
//! A [`Snapshot`] holds everything a query needs — the verified pairs, a
//! per-column adjacency sorted by similarity for `TOPK`, and the exact
//! column sets for `SIM` — built once, then shared read-only across every
//! worker. Ingested rows accumulate off the hot path; a rebuild folds
//! only the new rows into the live [`StreamingMiner`]'s sketch (min-hash
//! sketches merge row-by-row, so the incremental fold is byte-identical
//! to a cold build over the full row set), produces the next snapshot
//! via [`Snapshot::build_from_miner`], and [`SnapshotStore::swap`]s it
//! in behind an `Arc`, so readers never block on a writer: they clone
//! the current `Arc` under a momentary read lock and keep serving from
//! the old epoch until they next look.

use std::sync::{Arc, RwLock};

use sfa_core::streaming::StreamingMiner;
use sfa_core::VerifiedPair;
use sfa_matrix::{HybridColumns, Result, RowMajorMatrix};

/// One immutable epoch of the mined index.
#[derive(Debug)]
pub struct Snapshot {
    /// Monotone epoch counter; 1 is the startup snapshot.
    pub epoch: u64,
    /// Rows folded into this snapshot (base + ingested).
    pub n_rows: u32,
    /// Column universe (fixed for the server's lifetime).
    pub n_cols: u32,
    /// Verified pairs at or above the serving threshold, sorted by
    /// descending similarity (ties by `(i, j)`).
    pub pairs: Vec<VerifiedPair>,
    /// `partners[c]` = `(partner, similarity)` of every pair touching
    /// `c`, sorted by descending similarity — the `TOPK` index.
    partners: Vec<Vec<(u32, f64)>>,
    /// Exact column sets as hybrid (array/bitmap/run) containers — the
    /// `SIM` index. Containers keep resident snapshot bytes proportional
    /// to the cheapest per-chunk representation rather than dense
    /// bitmaps, and `SIM` intersections dispatch to the cheapest
    /// pairwise kernel.
    columns: HybridColumns,
}

impl Snapshot {
    /// Builds an epoch from the full row set: cold-builds a streaming
    /// sketch (size `k`, seeded) over `rows` and delegates to
    /// [`build_from_miner`](Self::build_from_miner).
    ///
    /// # Errors
    ///
    /// Propagates matrix-construction errors.
    ///
    /// # Panics
    ///
    /// Panics if a row is not strictly ascending or references a column
    /// `>= n_cols` (see [`StreamingMiner::push_row`]).
    pub fn build(
        epoch: u64,
        n_cols: u32,
        rows: &[Vec<u32>],
        k: usize,
        seed: u64,
        s_star: f64,
        delta: f64,
    ) -> Result<Self> {
        let miner = StreamingMiner::from_rows(n_cols, k, seed, rows);
        Self::build_from_miner(epoch, &miner, s_star, delta)
    }

    /// Builds an epoch from a live miner's current state: mines verified
    /// pairs at `s_star` from its sketch and indexes them for queries.
    ///
    /// This is the incremental-rebuild entry point: a server that keeps
    /// one `StreamingMiner` alive folds only newly ingested rows into
    /// it (`O(Δ·k)` sketch work) instead of re-sketching the whole
    /// table, and because the sketch fold is order-insensitive the
    /// resulting snapshot is byte-identical to a cold
    /// [`build`](Self::build) over the same rows.
    ///
    /// # Errors
    ///
    /// Propagates matrix-construction errors (practically infallible:
    /// the miner validated every row on `push_row`).
    pub fn build_from_miner(
        epoch: u64,
        miner: &StreamingMiner,
        s_star: f64,
        delta: f64,
    ) -> Result<Self> {
        let n_cols = miner.n_cols();
        let pairs = miner.mine(s_star, delta)?;
        let matrix = RowMajorMatrix::from_rows(n_cols, miner.rows().to_vec())?;
        let columns = HybridColumns::from_csc(&matrix.transpose());
        let mut partners: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n_cols as usize];
        // `pairs` is already sorted by descending similarity, so pushing
        // in order keeps each adjacency list sorted too.
        for p in &pairs {
            partners[p.i as usize].push((p.j, p.similarity));
            partners[p.j as usize].push((p.i, p.similarity));
        }
        Ok(Self {
            epoch,
            n_rows: miner.n_rows(),
            n_cols,
            pairs,
            partners,
            columns,
        })
    }

    /// The up-to-`k` most similar verified partners of `col`.
    #[must_use]
    pub fn top_k(&self, col: u32, k: usize) -> &[(u32, f64)] {
        let list = &self.partners[col as usize];
        &list[..k.min(list.len())]
    }

    /// Exact `(similarity, intersection, union)` of one column pair,
    /// computed from the column sets (not limited to mined pairs).
    #[must_use]
    pub fn similarity(&self, a: u32, b: u32) -> (f64, u64, u64) {
        let inter = self.columns.intersection_size(a as usize, b as usize) as u64;
        let union = self.columns.column(a as usize).cardinality()
            + self.columns.column(b as usize).cardinality()
            - inter;
        let sim = if union == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                inter as f64 / union as f64
            }
        };
        (sim, inter, union)
    }

    /// Verified pairs with similarity ≥ `s_star` (a prefix of `pairs`,
    /// which is sorted descending).
    #[must_use]
    pub fn pairs_at(&self, s_star: f64) -> &[VerifiedPair] {
        let cut = self.pairs.partition_point(|p| p.similarity >= s_star);
        &self.pairs[..cut]
    }
}

/// The shared, swappable handle to the current [`Snapshot`].
///
/// Readers pay one brief read-lock acquisition to clone the `Arc`; the
/// writer holds the write lock only for the pointer swap. No reader ever
/// waits on a rebuild.
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Arc<Snapshot>>,
}

impl SnapshotStore {
    /// Wraps the startup snapshot.
    #[must_use]
    pub fn new(initial: Snapshot) -> Self {
        Self {
            current: RwLock::new(Arc::new(initial)),
        }
    }

    /// The current epoch's snapshot.
    ///
    /// # Panics
    ///
    /// Panics if a writer panicked while swapping (poisoned lock) — which
    /// cannot happen: the swap is a pointer store.
    #[must_use]
    pub fn load(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().expect("snapshot lock poisoned"))
    }

    /// Atomically publishes a new epoch.
    ///
    /// # Panics
    ///
    /// See [`load`](Self::load).
    pub fn swap(&self, next: Snapshot) {
        *self.current.write().expect("snapshot lock poisoned") = Arc::new(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<u32>> {
        // Columns 0 and 1 co-occur in every row; column 2 in half.
        (0..8u32)
            .map(|i| {
                if i % 2 == 0 {
                    vec![0, 1, 2]
                } else {
                    vec![0, 1]
                }
            })
            .collect()
    }

    fn snap() -> Snapshot {
        Snapshot::build(1, 3, &rows(), 32, 7, 0.4, 0.2).unwrap()
    }

    #[test]
    fn build_indexes_pairs_both_ways() {
        let s = snap();
        assert_eq!(s.epoch, 1);
        assert_eq!((s.n_rows, s.n_cols), (8, 3));
        let top = s.top_k(0, 10);
        assert_eq!(top[0], (1, 1.0), "0-1 are identical");
        assert_eq!(top[1].0, 2);
        assert!((top[1].1 - 0.5).abs() < 1e-12);
        assert_eq!(s.top_k(0, 1).len(), 1, "k truncates");
        assert_eq!(s.top_k(2, 10).len(), 2, "2 partners 0 and 1");
    }

    #[test]
    fn similarity_is_exact_even_for_unmined_pairs() {
        let s = Snapshot::build(1, 3, &rows(), 32, 7, 0.99, 0.2).unwrap();
        // 0-2 falls below the mining threshold but SIM still answers.
        let (sim, inter, union) = s.similarity(0, 2);
        assert!((sim - 0.5).abs() < 1e-12);
        assert_eq!((inter, union), (4, 8));
        let (sim_empty, inter_empty, union_empty) = {
            let empty = Snapshot::build(1, 2, &[], 8, 1, 0.5, 0.2).unwrap();
            empty.similarity(0, 1)
        };
        assert_eq!((sim_empty, inter_empty, union_empty), (0.0, 0, 0));
    }

    #[test]
    fn pairs_at_takes_sorted_prefix() {
        let s = snap();
        assert_eq!(s.pairs_at(0.0).len(), s.pairs.len());
        assert_eq!(s.pairs_at(0.9).len(), 1);
        assert!(s.pairs_at(1.1).is_empty());
    }

    #[test]
    fn incremental_build_matches_cold_build_at_every_split() {
        // Fold base+ingest in two stages (cold prefix, pushed suffix) at
        // every split point: the snapshot must be indistinguishable from
        // a cold build over the full row set — same sketch, same pairs,
        // same indexes.
        let mut all = rows();
        all.extend([vec![0, 2], vec![2], vec![1, 2], vec![0]]);
        let cold = Snapshot::build(9, 3, &all, 32, 7, 0.4, 0.2).unwrap();
        let cold_sketch = StreamingMiner::from_rows(3, 32, 7, &all).snapshot_sketch();
        for split in 0..=all.len() {
            let mut miner = StreamingMiner::from_rows(3, 32, 7, &all[..split]);
            for row in &all[split..] {
                miner.push_row(row);
            }
            assert_eq!(miner.snapshot_sketch(), cold_sketch, "split {split}");
            let inc = Snapshot::build_from_miner(9, &miner, 0.4, 0.2).unwrap();
            assert_eq!(inc.pairs, cold.pairs, "split {split}");
            assert_eq!((inc.n_rows, inc.n_cols), (cold.n_rows, cold.n_cols));
            for c in 0..3 {
                assert_eq!(inc.top_k(c, 10), cold.top_k(c, 10), "split {split}");
            }
            for (a, b) in [(0, 1), (0, 2), (1, 2)] {
                assert_eq!(inc.similarity(a, b), cold.similarity(a, b));
            }
        }
    }

    #[test]
    fn store_swaps_epochs_without_blocking_readers() {
        let store = SnapshotStore::new(snap());
        let held = store.load();
        assert_eq!(held.epoch, 1);
        let mut rows2 = rows();
        rows2.push(vec![0, 2]);
        store.swap(Snapshot::build(2, 3, &rows2, 32, 7, 0.4, 0.2).unwrap());
        // The old epoch stays valid for holders; new loads see epoch 2.
        assert_eq!(held.epoch, 1);
        assert_eq!(store.load().epoch, 2);
        assert_eq!(store.load().n_rows, 9);
    }
}
