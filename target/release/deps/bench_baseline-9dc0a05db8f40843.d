/root/repo/target/release/deps/bench_baseline-9dc0a05db8f40843.d: crates/experiments/src/bin/bench_baseline.rs

/root/repo/target/release/deps/bench_baseline-9dc0a05db8f40843: crates/experiments/src/bin/bench_baseline.rs

crates/experiments/src/bin/bench_baseline.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/experiments
