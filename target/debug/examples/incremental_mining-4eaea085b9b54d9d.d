/root/repo/target/debug/examples/incremental_mining-4eaea085b9b54d9d.d: examples/incremental_mining.rs Cargo.toml

/root/repo/target/debug/examples/libincremental_mining-4eaea085b9b54d9d.rmeta: examples/incremental_mining.rs Cargo.toml

examples/incremental_mining.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
