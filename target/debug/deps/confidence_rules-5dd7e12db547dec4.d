/root/repo/target/debug/deps/confidence_rules-5dd7e12db547dec4.d: crates/experiments/src/bin/confidence_rules.rs Cargo.toml

/root/repo/target/debug/deps/libconfidence_rules-5dd7e12db547dec4.rmeta: crates/experiments/src/bin/confidence_rules.rs Cargo.toml

crates/experiments/src/bin/confidence_rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
