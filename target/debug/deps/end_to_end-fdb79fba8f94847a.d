/root/repo/target/debug/deps/end_to_end-fdb79fba8f94847a.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-fdb79fba8f94847a.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
