/root/repo/target/debug/deps/synthetic_sweep-396635c9c998f0b8.d: crates/experiments/src/bin/synthetic_sweep.rs

/root/repo/target/debug/deps/synthetic_sweep-396635c9c998f0b8: crates/experiments/src/bin/synthetic_sweep.rs

crates/experiments/src/bin/synthetic_sweep.rs:
