//! Fig. 2: the LSH filter functions.
//!
//! (a) `P_{r,l}(s)` sharpening toward a unit step as `r, l` grow;
//! (b) `Q_{r,l,k}` approximating `P_{r,l}` with only `k < r·l` min-hashes
//!     (the paper's example: `P_{20,20}` needs 400 values, `Q_{20,20,40}`
//!     approximates it with 40).

use sfa_experiments::write_csv;
use sfa_lsh::{p_filter, q_filter};

fn main() {
    println!("# Fig. 2 — filter functions P_{{r,l}} and Q_{{r,l,k}}");

    // Panel (a): P for growing (r, l).
    let configs = [(2usize, 2usize), (5, 5), (10, 10), (20, 20)];
    let mut rows_a = Vec::new();
    println!("\n(a) P_{{r,l}}(s) for (r,l) in {configs:?}");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10}",
        "s", "P_2,2", "P_5,5", "P_10,10", "P_20,20"
    );
    for i in 0..=50 {
        let s = f64::from(i) / 50.0;
        let vals: Vec<f64> = configs.iter().map(|&(r, l)| p_filter(s, r, l)).collect();
        if i % 5 == 0 {
            println!(
                "{s:>6.2} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                vals[0], vals[1], vals[2], vals[3]
            );
        }
        let mut row = vec![format!("{s:.3}")];
        row.extend(vals.iter().map(|v| format!("{v:.6}")));
        rows_a.push(row);
    }
    write_csv(
        "fig2a_p_filter.csv",
        &["s", "p_2_2", "p_5_5", "p_10_10", "p_20_20"],
        &rows_a,
    );

    // Panel (b): P_{20,20} (400 values) vs Q_{20,20,40} (40 values).
    println!("\n(b) P_20,20 (400 min-hashes) vs Q_20,20,40 (40 min-hashes)");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "s", "P_20,20", "Q_20,20,40", "Q_20,20,100"
    );
    let mut rows_b = Vec::new();
    for i in 0..=50 {
        let s = f64::from(i) / 50.0;
        let p = p_filter(s, 20, 20);
        let q40 = q_filter(s, 20, 20, 40);
        let q100 = q_filter(s, 20, 20, 100);
        if i % 5 == 0 {
            println!("{s:>6.2} {p:>12.4} {q40:>12.4} {q100:>12.4}");
        }
        rows_b.push(vec![
            format!("{s:.3}"),
            format!("{p:.6}"),
            format!("{q40:.6}"),
            format!("{q100:.6}"),
        ]);
    }
    write_csv(
        "fig2b_q_filter.csv",
        &["s", "p_20_20", "q_20_20_40", "q_20_20_100"],
        &rows_b,
    );

    // The qualitative claims of the figure, asserted:
    // larger (r, l) ⇒ sharper around the implicit threshold.
    assert!(p_filter(0.3, 20, 20) < p_filter(0.3, 5, 5));
    assert!(p_filter(0.95, 20, 20) > 0.99);
    // Q is a good approximation of P and sharper with larger pools.
    let err40: f64 = (0..=20)
        .map(|i| {
            let s = f64::from(i) / 20.0;
            (q_filter(s, 20, 20, 40) - p_filter(s, 20, 20)).abs()
        })
        .fold(0.0, f64::max);
    let err100: f64 = (0..=20)
        .map(|i| {
            let s = f64::from(i) / 20.0;
            (q_filter(s, 20, 20, 100) - p_filter(s, 20, 20)).abs()
        })
        .fold(0.0, f64::max);
    println!("\nmax |Q − P|: k=40 → {err40:.3}, k=100 → {err100:.3}");
    assert!(err100 < err40, "larger pool must approximate better");
}
