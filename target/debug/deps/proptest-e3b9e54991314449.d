/root/repo/target/debug/deps/proptest-e3b9e54991314449.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-e3b9e54991314449.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs Cargo.toml

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
