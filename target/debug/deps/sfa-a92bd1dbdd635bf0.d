/root/repo/target/debug/deps/sfa-a92bd1dbdd635bf0.d: src/bin/sfa.rs

/root/repo/target/debug/deps/sfa-a92bd1dbdd635bf0: src/bin/sfa.rs

src/bin/sfa.rs:
