//! A priori on its home turf: Quest-style `T10.I4` market-basket data
//! (the workload of Agrawal & Srikant — reference \[2\] of the paper).
//!
//! This is the regime the paper concedes to a priori: high-support
//! patterns exist and matter. The experiment shows (a) a priori mines its
//! frequent itemsets fine, (b) the support-free schemes agree with it on
//! every pair it can see, and (c) they additionally surface similar pairs
//! *below* its support threshold — the paper's core claim, demonstrated on
//! the baseline's own benchmark.

use std::time::Instant;

use sfa_apriori::{apriori_similar_pairs, frequent_itemsets, maximal_itemsets};
use sfa_core::Scheme;
use sfa_datagen::BasketConfig;
use sfa_experiments::{print_table, run_scheme, write_csv, EXPERIMENT_SEED};

fn main() {
    println!("# T10.I4 market-basket benchmark (a priori's home workload)");
    let data = BasketConfig::t10_i4(30_000, EXPERIMENT_SEED).generate();
    let rows = data.matrix.transpose();
    println!(
        "[basket: {} transactions × {} items, {} entries, {} source patterns]",
        rows.n_rows(),
        rows.n_cols(),
        rows.nnz(),
        data.patterns.len()
    );

    // (a) classical mining: frequent itemsets at 0.5% support.
    let min_support = rows.n_rows() / 200;
    let t = Instant::now();
    let (sets, summaries) = frequent_itemsets(&rows, min_support, 4);
    let apriori_time = t.elapsed().as_secs_f64();
    let maximal = maximal_itemsets(&sets);
    println!(
        "\na priori at support {min_support} ({:.2}s): {} frequent itemsets, {} maximal",
        apriori_time,
        sets.len(),
        maximal.len()
    );
    let mut level_rows = Vec::new();
    for s in &summaries {
        level_rows.push(vec![
            s.k.to_string(),
            s.candidates.to_string(),
            s.frequent.to_string(),
        ]);
    }
    print_table(
        "a priori levels",
        &["k", "candidates", "frequent"],
        &level_rows,
    );

    // (b) agreement on the visible pairs.
    let s_star = 0.3;
    let visible = apriori_similar_pairs(&rows, min_support, s_star);
    let result = run_scheme(
        &rows,
        Scheme::Kmh {
            k: 120,
            delta: 0.25,
        },
        s_star,
        EXPERIMENT_SEED,
    );
    let kmh_found: std::collections::HashSet<(u32, u32)> =
        result.similar_pairs().iter().map(|p| (p.i, p.j)).collect();
    let mut agreed = 0;
    let mut worst_miss: f64 = 0.0;
    for p in &visible {
        if kmh_found.contains(&(p.i, p.j)) {
            agreed += 1;
        } else {
            worst_miss = worst_miss.max(p.similarity);
        }
    }
    println!(
        "\nK-MH agrees on {agreed}/{} apriori-visible pairs at S >= {s_star}",
        visible.len()
    );
    // Probabilistic schemes may drop pairs sitting right at the threshold;
    // require near-total agreement and that any miss is borderline.
    assert!(
        agreed * 100 >= visible.len() * 99,
        "schemes must cover apriori's pairs ({agreed}/{})",
        visible.len()
    );
    assert!(
        worst_miss < s_star + 0.05,
        "missed a clearly-above-threshold pair (S = {worst_miss})"
    );

    // (c) the support-free bonus: pairs below the support threshold.
    let below_threshold = result
        .similar_pairs()
        .iter()
        .filter(|p| p.intersection < min_support)
        .count();
    println!(
        "K-MH additionally found {below_threshold} similar pairs with pair-support < {min_support} \
         (invisible to a priori at this threshold)"
    );

    write_csv(
        "basket_benchmark.csv",
        &["metric", "value"],
        &[
            vec!["apriori_seconds".into(), format!("{apriori_time:.4}")],
            vec!["frequent_itemsets".into(), sets.len().to_string()],
            vec!["maximal_itemsets".into(), maximal.len().to_string()],
            vec!["visible_pairs".into(), visible.len().to_string()],
            vec!["agreed_pairs".into(), agreed.to_string()],
            vec!["below_support_pairs".into(), below_threshold.to_string()],
        ],
    );
    println!("\nbasket benchmark checks passed");
}
