//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this in-repo crate
//! provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`/`sample_size`/`bench_function`/`bench_with_input`/
//! `finish`, `Bencher::iter`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical analysis it runs each benchmark a
//! fixed number of warm-up + sample iterations and prints the median
//! per-iteration time. That keeps `cargo bench` working (and the bench
//! sources compiling under tier-1 `cargo test`) without any external
//! dependencies.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { samples: 12 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group: {name}");
        let samples = self.samples;
        BenchmarkGroup {
            _parent: self,
            name,
            samples,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_id();
        let mut times = Vec::with_capacity(self.samples);
        // One warm-up sample, then the timed ones.
        for sample in 0..=self.samples {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            if sample > 0 {
                times.push(bencher.elapsed);
            }
        }
        times.sort_unstable();
        let median = times[times.len() / 2];
        eprintln!("  {}/{label}: median {median:?}", self.name);
        self
    }

    /// Runs one benchmark with an input value, like criterion's
    /// `bench_with_input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints nothing extra; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Passed to benchmark closures; times the measured routine.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` once and records the elapsed wall clock.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }
}

/// A benchmark label, optionally parameterized (`name/param`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut label = name.into();
        let _ = write!(label, "/{parameter}");
        Self { label }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkId {
    /// The final display label.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Declares a benchmark group runner, like `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, like `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
