/root/repo/target/debug/deps/sfa-419deb8ce237f5f0.d: src/bin/sfa.rs Cargo.toml

/root/repo/target/debug/deps/libsfa-419deb8ce237f5f0.rmeta: src/bin/sfa.rs Cargo.toml

src/bin/sfa.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
