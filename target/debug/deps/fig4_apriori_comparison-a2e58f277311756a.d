/root/repo/target/debug/deps/fig4_apriori_comparison-a2e58f277311756a.d: crates/experiments/src/bin/fig4_apriori_comparison.rs

/root/repo/target/debug/deps/fig4_apriori_comparison-a2e58f277311756a: crates/experiments/src/bin/fig4_apriori_comparison.rs

crates/experiments/src/bin/fig4_apriori_comparison.rs:
