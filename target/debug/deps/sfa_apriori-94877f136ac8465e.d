/root/repo/target/debug/deps/sfa_apriori-94877f136ac8465e.d: crates/apriori/src/lib.rs crates/apriori/src/apriori.rs crates/apriori/src/pairs.rs crates/apriori/src/rules.rs

/root/repo/target/debug/deps/libsfa_apriori-94877f136ac8465e.rmeta: crates/apriori/src/lib.rs crates/apriori/src/apriori.rs crates/apriori/src/pairs.rs crates/apriori/src/rules.rs

crates/apriori/src/lib.rs:
crates/apriori/src/apriori.rs:
crates/apriori/src/pairs.rs:
crates/apriori/src/rules.rs:
