//! Collaborative-filtering workload: users in latent taste communities.
//!
//! One of the paper's §1 motivating applications is collaborative filtering
//! — "tracking user behavior and making recommendations to individuals
//! based on similarity of their preferences to those of other users". This
//! generator produces an item × user matrix where users belong to latent
//! communities sharing an item pool; similar columns ⇔ users with similar
//! taste, and the community labels give exact ground truth for evaluating
//! neighbour quality.

use rand::{Rng, SeedableRng};

use sfa_matrix::{MatrixBuilder, SparseMatrix};

/// Configuration for the collaborative-filtering generator.
#[derive(Debug, Clone)]
pub struct CfConfig {
    /// Number of items (rows).
    pub n_items: u32,
    /// Number of users (columns).
    pub n_users: u32,
    /// Number of latent communities.
    pub n_communities: u32,
    /// Each user's rating count is uniform in this range.
    pub ratings_range: (u32, u32),
    /// Probability a rating comes from the user's community pool (the rest
    /// are uniform over all items).
    pub affinity: f64,
    /// Root seed.
    pub seed: u64,
}

impl CfConfig {
    /// A small default: 4 000 items, 500 users, 10 communities.
    #[must_use]
    pub fn small(seed: u64) -> Self {
        Self {
            n_items: 4_000,
            n_users: 500,
            n_communities: 10,
            ratings_range: (20, 60),
            affinity: 0.9,
            seed,
        }
    }
}

/// The generated ratings dataset.
#[derive(Debug, Clone)]
pub struct CfData {
    /// Item rows × user columns, column-major.
    pub matrix: SparseMatrix,
    /// Community of each user column.
    pub community_of: Vec<u32>,
}

impl CfConfig {
    /// Generates the dataset.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configuration (no communities, empty ranges,
    /// affinity outside `[0, 1]`, pools smaller than the rating range).
    #[must_use]
    pub fn generate(&self) -> CfData {
        assert!(self.n_communities > 0, "need at least one community");
        assert!(
            self.n_items >= self.n_communities,
            "items must cover communities"
        );
        assert!((0.0..=1.0).contains(&self.affinity), "bad affinity");
        let (lo, hi) = self.ratings_range;
        assert!(lo > 0 && lo <= hi, "bad ratings range");
        let pool = self.n_items / self.n_communities;
        assert!(pool >= 1, "community pool is empty");

        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut builder = MatrixBuilder::new(self.n_items, self.n_users);
        let mut community_of = Vec::with_capacity(self.n_users as usize);
        for user in 0..self.n_users {
            let community = rng.gen_range(0..self.n_communities);
            community_of.push(community);
            let base = community * pool;
            let n_ratings = rng.gen_range(lo..=hi);
            for _ in 0..n_ratings {
                let item = if rng.gen::<f64>() < self.affinity {
                    base + rng.gen_range(0..pool)
                } else {
                    rng.gen_range(0..self.n_items)
                };
                builder.add_entry(item, user).expect("item id in range");
            }
        }
        CfData {
            matrix: builder.build_csc(),
            community_of,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_config() {
        let cfg = CfConfig::small(1);
        let data = cfg.generate();
        assert_eq!(data.matrix.n_rows(), cfg.n_items);
        assert_eq!(data.matrix.n_cols(), cfg.n_users);
        assert_eq!(data.community_of.len(), cfg.n_users as usize);
    }

    #[test]
    fn same_community_users_are_more_similar() {
        let data = CfConfig::small(2).generate();
        let mut same = Vec::new();
        let mut cross = Vec::new();
        for i in 0..100u32 {
            for j in (i + 1)..100 {
                let s = data.matrix.similarity(i, j);
                if data.community_of[i as usize] == data.community_of[j as usize] {
                    same.push(s);
                } else {
                    cross.push(s);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&same) > 5.0 * mean(&cross),
            "same-community mean {} vs cross {}",
            mean(&same),
            mean(&cross)
        );
    }

    #[test]
    fn rating_counts_respect_range() {
        let cfg = CfConfig::small(3);
        let data = cfg.generate();
        for u in 0..cfg.n_users {
            let c = data.matrix.column_count(u);
            // Duplicates coalesce, so the count can be slightly below lo.
            assert!(c <= cfg.ratings_range.1 as usize, "user {u}: {c}");
            assert!(c >= cfg.ratings_range.0 as usize / 2, "user {u}: {c}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            CfConfig::small(9).generate().matrix,
            CfConfig::small(9).generate().matrix
        );
    }
}
