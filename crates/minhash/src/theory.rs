//! Theorem 1 machinery: how many min-hash values are enough.
//!
//! Theorem 1: with `k ≥ 2 δ⁻² c⁻¹ ln(1/ε)` (where `c ≤ s*` lower-bounds the
//! similarity threshold), for every pair, `Ŝ` concentrates within a
//! `(1 ± δ)` factor with probability `1 − ε`, by a Chernoff bound on the
//! sum of per-row agreement indicators.

/// The Theorem 1 signature size: `⌈2 δ⁻² c⁻¹ ln(1/ε)⌉`.
///
/// # Panics
///
/// Panics unless `0 < delta < 1`, `0 < epsilon < 1`, `0 < c <= 1`.
#[must_use]
pub fn required_k(delta: f64, epsilon: f64, c: f64) -> usize {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
    assert!(c > 0.0 && c <= 1.0, "c must be in (0, 1]");
    (2.0 / (delta * delta * c) * (1.0 / epsilon).ln()).ceil() as usize
}

/// Chernoff upper bound on `Pr[X < (1 − δ)·E[X]]` for a sum of independent
/// 0/1 variables with mean `mu = E[X]`: `exp(−δ²·mu / 2)`.
#[must_use]
pub fn chernoff_lower_tail(delta: f64, mu: f64) -> f64 {
    (-delta * delta * mu / 2.0).exp()
}

/// Chernoff upper bound on `Pr[X > (1 + δ)·E[X]]`: `exp(−δ²·mu / 3)`.
#[must_use]
pub fn chernoff_upper_tail(delta: f64, mu: f64) -> f64 {
    (-delta * delta * mu / 3.0).exp()
}

/// The agreement-count threshold used to call a pair a candidate: a pair
/// with true similarity `s*` has expected agreement `k·s*`; admitting
/// everything above `(1 − δ)·k·s*` keeps false negatives below the
/// Theorem 1 `ε`.
#[must_use]
pub fn agreement_threshold(k: usize, s_star: f64, delta: f64) -> usize {
    let t = ((1.0 - delta) * k as f64 * s_star).ceil();
    (t as usize).max(1)
}

/// The false-negative probability Theorem 1 guarantees for a pair with
/// similarity exactly `s*` when using `k` values and slack `δ`.
#[must_use]
pub fn false_negative_bound(k: usize, s_star: f64, delta: f64) -> f64 {
    chernoff_lower_tail(delta, k as f64 * s_star)
}

/// Standard error of `Ŝ` for a pair with true similarity `s` under `k`
/// independent min-hash values: `√(s(1−s)/k)` (each row agreement is a
/// Bernoulli(s) trial, Proposition 1).
#[must_use]
pub fn s_hat_std_error(s: f64, k: usize) -> f64 {
    assert!((0.0..=1.0).contains(&s), "similarity out of range");
    assert!(k > 0, "k must be positive");
    (s * (1.0 - s) / k as f64).sqrt()
}

/// A two-sided confidence interval for the true similarity given an
/// observed `Ŝ`, by the Wilson score method (well-behaved near 0 and 1,
/// where the naive normal interval breaks down).
///
/// `z` is the standard-normal quantile (1.96 for 95%).
///
/// # Panics
///
/// Panics on out-of-range inputs.
#[must_use]
pub fn wilson_interval(s_hat: f64, k: usize, z: f64) -> (f64, f64) {
    assert!((0.0..=1.0).contains(&s_hat), "estimate out of range");
    assert!(k > 0, "k must be positive");
    assert!(z > 0.0, "z must be positive");
    let n = k as f64;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (s_hat + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (s_hat * (1.0 - s_hat) / n + z2 / (4.0 * n * n)).sqrt();
    ((centre - half).max(0.0), (centre + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_k_matches_formula() {
        // δ = 0.5, ε = e⁻¹, c = 0.5 → 2 / (0.25 · 0.5) · 1 = 16.
        assert_eq!(required_k(0.5, std::f64::consts::E.recip(), 0.5), 16);
    }

    #[test]
    fn required_k_grows_with_tighter_parameters() {
        let base = required_k(0.2, 0.05, 0.5);
        assert!(
            required_k(0.1, 0.05, 0.5) > base,
            "smaller delta needs more"
        );
        assert!(required_k(0.2, 0.01, 0.5) > base, "smaller eps needs more");
        assert!(required_k(0.2, 0.05, 0.25) > base, "smaller c needs more");
    }

    #[test]
    #[should_panic(expected = "delta must be in (0, 1)")]
    fn required_k_rejects_bad_delta() {
        let _ = required_k(1.5, 0.1, 0.5);
    }

    #[test]
    fn chernoff_bounds_shrink_with_mu() {
        assert!(chernoff_lower_tail(0.3, 100.0) < chernoff_lower_tail(0.3, 10.0));
        assert!(chernoff_upper_tail(0.3, 100.0) < chernoff_upper_tail(0.3, 10.0));
    }

    #[test]
    fn chernoff_bounds_are_probabilities() {
        for &(d, mu) in &[(0.1, 1.0), (0.5, 50.0), (0.9, 1000.0)] {
            let lo = chernoff_lower_tail(d, mu);
            let hi = chernoff_upper_tail(d, mu);
            assert!((0.0..=1.0).contains(&lo));
            assert!((0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn theorem1_k_actually_concentrates() {
        // Empirical check of the Theorem 1 guarantee: simulate Ŝ for a pair
        // with s = 0.5 using the required k and verify the failure rate is
        // below ε (with margin for simulation noise).
        let (delta, eps, c) = (0.3, 0.1, 0.5);
        let k = required_k(delta, eps, c);
        let s = 0.5;
        let mut failures = 0;
        let trials = 2000;
        let mut seq = sfa_hash::SeedSequence::new(31);
        for _ in 0..trials {
            let agreements = (0..k)
                .filter(|_| (seq.next_seed() as f64 / u64::MAX as f64) < s)
                .count();
            if (agreements as f64) < (1.0 - delta) * k as f64 * s {
                failures += 1;
            }
        }
        let rate = f64::from(failures) / f64::from(trials);
        assert!(rate < eps, "failure rate {rate} exceeds eps {eps}");
    }

    #[test]
    fn agreement_threshold_basic() {
        assert_eq!(agreement_threshold(100, 0.5, 0.2), 40);
        assert_eq!(agreement_threshold(10, 0.01, 0.5), 1);
    }

    #[test]
    fn false_negative_bound_decreases_in_k() {
        assert!(false_negative_bound(400, 0.5, 0.2) < false_negative_bound(100, 0.5, 0.2));
    }

    #[test]
    fn std_error_shrinks_with_k_and_vanishes_at_extremes() {
        assert!(s_hat_std_error(0.5, 400) < s_hat_std_error(0.5, 100));
        assert_eq!(s_hat_std_error(0.0, 100), 0.0);
        assert_eq!(s_hat_std_error(1.0, 100), 0.0);
        // Known value: √(0.25/100) = 0.05.
        assert!((s_hat_std_error(0.5, 100) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn wilson_interval_contains_estimate_and_shrinks() {
        let (lo, hi) = wilson_interval(0.5, 100, 1.96);
        assert!(lo < 0.5 && 0.5 < hi);
        let (lo2, hi2) = wilson_interval(0.5, 1000, 1.96);
        assert!(hi2 - lo2 < hi - lo, "interval should shrink with k");
    }

    #[test]
    fn wilson_interval_behaves_at_boundaries() {
        // At Ŝ = 0 the lower bound is 0 but the upper stays positive —
        // zero observed agreements never "prove" zero similarity.
        let (lo, hi) = wilson_interval(0.0, 50, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.2);
        let (lo, hi) = wilson_interval(1.0, 50, 1.96);
        assert_eq!(hi, 1.0);
        assert!(lo > 0.8);
    }

    #[test]
    fn wilson_interval_covers_truth_empirically() {
        // Simulate Ŝ for a pair with s = 0.3 many times; the 95% interval
        // should cover the truth in ≳ 90% of trials.
        let s = 0.3;
        let k = 200;
        let mut covered = 0;
        let trials = 500;
        let mut seq = sfa_hash::SeedSequence::new(7);
        for _ in 0..trials {
            let agreements = (0..k)
                .filter(|_| (seq.next_seed() as f64 / u64::MAX as f64) < s)
                .count();
            let s_hat = agreements as f64 / k as f64;
            let (lo, hi) = wilson_interval(s_hat, k, 1.96);
            if lo <= s && s <= hi {
                covered += 1;
            }
        }
        let rate = f64::from(covered) / f64::from(trials);
        assert!(rate > 0.9, "coverage {rate}");
    }
}
