//! Pipeline configuration: scheme selection and parameters.

use sfa_json::{FromJson, Json, JsonError, ToJson};

/// Which signature/candidate scheme the pipeline runs, with its parameters.
///
/// The `delta` slack of the Min-Hashing schemes widens the candidate
/// admission threshold to `(1 − δ)·s*` so that pairs right at the threshold
/// are not lost to estimator variance (Theorem 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scheme {
    /// MH with `k` independent min-hash values per column, Hash-Count
    /// candidate generation.
    Mh {
        /// Signature size.
        k: usize,
        /// Admission slack.
        delta: f64,
    },
    /// MH with Row-Sorting candidate generation (same output as `Mh`,
    /// different phase-2 mechanics — kept separate for the ablation bench).
    MhRowSort {
        /// Signature size.
        k: usize,
        /// Admission slack.
        delta: f64,
    },
    /// K-MH bottom-k sketches with Hash-Count + unbiased re-scoring.
    Kmh {
        /// Sketch size.
        k: usize,
        /// Admission slack.
        delta: f64,
    },
    /// M-LSH banding over `k` min-hash values.
    MLsh {
        /// Signature size (`≥ r·l` for contiguous banding).
        k: usize,
        /// Rows per band.
        r: usize,
        /// Number of bands.
        l: usize,
        /// `true` = sampled bands (`Q_{r,l,k}` mode), `false` = contiguous.
        sampled: bool,
    },
    /// H-LSH over the density ladder (works on the raw rows; no min-hash).
    HLsh {
        /// Pattern width (sampled rows per run).
        r: usize,
        /// Runs per level.
        l: usize,
        /// Density gate parameter (paper: 4).
        t: u32,
        /// Ladder depth cap.
        max_levels: usize,
    },
}

impl Scheme {
    /// A short stable name for tables and CSV output.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        match self {
            Self::Mh { .. } => "MH",
            Self::MhRowSort { .. } => "MH-rowsort",
            Self::Kmh { .. } => "K-MH",
            Self::MLsh { .. } => "M-LSH",
            Self::HLsh { .. } => "H-LSH",
        }
    }
}

impl ToJson for Scheme {
    /// Externally tagged encoding, e.g. `{"Mh": {"k": 400, "delta": 0.2}}`.
    fn to_json(&self) -> Json {
        let (tag, body) = match *self {
            Self::Mh { k, delta } => ("Mh", Json::obj().field("k", k).field("delta", delta)),
            Self::MhRowSort { k, delta } => {
                ("MhRowSort", Json::obj().field("k", k).field("delta", delta))
            }
            Self::Kmh { k, delta } => ("Kmh", Json::obj().field("k", k).field("delta", delta)),
            Self::MLsh { k, r, l, sampled } => (
                "MLsh",
                Json::obj()
                    .field("k", k)
                    .field("r", r)
                    .field("l", l)
                    .field("sampled", sampled),
            ),
            Self::HLsh {
                r,
                l,
                t,
                max_levels,
            } => (
                "HLsh",
                Json::obj()
                    .field("r", r)
                    .field("l", l)
                    .field("t", t)
                    .field("max_levels", max_levels),
            ),
        };
        Json::Obj(vec![(tag.to_owned(), body)])
    }
}

impl FromJson for Scheme {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let fields = match json {
            Json::Obj(fields) if fields.len() == 1 => fields,
            _ => return Err(JsonError::expected("single-variant scheme object")),
        };
        let (tag, body) = &fields[0];
        match tag.as_str() {
            "Mh" => Ok(Self::Mh {
                k: usize::from_json(body.req("k")?)?,
                delta: f64::from_json(body.req("delta")?)?,
            }),
            "MhRowSort" => Ok(Self::MhRowSort {
                k: usize::from_json(body.req("k")?)?,
                delta: f64::from_json(body.req("delta")?)?,
            }),
            "Kmh" => Ok(Self::Kmh {
                k: usize::from_json(body.req("k")?)?,
                delta: f64::from_json(body.req("delta")?)?,
            }),
            "MLsh" => Ok(Self::MLsh {
                k: usize::from_json(body.req("k")?)?,
                r: usize::from_json(body.req("r")?)?,
                l: usize::from_json(body.req("l")?)?,
                sampled: bool::from_json(body.req("sampled")?)?,
            }),
            "HLsh" => Ok(Self::HLsh {
                r: usize::from_json(body.req("r")?)?,
                l: usize::from_json(body.req("l")?)?,
                t: u32::from_json(body.req("t")?)?,
                max_levels: usize::from_json(body.req("max_levels")?)?,
            }),
            other => Err(JsonError::new(format!("unknown scheme `{other}`"))),
        }
    }
}

/// Full pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// The scheme and its parameters.
    pub scheme: Scheme,
    /// The similarity threshold `s*`: verified pairs below it are dropped
    /// from the output (they are still reported as false-positive
    /// candidates in the result's accounting).
    pub s_star: f64,
    /// Root seed; every random choice in the run derives from it.
    pub seed: u64,
}

impl PipelineConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `s_star` is outside `(0, 1]`.
    #[must_use]
    pub fn new(scheme: Scheme, s_star: f64, seed: u64) -> Self {
        assert!(
            s_star > 0.0 && s_star <= 1.0,
            "similarity threshold must be in (0, 1]"
        );
        Self {
            scheme,
            s_star,
            seed,
        }
    }
}

impl ToJson for PipelineConfig {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("scheme", self.scheme)
            .field("s_star", self.s_star)
            .field("seed", self.seed)
    }
}

impl FromJson for PipelineConfig {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            scheme: Scheme::from_json(json.req("scheme")?)?,
            s_star: f64::from_json(json.req("s_star")?)?,
            seed: u64::from_json(json.req("seed")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(Scheme::Mh { k: 1, delta: 0.0 }.name(), "MH");
        assert_eq!(Scheme::Kmh { k: 1, delta: 0.0 }.name(), "K-MH");
        assert_eq!(
            Scheme::MLsh {
                k: 10,
                r: 5,
                l: 2,
                sampled: false
            }
            .name(),
            "M-LSH"
        );
        assert_eq!(
            Scheme::HLsh {
                r: 8,
                l: 4,
                t: 4,
                max_levels: 10
            }
            .name(),
            "H-LSH"
        );
    }

    #[test]
    #[should_panic(expected = "similarity threshold")]
    fn rejects_zero_threshold() {
        let _ = PipelineConfig::new(Scheme::Mh { k: 10, delta: 0.1 }, 0.0, 1);
    }

    #[test]
    fn json_roundtrip_every_scheme() {
        let schemes = [
            Scheme::Mh { k: 400, delta: 0.2 },
            Scheme::MhRowSort { k: 400, delta: 0.2 },
            Scheme::Kmh { k: 100, delta: 0.2 },
            Scheme::MLsh {
                k: 100,
                r: 5,
                l: 20,
                sampled: true,
            },
            Scheme::HLsh {
                r: 8,
                l: 4,
                t: 4,
                max_levels: 10,
            },
        ];
        for scheme in schemes {
            let cfg = PipelineConfig::new(scheme, 0.7, u64::MAX - 1);
            let json = cfg.to_json().to_string_compact();
            let back: PipelineConfig = sfa_json::from_str(&json).unwrap();
            assert_eq!(back, cfg, "{json}");
        }
    }
}
