/root/repo/target/debug/examples/incremental_mining-e33cec5afa723433.d: examples/incremental_mining.rs

/root/repo/target/debug/examples/libincremental_mining-e33cec5afa723433.rmeta: examples/incremental_mining.rs

examples/incremental_mining.rs:
