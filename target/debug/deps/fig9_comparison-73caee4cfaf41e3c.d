/root/repo/target/debug/deps/fig9_comparison-73caee4cfaf41e3c.d: crates/experiments/src/bin/fig9_comparison.rs

/root/repo/target/debug/deps/libfig9_comparison-73caee4cfaf41e3c.rmeta: crates/experiments/src/bin/fig9_comparison.rs

crates/experiments/src/bin/fig9_comparison.rs:
