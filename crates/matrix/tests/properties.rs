//! Property-based tests for the matrix substrate.

use proptest::prelude::*;

use sfa_matrix::ops::{or_fold_rows, prune_support, random_row_pairing, select_columns};
use sfa_matrix::stats::{average_similarity, exact_similar_pairs, similarity_histogram};
use sfa_matrix::{ColumnSet, MatrixBuilder, RowMajorMatrix};

fn row_set(bound: u32, max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0..bound, 0..=max_len)
        .prop_map(|s| s.into_iter().collect::<Vec<u32>>())
}

fn small_matrix() -> impl Strategy<Value = RowMajorMatrix> {
    (1u32..12, 2u32..9).prop_flat_map(|(n_rows, n_cols)| {
        prop::collection::vec(row_set(n_cols, n_cols as usize), n_rows as usize)
            .prop_map(move |rows| RowMajorMatrix::from_rows(n_cols, rows).unwrap())
    })
}

proptest! {
    #[test]
    fn builder_order_and_duplicates_do_not_matter(
        entries in prop::collection::vec((0u32..10, 0u32..10), 0..60),
    ) {
        let mut forward = MatrixBuilder::new(10, 10);
        for &(r, c) in &entries {
            forward.add_entry(r, c).unwrap();
        }
        let mut shuffled = MatrixBuilder::new(10, 10);
        for &(r, c) in entries.iter().rev() {
            shuffled.add_entry(r, c).unwrap();
            shuffled.add_entry(r, c).unwrap(); // duplicate on purpose
        }
        prop_assert_eq!(forward.clone().build_csc(), shuffled.clone().build_csc());
        prop_assert_eq!(forward.build_csr(), shuffled.build_csr());
    }

    #[test]
    fn csc_and_csr_views_agree(m in small_matrix()) {
        let csc = m.transpose();
        prop_assert_eq!(csc.nnz(), m.nnz());
        // Entry-by-entry agreement.
        for (i, cols) in m.rows() {
            for &c in cols {
                prop_assert!(csc.column(c).binary_search(&i).is_ok());
            }
        }
        let total: usize = (0..csc.n_cols()).map(|j| csc.column_count(j)).sum();
        prop_assert_eq!(total, m.nnz());
    }

    #[test]
    fn column_set_algebra_inclusion_exclusion(a in row_set(30, 15), b in row_set(30, 15)) {
        let ca = ColumnSet::from_sorted(a).unwrap();
        let cb = ColumnSet::from_sorted(b).unwrap();
        prop_assert_eq!(
            ca.union(&cb).cardinality() + ca.intersection(&cb).cardinality(),
            ca.cardinality() + cb.cardinality()
        );
        prop_assert_eq!(ca.union(&cb).cardinality(), ca.union_size(&cb));
        prop_assert_eq!(ca.intersection(&cb).cardinality(), ca.intersection_size(&cb));
        // Hamming = union − intersection.
        prop_assert_eq!(
            ca.hamming_distance(&cb),
            ca.union_size(&cb) - ca.intersection_size(&cb)
        );
    }

    #[test]
    fn prune_support_keeps_exactly_qualifying_columns(m in small_matrix(), min in 0usize..5) {
        let csc = m.transpose();
        let (pruned, kept) = prune_support(&csc, min);
        prop_assert_eq!(pruned.n_cols() as usize, kept.len());
        for (new_j, &old_j) in kept.iter().enumerate() {
            prop_assert_eq!(pruned.column(new_j as u32), csc.column(old_j));
            prop_assert!(csc.column_count(old_j) >= min);
        }
        for j in 0..csc.n_cols() {
            let is_kept = kept.contains(&j);
            prop_assert_eq!(is_kept, csc.column_count(j) >= min);
        }
    }

    #[test]
    fn select_columns_preserves_content(m in small_matrix()) {
        let csc = m.transpose();
        let ids: Vec<u32> = (0..csc.n_cols()).step_by(2).collect();
        let sub = select_columns(&csc, &ids).unwrap();
        for (new_j, &old_j) in ids.iter().enumerate() {
            prop_assert_eq!(sub.column(new_j as u32), csc.column(old_j));
        }
    }

    #[test]
    fn or_fold_row_content_is_exact_union(m in small_matrix(), seed in any::<u64>()) {
        prop_assume!(m.n_rows() >= 2);
        let pairing = random_row_pairing(m.n_rows(), seed);
        let folded = or_fold_rows(&m, &pairing).unwrap();
        for (t, chunk) in pairing.chunks(2).enumerate() {
            if let [a, b] = chunk {
                let expected = ColumnSet::from_slice(m.row(*a))
                    .union(&ColumnSet::from_slice(m.row(*b)));
                prop_assert_eq!(folded.row(t as u32), expected.rows());
            } else if let [a] = chunk {
                prop_assert_eq!(folded.row(t as u32), m.row(*a));
            }
        }
    }

    #[test]
    fn exact_pairs_and_histogram_are_consistent(m in small_matrix()) {
        let csc = m.transpose();
        let pairs = exact_similar_pairs(&csc, 1e-9);
        let hist = similarity_histogram(&csc, 10);
        // Every co-occurring pair appears in both views.
        prop_assert_eq!(pairs.len() as u64, hist.iter().sum::<u64>());
        for p in &pairs {
            prop_assert!((p.similarity - csc.similarity(p.i, p.j)).abs() < 1e-12);
            prop_assert!(p.similarity > 0.0);
        }
        // Sorted by descending similarity.
        prop_assert!(pairs.windows(2).all(|w| w[0].similarity >= w[1].similarity));
    }

    #[test]
    fn average_similarity_is_bounded(m in small_matrix()) {
        let csc = m.transpose();
        let s_bar = average_similarity(&csc);
        prop_assert!((0.0..=1.0).contains(&s_bar));
    }
}
