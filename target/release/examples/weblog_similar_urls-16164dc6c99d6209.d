/root/repo/target/release/examples/weblog_similar_urls-16164dc6c99d6209.d: examples/weblog_similar_urls.rs

/root/repo/target/release/examples/weblog_similar_urls-16164dc6c99d6209: examples/weblog_similar_urls.rs

examples/weblog_similar_urls.rs:
