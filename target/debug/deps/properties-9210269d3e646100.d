/root/repo/target/debug/deps/properties-9210269d3e646100.d: crates/minhash/tests/properties.rs

/root/repo/target/debug/deps/libproperties-9210269d3e646100.rmeta: crates/minhash/tests/properties.rs

crates/minhash/tests/properties.rs:
