//! Cluster extraction from similar-pair graphs.
//!
//! The paper (§2) observes that beyond pairs, "we also get clusters of
//! words, i.e., groups of words for which most of the pairs in the group
//! have high similarity", like the chess-event cluster. This module
//! extracts them from a mined pair list:
//!
//! * [`connected_components`] — single-link clusters (any similarity edge
//!   joins), via union–find;
//! * [`dense_clusters`] — components filtered to those where at least a
//!   `min_edge_fraction` of member pairs are actually edges, matching the
//!   paper's "most of the pairs in the group" phrasing.

use sfa_hash::bucket::FastHashMap;

/// Union–find over column ids.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: u32) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

/// Groups columns into single-link clusters from `(i, j)` similarity edges.
///
/// Only columns appearing in at least one edge are returned; clusters are
/// sorted by decreasing size, members ascending. `n_cols` bounds the id
/// space.
///
/// # Panics
///
/// Panics if an edge id is `>= n_cols`.
#[must_use]
pub fn connected_components(n_cols: u32, edges: &[(u32, u32)]) -> Vec<Vec<u32>> {
    let mut uf = UnionFind::new(n_cols);
    for &(a, b) in edges {
        assert!(a < n_cols && b < n_cols, "edge id out of range");
        uf.union(a, b);
    }
    let mut groups: FastHashMap<u32, Vec<u32>> = FastHashMap::default();
    let mut touched: Vec<u32> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
    touched.sort_unstable();
    touched.dedup();
    for col in touched {
        groups.entry(uf.find(col)).or_default().push(col);
    }
    let mut out: Vec<Vec<u32>> = groups.into_values().collect();
    for g in &mut out {
        g.sort_unstable();
    }
    out.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
    out
}

/// Single-link components filtered to *dense* clusters: a component of
/// `s` members qualifies when its edge count is at least
/// `min_edge_fraction · s(s−1)/2` and it has at least `min_size` members.
///
/// With `min_edge_fraction = 1.0` this returns only similarity cliques.
///
/// # Panics
///
/// Panics if `min_edge_fraction` is outside `[0, 1]` or `min_size < 2`.
#[must_use]
pub fn dense_clusters(
    n_cols: u32,
    edges: &[(u32, u32)],
    min_size: usize,
    min_edge_fraction: f64,
) -> Vec<Vec<u32>> {
    assert!(
        (0.0..=1.0).contains(&min_edge_fraction),
        "fraction out of range"
    );
    assert!(min_size >= 2, "a cluster needs at least two members");
    let components = connected_components(n_cols, edges);
    // Count edges per component root via membership lookup.
    let mut member_of: FastHashMap<u32, usize> = FastHashMap::default();
    for (idx, comp) in components.iter().enumerate() {
        for &c in comp {
            member_of.insert(c, idx);
        }
    }
    let mut edge_counts = vec![0usize; components.len()];
    for &(a, _) in edges {
        if let Some(&idx) = member_of.get(&a) {
            edge_counts[idx] += 1;
        }
    }
    components
        .into_iter()
        .enumerate()
        .filter(|(idx, comp)| {
            let s = comp.len();
            if s < min_size {
                return false;
            }
            let possible = s * (s - 1) / 2;
            edge_counts[*idx] as f64 >= min_edge_fraction * possible as f64
        })
        .map(|(_, comp)| comp)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_group_transitively() {
        // 0-1, 1-2 chain plus isolated edge 5-6.
        let comps = connected_components(10, &[(0, 1), (1, 2), (5, 6)]);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![5, 6]);
    }

    #[test]
    fn untouched_columns_are_absent() {
        let comps = connected_components(100, &[(3, 4)]);
        assert_eq!(comps, vec![vec![3, 4]]);
    }

    #[test]
    fn empty_edges_give_no_clusters() {
        assert!(connected_components(5, &[]).is_empty());
    }

    #[test]
    fn components_sorted_by_size() {
        let comps = connected_components(10, &[(0, 1), (2, 3), (3, 4), (4, 2)]);
        assert_eq!(comps[0], vec![2, 3, 4]);
        assert_eq!(comps[1], vec![0, 1]);
    }

    #[test]
    fn dense_clusters_require_edge_fraction() {
        // A 4-clique (6 edges) and a 4-chain (3 edges).
        let clique = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let chain = [(5, 6), (6, 7), (7, 8)];
        let edges: Vec<(u32, u32)> = clique.iter().chain(chain.iter()).copied().collect();
        let dense = dense_clusters(10, &edges, 3, 0.9);
        assert_eq!(dense.len(), 1);
        assert_eq!(dense[0], vec![0, 1, 2, 3]);
        // Relaxing the fraction admits the chain too.
        let loose = dense_clusters(10, &edges, 3, 0.4);
        assert_eq!(loose.len(), 2);
    }

    #[test]
    fn min_size_filters_pairs() {
        let dense = dense_clusters(10, &[(0, 1)], 3, 0.0);
        assert!(dense.is_empty());
        let pairs_ok = dense_clusters(10, &[(0, 1)], 2, 1.0);
        assert_eq!(pairs_ok, vec![vec![0, 1]]);
    }

    #[test]
    #[should_panic(expected = "edge id out of range")]
    fn out_of_range_edge_panics() {
        let _ = connected_components(3, &[(0, 5)]);
    }

    #[test]
    fn long_chain_compresses_paths() {
        let edges: Vec<(u32, u32)> = (0..99).map(|i| (i, i + 1)).collect();
        let comps = connected_components(100, &edges);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 100);
    }
}
