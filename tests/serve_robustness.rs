//! Adversarial harness for the compiled `sfa serve` binary.
//!
//! Each test spawns a real server process on a loopback port, drives it
//! with the seeded load generator (well-formed traffic mixed with
//! slow-loris stalls, mid-request disconnects, garbage floods, and
//! oversized lines), and pins the robustness contract:
//!
//! * the server never panics and its memory stays bounded under abuse;
//! * every accepted request is answered, shed, or timed out — the
//!   `serving` metrics block balances exactly;
//! * overload sheds explicitly (`OVERLOADED`), not by silent drops;
//! * SIGTERM (or `--deadline-secs`) drains within the budget and exits 3;
//!   a second signal forces immediate exit 130;
//! * every acknowledged `INGEST` row survives a drain-then-restart,
//!   verified by re-querying `SIM` against recomputed ground truth.

#![cfg(unix)]

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use sfa::core::MetricsDocument;
use sfa::json::{FromJson, Json};
use sfa::matrix::{io, RowMajorMatrix};
use sfa_experiments::chaos::send_sigterm;
use sfa_experiments::loadgen::{run_load, LoadConfig};

const N_COLS: u32 = 6;

fn sfa_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_sfa"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("sfa_serve_robustness").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The base fixture: 12 rows over 6 columns with a planted similar pair
/// (columns 0 and 1 identical) and varied tail columns.
fn base_rows() -> Vec<Vec<u32>> {
    (0..12u32)
        .map(|r| {
            let mut cols = vec![0, 1];
            if r % 2 == 0 {
                cols.push(2);
            }
            if r % 3 == 0 {
                cols.push(3 + r % 3);
            }
            cols.sort_unstable();
            cols.dedup();
            cols
        })
        .collect()
}

fn write_fixture(dir: &Path) -> PathBuf {
    let path = dir.join("table.sfab");
    let matrix = RowMajorMatrix::from_rows(N_COLS, base_rows()).unwrap();
    io::write_binary(&matrix, &path).unwrap();
    path
}

/// A spawned `sfa serve` child with its bound address already read off
/// stdout (port 0 support: the OS picks, the server prints).
struct ServeProc {
    child: Child,
    addr: String,
}

fn spawn_serve(fixture: &Path, state: &Path, metrics: &Path, extra: &[&str]) -> ServeProc {
    spawn_serve_env(fixture, state, metrics, extra, &[])
}

fn spawn_serve_env(
    fixture: &Path,
    state: &Path,
    metrics: &Path,
    extra: &[&str],
    env: &[(&str, &str)],
) -> ServeProc {
    let mut cmd = Command::new(sfa_bin());
    cmd.args(["serve", "--addr", "127.0.0.1:0", "--threshold", "0.4"])
        .arg("--input")
        .arg(fixture)
        .arg("--state-dir")
        .arg(state)
        .arg("--metrics-json")
        .arg(metrics)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    for (k, v) in env {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().expect("spawn sfa serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read bound address");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line {line:?}"))
        .to_owned();
    ServeProc { child, addr }
}

fn read_metrics(path: &Path) -> MetricsDocument {
    let text = std::fs::read_to_string(path).expect("metrics file written");
    MetricsDocument::from_json(&Json::parse(&text).expect("valid json")).expect("schema v5 parses")
}

/// Resident set size of a live process in kilobytes (linux only; `None`
/// elsewhere, which skips the bound check).
fn rss_kb(pid: u32) -> Option<u64> {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// One direct protocol client with a read timeout.
struct Probe {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Probe {
    fn connect(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let writer = stream.try_clone().unwrap();
        Self {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn roundtrip(&mut self, req: &str) -> String {
        self.writer
            .write_all(format!("{req}\n").as_bytes())
            .expect("send");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("reply");
        line.trim_end().to_owned()
    }
}

/// Column occurrence counts over the base fixture plus a set of extra
/// (acknowledged) rows — the ground truth `SIM c c` must reproduce.
fn expected_counts(acked: &[Vec<u32>]) -> HashMap<u32, u64> {
    let mut counts = HashMap::new();
    for row in base_rows().iter().chain(acked) {
        for &c in row {
            *counts.entry(c).or_insert(0) += 1;
        }
    }
    counts
}

#[test]
fn adversarial_load_is_survived_and_acked_ingests_outlive_restart() {
    let work = tmp_dir("adversarial");
    let fixture = write_fixture(&work);
    let state = work.join("state");
    let metrics_path = work.join("metrics.json");
    let mut serve = spawn_serve(
        &fixture,
        &state,
        &metrics_path,
        &[
            "--threads",
            "2",
            "--queue-depth",
            "16",
            "--request-timeout-ms",
            "300",
            "--drain-secs",
            "3",
        ],
    );

    // Round 1: the full adversarial mix, run to completion. Every INGEST
    // the server acknowledges becomes a durability obligation.
    let cfg = LoadConfig {
        clients: 24,
        requests_per_client: 16,
        ingest_every: 5,
        ..LoadConfig::new(&serve.addr, 20000214, N_COLS)
    };
    let report = run_load(&cfg);
    assert_eq!(report.violations, 0, "protocol violations: {report:?}");
    assert!(
        report.ok > 0,
        "no well-formed request succeeded: {report:?}"
    );
    let mut acked: Vec<(u64, Vec<u32>)> = report.acked_ingests.clone();

    // Controlled ingests through a direct client, acked synchronously.
    let mut probe = Probe::connect(&serve.addr);
    for cols in [vec![0, 2], vec![2, 5], vec![4]] {
        let words: Vec<String> = cols.iter().map(ToString::to_string).collect();
        let reply = probe.roundtrip(&format!("INGEST {}", words.join(" ")));
        let row_id: u64 = reply
            .strip_prefix("OK ")
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("ingest not acked: {reply:?}"));
        acked.push((row_id, cols));
    }

    // Bounded memory under abuse: a 12-row index served through a few
    // KB of buffers must stay far under 256 MiB resident.
    if let Some(kb) = rss_kb(serve.child.id()) {
        assert!(kb < 256 * 1024, "server ballooned to {kb} KiB under load");
    }

    // Round 2: ingest-free query load still in flight when SIGTERM lands.
    let addr = serve.addr.clone();
    let drain_load = std::thread::spawn(move || {
        run_load(&LoadConfig {
            clients: 8,
            requests_per_client: 200,
            ingest_every: 0,
            adversarial: false,
            ..LoadConfig::new(&addr, 7, N_COLS)
        })
    });
    std::thread::sleep(Duration::from_millis(100));
    let drained_at = Instant::now();
    send_sigterm(&mut serve.child);
    let status = serve.child.wait().unwrap();
    assert_eq!(status.code(), Some(3), "graceful drain exits 3");
    assert!(
        drained_at.elapsed() < Duration::from_secs(8),
        "drain blew the budget: {:?}",
        drained_at.elapsed()
    );
    let round2 = drain_load.join().unwrap();
    assert_eq!(round2.violations, 0, "{round2:?}");

    // The serving metrics block must balance exactly.
    let doc = read_metrics(&metrics_path);
    let serving = doc.metrics.serving.expect("serve writes a serving block");
    assert!(serving.balances(), "dispositions must balance: {serving:?}");
    assert!(serving.answered > 0);
    assert_eq!(
        serving.ingested_rows,
        acked.len() as u64,
        "every acked ingest and nothing else: {serving:?}"
    );

    // Restart from the same state dir: every acknowledged row is served.
    let acked_rows: Vec<Vec<u32>> = acked.iter().map(|(_, cols)| cols.clone()).collect();
    let mut serve2 = spawn_serve(&fixture, &state, &work.join("metrics2.json"), &[]);
    let mut probe = Probe::connect(&serve2.addr);
    let health = probe.roundtrip("HEALTH");
    let rows_word = health
        .split(' ')
        .find_map(|w| w.strip_prefix("rows="))
        .expect("health reports rows");
    assert_eq!(
        rows_word.parse::<u64>().unwrap(),
        12 + acked_rows.len() as u64,
        "restart must replay exactly the acked rows: {health}"
    );
    for (col, want) in expected_counts(&acked_rows) {
        let reply = probe.roundtrip(&format!("SIM {col} {col}"));
        let expect = if want == 0 {
            "OK 0.000000 0 0".to_owned()
        } else {
            format!("OK 1.000000 {want} {want}")
        };
        assert_eq!(reply, expect, "column {col} count after restart");
    }
    send_sigterm(&mut serve2.child);
    assert_eq!(serve2.child.wait().unwrap().code(), Some(3));
    std::fs::remove_dir_all(&work).ok();
}

#[test]
fn overload_sheds_explicitly_under_burst() {
    let work = tmp_dir("overload");
    let fixture = write_fixture(&work);
    let metrics_path = work.join("metrics.json");
    // One worker and a one-deep queue: a slow-loris pins the worker for
    // its whole request timeout, so a burst must overflow the gate.
    let mut serve = spawn_serve(
        &fixture,
        &work.join("state"),
        &metrics_path,
        &[
            "--threads",
            "1",
            "--queue-depth",
            "1",
            "--request-timeout-ms",
            "500",
            "--drain-secs",
            "2",
        ],
    );

    let mut loris = TcpStream::connect(&serve.addr).expect("connect");
    loris.write_all(b"TOPK 0").expect("partial request");
    std::thread::sleep(Duration::from_millis(50));
    // Read-only burst: writing to an already-shed socket can RST away
    // the buffered OVERLOADED reply, so these clients only read.
    let mut shed_seen = 0u32;
    let mut burst = Vec::new();
    for _ in 0..8 {
        let c = TcpStream::connect(&serve.addr).expect("connect");
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        burst.push(BufReader::new(c));
    }
    for c in &mut burst {
        let mut line = String::new();
        let _ = c.read_line(&mut line);
        if line.trim_end() == "OVERLOADED" {
            shed_seen += 1;
        }
    }
    assert!(
        shed_seen >= 1,
        "an 8-connection burst against a 1-deep queue must shed"
    );
    drop(loris);

    send_sigterm(&mut serve.child);
    assert_eq!(serve.child.wait().unwrap().code(), Some(3));
    let doc = read_metrics(&metrics_path);
    let serving = doc.metrics.serving.expect("serving block");
    assert!(serving.balances(), "{serving:?}");
    assert!(
        serving.shed >= u64::from(shed_seen),
        "server must account every shed it sent: {serving:?}"
    );
    std::fs::remove_dir_all(&work).ok();
}

#[test]
fn second_sigterm_forces_immediate_exit_130() {
    let work = tmp_dir("forced");
    let fixture = write_fixture(&work);
    // The drain-hold hook keeps the process alive after the drain, so
    // the second signal has a deterministic window to land in.
    let mut serve = spawn_serve_env(
        &fixture,
        &work.join("state"),
        &work.join("metrics.json"),
        &["--drain-secs", "1"],
        &[("SFA_DRAIN_HOLD_MS", "10000")],
    );
    send_sigterm(&mut serve.child);
    std::thread::sleep(Duration::from_millis(400));
    let escalated_at = Instant::now();
    send_sigterm(&mut serve.child);
    let status = serve.child.wait().unwrap();
    assert_eq!(
        status.code(),
        Some(130),
        "second signal must force exit 130 without waiting out the hold"
    );
    assert!(
        escalated_at.elapsed() < Duration::from_secs(5),
        "forced exit must not wait for the drain hold"
    );
    std::fs::remove_dir_all(&work).ok();
}

#[test]
fn deadline_drains_without_a_signal_and_exits_3() {
    let work = tmp_dir("deadline");
    let fixture = write_fixture(&work);
    let metrics_path = work.join("metrics.json");
    let mut serve = spawn_serve(
        &fixture,
        &work.join("state"),
        &metrics_path,
        &["--deadline-secs", "1", "--drain-secs", "2"],
    );
    let mut probe = Probe::connect(&serve.addr);
    assert!(probe.roundtrip("HEALTH").starts_with("OK "));
    let status = serve.child.wait().unwrap();
    assert_eq!(status.code(), Some(3), "deadline drain exits 3");
    let doc = read_metrics(&metrics_path);
    let serving = doc.metrics.serving.expect("serving block");
    assert!(serving.balances(), "{serving:?}");
    assert_eq!(serving.answered, 1, "{serving:?}");
    std::fs::remove_dir_all(&work).ok();
}
