/root/repo/target/debug/deps/fig8_mlsh-a93b61bb90f3b09d.d: crates/experiments/src/bin/fig8_mlsh.rs

/root/repo/target/debug/deps/libfig8_mlsh-a93b61bb90f3b09d.rmeta: crates/experiments/src/bin/fig8_mlsh.rs

crates/experiments/src/bin/fig8_mlsh.rs:
