//! Seeded adversarial load generator for `sfa serve`.
//!
//! Drives a live server over its line protocol with a reproducible mix of
//! client behaviors — well-formed query traffic, slow-loris stalls,
//! mid-request disconnects, garbage floods, and oversized lines — and
//! reports what came back. Every choice derives from
//! [`sfa_hash::hash64_with_seed`], so a failing schedule replays exactly.
//!
//! The generator is deliberately server-agnostic: it asserts only the
//! *client-visible* contract (every reply line starts with `OK`, `ERR`,
//! or `OVERLOADED`; a reply either arrives whole or the connection
//! closes). Server-side invariants — the disposition balance, bounded
//! memory, durability of acknowledged ingests — are asserted by the
//! harness in `tests/serve_robustness.rs` from the metrics the server
//! emits.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sfa_hash::hash64_with_seed;

/// What one generator run should do.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:4617`.
    pub addr: String,
    /// Root seed; every client decision derives from it.
    pub seed: u64,
    /// Concurrent clients.
    pub clients: usize,
    /// Requests each well-formed client attempts.
    pub requests_per_client: usize,
    /// Column universe of the served table (query targets stay in range).
    pub n_cols: u32,
    /// Mix in adversarial clients (slow-loris, disconnects, garbage,
    /// oversized lines). When false every client is well-formed — the
    /// configuration the latency benchmark uses.
    pub adversarial: bool,
    /// Every `ingest_every`-th well-formed request is an `INGEST`
    /// (0 = never ingest).
    pub ingest_every: usize,
}

impl LoadConfig {
    /// A small default against `addr`: 8 clients × 32 requests.
    #[must_use]
    pub fn new(addr: &str, seed: u64, n_cols: u32) -> Self {
        Self {
            addr: addr.to_owned(),
            seed,
            clients: 8,
            requests_per_client: 32,
            n_cols,
            adversarial: true,
            ingest_every: 7,
        }
    }
}

/// What a run observed, merged across all clients.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Complete well-formed requests written to a socket.
    pub sent: u64,
    /// `OK` replies received.
    pub ok: u64,
    /// `ERR` replies received.
    pub err: u64,
    /// `OVERLOADED` replies received (explicit shed).
    pub overloaded: u64,
    /// Connections that closed (EOF or client-side timeout) before a
    /// reply — the server shed them quietly or timed them out.
    pub closed: u64,
    /// Reply lines violating the protocol (first token not
    /// `OK`/`ERR`/`OVERLOADED`, or a truncated multi-line body).
    pub violations: u64,
    /// Rows the server acknowledged via `INGEST` → `OK <row_id>`,
    /// in `(row_id, columns)` form — the durability obligation set.
    pub acked_ingests: Vec<(u64, Vec<u32>)>,
    /// Latency of each `OK`/`ERR` reply, in microseconds.
    pub latencies_micros: Vec<u64>,
    /// Wall-clock seconds of the whole run.
    pub elapsed_secs: f64,
}

impl LoadReport {
    fn merge(&mut self, other: LoadReport) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.err += other.err;
        self.overloaded += other.overloaded;
        self.closed += other.closed;
        self.violations += other.violations;
        self.acked_ingests.extend(other.acked_ingests);
        self.latencies_micros.extend(other.latencies_micros);
    }

    /// The `p`-th latency percentile in microseconds (0 when idle).
    #[must_use]
    pub fn percentile_micros(&self, p: f64) -> u64 {
        if self.latencies_micros.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_micros.clone();
        sorted.sort_unstable();
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Replies per second over the run.
    #[must_use]
    pub fn qps(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            #[allow(clippy::cast_precision_loss)]
            {
                (self.ok + self.err) as f64 / self.elapsed_secs
            }
        } else {
            0.0
        }
    }
}

/// The behavior one client plays out, drawn from the seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientKind {
    /// Sends valid requests and reads full replies.
    WellFormed,
    /// Writes half a request, then goes silent holding the socket.
    SlowLoris,
    /// Disconnects mid-request without reading the reply.
    Disconnect,
    /// Floods seeded garbage bytes (NULs, high bytes, empty lines).
    Garbage,
    /// Writes one line far past the server's line limit.
    Oversized,
}

fn kind_for(client: usize, cfg: &LoadConfig) -> ClientKind {
    if !cfg.adversarial {
        return ClientKind::WellFormed;
    }
    match hash64_with_seed(client as u64, cfg.seed) % 10 {
        0..=5 => ClientKind::WellFormed,
        6 => ClientKind::SlowLoris,
        7 => ClientKind::Disconnect,
        8 => ClientKind::Garbage,
        _ => ClientKind::Oversized,
    }
}

/// Generous client-side read budget: anything slower counts as `closed`
/// (the server's own timeouts are far shorter).
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(5);

fn connect(addr: &str) -> Option<TcpStream> {
    let stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT)).ok()?;
    stream.set_write_timeout(Some(CLIENT_READ_TIMEOUT)).ok()?;
    stream.set_nodelay(true).ok()?;
    Some(stream)
}

/// One well-formed request, drawn from the seed. Returns the request line
/// and, for `INGEST`, the columns it carries.
fn draw_request(roll: u64, cfg: &LoadConfig, req_idx: usize) -> (String, Option<Vec<u32>>) {
    let cols = u64::from(cfg.n_cols.max(1));
    if cfg.ingest_every > 0 && req_idx % cfg.ingest_every == cfg.ingest_every - 1 {
        // A sorted, strictly-ascending column set of 1–3 columns.
        let a = (roll % cols) as u32;
        let b = (roll / 7 % cols) as u32;
        let mut set = vec![a, b, (roll / 49 % cols) as u32];
        set.sort_unstable();
        set.dedup();
        let words: Vec<String> = set.iter().map(ToString::to_string).collect();
        return (format!("INGEST {}", words.join(" ")), Some(set));
    }
    let line = match roll % 4 {
        0 => format!("TOPK {} {}", roll / 5 % cols, 1 + roll % 8),
        1 => format!("SIM {} {}", roll / 3 % cols, roll / 11 % cols),
        2 => format!("PAIRS 0.{}", 1 + roll % 9),
        _ => "HEALTH".to_owned(),
    };
    (line, None)
}

/// Reads one reply header line; `None` when the connection closed first.
/// Only `TOPK`/`PAIRS` replies carry a body — the caller knows which verb
/// it sent and drains accordingly.
fn read_reply(reader: &mut BufReader<TcpStream>) -> Option<String> {
    let mut header = String::new();
    match reader.read_line(&mut header) {
        Ok(0) | Err(_) => return None,
        Ok(_) => {}
    }
    Some(header.trim_end().to_owned())
}

fn drain_body(reader: &mut BufReader<TcpStream>, n: usize) -> bool {
    let mut line = String::new();
    for _ in 0..n {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return false,
            Ok(_) => {}
        }
    }
    true
}

#[allow(clippy::too_many_lines)]
fn run_well_formed(cfg: &LoadConfig, client: usize) -> LoadReport {
    let mut report = LoadReport::default();
    let Some(stream) = connect(&cfg.addr) else {
        report.closed += 1;
        return report;
    };
    let mut writer = stream.try_clone().ok();
    let mut reader = BufReader::new(stream);
    for req_idx in 0..cfg.requests_per_client {
        let roll = hash64_with_seed((client as u64) << 20 | req_idx as u64, cfg.seed ^ 0xA5);
        let (line, ingest_cols) = draw_request(roll, cfg, req_idx);
        let Some(w) = writer.as_mut() else { break };
        if w.write_all(format!("{line}\n").as_bytes()).is_err() {
            report.closed += 1;
            break;
        }
        report.sent += 1;
        let started = Instant::now();
        let Some(header) = read_reply(&mut reader) else {
            // EOF or timeout before a reply: shed quietly or timed out.
            report.closed += 1;
            break;
        };
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let words: Vec<&str> = header.split(' ').collect();
        match words.first().copied() {
            Some("OK") => {
                report.ok += 1;
                report.latencies_micros.push(micros);
                let verb_has_body = line.starts_with("TOPK") || line.starts_with("PAIRS");
                if verb_has_body {
                    let n: usize = words.get(1).and_then(|w| w.parse().ok()).unwrap_or(0);
                    if !drain_body(&mut reader, n) {
                        report.violations += 1;
                        break;
                    }
                }
                if let Some(cols) = ingest_cols {
                    if let Some(row_id) = words.get(1).and_then(|w| w.parse().ok()) {
                        report.acked_ingests.push((row_id, cols));
                    } else {
                        report.violations += 1;
                    }
                }
            }
            Some("ERR") => {
                report.err += 1;
                report.latencies_micros.push(micros);
            }
            Some("OVERLOADED") => {
                report.overloaded += 1;
                // The server closes after shedding; reconnect costs are
                // the client's problem, so this client just stops.
                break;
            }
            _ => {
                report.violations += 1;
                break;
            }
        }
    }
    report
}

fn run_slow_loris(cfg: &LoadConfig, client: usize) -> LoadReport {
    let mut report = LoadReport::default();
    let Some(mut stream) = connect(&cfg.addr) else {
        report.closed += 1;
        return report;
    };
    // Half a request, one byte at a time, never a newline.
    for (i, b) in b"TOPK 0".iter().enumerate() {
        if stream.write_all(&[*b]).is_err() {
            break;
        }
        let pause = 20 + hash64_with_seed((client as u64) * 31 + i as u64, cfg.seed) % 40;
        std::thread::sleep(Duration::from_millis(pause));
    }
    // Hold the socket open a while longer, then vanish.
    std::thread::sleep(Duration::from_millis(150));
    report.closed += 1;
    report
}

fn run_disconnect(cfg: &LoadConfig, client: usize) -> LoadReport {
    let mut report = LoadReport::default();
    // A few complete requests (never reading replies), then a torn one.
    let Some(mut stream) = connect(&cfg.addr) else {
        report.closed += 1;
        return report;
    };
    let n = 1 + hash64_with_seed(client as u64, cfg.seed ^ 0x77) % 3;
    for i in 0..n {
        if stream
            .write_all(format!("HEALTH\n{}", if i == n - 1 { "SIM 0" } else { "" }).as_bytes())
            .is_err()
        {
            break;
        }
    }
    drop(stream); // mid-request RST
    report.closed += 1;
    report
}

fn run_garbage(cfg: &LoadConfig, client: usize) -> LoadReport {
    let mut report = LoadReport::default();
    let Some(mut stream) = connect(&cfg.addr) else {
        report.closed += 1;
        return report;
    };
    let mut state = hash64_with_seed(client as u64, cfg.seed ^ 0xBEEF) | 1;
    let mut buf = Vec::with_capacity(512);
    for _ in 0..512 {
        // xorshift64 over the seed: bytes include NULs, high bytes, and
        // the occasional newline so some "lines" complete.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let b = (state % 260) as u32;
        buf.push(if b >= 256 { b'\n' } else { b as u8 });
    }
    let _ = stream.write_all(&buf);
    // Read whatever comes back (ERR lines or a close); never panic.
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    while let Ok(n) = reader.read_line(&mut line) {
        if n == 0 {
            break;
        }
        if line.starts_with("ERR") {
            report.err += 1;
        }
        line.clear();
    }
    report.closed += 1;
    report
}

fn run_oversized(cfg: &LoadConfig, _client: usize) -> LoadReport {
    let mut report = LoadReport::default();
    let Some(mut stream) = connect(&cfg.addr) else {
        report.closed += 1;
        return report;
    };
    // 128 KiB without a newline: twice the server's line limit.
    let blob = vec![b'A'; 128 << 10];
    let _ = stream.write_all(&blob);
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(n) if n > 0 && line.starts_with("ERR") => report.err += 1,
        _ => report.closed += 1,
    }
    report
}

/// Runs the configured load and merges every client's observations.
///
/// # Panics
///
/// Panics if a client thread panics (the generator itself is bug-free by
/// assertion; a panic here is a harness defect worth failing loudly on).
#[must_use]
pub fn run_load(cfg: &LoadConfig) -> LoadReport {
    let merged = Mutex::new(LoadReport::default());
    let started = Instant::now();
    std::thread::scope(|s| {
        for client in 0..cfg.clients {
            let merged = &merged;
            s.spawn(move || {
                let report = match kind_for(client, cfg) {
                    ClientKind::WellFormed => run_well_formed(cfg, client),
                    ClientKind::SlowLoris => run_slow_loris(cfg, client),
                    ClientKind::Disconnect => run_disconnect(cfg, client),
                    ClientKind::Garbage => run_garbage(cfg, client),
                    ClientKind::Oversized => run_oversized(cfg, client),
                };
                merged.lock().expect("report lock").merge(report);
            });
        }
    });
    let mut report = merged.into_inner().expect("report lock");
    report.elapsed_secs = started.elapsed().as_secs_f64();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_seeded_and_cover_the_mix() {
        let cfg = LoadConfig::new("127.0.0.1:1", 42, 8);
        let kinds: Vec<ClientKind> = (0..64).map(|c| kind_for(c, &cfg)).collect();
        let again: Vec<ClientKind> = (0..64).map(|c| kind_for(c, &cfg)).collect();
        assert_eq!(kinds, again, "kind assignment must be deterministic");
        for want in [
            ClientKind::WellFormed,
            ClientKind::SlowLoris,
            ClientKind::Disconnect,
            ClientKind::Garbage,
            ClientKind::Oversized,
        ] {
            assert!(kinds.contains(&want), "{want:?} missing from 64 clients");
        }
        let mut tame = cfg;
        tame.adversarial = false;
        assert!((0..64).all(|c| kind_for(c, &tame) == ClientKind::WellFormed));
    }

    #[test]
    fn drawn_requests_are_valid_protocol_lines() {
        let cfg = LoadConfig::new("127.0.0.1:1", 7, 5);
        for i in 0..200 {
            let (line, ingest) = draw_request(hash64_with_seed(i, 3), &cfg, i as usize);
            let words: Vec<&str> = line.split(' ').collect();
            match words[0] {
                "TOPK" | "SIM" => assert_eq!(words.len(), 3, "{line}"),
                "PAIRS" => assert_eq!(words.len(), 2, "{line}"),
                "HEALTH" => assert_eq!(words.len(), 1),
                "INGEST" => {
                    let cols = ingest.expect("ingest carries its columns");
                    assert!(!cols.is_empty());
                    assert!(cols.windows(2).all(|w| w[0] < w[1]), "ascending: {line}");
                    assert!(cols.iter().all(|&c| c < cfg.n_cols));
                }
                other => panic!("unexpected verb {other}"),
            }
        }
    }

    #[test]
    fn percentiles_and_qps_summarize_the_run() {
        let mut r = LoadReport {
            latencies_micros: (1..=100).collect(),
            ok: 100,
            elapsed_secs: 2.0,
            ..Default::default()
        };
        assert_eq!(r.percentile_micros(0.50), 50);
        assert_eq!(r.percentile_micros(0.99), 99);
        assert!((r.qps() - 50.0).abs() < 1e-9);
        r.latencies_micros.clear();
        assert_eq!(r.percentile_micros(0.5), 0);
    }

    #[test]
    fn against_a_dead_port_every_client_reports_closed_not_panic() {
        // Nothing listens on the reserved discard port of localhost; every
        // kind must degrade to `closed` without panicking.
        let mut cfg = LoadConfig::new("127.0.0.1:9", 11, 4);
        cfg.clients = 10;
        cfg.requests_per_client = 2;
        let report = run_load(&cfg);
        assert_eq!(report.ok + report.err + report.overloaded, 0);
        assert!(report.closed >= 1);
        assert_eq!(report.violations, 0);
    }
}
