/root/repo/target/release/deps/fig9_comparison-fb83b51733f226f8.d: crates/experiments/src/bin/fig9_comparison.rs

/root/repo/target/release/deps/fig9_comparison-fb83b51733f226f8: crates/experiments/src/bin/fig9_comparison.rs

crates/experiments/src/bin/fig9_comparison.rs:
