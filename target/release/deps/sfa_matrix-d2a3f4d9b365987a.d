/root/repo/target/release/deps/sfa_matrix-d2a3f4d9b365987a.d: crates/matrix/src/lib.rs crates/matrix/src/builder.rs crates/matrix/src/column.rs crates/matrix/src/csc.rs crates/matrix/src/csr.rs crates/matrix/src/error.rs crates/matrix/src/io.rs crates/matrix/src/ops.rs crates/matrix/src/stats.rs crates/matrix/src/stream.rs crates/matrix/src/triangle.rs

/root/repo/target/release/deps/libsfa_matrix-d2a3f4d9b365987a.rlib: crates/matrix/src/lib.rs crates/matrix/src/builder.rs crates/matrix/src/column.rs crates/matrix/src/csc.rs crates/matrix/src/csr.rs crates/matrix/src/error.rs crates/matrix/src/io.rs crates/matrix/src/ops.rs crates/matrix/src/stats.rs crates/matrix/src/stream.rs crates/matrix/src/triangle.rs

/root/repo/target/release/deps/libsfa_matrix-d2a3f4d9b365987a.rmeta: crates/matrix/src/lib.rs crates/matrix/src/builder.rs crates/matrix/src/column.rs crates/matrix/src/csc.rs crates/matrix/src/csr.rs crates/matrix/src/error.rs crates/matrix/src/io.rs crates/matrix/src/ops.rs crates/matrix/src/stats.rs crates/matrix/src/stream.rs crates/matrix/src/triangle.rs

crates/matrix/src/lib.rs:
crates/matrix/src/builder.rs:
crates/matrix/src/column.rs:
crates/matrix/src/csc.rs:
crates/matrix/src/csr.rs:
crates/matrix/src/error.rs:
crates/matrix/src/io.rs:
crates/matrix/src/ops.rs:
crates/matrix/src/stats.rs:
crates/matrix/src/stream.rs:
crates/matrix/src/triangle.rs:
