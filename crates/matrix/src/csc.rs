//! Column-major (CSC) sparse boolean matrix.

use sfa_json::{FromJson, Json, JsonError, ToJson};

use crate::column::{intersection_size_auto, ColumnSet};
use crate::csr::RowMajorMatrix;
use crate::error::{MatrixError, Result};

/// A sparse 0/1 matrix stored column-major: for each column, the strictly
/// ascending list of rows holding a 1.
///
/// This is the in-memory form used for per-column work: ground-truth
/// similarity, verification bookkeeping, support pruning. The streaming
/// (row-major) view used by the signature passes is [`RowMajorMatrix`].
///
/// # Examples
///
/// ```
/// use sfa_matrix::SparseMatrix;
///
/// // Example 1 from the paper: 4 rows × 3 columns.
/// let m = SparseMatrix::from_columns(4, vec![
///     vec![0, 1],
///     vec![0, 1, 2],
///     vec![2, 3],
/// ]).unwrap();
/// assert!((m.similarity(0, 1) - 2.0 / 3.0).abs() < 1e-12);
/// assert_eq!(m.similarity(0, 2), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseMatrix {
    n_rows: u32,
    n_cols: u32,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
}

impl SparseMatrix {
    /// Builds from per-column row lists (each strictly ascending).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::IndexOutOfRange`] if any row id is `>= n_rows`
    /// and [`MatrixError::Parse`] if a column is not strictly ascending.
    pub fn from_columns(n_rows: u32, columns: Vec<Vec<u32>>) -> Result<Self> {
        let n_cols = u32::try_from(columns.len()).map_err(|_| MatrixError::DimensionMismatch {
            detail: "more than u32::MAX columns".into(),
        })?;
        let nnz: usize = columns.iter().map(Vec::len).sum();
        let mut col_ptr = Vec::with_capacity(columns.len() + 1);
        let mut row_idx = Vec::with_capacity(nnz);
        col_ptr.push(0);
        for (j, col) in columns.iter().enumerate() {
            if !col.windows(2).all(|w| w[0] < w[1]) {
                return Err(MatrixError::Parse {
                    at: j as u64,
                    detail: format!("column {j} is not strictly ascending"),
                });
            }
            if let Some(&last) = col.last() {
                if last >= n_rows {
                    return Err(MatrixError::IndexOutOfRange {
                        kind: "row",
                        index: last,
                        bound: n_rows,
                    });
                }
            }
            row_idx.extend_from_slice(col);
            col_ptr.push(row_idx.len());
        }
        Ok(Self {
            n_rows,
            n_cols,
            col_ptr,
            row_idx,
        })
    }

    /// Builds from raw CSC parts without per-element validation (debug
    /// asserted). Used by trusted in-crate constructors (transpose, IO).
    pub(crate) fn from_parts(
        n_rows: u32,
        n_cols: u32,
        col_ptr: Vec<usize>,
        row_idx: Vec<u32>,
    ) -> Self {
        debug_assert_eq!(col_ptr.len(), n_cols as usize + 1);
        debug_assert_eq!(*col_ptr.last().unwrap_or(&0), row_idx.len());
        Self {
            n_rows,
            n_cols,
            col_ptr,
            row_idx,
        }
    }

    /// Number of rows `n`.
    #[must_use]
    pub const fn n_rows(&self) -> u32 {
        self.n_rows
    }

    /// Number of columns `m`.
    #[must_use]
    pub const fn n_cols(&self) -> u32 {
        self.n_cols
    }

    /// Total number of 1s, `|M|`.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The ascending row ids of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= n_cols`.
    #[must_use]
    pub fn column(&self, j: u32) -> &[u32] {
        let j = j as usize;
        &self.row_idx[self.col_ptr[j]..self.col_ptr[j + 1]]
    }

    /// Column `j` as an owned [`ColumnSet`].
    #[must_use]
    pub fn column_set(&self, j: u32) -> ColumnSet {
        ColumnSet::from_slice(self.column(j))
    }

    /// `|C_j|` — support count of column `j`.
    #[must_use]
    pub fn column_count(&self, j: u32) -> usize {
        let j = j as usize;
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Density `d_j = |C_j| / n`.
    #[must_use]
    pub fn density(&self, j: u32) -> f64 {
        if self.n_rows == 0 {
            0.0
        } else {
            self.column_count(j) as f64 / f64::from(self.n_rows)
        }
    }

    /// Exact `|C_i ∩ C_j|` via the adaptive kernel (merge / gallop /
    /// bitmap, chosen per call — see
    /// [`crate::column::intersection_size_auto`]).
    #[must_use]
    pub fn intersection_size(&self, i: u32, j: u32) -> usize {
        intersection_size_auto(self.column(i), self.column(j))
    }

    /// Exact Jaccard similarity `S(c_i, c_j)`.
    #[must_use]
    pub fn similarity(&self, i: u32, j: u32) -> f64 {
        let inter = self.intersection_size(i, j);
        let union = self.column_count(i) + self.column_count(j) - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Exact confidence `Conf(c_i ⇒ c_j)`.
    #[must_use]
    pub fn confidence(&self, i: u32, j: u32) -> f64 {
        let ci = self.column_count(i);
        if ci == 0 {
            0.0
        } else {
            self.intersection_size(i, j) as f64 / ci as f64
        }
    }

    /// All column support counts.
    #[must_use]
    pub fn column_counts(&self) -> Vec<usize> {
        (0..self.n_cols).map(|j| self.column_count(j)).collect()
    }

    /// Iterates `(j, rows)` over columns.
    pub fn columns(&self) -> impl Iterator<Item = (u32, &[u32])> {
        (0..self.n_cols).map(move |j| (j, self.column(j)))
    }

    /// Transposes into a row-major matrix (counting sort, `O(|M| + n)`).
    #[must_use]
    pub fn transpose(&self) -> RowMajorMatrix {
        let mut row_counts = vec![0usize; self.n_rows as usize];
        for &r in &self.row_idx {
            row_counts[r as usize] += 1;
        }
        let mut row_ptr = Vec::with_capacity(self.n_rows as usize + 1);
        row_ptr.push(0usize);
        for &c in &row_counts {
            row_ptr.push(row_ptr.last().unwrap() + c);
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0u32; self.row_idx.len()];
        for j in 0..self.n_cols {
            for &r in self.column(j) {
                col_idx[cursor[r as usize]] = j;
                cursor[r as usize] += 1;
            }
        }
        // Column order within each row is ascending because we sweep columns
        // in ascending order.
        RowMajorMatrix::from_parts(self.n_rows, self.n_cols, row_ptr, col_idx)
    }
}

impl ToJson for SparseMatrix {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("n_rows", self.n_rows)
            .field("n_cols", self.n_cols)
            .field("col_ptr", &self.col_ptr[..])
            .field("row_idx", &self.row_idx[..])
    }
}

impl FromJson for SparseMatrix {
    fn from_json(json: &Json) -> std::result::Result<Self, JsonError> {
        let n_rows = u32::from_json(json.req("n_rows")?)?;
        let n_cols = u32::from_json(json.req("n_cols")?)?;
        let col_ptr = Vec::<usize>::from_json(json.req("col_ptr")?)?;
        let row_idx = Vec::<u32>::from_json(json.req("row_idx")?)?;
        if col_ptr.len() != n_cols as usize + 1
            || col_ptr.first() != Some(&0)
            || *col_ptr.last().unwrap() != row_idx.len()
            || col_ptr.windows(2).any(|w| w[0] > w[1])
        {
            return Err(JsonError::new("inconsistent CSC structure"));
        }
        if row_idx.iter().any(|&r| r >= n_rows) {
            return Err(JsonError::new("row index out of range"));
        }
        Ok(Self {
            n_rows,
            n_cols,
            col_ptr,
            row_idx,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example1() -> SparseMatrix {
        SparseMatrix::from_columns(4, vec![vec![0, 1], vec![0, 1, 2], vec![2, 3]]).unwrap()
    }

    #[test]
    fn construction_and_access() {
        let m = example1();
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.nnz(), 7);
        assert_eq!(m.column(1), &[0, 1, 2]);
        assert_eq!(m.column_count(2), 2);
        assert_eq!(m.density(0), 0.5);
    }

    #[test]
    fn rejects_out_of_range_rows() {
        let err = SparseMatrix::from_columns(3, vec![vec![0, 3]]).unwrap_err();
        assert!(matches!(err, MatrixError::IndexOutOfRange { index: 3, .. }));
    }

    #[test]
    fn rejects_unsorted_columns() {
        let err = SparseMatrix::from_columns(5, vec![vec![2, 1]]).unwrap_err();
        assert!(matches!(err, MatrixError::Parse { .. }));
    }

    #[test]
    fn rejects_duplicate_rows_in_column() {
        assert!(SparseMatrix::from_columns(5, vec![vec![1, 1]]).is_err());
    }

    #[test]
    fn paper_example_similarities() {
        let m = example1();
        assert!((m.similarity(0, 1) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.similarity(0, 2), 0.0);
        assert!((m.similarity(1, 2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn confidence_matches_definition() {
        let m = example1();
        // Conf(c0 ⇒ c1) = |C0∩C1|/|C0| = 2/2.
        assert_eq!(m.confidence(0, 1), 1.0);
        // Conf(c1 ⇒ c0) = 2/3.
        assert!((m.confidence(1, 0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = SparseMatrix::from_columns(0, vec![]).unwrap();
        assert_eq!(m.n_cols(), 0);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn empty_columns_allowed() {
        let m = SparseMatrix::from_columns(3, vec![vec![], vec![1]]).unwrap();
        assert_eq!(m.column_count(0), 0);
        assert_eq!(m.similarity(0, 1), 0.0);
        assert_eq!(m.density(0), 0.0);
    }

    #[test]
    fn transpose_roundtrips() {
        let m = example1();
        let t = m.transpose();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.row(0), &[0, 1]);
        assert_eq!(t.row(2), &[1, 2]);
        assert_eq!(t.row(3), &[2]);
        // transpose back:
        let back = t.transpose();
        assert_eq!(back, m);
    }

    #[test]
    fn column_counts_vector() {
        let m = example1();
        assert_eq!(m.column_counts(), vec![2, 3, 2]);
    }

    #[test]
    fn json_roundtrip() {
        let m = example1();
        let json = m.to_json().to_string_compact();
        let back: SparseMatrix = sfa_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn json_rejects_inconsistent_structure() {
        let doc = Json::obj()
            .field("n_rows", 2u32)
            .field("n_cols", 1u32)
            .field("col_ptr", vec![0usize, 3])
            .field("row_idx", vec![0u32]);
        assert!(SparseMatrix::from_json(&doc).is_err());
    }
}
