/root/repo/target/release/deps/sfa-21469e9f60dab12d.d: src/bin/sfa.rs

/root/repo/target/release/deps/sfa-21469e9f60dab12d: src/bin/sfa.rs

src/bin/sfa.rs:
