/root/repo/target/debug/deps/fig7_hlsh-eab5a00b51603771.d: crates/experiments/src/bin/fig7_hlsh.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_hlsh-eab5a00b51603771.rmeta: crates/experiments/src/bin/fig7_hlsh.rs Cargo.toml

crates/experiments/src/bin/fig7_hlsh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
