/root/repo/target/release/examples/weblog_similar_urls-1be0b87383871ef1.d: examples/weblog_similar_urls.rs

/root/repo/target/release/examples/weblog_similar_urls-1be0b87383871ef1: examples/weblog_similar_urls.rs

examples/weblog_similar_urls.rs:
