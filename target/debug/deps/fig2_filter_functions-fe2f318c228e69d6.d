/root/repo/target/debug/deps/fig2_filter_functions-fe2f318c228e69d6.d: crates/experiments/src/bin/fig2_filter_functions.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_filter_functions-fe2f318c228e69d6.rmeta: crates/experiments/src/bin/fig2_filter_functions.rs Cargo.toml

crates/experiments/src/bin/fig2_filter_functions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
