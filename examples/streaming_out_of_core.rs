//! Out-of-core operation: the table never resides in memory.
//!
//! The paper's setting is a disk-resident table scanned once per phase.
//! This example writes a matrix to the binary `.sfab` format, runs the
//! whole pipeline through a [`FileRowStream`] (two sequential passes, no
//! random access), and then demonstrates the §4 online mode where LSH
//! iterations stream out discoveries until the user is satisfied.
//!
//! ```sh
//! cargo run --release --example streaming_out_of_core
//! ```

use sfa::core::{Pipeline, PipelineConfig, Scheme};
use sfa::datagen::WeblogConfig;
use sfa::lsh::{MLshParams, OnlineMLsh};
use sfa::matrix::{io, FileRowStream, MemoryRowStream};
use sfa::minhash::compute_signatures;

fn main() {
    // Build a dataset and persist it as if it were a big on-disk table.
    let data = WeblogConfig::tiny(3).generate();
    let rows = data.matrix.transpose();
    let path = std::env::temp_dir().join("sfa_example_weblog.sfab");
    io::write_binary(&rows, &path).expect("write table");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!(
        "wrote {} rows × {} cols to {} ({bytes} bytes)",
        rows.n_rows(),
        rows.n_cols(),
        path.display()
    );

    // Run the full pipeline straight off the file: one pass for
    // signatures, one pass for exact verification.
    let mut stream = FileRowStream::open(&path).expect("open table");
    let config = PipelineConfig::new(Scheme::Kmh { k: 40, delta: 0.2 }, 0.7, 9);
    let result = Pipeline::new(config).run(&mut stream).expect("file run");
    println!(
        "\nout-of-core pipeline found {} pairs ({})",
        result.similar_pairs().len(),
        result.timings
    );

    // Cross-check against the in-memory run: identical output.
    let mem_result = Pipeline::new(config)
        .run(&mut MemoryRowStream::new(&rows))
        .expect("memory run");
    assert_eq!(result.verified, mem_result.verified);
    println!("file-backed and in-memory runs produced identical results");

    // Online mode: watch pairs arrive iteration by iteration and stop
    // early once the recall estimate is good enough.
    let mut stream = FileRowStream::open(&path).expect("reopen");
    let sigs = compute_signatures(&mut stream, 60, 17).expect("signature pass");
    let mut online = OnlineMLsh::new(&sigs, MLshParams::banded(5, 12, 23));
    println!("\nonline M-LSH (stop when recall(0.8) ≥ 0.99):");
    while let Some(new_pairs) = online.next_iteration() {
        println!(
            "  iteration {:>2}: +{} new pairs (total {}, est. recall at S=0.8: {:.3})",
            online.iterations_done(),
            new_pairs.len(),
            online.pairs_found(),
            online.recall_estimate(0.8)
        );
        if online.recall_estimate(0.8) >= 0.99 {
            println!("  satisfied — interrupting early, as §4 describes");
            break;
        }
    }

    std::fs::remove_file(&path).ok();
}
