/root/repo/target/release/examples/streaming_out_of_core-585c21c258d58deb.d: examples/streaming_out_of_core.rs

/root/repo/target/release/examples/streaming_out_of_core-585c21c258d58deb: examples/streaming_out_of_core.rs

examples/streaming_out_of_core.rs:
