/root/repo/target/debug/deps/sfa_matrix-b33d318ee608d695.d: crates/matrix/src/lib.rs crates/matrix/src/builder.rs crates/matrix/src/column.rs crates/matrix/src/csc.rs crates/matrix/src/csr.rs crates/matrix/src/error.rs crates/matrix/src/io.rs crates/matrix/src/ops.rs crates/matrix/src/stats.rs crates/matrix/src/stream.rs crates/matrix/src/triangle.rs

/root/repo/target/debug/deps/libsfa_matrix-b33d318ee608d695.rmeta: crates/matrix/src/lib.rs crates/matrix/src/builder.rs crates/matrix/src/column.rs crates/matrix/src/csc.rs crates/matrix/src/csr.rs crates/matrix/src/error.rs crates/matrix/src/io.rs crates/matrix/src/ops.rs crates/matrix/src/stats.rs crates/matrix/src/stream.rs crates/matrix/src/triangle.rs

crates/matrix/src/lib.rs:
crates/matrix/src/builder.rs:
crates/matrix/src/column.rs:
crates/matrix/src/csc.rs:
crates/matrix/src/csr.rs:
crates/matrix/src/error.rs:
crates/matrix/src/io.rs:
crates/matrix/src/ops.rs:
crates/matrix/src/stats.rs:
crates/matrix/src/stream.rs:
crates/matrix/src/triangle.rs:
