/root/repo/target/debug/deps/stream_robustness-7f56b4b2fa3f1ab3.d: crates/matrix/tests/stream_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libstream_robustness-7f56b4b2fa3f1ab3.rmeta: crates/matrix/tests/stream_robustness.rs Cargo.toml

crates/matrix/tests/stream_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
