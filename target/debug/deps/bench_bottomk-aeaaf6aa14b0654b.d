/root/repo/target/debug/deps/bench_bottomk-aeaaf6aa14b0654b.d: crates/bench/benches/bench_bottomk.rs

/root/repo/target/debug/deps/libbench_bottomk-aeaaf6aa14b0654b.rmeta: crates/bench/benches/bench_bottomk.rs

crates/bench/benches/bench_bottomk.rs:
