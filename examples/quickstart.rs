//! Quickstart: find highly similar column pairs without support pruning.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sfa::core::{Pipeline, PipelineConfig, Scheme};
use sfa::matrix::{MatrixBuilder, MemoryRowStream};

fn main() {
    // A tiny market-basket table: rows are baskets, columns are products.
    // Products 0 and 1 ("Beluga caviar", "Ketel vodka") are rare but always
    // bought together; products 2 and 3 ("beer", "diapers") are frequent.
    let names = ["Beluga caviar", "Ketel vodka", "beer", "diapers", "milk"];
    let mut builder = MatrixBuilder::new(1000, names.len() as u32);
    for basket in 0..1000u32 {
        if basket % 250 == 0 {
            // 4 baskets contain the rare pair — 0.4% support.
            builder.add_row(basket, &[0, 1]).unwrap();
        }
        if basket % 3 == 0 {
            builder.add_entry(basket, 2).unwrap();
        }
        if basket % 3 == 0 || basket % 7 == 0 {
            builder.add_entry(basket, 3).unwrap();
        }
        if basket % 2 == 0 {
            builder.add_entry(basket, 4).unwrap();
        }
    }
    let matrix = builder.build_csr();

    // Mine all pairs with Jaccard similarity ≥ 0.7 using Min-Hashing.
    let config = PipelineConfig::new(Scheme::Mh { k: 128, delta: 0.2 }, 0.7, 42);
    let result = Pipeline::new(config)
        .run(&mut MemoryRowStream::new(&matrix))
        .expect("in-memory run");

    println!("three-phase pipeline: {}", result.timings);
    println!(
        "candidates generated: {}, rejected by exact verification: {}",
        result.candidates_generated(),
        result.false_positive_candidates()
    );
    println!("\nsimilar pairs (S >= 0.7):");
    for pair in result.similar_pairs() {
        println!(
            "  {} <-> {}   similarity {:.2}, support {} of 1000 baskets",
            names[pair.i as usize], names[pair.j as usize], pair.similarity, pair.intersection,
        );
    }
    // The rare-but-perfect pair is found even though its support is 0.4% —
    // a priori with any practical support threshold would never see it.
    let pairs = result.similar_pairs();
    assert_eq!((pairs[0].i, pairs[0].j), (0, 1));
    assert_eq!(pairs[0].similarity, 1.0);
}
