/root/repo/target/debug/deps/fig6_kmh-896a9f5083558d7e.d: crates/experiments/src/bin/fig6_kmh.rs

/root/repo/target/debug/deps/libfig6_kmh-896a9f5083558d7e.rmeta: crates/experiments/src/bin/fig6_kmh.rs

crates/experiments/src/bin/fig6_kmh.rs:
