/root/repo/target/debug/deps/sfa_apriori-ddc4e0554d6a3ef4.d: crates/apriori/src/lib.rs crates/apriori/src/apriori.rs crates/apriori/src/pairs.rs crates/apriori/src/rules.rs

/root/repo/target/debug/deps/libsfa_apriori-ddc4e0554d6a3ef4.rmeta: crates/apriori/src/lib.rs crates/apriori/src/apriori.rs crates/apriori/src/pairs.rs crates/apriori/src/rules.rs

crates/apriori/src/lib.rs:
crates/apriori/src/apriori.rs:
crates/apriori/src/pairs.rs:
crates/apriori/src/rules.rs:
