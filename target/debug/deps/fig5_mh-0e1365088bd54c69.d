/root/repo/target/debug/deps/fig5_mh-0e1365088bd54c69.d: crates/experiments/src/bin/fig5_mh.rs

/root/repo/target/debug/deps/fig5_mh-0e1365088bd54c69: crates/experiments/src/bin/fig5_mh.rs

crates/experiments/src/bin/fig5_mh.rs:
