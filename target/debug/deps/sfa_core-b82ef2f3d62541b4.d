/root/repo/target/debug/deps/sfa_core-b82ef2f3d62541b4.d: crates/core/src/lib.rs crates/core/src/boolean.rs crates/core/src/cluster.rs crates/core/src/confidence.rs crates/core/src/config.rs crates/core/src/metrics.rs crates/core/src/pipeline.rs crates/core/src/quality.rs crates/core/src/report.rs crates/core/src/streaming.rs crates/core/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libsfa_core-b82ef2f3d62541b4.rmeta: crates/core/src/lib.rs crates/core/src/boolean.rs crates/core/src/cluster.rs crates/core/src/confidence.rs crates/core/src/config.rs crates/core/src/metrics.rs crates/core/src/pipeline.rs crates/core/src/quality.rs crates/core/src/report.rs crates/core/src/streaming.rs crates/core/src/verify.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/boolean.rs:
crates/core/src/cluster.rs:
crates/core/src/confidence.rs:
crates/core/src/config.rs:
crates/core/src/metrics.rs:
crates/core/src/pipeline.rs:
crates/core/src/quality.rs:
crates/core/src/report.rs:
crates/core/src/streaming.rs:
crates/core/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
