//! Simple tabulation hashing.
//!
//! Tabulation hashing (Zobrist 1970; analyzed by Pǎtraşcu & Thorup 2011)
//! splits a 32-bit key into 4 bytes and XORs per-byte random table entries.
//! It is 3-independent and behaves like a fully random function for many
//! algorithms (including min-wise estimation), at the cost of 8 KiB of
//! tables per function. It is offered as a higher-independence alternative
//! to the mixing-based [`HashFamily`](crate::family::HashFamily) and is one
//! of the ablation points benchmarked in `sfa-bench`.

use crate::rng::SeedSequence;

const BYTES: usize = 4;
const TABLE: usize = 256;

/// A tabulation hash function over `u32` keys producing `u64` values.
///
/// # Examples
///
/// ```
/// use sfa_hash::TabulationHasher;
///
/// let h = TabulationHasher::new(7);
/// assert_eq!(h.hash(123), TabulationHasher::new(7).hash(123));
/// assert_ne!(h.hash(123), h.hash(124));
/// ```
#[derive(Clone)]
pub struct TabulationHasher {
    tables: Box<[[u64; TABLE]; BYTES]>,
}

impl std::fmt::Debug for TabulationHasher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TabulationHasher").finish_non_exhaustive()
    }
}

impl TabulationHasher {
    /// Creates a tabulation hasher with tables filled from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut seq = SeedSequence::new(seed);
        let mut tables = Box::new([[0u64; TABLE]; BYTES]);
        for table in tables.iter_mut() {
            for slot in table.iter_mut() {
                *slot = seq.next_seed();
            }
        }
        Self { tables }
    }

    /// Hashes a 32-bit key.
    #[inline]
    #[must_use]
    pub fn hash(&self, key: u32) -> u64 {
        let b = key.to_le_bytes();
        self.tables[0][b[0] as usize]
            ^ self.tables[1][b[1] as usize]
            ^ self.tables[2][b[2] as usize]
            ^ self.tables[3][b[3] as usize]
    }
}

/// A family of independent tabulation hashers.
#[derive(Debug, Clone)]
pub struct TabulationFamily {
    members: Vec<TabulationHasher>,
}

impl TabulationFamily {
    /// Creates `k` independent tabulation hashers rooted at `seed`.
    #[must_use]
    pub fn new(k: usize, seed: u64) -> Self {
        let mut seq = SeedSequence::new(seed);
        let members = (0..k)
            .map(|_| TabulationHasher::new(seq.next_seed()))
            .collect();
        Self { members }
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the family is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Hashes `key` under member `i`.
    #[inline]
    #[must_use]
    pub fn hash(&self, i: usize, key: u32) -> u64 {
        self.members[i].hash(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = TabulationHasher::new(1);
        let b = TabulationHasher::new(1);
        for key in [0u32, 1, 0xffff_ffff, 12345] {
            assert_eq!(a.hash(key), b.hash(key));
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let a = TabulationHasher::new(1);
        let b = TabulationHasher::new(2);
        let same = (0..1000u32).filter(|&k| a.hash(k) == b.hash(k)).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn injective_on_small_domain_whp() {
        let h = TabulationHasher::new(3);
        let mut seen = std::collections::HashSet::new();
        for k in 0..100_000u32 {
            assert!(seen.insert(h.hash(k)), "collision at {k}");
        }
    }

    #[test]
    fn xor_structure_holds() {
        // hash(k) for single-byte keys must equal table lookups XOR the
        // zero-byte entries of the other tables; verify via difference.
        let h = TabulationHasher::new(9);
        let z = h.hash(0);
        // Keys differing only in byte 0 differ by table0 XORs:
        let d1 = h.hash(1) ^ z;
        let d2 = h.hash(0x0100) ^ z;
        // Then the key combining both bytes must be z ^ d1 ^ d2.
        assert_eq!(h.hash(0x0101), z ^ d1 ^ d2);
    }

    #[test]
    fn family_members_independent() {
        let fam = TabulationFamily::new(4, 10);
        assert_eq!(fam.len(), 4);
        let outs: std::collections::HashSet<u64> = (0..4).map(|i| fam.hash(i, 42)).collect();
        assert_eq!(outs.len(), 4);
    }

    #[test]
    fn min_position_roughly_uniform() {
        let fam = TabulationFamily::new(2000, 5);
        let mut wins = [0usize; 4];
        for i in 0..fam.len() {
            let argmin = (0..4u32).min_by_key(|&r| fam.hash(i, r)).unwrap();
            wins[argmin as usize] += 1;
        }
        for &w in &wins {
            assert!((350..=650).contains(&w), "wins {wins:?}");
        }
    }
}
