/root/repo/target/release/deps/properties-f99a20e4fde05004.d: crates/matrix/tests/properties.rs

/root/repo/target/release/deps/properties-f99a20e4fde05004: crates/matrix/tests/properties.rs

crates/matrix/tests/properties.rs:
