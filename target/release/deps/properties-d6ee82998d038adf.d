/root/repo/target/release/deps/properties-d6ee82998d038adf.d: crates/lsh/tests/properties.rs

/root/repo/target/release/deps/properties-d6ee82998d038adf: crates/lsh/tests/properties.rs

crates/lsh/tests/properties.rs:
