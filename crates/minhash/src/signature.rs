//! Signature containers.
//!
//! The MH scheme summarizes the `n × m` matrix `M` as a `k × m` matrix `M̂`
//! of min-hash values ("The matrix M̂ can be viewed as a compact
//! representation of the matrix M", §3). [`SignatureMatrix`] is `M̂`;
//! the K-MH bottom-k sketches live in
//! [`BottomKSignatures`](crate::kmh::BottomKSignatures).

/// Sentinel stored for a column with no 1s at all (no row ever updated its
/// min). Two all-zero columns must *not* be reported as similar, so the
/// sentinel never counts as an agreement.
pub const EMPTY_SIGNATURE: u64 = u64::MAX;

/// The `k × m` matrix `M̂` of min-hash values, stored row-major
/// (`values[l·m + j] = h_l(c_j)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureMatrix {
    k: usize,
    m: usize,
    values: Vec<u64>,
}

impl SignatureMatrix {
    /// Creates a matrix filled with [`EMPTY_SIGNATURE`], ready for
    /// min-merging.
    #[must_use]
    pub fn new_empty(k: usize, m: usize) -> Self {
        Self {
            k,
            m,
            values: vec![EMPTY_SIGNATURE; k * m],
        }
    }

    /// Wraps raw values (row-major, length `k·m`).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != k * m`.
    #[must_use]
    pub fn from_values(k: usize, m: usize, values: Vec<u64>) -> Self {
        assert_eq!(values.len(), k * m, "values length must be k·m");
        Self { k, m, values }
    }

    /// Builds a matrix from column-major values
    /// (`values[j·k + l] = h_l(c_j)`) — the layout the streaming builder
    /// keeps so a row's hash vector min-merges into each touched column
    /// as one contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != k * m`.
    #[must_use]
    pub(crate) fn from_col_major(k: usize, m: usize, values: &[u64]) -> Self {
        assert_eq!(values.len(), k * m, "values length must be k·m");
        let mut out = vec![0u64; k * m];
        for j in 0..m {
            for (l, &v) in values[j * k..(j + 1) * k].iter().enumerate() {
                out[l * m + j] = v;
            }
        }
        Self { k, m, values: out }
    }

    /// Number of hash functions `k`.
    #[must_use]
    pub const fn k(&self) -> usize {
        self.k
    }

    /// Number of columns `m`.
    #[must_use]
    pub const fn m(&self) -> usize {
        self.m
    }

    /// The min-hash value `h_l(c_j)`.
    #[inline]
    #[must_use]
    pub fn get(&self, l: usize, j: u32) -> u64 {
        self.values[l * self.m + j as usize]
    }

    /// The `l`th signature row `(h_l(c_0), …, h_l(c_{m−1}))`.
    #[must_use]
    pub fn row(&self, l: usize) -> &[u64] {
        &self.values[l * self.m..(l + 1) * self.m]
    }

    /// Resident heap size of the signature values: `k · m · 8` bytes — the
    /// `O(mk)` memory the paper budgets for phase 1.
    #[must_use]
    pub fn heap_bytes(&self) -> u64 {
        (self.values.len() * std::mem::size_of::<u64>()) as u64
    }

    /// The `k` min-hash values of column `j` (allocates; for hot paths use
    /// [`get`](Self::get) with a stride loop).
    #[must_use]
    pub fn column(&self, j: u32) -> Vec<u64> {
        (0..self.k).map(|l| self.get(l, j)).collect()
    }

    /// Number of rows on which columns `i` and `j` agree (sentinel values
    /// never agree).
    #[must_use]
    pub fn agreement_count(&self, i: u32, j: u32) -> usize {
        (0..self.k)
            .filter(|&l| {
                let a = self.get(l, i);
                a != EMPTY_SIGNATURE && a == self.get(l, j)
            })
            .count()
    }

    /// `Ŝ(c_i, c_j)` — the fraction of agreeing min-hash values
    /// (Definition 1), the estimator of `S(c_i, c_j)`.
    #[must_use]
    pub fn s_hat(&self, i: u32, j: u32) -> f64 {
        if self.k == 0 {
            0.0
        } else {
            self.agreement_count(i, j) as f64 / self.k as f64
        }
    }

    /// Component-wise minimum of two columns' signatures — the signature of
    /// the boolean OR column `c_i ∨ c_j` (§7: "the hash values for the
    /// induced column `c_j ∨ c_j'` can be easily computed by taking the
    /// component-wise minimum").
    #[must_use]
    pub fn or_signature(&self, i: u32, j: u32) -> Vec<u64> {
        (0..self.k)
            .map(|l| self.get(l, i).min(self.get(l, j)))
            .collect()
    }

    /// Agreement count between column `i` and an externally built signature
    /// vector (used by the §7 OR-composition queries).
    ///
    /// # Panics
    ///
    /// Panics if `sig.len() != k`.
    #[must_use]
    pub fn agreement_with(&self, i: u32, sig: &[u64]) -> usize {
        assert_eq!(sig.len(), self.k, "signature length must be k");
        (0..self.k)
            .filter(|&l| {
                let a = self.get(l, i);
                a != EMPTY_SIGNATURE && a == sig[l]
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SignatureMatrix {
        // k = 3, m = 2; columns agree on rows 0 and 2.
        SignatureMatrix::from_values(3, 2, vec![5, 5, 9, 8, 1, 1])
    }

    #[test]
    fn accessors() {
        let s = sample();
        assert_eq!(s.k(), 3);
        assert_eq!(s.m(), 2);
        assert_eq!(s.get(0, 0), 5);
        assert_eq!(s.get(1, 1), 8);
        assert_eq!(s.row(1), &[9, 8]);
        assert_eq!(s.column(1), vec![5, 8, 1]);
    }

    #[test]
    fn agreement_and_s_hat() {
        let s = sample();
        assert_eq!(s.agreement_count(0, 1), 2);
        assert!((s.s_hat(0, 1) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.s_hat(0, 0), 1.0);
    }

    #[test]
    fn sentinel_never_agrees() {
        let s = SignatureMatrix::from_values(2, 2, vec![EMPTY_SIGNATURE, EMPTY_SIGNATURE, 3, 3]);
        // Row 0 is two empty columns: must not count.
        assert_eq!(s.agreement_count(0, 1), 1);
    }

    #[test]
    fn new_empty_is_all_sentinel() {
        let s = SignatureMatrix::new_empty(2, 3);
        assert!((0..2).all(|l| (0..3).all(|j| s.get(l, j as u32) == EMPTY_SIGNATURE)));
        assert_eq!(s.agreement_count(0, 1), 0);
        assert_eq!(s.s_hat(0, 1), 0.0);
    }

    #[test]
    fn or_signature_is_componentwise_min() {
        let s = sample();
        assert_eq!(s.or_signature(0, 1), vec![5, 8, 1]);
    }

    #[test]
    fn agreement_with_external_signature() {
        let s = sample();
        let or01 = s.or_signature(0, 1);
        // Column 0 = [5,9,1]; or = [5,8,1] → agreements at rows 0 and 2.
        assert_eq!(s.agreement_with(0, &or01), 2);
    }

    #[test]
    #[should_panic(expected = "values length must be k·m")]
    fn from_values_checks_length() {
        let _ = SignatureMatrix::from_values(2, 2, vec![0; 3]);
    }
}
