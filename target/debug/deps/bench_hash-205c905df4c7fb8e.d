/root/repo/target/debug/deps/bench_hash-205c905df4c7fb8e.d: crates/bench/benches/bench_hash.rs

/root/repo/target/debug/deps/libbench_hash-205c905df4c7fb8e.rmeta: crates/bench/benches/bench_hash.rs

crates/bench/benches/bench_hash.rs:
