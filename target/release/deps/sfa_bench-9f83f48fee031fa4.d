/root/repo/target/release/deps/sfa_bench-9f83f48fee031fa4.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsfa_bench-9f83f48fee031fa4.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsfa_bench-9f83f48fee031fa4.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
