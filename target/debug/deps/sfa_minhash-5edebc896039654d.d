/root/repo/target/debug/deps/sfa_minhash-5edebc896039654d.d: crates/minhash/src/lib.rs crates/minhash/src/builder.rs crates/minhash/src/candidates.rs crates/minhash/src/estimate.rs crates/minhash/src/explicit.rs crates/minhash/src/hashcount.rs crates/minhash/src/kmh.rs crates/minhash/src/mh.rs crates/minhash/src/persist.rs crates/minhash/src/rowsort.rs crates/minhash/src/signature.rs crates/minhash/src/theory.rs

/root/repo/target/debug/deps/sfa_minhash-5edebc896039654d: crates/minhash/src/lib.rs crates/minhash/src/builder.rs crates/minhash/src/candidates.rs crates/minhash/src/estimate.rs crates/minhash/src/explicit.rs crates/minhash/src/hashcount.rs crates/minhash/src/kmh.rs crates/minhash/src/mh.rs crates/minhash/src/persist.rs crates/minhash/src/rowsort.rs crates/minhash/src/signature.rs crates/minhash/src/theory.rs

crates/minhash/src/lib.rs:
crates/minhash/src/builder.rs:
crates/minhash/src/candidates.rs:
crates/minhash/src/estimate.rs:
crates/minhash/src/explicit.rs:
crates/minhash/src/hashcount.rs:
crates/minhash/src/kmh.rs:
crates/minhash/src/mh.rs:
crates/minhash/src/persist.rs:
crates/minhash/src/rowsort.rs:
crates/minhash/src/signature.rs:
crates/minhash/src/theory.rs:
