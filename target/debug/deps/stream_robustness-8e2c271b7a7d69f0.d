/root/repo/target/debug/deps/stream_robustness-8e2c271b7a7d69f0.d: crates/matrix/tests/stream_robustness.rs

/root/repo/target/debug/deps/stream_robustness-8e2c271b7a7d69f0: crates/matrix/tests/stream_robustness.rs

crates/matrix/tests/stream_robustness.rs:
