/root/repo/target/debug/examples/market_baskets-86c7551efa8a297c.d: examples/market_baskets.rs

/root/repo/target/debug/examples/market_baskets-86c7551efa8a297c: examples/market_baskets.rs

examples/market_baskets.rs:
