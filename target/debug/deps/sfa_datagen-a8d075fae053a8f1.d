/root/repo/target/debug/deps/sfa_datagen-a8d075fae053a8f1.d: crates/datagen/src/lib.rs crates/datagen/src/basket.rs crates/datagen/src/cf.rs crates/datagen/src/news.rs crates/datagen/src/planted.rs crates/datagen/src/synthetic.rs crates/datagen/src/weblog.rs crates/datagen/src/zipf.rs

/root/repo/target/debug/deps/libsfa_datagen-a8d075fae053a8f1.rmeta: crates/datagen/src/lib.rs crates/datagen/src/basket.rs crates/datagen/src/cf.rs crates/datagen/src/news.rs crates/datagen/src/planted.rs crates/datagen/src/synthetic.rs crates/datagen/src/weblog.rs crates/datagen/src/zipf.rs

crates/datagen/src/lib.rs:
crates/datagen/src/basket.rs:
crates/datagen/src/cf.rs:
crates/datagen/src/news.rs:
crates/datagen/src/planted.rs:
crates/datagen/src/synthetic.rs:
crates/datagen/src/weblog.rs:
crates/datagen/src/zipf.rs:
