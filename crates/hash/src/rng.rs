//! Deterministic seed derivation.
//!
//! Every randomized component in the reproduction (hash families, data
//! generators, row pairings for the H-LSH density ladder, …) takes its
//! randomness from a single root seed through a [`SeedSequence`], so that a
//! whole experiment replays bit-for-bit from one `u64`.

use crate::mix::splitmix64;

/// A stream of decorrelated 64-bit seeds derived from a root seed.
///
/// Functionally equivalent to repeatedly calling `splitmix64` on an
/// incrementing state, which is the construction used by
/// `SplittableRandom`; successive outputs are independent enough to seed
/// separate hash functions or RNGs.
///
/// # Examples
///
/// ```
/// use sfa_hash::SeedSequence;
///
/// let mut seq = SeedSequence::new(42);
/// let a = seq.next_seed();
/// let b = seq.next_seed();
/// assert_ne!(a, b);
/// // Replaying from the same root gives the same stream.
/// assert_eq!(SeedSequence::new(42).next_seed(), a);
/// ```
#[derive(Debug, Clone)]
pub struct SeedSequence {
    state: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `seed`.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Self {
            state: splitmix64(seed),
        }
    }

    /// Returns the next derived seed.
    pub fn next_seed(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    /// Derives a named sub-seed without consuming from the stream.
    ///
    /// Useful when components must get stable seeds regardless of the order
    /// in which they are constructed: `derive(label)` depends only on the
    /// root seed and `label`.
    #[must_use]
    pub const fn derive(&self, label: u64) -> u64 {
        splitmix64(self.state ^ splitmix64(label))
    }

    /// Fills `out` with derived seeds.
    pub fn fill(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.next_seed();
        }
    }
}

impl Iterator for SeedSequence {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        Some(self.next_seed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_is_identical() {
        let a: Vec<u64> = SeedSequence::new(7).take(16).collect();
        let b: Vec<u64> = SeedSequence::new(7).take(16).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_roots_diverge() {
        let a: Vec<u64> = SeedSequence::new(7).take(16).collect();
        let b: Vec<u64> = SeedSequence::new(8).take(16).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn stream_has_no_short_cycles() {
        let seeds: Vec<u64> = SeedSequence::new(0).take(4096).collect();
        let distinct: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(distinct.len(), seeds.len());
    }

    #[test]
    fn derive_is_order_independent() {
        let mut seq = SeedSequence::new(99);
        let d1 = seq.derive(1);
        let _ = seq.next_seed(); // consuming does change state...
        let seq2 = SeedSequence::new(99);
        let d2 = seq2.derive(1);
        assert_eq!(d1, d2, "derive before consumption matches a fresh sequence");
    }

    #[test]
    fn derive_labels_decorrelate() {
        let seq = SeedSequence::new(5);
        assert_ne!(seq.derive(0), seq.derive(1));
    }

    #[test]
    fn fill_matches_next() {
        let mut a = SeedSequence::new(3);
        let mut buf = [0u64; 8];
        a.fill(&mut buf);
        let b: Vec<u64> = SeedSequence::new(3).take(8).collect();
        assert_eq!(buf.to_vec(), b);
    }
}
