/root/repo/target/debug/deps/sfa_hash-40a9d18889b5cb88.d: crates/hash/src/lib.rs crates/hash/src/bucket.rs crates/hash/src/family.rs crates/hash/src/mix.rs crates/hash/src/rng.rs crates/hash/src/tabulation.rs crates/hash/src/topk.rs

/root/repo/target/debug/deps/libsfa_hash-40a9d18889b5cb88.rlib: crates/hash/src/lib.rs crates/hash/src/bucket.rs crates/hash/src/family.rs crates/hash/src/mix.rs crates/hash/src/rng.rs crates/hash/src/tabulation.rs crates/hash/src/topk.rs

/root/repo/target/debug/deps/libsfa_hash-40a9d18889b5cb88.rmeta: crates/hash/src/lib.rs crates/hash/src/bucket.rs crates/hash/src/family.rs crates/hash/src/mix.rs crates/hash/src/rng.rs crates/hash/src/tabulation.rs crates/hash/src/topk.rs

crates/hash/src/lib.rs:
crates/hash/src/bucket.rs:
crates/hash/src/family.rs:
crates/hash/src/mix.rs:
crates/hash/src/rng.rs:
crates/hash/src/tabulation.rs:
crates/hash/src/topk.rs:
