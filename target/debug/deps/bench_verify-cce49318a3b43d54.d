/root/repo/target/debug/deps/bench_verify-cce49318a3b43d54.d: crates/bench/benches/bench_verify.rs Cargo.toml

/root/repo/target/debug/deps/libbench_verify-cce49318a3b43d54.rmeta: crates/bench/benches/bench_verify.rs Cargo.toml

crates/bench/benches/bench_verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
