/root/repo/target/debug/deps/filter_validation-5d82299f1eb64058.d: crates/lsh/tests/filter_validation.rs Cargo.toml

/root/repo/target/debug/deps/libfilter_validation-5d82299f1eb64058.rmeta: crates/lsh/tests/filter_validation.rs Cargo.toml

crates/lsh/tests/filter_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
