/root/repo/target/debug/deps/fig8_mlsh-f3122e065072cf1d.d: crates/experiments/src/bin/fig8_mlsh.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_mlsh-f3122e065072cf1d.rmeta: crates/experiments/src/bin/fig8_mlsh.rs Cargo.toml

crates/experiments/src/bin/fig8_mlsh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
