/root/repo/target/debug/examples/quickstart-ceb12f4574a551b8.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-ceb12f4574a551b8.rmeta: examples/quickstart.rs

examples/quickstart.rs:
