/root/repo/target/debug/deps/sfa-d431bb022613b3f1.d: src/bin/sfa.rs

/root/repo/target/debug/deps/libsfa-d431bb022613b3f1.rmeta: src/bin/sfa.rs

src/bin/sfa.rs:
