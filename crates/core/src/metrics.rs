//! Pipeline observability: structured counters for every phase.
//!
//! [`MiningMetrics`] is threaded through the driver so one run reports,
//! for any scheme, the quantities the paper reasons about: data volume
//! scanned per pass (phases 1 and 3 are each "one sequential pass over the
//! rows"), resident signature bytes (the `O(mk)` phase-1 memory budget),
//! candidate counts surviving each generation stage (the `O(k S̄ m²)`
//! phase-2 work), bucket-occupancy histograms of the Hash-Count/LSH
//! tables, and the exact-verification outcomes.
//!
//! Everything serializes to schema-stable JSON via [`MetricsDocument`]
//! (see `docs/FORMATS.md` for the on-disk formats and `--metrics-json`
//! in the CLI for the emitter).

use sfa_json::{FromJson, Json, JsonError, ToJson};
use sfa_matrix::PassScan;
use sfa_minhash::CandidateGenStats;

use crate::config::PipelineConfig;
use crate::report::PhaseTimings;

/// Version tag written into every [`MetricsDocument`]; bump when a field
/// is renamed, removed, or changes meaning (adding fields is compatible).
///
/// Version history: 1 = initial document; 2 = adds `metrics.threads`
/// (worker count of the run; absent in v1 documents, which parse as 1);
/// 3 = adds the optional `metrics.sharding` object (budgeted out-of-core
/// runs only; absent for in-memory runs and in older documents);
/// 4 = adds `recovery.files_quarantined` and `recovery.tmp_files_removed`
/// (startup-recovery sweep counters; absent keys parse as 0);
/// 5 = adds the optional `metrics.serving` object (`sfa serve` runs only;
/// absent for batch runs and in older documents);
/// 6 = adds the optional `metrics.kernels` object (runs whose phase 3
/// used the in-memory kernel layer: dispatch arm, hybrid-container
/// tallies, container vs dense bitmap bytes; absent otherwise and in
/// older documents);
/// 7 = adds the optional `metrics.phase1` object (runs whose phase 1
/// built a sketch: the SIMD arm the signature kernels dispatched through
/// and whether the signature cache hit or stored; absent for H-LSH runs
/// and in older documents).
pub const METRICS_SCHEMA_VERSION: u32 = 7;

/// Oldest document version [`MetricsDocument::from_json`] still accepts.
pub const METRICS_SCHEMA_MIN_VERSION: u32 = 1;

/// Scan volume of one streaming pass over the table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassMetrics {
    /// Rows the consumer pulled.
    pub rows_scanned: u64,
    /// 1-entries (column ids) the consumer pulled.
    pub nonzeros_scanned: u64,
}

impl From<PassScan> for PassMetrics {
    fn from(scan: PassScan) -> Self {
        Self {
            rows_scanned: scan.rows,
            nonzeros_scanned: scan.nonzeros,
        }
    }
}

impl ToJson for PassMetrics {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("rows_scanned", self.rows_scanned)
            .field("nonzeros_scanned", self.nonzeros_scanned)
    }
}

impl FromJson for PassMetrics {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            rows_scanned: u64::from_json(json.req("rows_scanned")?)?,
            nonzeros_scanned: u64::from_json(json.req("nonzeros_scanned")?)?,
        })
    }
}

/// One named candidate-generation counter (see
/// [`CandidateGenStats::stages`] for the per-scheme naming convention).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageCount {
    /// Stage name, e.g. `counter-increments` or `threshold-admitted`.
    pub stage: String,
    /// The counter value.
    pub count: u64,
}

impl ToJson for StageCount {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("stage", self.stage.as_str())
            .field("count", self.count)
    }
}

impl FromJson for StageCount {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            stage: String::from_json(json.req("stage")?)?,
            count: u64::from_json(json.req("count")?)?,
        })
    }
}

/// Exact-verification (phase 3) outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyMetrics {
    /// Candidates the pass checked (phase 2's output size).
    pub candidates_checked: u64,
    /// Verified pairs at or above `s*` — the run's output.
    pub true_positives: u64,
    /// Candidates below `s*` that verification pruned (the scheme's false
    /// positives; they cost pass work but never reach the output).
    pub false_positives_pruned: u64,
    /// Partner probes performed by the counting loop — the per-pair
    /// intersection work summed over candidates.
    pub intersection_work: u64,
}

impl ToJson for VerifyMetrics {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("candidates_checked", self.candidates_checked)
            .field("true_positives", self.true_positives)
            .field("false_positives_pruned", self.false_positives_pruned)
            .field("intersection_work", self.intersection_work)
    }
}

impl FromJson for VerifyMetrics {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            candidates_checked: u64::from_json(json.req("candidates_checked")?)?,
            true_positives: u64::from_json(json.req("true_positives")?)?,
            false_positives_pruned: u64::from_json(json.req("false_positives_pruned")?)?,
            intersection_work: u64::from_json(json.req("intersection_work")?)?,
        })
    }
}

/// Fault-recovery counters: what the run had to absorb (retries,
/// refetches) and how checkpointing participated (writes, resume point).
///
/// All-zero for an undisturbed, checkpoint-free run — the common case —
/// so consumers can treat a missing `recovery` object (documents written
/// before this field existed) as "nothing happened".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryMetrics {
    /// Transient stream errors absorbed by retry (never surfaced).
    pub transient_errors_retried: u64,
    /// Rows fast-forwarded past while re-establishing stream position
    /// after transient errors.
    pub rows_refetched: u64,
    /// Checkpoint files written during the run.
    pub checkpoints_written: u64,
    /// Row cursor the run resumed from (0 = started fresh).
    pub resumed_from_row: u64,
    /// Corrupt or stale state files the startup recovery sweep moved into
    /// quarantine (schema v4).
    pub files_quarantined: u64,
    /// Stray `.tmp` staging files the startup recovery sweep deleted
    /// (schema v4).
    pub tmp_files_removed: u64,
}

impl ToJson for RecoveryMetrics {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("transient_errors_retried", self.transient_errors_retried)
            .field("rows_refetched", self.rows_refetched)
            .field("checkpoints_written", self.checkpoints_written)
            .field("resumed_from_row", self.resumed_from_row)
            .field("files_quarantined", self.files_quarantined)
            .field("tmp_files_removed", self.tmp_files_removed)
    }
}

impl FromJson for RecoveryMetrics {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        // The quarantine counters arrived in schema v4; absent keys (older
        // documents) parse as zero, matching "nothing was quarantined".
        let opt =
            |key: &str| -> Result<u64, JsonError> { json.get(key).map_or(Ok(0), u64::from_json) };
        Ok(Self {
            transient_errors_retried: u64::from_json(json.req("transient_errors_retried")?)?,
            rows_refetched: u64::from_json(json.req("rows_refetched")?)?,
            checkpoints_written: u64::from_json(json.req("checkpoints_written")?)?,
            resumed_from_row: u64::from_json(json.req("resumed_from_row")?)?,
            files_quarantined: opt("files_quarantined")?,
            tmp_files_removed: opt("tmp_files_removed")?,
        })
    }
}

/// Out-of-core accounting for a budgeted sharded run
/// ([`Pipeline::run_sharded`](crate::Pipeline::run_sharded)): how the
/// pair space was partitioned, what was spilled, and the peak of the
/// budget-tracked state. Emitted only by sharded runs — in-memory runs
/// omit the `sharding` object entirely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardingMetrics {
    /// The byte budget the run was given.
    pub memory_budget: u64,
    /// Final pair-shard count (the partition width that fit the budget).
    pub shards: u64,
    /// Times phase 2 overflowed the budget and restarted with the shard
    /// count doubled.
    pub shard_restarts: u64,
    /// Phase-2 shard passes executed, including passes discarded by a
    /// restart and excluding shards resumed from spill.
    pub generation_passes: u64,
    /// Phase-3 verify groups — each one full streaming pass over the rows.
    pub verify_groups: u64,
    /// Total bytes written to shard/group spill files.
    pub spill_bytes: u64,
    /// Peak bytes of budget-tracked state (pair-counter tables and
    /// resident per-group candidate state); never exceeds `memory_budget`
    /// for a run that completed without error.
    pub peak_tracked_bytes: u64,
}

impl ToJson for ShardingMetrics {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("memory_budget", self.memory_budget)
            .field("shards", self.shards)
            .field("shard_restarts", self.shard_restarts)
            .field("generation_passes", self.generation_passes)
            .field("verify_groups", self.verify_groups)
            .field("spill_bytes", self.spill_bytes)
            .field("peak_tracked_bytes", self.peak_tracked_bytes)
    }
}

impl FromJson for ShardingMetrics {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            memory_budget: u64::from_json(json.req("memory_budget")?)?,
            shards: u64::from_json(json.req("shards")?)?,
            shard_restarts: u64::from_json(json.req("shard_restarts")?)?,
            generation_passes: u64::from_json(json.req("generation_passes")?)?,
            verify_groups: u64::from_json(json.req("verify_groups")?)?,
            spill_bytes: u64::from_json(json.req("spill_bytes")?)?,
            peak_tracked_bytes: u64::from_json(json.req("peak_tracked_bytes")?)?,
        })
    }
}

/// Request accounting for one `sfa serve` session (schema v5). Emitted
/// only by the serve subcommand — batch runs omit the `serving` object
/// entirely.
///
/// The load-balance invariant the CI smoke job asserts:
/// `answered + shed + timed_out == accepted` — every request the server
/// admitted got exactly one disposition. `malformed` is a sub-count of
/// `answered` (malformed requests are answered, with `ERR`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServingMetrics {
    /// Requests admitted: every request read off a socket, plus every
    /// connection shed at the admission gate.
    pub accepted: u64,
    /// Requests that got a reply (`OK …` or `ERR …`).
    pub answered: u64,
    /// Requests refused with `OVERLOADED` by admission control.
    pub shed: u64,
    /// Requests dropped by a read/write timeout or a per-request deadline.
    pub timed_out: u64,
    /// Sub-count of `answered`: syntactically invalid requests answered
    /// with `ERR`.
    pub malformed: u64,
    /// Rows acknowledged via `INGEST`.
    pub ingested_rows: u64,
    /// Snapshot rebuilds atomically swapped in.
    pub snapshot_swaps: u64,
    /// Wall-clock seconds the server was accepting traffic.
    pub uptime_secs: f64,
    /// Answered requests per second over the uptime.
    pub qps: f64,
    /// Median reply latency of answered requests, in microseconds.
    pub p50_micros: u64,
    /// 99th-percentile reply latency of answered requests, in
    /// microseconds.
    pub p99_micros: u64,
}

impl ToJson for ServingMetrics {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("accepted", self.accepted)
            .field("answered", self.answered)
            .field("shed", self.shed)
            .field("timed_out", self.timed_out)
            .field("malformed", self.malformed)
            .field("ingested_rows", self.ingested_rows)
            .field("snapshot_swaps", self.snapshot_swaps)
            .field("uptime_secs", self.uptime_secs)
            .field("qps", self.qps)
            .field("p50_micros", self.p50_micros)
            .field("p99_micros", self.p99_micros)
    }
}

impl FromJson for ServingMetrics {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            accepted: u64::from_json(json.req("accepted")?)?,
            answered: u64::from_json(json.req("answered")?)?,
            shed: u64::from_json(json.req("shed")?)?,
            timed_out: u64::from_json(json.req("timed_out")?)?,
            malformed: u64::from_json(json.req("malformed")?)?,
            ingested_rows: u64::from_json(json.req("ingested_rows")?)?,
            snapshot_swaps: u64::from_json(json.req("snapshot_swaps")?)?,
            uptime_secs: f64::from_json(json.req("uptime_secs")?)?,
            qps: f64::from_json(json.req("qps")?)?,
            p50_micros: u64::from_json(json.req("p50_micros")?)?,
            p99_micros: u64::from_json(json.req("p99_micros")?)?,
        })
    }
}

/// Kernel-layer accounting of the in-memory phase 3 (schema v6): which
/// SIMD arm the process dispatched to and what the roaring-style hybrid
/// containers cost versus dense bitmaps. Emitted only by runs that
/// exercised the in-memory verifier — streaming and sharded runs omit
/// the `kernels` object entirely.
///
/// `dispatch_arm` is machine-dependent (`"avx2"` on most x86-64 hosts,
/// `"scalar"` under `--kernel scalar`); `bench-diff` strips it alongside
/// the timing blocks. The container counters are deterministic
/// functions of the dataset and are diffed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelMetrics {
    /// The popcount/merge arm every exact count dispatched through
    /// (`"scalar"` | `"avx2"` | `"neon"`).
    pub dispatch_arm: String,
    /// Whether hybrid containers were materialized (false = the
    /// candidate columns busted the in-memory cap and the per-pair
    /// adaptive kernel ran; the container counters below are zero).
    pub used_containers: bool,
    /// 2^16-row chunks stored as sorted `u16` arrays.
    pub array_containers: u64,
    /// Chunks stored as 8 KiB bitmaps.
    pub bitmap_containers: u64,
    /// Chunks stored as run lists.
    pub run_containers: u64,
    /// Actual payload bytes of the materialized hybrid columns.
    pub container_bytes: u64,
    /// What dense `⌈n/64⌉`-word bitmaps over the same columns would
    /// have cost.
    pub raw_bitmap_bytes: u64,
}

impl ToJson for KernelMetrics {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("dispatch_arm", self.dispatch_arm.as_str())
            .field("used_containers", self.used_containers)
            .field("array_containers", self.array_containers)
            .field("bitmap_containers", self.bitmap_containers)
            .field("run_containers", self.run_containers)
            .field("container_bytes", self.container_bytes)
            .field("raw_bitmap_bytes", self.raw_bitmap_bytes)
    }
}

impl FromJson for KernelMetrics {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            dispatch_arm: String::from_json(json.req("dispatch_arm")?)?,
            used_containers: bool::from_json(json.req("used_containers")?)?,
            array_containers: u64::from_json(json.req("array_containers")?)?,
            bitmap_containers: u64::from_json(json.req("bitmap_containers")?)?,
            run_containers: u64::from_json(json.req("run_containers")?)?,
            container_bytes: u64::from_json(json.req("container_bytes")?)?,
            raw_bitmap_bytes: u64::from_json(json.req("raw_bitmap_bytes")?)?,
        })
    }
}

impl From<crate::verify::InMemoryKernelReport> for KernelMetrics {
    fn from(report: crate::verify::InMemoryKernelReport) -> Self {
        Self {
            dispatch_arm: report.dispatch_arm.to_owned(),
            used_containers: report.used_containers,
            array_containers: report.container.array_containers,
            bitmap_containers: report.container.bitmap_containers,
            run_containers: report.container.run_containers,
            container_bytes: report.container.container_bytes,
            raw_bitmap_bytes: report.container.raw_bitmap_bytes,
        }
    }
}

impl ServingMetrics {
    /// Whether the accounting balances: every accepted request ended in
    /// exactly one of answered / shed / timed out.
    #[must_use]
    pub fn balances(&self) -> bool {
        self.answered + self.shed + self.timed_out == self.accepted
            && self.malformed <= self.answered
    }
}

/// Phase-1 provenance (schema v7): which SIMD arm the signature kernels
/// dispatched through and how the signature cache participated. Emitted
/// by every run that built (or loaded) a phase-1 sketch — H-LSH runs,
/// which work directly on the data, omit the `phase1` object entirely.
///
/// `dispatch_arm` is machine-dependent, like
/// [`KernelMetrics::dispatch_arm`], and `bench-diff` strips it under the
/// same key name. The cache flags are deterministic for a given command
/// sequence and are diffed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Phase1Metrics {
    /// The min-merge/sieve arm phase 1 dispatched through
    /// (`"scalar"` | `"avx2"` | `"neon"`).
    pub dispatch_arm: String,
    /// Whether the sketch was loaded from the signature cache (phase 1's
    /// table pass was skipped entirely).
    pub cache_hit: bool,
    /// Whether the freshly computed sketch was stored into the signature
    /// cache (always `false` on a hit or when no cache is configured).
    pub cache_stored: bool,
}

impl ToJson for Phase1Metrics {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("dispatch_arm", self.dispatch_arm.as_str())
            .field("cache_hit", self.cache_hit)
            .field("cache_stored", self.cache_stored)
    }
}

impl FromJson for Phase1Metrics {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            dispatch_arm: String::from_json(json.req("dispatch_arm")?)?,
            cache_hit: bool::from_json(json.req("cache_hit")?)?,
            cache_stored: bool::from_json(json.req("cache_stored")?)?,
        })
    }
}

/// Structured counters for one pipeline run, phase by phase.
///
/// # Examples
///
/// ```
/// use sfa_core::metrics::MiningMetrics;
/// use sfa_json::ToJson;
///
/// let mut metrics = MiningMetrics::default();
/// metrics.scheme = "MH".to_owned();
/// metrics.signature_pass.rows_scanned = 1_000;
/// metrics.signature_pass.nonzeros_scanned = 12_345;
/// metrics.signature_bytes = 400 * 500 * 8;
/// metrics.verification.true_positives = 7;
///
/// let json = metrics.to_json().to_string_compact();
/// let back: MiningMetrics = sfa_json::from_str(&json).unwrap();
/// assert_eq!(back, metrics);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MiningMetrics {
    /// Short scheme name ([`Scheme::name`](crate::config::Scheme::name)).
    pub scheme: String,
    /// Worker threads the run used (1 = sequential, the default).
    pub threads: u64,
    /// Phase 1: the signature pass's scan volume.
    pub signature_pass: PassMetrics,
    /// Phase 3: the verification pass's scan volume.
    pub verify_pass: PassMetrics,
    /// Resident bytes of the phase-1 summary (signature matrix, bottom-k
    /// sketches, or the materialized matrix for H-LSH).
    pub signature_bytes: u64,
    /// Phase 2: named counters in generation order.
    pub candidate_stages: Vec<StageCount>,
    /// Phase 2's output size (candidate pairs handed to verification).
    pub candidates_generated: u64,
    /// `bucket_histogram[s]` = hash-table buckets (or sorted runs) holding
    /// exactly `s` columns, aggregated over the whole candidate phase.
    pub bucket_histogram: Vec<u64>,
    /// Phase 3 outcomes.
    pub verification: VerifyMetrics,
    /// Fault-recovery events (retries, refetches, checkpoints, resume).
    pub recovery: RecoveryMetrics,
    /// Out-of-core accounting; `None` for in-memory runs (the key is
    /// omitted from the JSON entirely).
    pub sharding: Option<ShardingMetrics>,
    /// Request accounting; `None` for batch runs (the key is omitted from
    /// the JSON entirely). Emitted by `sfa serve` (schema v5).
    pub serving: Option<ServingMetrics>,
    /// Kernel-layer accounting; `None` when phase 3 never ran through
    /// the in-memory kernel dispatch (the key is omitted from the JSON
    /// entirely). Emitted by pool runs (schema v6).
    pub kernels: Option<KernelMetrics>,
    /// Phase-1 provenance; `None` for H-LSH runs, which build no sketch
    /// (the key is omitted from the JSON entirely). Schema v7.
    pub phase1: Option<Phase1Metrics>,
}

impl Default for MiningMetrics {
    fn default() -> Self {
        Self {
            scheme: String::new(),
            threads: 1,
            signature_pass: PassMetrics::default(),
            verify_pass: PassMetrics::default(),
            signature_bytes: 0,
            candidate_stages: Vec::new(),
            candidates_generated: 0,
            bucket_histogram: Vec::new(),
            verification: VerifyMetrics::default(),
            recovery: RecoveryMetrics::default(),
            sharding: None,
            serving: None,
            kernels: None,
            phase1: None,
        }
    }
}

impl MiningMetrics {
    /// Folds a generator's [`CandidateGenStats`] into the phase-2 fields.
    pub fn absorb_candidate_stats(&mut self, stats: CandidateGenStats) {
        self.candidate_stages = stats
            .stages
            .into_iter()
            .map(|(stage, count)| StageCount {
                stage: stage.to_owned(),
                count,
            })
            .collect();
        self.bucket_histogram = stats.bucket_histogram;
    }

    /// The count recorded under `stage`, if any.
    #[must_use]
    pub fn stage(&self, stage: &str) -> Option<u64> {
        self.candidate_stages
            .iter()
            .find(|s| s.stage == stage)
            .map(|s| s.count)
    }
}

impl ToJson for MiningMetrics {
    fn to_json(&self) -> Json {
        let json = Json::obj()
            .field("scheme", self.scheme.as_str())
            .field("threads", self.threads)
            .field("signature_pass", self.signature_pass)
            .field("verify_pass", self.verify_pass)
            .field("signature_bytes", self.signature_bytes)
            .field("candidate_stages", &self.candidate_stages[..])
            .field("candidates_generated", self.candidates_generated)
            .field("bucket_histogram", &self.bucket_histogram[..])
            .field("verification", self.verification)
            .field("recovery", self.recovery);
        // In-memory runs omit the key so their documents are unchanged
        // from schema v2 (a compatible field addition).
        let json = match self.sharding {
            Some(sharding) => json.field("sharding", sharding),
            None => json,
        };
        // Batch runs omit the key; only `sfa serve` emits it (schema v5).
        let json = match self.serving {
            Some(serving) => json.field("serving", serving),
            None => json,
        };
        // Only runs through the in-memory kernel dispatch emit the key
        // (schema v6).
        let json = match &self.kernels {
            Some(kernels) => json.field("kernels", kernels.clone()),
            None => json,
        };
        // Only runs that built a phase-1 sketch emit the key (schema v7).
        match &self.phase1 {
            Some(phase1) => json.field("phase1", phase1.clone()),
            None => json,
        }
    }
}

impl FromJson for MiningMetrics {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            scheme: String::from_json(json.req("scheme")?)?,
            // Schema-v1 documents predate the parallel layer; absence
            // means a sequential run.
            threads: json
                .get("threads")
                .map(u64::from_json)
                .transpose()?
                .unwrap_or(1),
            signature_pass: PassMetrics::from_json(json.req("signature_pass")?)?,
            verify_pass: PassMetrics::from_json(json.req("verify_pass")?)?,
            signature_bytes: u64::from_json(json.req("signature_bytes")?)?,
            candidate_stages: Vec::<StageCount>::from_json(json.req("candidate_stages")?)?,
            candidates_generated: u64::from_json(json.req("candidates_generated")?)?,
            bucket_histogram: Vec::<u64>::from_json(json.req("bucket_histogram")?)?,
            verification: VerifyMetrics::from_json(json.req("verification")?)?,
            // Documents written before the recovery counters existed omit
            // the key; absence means an undisturbed run (schema-compatible
            // field addition, so no version bump).
            recovery: json
                .get("recovery")
                .map(RecoveryMetrics::from_json)
                .transpose()?
                .unwrap_or_default(),
            // Only budgeted sharded runs emit the key; absence means an
            // in-memory run (and covers all pre-v3 documents).
            sharding: json
                .get("sharding")
                .map(ShardingMetrics::from_json)
                .transpose()?,
            // Only `sfa serve` emits the key; absence means a batch run
            // (and covers all pre-v5 documents).
            serving: json
                .get("serving")
                .map(ServingMetrics::from_json)
                .transpose()?,
            // Only in-memory kernel-dispatch runs emit the key; absence
            // covers streaming/sharded runs and all pre-v6 documents.
            kernels: json
                .get("kernels")
                .map(KernelMetrics::from_json)
                .transpose()?,
            // Only sketch-building runs emit the key; absence covers
            // H-LSH runs and all pre-v7 documents.
            phase1: json
                .get("phase1")
                .map(Phase1Metrics::from_json)
                .transpose()?,
        })
    }
}

/// The schema-stable document `sfa mine --metrics-json` writes: the
/// configuration, phase timings, and [`MiningMetrics`] of one run under a
/// [`METRICS_SCHEMA_VERSION`] tag.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsDocument {
    /// The writing library's [`METRICS_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// The run's configuration.
    pub config: PipelineConfig,
    /// Wall-clock phase timings.
    pub timings: PhaseTimings,
    /// The structured counters.
    pub metrics: MiningMetrics,
}

impl MetricsDocument {
    /// Packages a run's observables under the current schema version.
    #[must_use]
    pub fn new(config: PipelineConfig, timings: PhaseTimings, metrics: MiningMetrics) -> Self {
        Self {
            schema_version: METRICS_SCHEMA_VERSION,
            config,
            timings,
            metrics,
        }
    }
}

impl ToJson for MetricsDocument {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("schema_version", self.schema_version)
            .field("config", self.config)
            .field("timings", self.timings)
            .field("metrics", &self.metrics)
    }
}

impl FromJson for MetricsDocument {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let schema_version = u32::from_json(json.req("schema_version")?)?;
        if !(METRICS_SCHEMA_MIN_VERSION..=METRICS_SCHEMA_VERSION).contains(&schema_version) {
            return Err(JsonError::new(format!(
                "unsupported metrics schema version {schema_version} \
                 (supported: {METRICS_SCHEMA_MIN_VERSION}..={METRICS_SCHEMA_VERSION})"
            )));
        }
        Ok(Self {
            schema_version,
            config: PipelineConfig::from_json(json.req("config")?)?,
            timings: PhaseTimings::from_json(json.req("timings")?)?,
            metrics: MiningMetrics::from_json(json.req("metrics")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use std::time::Duration;

    fn sample_metrics() -> MiningMetrics {
        MiningMetrics {
            scheme: "MH".to_owned(),
            threads: 4,
            signature_pass: PassMetrics {
                rows_scanned: 100,
                nonzeros_scanned: 450,
            },
            verify_pass: PassMetrics {
                rows_scanned: 100,
                nonzeros_scanned: 450,
            },
            signature_bytes: 64 * 7 * 8,
            candidate_stages: vec![
                StageCount {
                    stage: "counter-increments".to_owned(),
                    count: 812,
                },
                StageCount {
                    stage: "threshold-admitted".to_owned(),
                    count: 2,
                },
            ],
            candidates_generated: 2,
            bucket_histogram: vec![0, 3, 5, 1],
            verification: VerifyMetrics {
                candidates_checked: 2,
                true_positives: 1,
                false_positives_pruned: 1,
                intersection_work: 120,
            },
            recovery: RecoveryMetrics {
                transient_errors_retried: 3,
                rows_refetched: 17,
                checkpoints_written: 2,
                resumed_from_row: 0,
                files_quarantined: 1,
                tmp_files_removed: 1,
            },
            sharding: None,
            serving: None,
            kernels: None,
            phase1: None,
        }
    }

    fn sample_serving() -> ServingMetrics {
        ServingMetrics {
            accepted: 120,
            answered: 100,
            shed: 15,
            timed_out: 5,
            malformed: 7,
            ingested_rows: 12,
            snapshot_swaps: 2,
            uptime_secs: 1.5,
            qps: 66.5,
            p50_micros: 180,
            p99_micros: 2_400,
        }
    }

    fn sample_kernels() -> KernelMetrics {
        KernelMetrics {
            dispatch_arm: "avx2".to_string(),
            used_containers: true,
            array_containers: 40,
            bitmap_containers: 3,
            run_containers: 7,
            container_bytes: 120_000,
            raw_bitmap_bytes: 2_000_000,
        }
    }

    #[test]
    fn metrics_json_roundtrip() {
        let metrics = sample_metrics();
        let json = metrics.to_json().to_string_compact();
        let back: MiningMetrics = sfa_json::from_str(&json).unwrap();
        assert_eq!(back, metrics);
    }

    #[test]
    fn document_roundtrip_every_scheme() {
        let schemes = [
            Scheme::Mh { k: 400, delta: 0.2 },
            Scheme::MhRowSort { k: 400, delta: 0.2 },
            Scheme::Kmh { k: 100, delta: 0.2 },
            Scheme::MLsh {
                k: 100,
                r: 5,
                l: 20,
                sampled: false,
            },
            Scheme::HLsh {
                r: 8,
                l: 4,
                t: 4,
                max_levels: 10,
            },
        ];
        for scheme in schemes {
            let config = PipelineConfig::new(scheme, 0.7, 99);
            let timings = PhaseTimings {
                signatures: Duration::from_millis(120),
                candidates: Duration::from_micros(3500),
                verify: Duration::from_millis(80),
            };
            let mut metrics = sample_metrics();
            metrics.scheme = scheme.name().to_owned();
            let doc = MetricsDocument::new(config, timings, metrics);
            let json = sfa_json::to_string_pretty(&doc);
            let back: MetricsDocument = sfa_json::from_str(&json).unwrap();
            assert_eq!(back, doc, "{json}");
        }
    }

    #[test]
    fn document_schema_is_stable() {
        // Guards the key set the external consumers rely on; renaming any
        // of these is a schema break and must bump METRICS_SCHEMA_VERSION.
        let doc = MetricsDocument::new(
            PipelineConfig::new(Scheme::Mh { k: 8, delta: 0.2 }, 0.5, 1),
            PhaseTimings::default(),
            sample_metrics(),
        );
        let json = doc.to_json();
        for key in ["schema_version", "config", "timings", "metrics"] {
            assert!(json.get(key).is_some(), "missing top-level key {key}");
        }
        let metrics = json.get("metrics").unwrap();
        for key in [
            "scheme",
            "threads",
            "signature_pass",
            "verify_pass",
            "signature_bytes",
            "candidate_stages",
            "candidates_generated",
            "bucket_histogram",
            "verification",
            "recovery",
        ] {
            assert!(metrics.get(key).is_some(), "missing metrics key {key}");
        }
        let recovery = metrics.get("recovery").unwrap();
        for key in [
            "transient_errors_retried",
            "rows_refetched",
            "checkpoints_written",
            "resumed_from_row",
            "files_quarantined",
            "tmp_files_removed",
        ] {
            assert!(recovery.get(key).is_some(), "missing recovery key {key}");
        }
        let verification = metrics.get("verification").unwrap();
        for key in [
            "candidates_checked",
            "true_positives",
            "false_positives_pruned",
            "intersection_work",
        ] {
            assert!(
                verification.get(key).is_some(),
                "missing verification key {key}"
            );
        }
        // `sharding` is emitted only for budgeted sharded runs; in-memory
        // documents must not carry the key at all.
        assert!(metrics.get("sharding").is_none());
        let mut sharded = sample_metrics();
        sharded.sharding = Some(ShardingMetrics::default());
        let sharded_json = sharded.to_json();
        let sharding = sharded_json.get("sharding").unwrap();
        for key in [
            "memory_budget",
            "shards",
            "shard_restarts",
            "generation_passes",
            "verify_groups",
            "spill_bytes",
            "peak_tracked_bytes",
        ] {
            assert!(sharding.get(key).is_some(), "missing sharding key {key}");
        }
        // `serving` is emitted only by `sfa serve`; batch documents must
        // not carry the key at all.
        assert!(metrics.get("serving").is_none());
        let mut serving_metrics = sample_metrics();
        serving_metrics.serving = Some(sample_serving());
        let serving_json = serving_metrics.to_json();
        let serving = serving_json.get("serving").unwrap();
        for key in [
            "accepted",
            "answered",
            "shed",
            "timed_out",
            "malformed",
            "ingested_rows",
            "snapshot_swaps",
            "uptime_secs",
            "qps",
            "p50_micros",
            "p99_micros",
        ] {
            assert!(serving.get(key).is_some(), "missing serving key {key}");
        }
        // `kernels` is emitted only by runs that went through the in-memory
        // verifier; documents without it must not carry the key at all.
        assert!(metrics.get("kernels").is_none());
        let mut kernel_metrics = sample_metrics();
        kernel_metrics.kernels = Some(sample_kernels());
        let kernel_json = kernel_metrics.to_json();
        let kernels = kernel_json.get("kernels").unwrap();
        for key in [
            "dispatch_arm",
            "used_containers",
            "array_containers",
            "bitmap_containers",
            "run_containers",
            "container_bytes",
            "raw_bitmap_bytes",
        ] {
            assert!(kernels.get(key).is_some(), "missing kernels key {key}");
        }
        // `phase1` is emitted only by runs that built a sketch; documents
        // without it must not carry the key at all.
        assert!(metrics.get("phase1").is_none());
        let mut phase1_metrics = sample_metrics();
        phase1_metrics.phase1 = Some(Phase1Metrics {
            dispatch_arm: "avx2".to_owned(),
            cache_hit: true,
            cache_stored: false,
        });
        let phase1_json = phase1_metrics.to_json();
        let phase1 = phase1_json.get("phase1").unwrap();
        for key in ["dispatch_arm", "cache_hit", "cache_stored"] {
            assert!(phase1.get(key).is_some(), "missing phase1 key {key}");
        }
    }

    #[test]
    fn phase1_metrics_round_trip() {
        let mut metrics = sample_metrics();
        metrics.phase1 = Some(Phase1Metrics {
            dispatch_arm: "scalar".to_owned(),
            cache_hit: false,
            cache_stored: true,
        });
        let json = metrics.to_json().to_string_compact();
        let back: MiningMetrics = sfa_json::from_str(&json).unwrap();
        assert_eq!(back, metrics);
    }

    #[test]
    fn documents_without_phase1_key_still_parse() {
        // Pre-v7 documents carry no `phase1` key; it must parse as None,
        // not error.
        let metrics = sample_metrics();
        let json = metrics.to_json();
        assert!(json.get("phase1").is_none());
        let back = MiningMetrics::from_json(&json).unwrap();
        assert_eq!(back.phase1, None);
        assert_eq!(back, metrics);
    }

    #[test]
    fn kernel_metrics_round_trip() {
        let mut metrics = sample_metrics();
        metrics.kernels = Some(sample_kernels());
        let json = metrics.to_json().to_string_compact();
        let back: MiningMetrics = sfa_json::from_str(&json).unwrap();
        assert_eq!(back, metrics);
    }

    #[test]
    fn documents_without_kernels_key_still_parse() {
        // Pre-v6 documents carry no `kernels` key; it must parse as None,
        // not error.
        let metrics = sample_metrics();
        let json = metrics.to_json();
        assert!(json.get("kernels").is_none());
        let back = MiningMetrics::from_json(&json).unwrap();
        assert_eq!(back.kernels, None);
        assert_eq!(back, metrics);
    }

    #[test]
    fn serving_metrics_round_trip() {
        let mut metrics = sample_metrics();
        metrics.serving = Some(sample_serving());
        let json = metrics.to_json().to_string_compact();
        let back: MiningMetrics = sfa_json::from_str(&json).unwrap();
        assert_eq!(back, metrics);
    }

    #[test]
    fn documents_without_serving_key_parse_as_batch() {
        // Pre-v5 documents (and v5 batch runs) carry no `serving` key; it
        // must parse as None, not error.
        let metrics = sample_metrics();
        let json = metrics.to_json();
        assert!(json.get("serving").is_none());
        let back = MiningMetrics::from_json(&json).unwrap();
        assert_eq!(back.serving, None);
        assert_eq!(back, metrics);
    }

    #[test]
    fn serving_balance_invariant() {
        let mut s = sample_serving();
        assert!(s.balances(), "100 + 15 + 5 == 120");
        s.shed += 1;
        assert!(!s.balances(), "a double-counted request must not balance");
        s.shed -= 1;
        s.malformed = s.answered + 1;
        assert!(!s.balances(), "malformed exceeds answered");
    }

    #[test]
    fn sharding_metrics_round_trip() {
        let mut metrics = sample_metrics();
        metrics.sharding = Some(ShardingMetrics {
            memory_budget: 1 << 20,
            shards: 4,
            shard_restarts: 1,
            generation_passes: 6,
            verify_groups: 2,
            spill_bytes: 12_345,
            peak_tracked_bytes: 900_000,
        });
        let json = metrics.to_json().to_string_compact();
        let back: MiningMetrics = sfa_json::from_str(&json).unwrap();
        assert_eq!(back, metrics);
    }

    #[test]
    fn documents_without_sharding_key_parse_as_in_memory() {
        // Schema-v2 documents (and v3 in-memory runs) carry no `sharding`
        // key; it must parse as None, not error.
        let metrics = sample_metrics();
        let json = metrics.to_json();
        assert!(json.get("sharding").is_none());
        let back = MiningMetrics::from_json(&json).unwrap();
        assert_eq!(back.sharding, None);
        assert_eq!(back, metrics);
    }

    #[test]
    fn documents_without_recovery_key_still_parse() {
        // Metrics JSON written before the recovery counters existed: the
        // key is absent and must default to all-zero, not error.
        let mut metrics = sample_metrics();
        metrics.recovery = RecoveryMetrics::default();
        let json = metrics.to_json();
        let legacy = match json {
            Json::Obj(fields) => Json::Obj(
                fields
                    .into_iter()
                    .filter(|(k, _)| k != "recovery")
                    .collect(),
            ),
            other => other,
        };
        assert!(legacy.get("recovery").is_none());
        let back = MiningMetrics::from_json(&legacy).unwrap();
        assert_eq!(back, metrics);
    }

    #[test]
    fn documents_without_threads_key_parse_as_sequential() {
        // Schema-v1 metrics predate the parallel layer: no `threads` key,
        // parsed as a single-threaded run.
        let mut metrics = sample_metrics();
        metrics.threads = 1;
        let json = metrics.to_json();
        let legacy = match json {
            Json::Obj(fields) => {
                Json::Obj(fields.into_iter().filter(|(k, _)| k != "threads").collect())
            }
            other => other,
        };
        assert!(legacy.get("threads").is_none());
        let back = MiningMetrics::from_json(&legacy).unwrap();
        assert_eq!(back, metrics);
    }

    #[test]
    fn schema_v1_documents_still_parse() {
        let doc = MetricsDocument::new(
            PipelineConfig::new(Scheme::Mh { k: 8, delta: 0.2 }, 0.5, 1),
            PhaseTimings::default(),
            sample_metrics(),
        );
        let mut json = doc.to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::U64(u64::from(METRICS_SCHEMA_MIN_VERSION));
        }
        let back = MetricsDocument::from_json(&json).unwrap();
        assert_eq!(back.schema_version, METRICS_SCHEMA_MIN_VERSION);
        assert_eq!(back.metrics, doc.metrics);
    }

    #[test]
    fn rejects_schema_version_zero() {
        let doc = MetricsDocument::new(
            PipelineConfig::new(Scheme::Mh { k: 8, delta: 0.2 }, 0.5, 1),
            PhaseTimings::default(),
            sample_metrics(),
        );
        let mut json = doc.to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::U64(0);
        }
        assert!(MetricsDocument::from_json(&json).is_err());
    }

    #[test]
    fn rejects_future_schema_version() {
        let doc = MetricsDocument::new(
            PipelineConfig::new(Scheme::Mh { k: 8, delta: 0.2 }, 0.5, 1),
            PhaseTimings::default(),
            sample_metrics(),
        );
        let mut json = doc.to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::U64(u64::from(METRICS_SCHEMA_VERSION) + 1);
        }
        assert!(MetricsDocument::from_json(&json).is_err());
    }

    #[test]
    fn absorb_translates_generator_stats() {
        let mut stats = CandidateGenStats::default();
        stats.record("counter-increments", 10);
        stats.record("threshold-admitted", 3);
        stats.bucket_histogram = vec![0, 2, 1];
        let mut metrics = MiningMetrics::default();
        metrics.absorb_candidate_stats(stats);
        assert_eq!(metrics.stage("counter-increments"), Some(10));
        assert_eq!(metrics.stage("threshold-admitted"), Some(3));
        assert_eq!(metrics.stage("missing"), None);
        assert_eq!(metrics.bucket_histogram, vec![0, 2, 1]);
    }
}
