/root/repo/target/debug/deps/sfa_experiments-6105f23dbd90218d.d: crates/experiments/src/lib.rs

/root/repo/target/debug/deps/libsfa_experiments-6105f23dbd90218d.rmeta: crates/experiments/src/lib.rs

crates/experiments/src/lib.rs:
