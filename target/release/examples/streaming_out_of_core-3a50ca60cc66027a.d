/root/repo/target/release/examples/streaming_out_of_core-3a50ca60cc66027a.d: examples/streaming_out_of_core.rs

/root/repo/target/release/examples/streaming_out_of_core-3a50ca60cc66027a: examples/streaming_out_of_core.rs

examples/streaming_out_of_core.rs:
