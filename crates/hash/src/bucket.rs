//! Hash-count machinery: bucket tables and reusable sparse counters.
//!
//! The paper's candidate-generation algorithms (§3.1) revolve around two
//! small data structures:
//!
//! * a **bucket table** mapping a hash value to the list of columns whose
//!   signature contains it ("buckets … store column-indices for all columns
//!   `c_i` with some element of `SIG_i` hashing into that bucket"), and
//! * **reusable counters**: "to avoid `O(m²)` counter initializations, we
//!   reuse the same `O(m)` counters … and remember and reinitialize only
//!   counters that were incremented at least once" — implemented as
//!   [`SparseCounters`].
//!
//! [`PairCounter`] packs `(i, j)` column pairs into one `u64` key over a
//! fast hash map, which is the convenient form for LSH bucket scans.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A minimal fast `Hasher` for integer-keyed maps (FxHash-style fold-mul).
///
/// Collision attacks are irrelevant here (keys are our own hash values), so
/// we trade SipHash's robustness for speed, as any database engine does for
/// internal integer maps.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fold whole 8-byte words instead of one mul per byte; only the
        // sub-word tail goes through the byte path.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.write_u64(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        for &b in chunks.remainder() {
            self.write_u8(b);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.state = (self.state.rotate_left(5) ^ n).wrapping_mul(FX_SEED);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the fast integer hasher.
pub type FastHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the fast integer hasher.
pub type FastHashSet<K> = HashSet<K, FxBuildHasher>;

/// Packs an ordered column pair into a single `u64` key (requires `i < j`).
#[inline]
#[must_use]
pub fn pack_pair(i: u32, j: u32) -> u64 {
    debug_assert!(i < j, "pairs must be ordered: {i} !< {j}");
    (u64::from(i) << 32) | u64::from(j)
}

/// Unpacks a key produced by [`pack_pair`].
#[inline]
#[must_use]
pub fn unpack_pair(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// Open-addressing `u64 → u32` counter table for [`pack_pair`] keys.
///
/// The hot loop of every phase-2 generator is "bump the counter for this
/// pair"; a general `HashMap<u64, u32>` pays for SipHash-free but still
/// branchy entry logic and per-entry overhead. This table is the minimal
/// alternative: power-of-two capacity, Fibonacci multiply-shift indexing,
/// linear probing, parallel `keys`/`vals` arrays, grow at ¾ load.
///
/// The key `u64::MAX` is reserved as the empty-slot sentinel — it can
/// never be produced by `pack_pair`, which requires `i < j`.
#[derive(Debug, Default, Clone)]
pub struct CounterTable {
    keys: Vec<u64>,
    vals: Vec<u32>,
    items: usize,
}

/// Empty-slot marker; unreachable as a `pack_pair(i, j)` key since it
/// would need `i == j == u32::MAX`.
const EMPTY_SLOT: u64 = u64::MAX;

/// Fibonacci hashing constant (2^64 / φ, forced odd).
const FIB_MUL: u64 = 0x9e37_79b9_7f4a_7c15;

impl CounterTable {
    /// Creates an empty table (no allocation until the first insert).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table pre-sized for roughly `n` distinct keys.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        let slots = (n.saturating_mul(4) / 3 + 1).next_power_of_two().max(16);
        Self {
            keys: vec![EMPTY_SLOT; slots],
            vals: vec![0; slots],
            items: 0,
        }
    }

    /// Number of distinct keys stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items
    }

    /// Whether no key has been counted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    #[inline]
    fn start_slot(&self, key: u64) -> usize {
        // High multiply-shift bits: with power-of-two `slots`, take the
        // top log2(slots) bits of key * FIB_MUL.
        let h = key.wrapping_mul(FIB_MUL);
        (h >> (64 - self.keys.len().trailing_zeros())) as usize
    }

    /// Adds `count` to `key`'s counter.
    #[inline]
    pub fn add(&mut self, key: u64, count: u32) {
        debug_assert_ne!(key, EMPTY_SLOT, "u64::MAX is the empty sentinel");
        if self.items * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut slot = self.start_slot(key);
        loop {
            let k = self.keys[slot];
            if k == key {
                self.vals[slot] += count;
                return;
            }
            if k == EMPTY_SLOT {
                self.keys[slot] = key;
                self.vals[slot] = count;
                self.items += 1;
                return;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Increments `key`'s counter.
    #[inline]
    pub fn increment(&mut self, key: u64) {
        self.add(key, 1);
    }

    /// Current counter value for `key` (0 if absent).
    #[inline]
    #[must_use]
    pub fn get(&self, key: u64) -> u32 {
        if self.keys.is_empty() {
            return 0;
        }
        let mask = self.keys.len() - 1;
        let mut slot = self.start_slot(key);
        loop {
            let k = self.keys[slot];
            if k == key {
                return self.vals[slot];
            }
            if k == EMPTY_SLOT {
                return 0;
            }
            slot = (slot + 1) & mask;
        }
    }

    #[cold]
    fn grow(&mut self) {
        let new_slots = (self.keys.len() * 2).max(16);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY_SLOT; new_slots]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; new_slots]);
        self.items = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY_SLOT {
                self.add(k, v);
            }
        }
    }

    /// Heap bytes held by the key/value arrays (12 bytes per slot).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.keys.len() * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>())
    }

    /// Whether the next [`Self::add`] would trigger a grow (the ¾-load
    /// check `add` performs before probing).
    #[must_use]
    pub fn would_grow(&self) -> bool {
        self.items * 4 >= self.keys.len() * 3
    }

    /// Heap bytes the table would hold after the next grow.
    #[must_use]
    pub fn bytes_after_grow(&self) -> usize {
        (self.keys.len() * 2).max(16) * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>())
    }

    /// Iterates `(key, count)` in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.keys
            .iter()
            .zip(&self.vals)
            .filter(|&(&k, _)| k != EMPTY_SLOT)
            .map(|(&k, &v)| (k, v))
    }

    /// Consumes the table, yielding `(key, count)` in arbitrary order.
    pub fn into_entries(self) -> impl Iterator<Item = (u64, u32)> {
        self.keys
            .into_iter()
            .zip(self.vals)
            .filter(|&(k, _)| k != EMPTY_SLOT)
    }
}

/// A [`PairCounter`] split into independent shards by key bits, so
/// per-thread local counters can be merged **in parallel per shard**
/// instead of through a single-threaded fold.
///
/// The shard of a key is a pure function of the key (an fmix64-style
/// finalizer's low bits), so the same pair lands in the same shard in
/// every thread-local counter and in the merged result.
#[derive(Debug)]
pub struct ShardedPairCounter {
    shards: Vec<CounterTable>,
}

/// fmix64 finalizer (MurmurHash3): used for shard selection so shard
/// bits are independent of [`CounterTable`]'s Fibonacci index bits.
#[inline]
#[must_use]
fn shard_mix(key: u64) -> u64 {
    let mut h = key;
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h
}

impl ShardedPairCounter {
    /// Creates a counter with `n_shards` (rounded up to a power of two).
    #[must_use]
    pub fn new(n_shards: usize) -> Self {
        let n = n_shards.next_power_of_two().max(1);
        Self {
            shards: (0..n).map(|_| CounterTable::new()).collect(),
        }
    }

    /// Reassembles a counter from per-shard tables (the parallel-merge
    /// path). `shards.len()` must be a power of two and every key must
    /// already be in its [`Self::shard_of`] shard.
    #[must_use]
    pub fn from_shards(shards: Vec<CounterTable>) -> Self {
        assert!(
            shards.len().is_power_of_two(),
            "shard count not a power of two"
        );
        Self { shards }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` belongs to.
    #[inline]
    #[must_use]
    pub fn shard_of(&self, key: u64) -> usize {
        (shard_mix(key) & (self.shards.len() as u64 - 1)) as usize
    }

    /// The table backing shard `s`.
    #[must_use]
    pub fn shard(&self, s: usize) -> &CounterTable {
        &self.shards[s]
    }

    /// Decomposes the counter into its per-shard tables (inverse of
    /// [`Self::from_shards`]).
    #[must_use]
    pub fn into_shards(self) -> Vec<CounterTable> {
        self.shards
    }

    /// Adds `count` to the packed pair `key`.
    #[inline]
    pub fn add_key(&mut self, key: u64, count: u32) {
        let s = self.shard_of(key);
        self.shards[s].add(key, count);
    }

    /// Increments the counter for the unordered pair `{a, b}`.
    #[inline]
    pub fn increment(&mut self, a: u32, b: u32) {
        debug_assert_ne!(a, b, "self-pair");
        let key = if a < b {
            pack_pair(a, b)
        } else {
            pack_pair(b, a)
        };
        self.add_key(key, 1);
    }

    /// Current count for the unordered pair `{a, b}`.
    #[must_use]
    pub fn get(&self, a: u32, b: u32) -> u32 {
        let key = if a < b {
            pack_pair(a, b)
        } else {
            pack_pair(b, a)
        };
        self.shards[self.shard_of(key)].get(key)
    }

    /// Number of pairs with a nonzero count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(CounterTable::len).sum()
    }

    /// Whether no pair has been counted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(CounterTable::is_empty)
    }

    /// Iterates `(i, j, count)` with `i < j`, in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        self.shards.iter().flat_map(|t| {
            t.iter().map(|(k, c)| {
                let (i, j) = unpack_pair(k);
                (i, j, c)
            })
        })
    }

    /// Pairs whose count is at least `threshold`, as sorted `(i, j, count)`.
    #[must_use]
    pub fn pairs_at_least(&self, threshold: u32) -> Vec<(u32, u32, u32)> {
        let mut v: Vec<(u32, u32, u32)> = self.iter().filter(|&(_, _, c)| c >= threshold).collect();
        v.sort_unstable();
        v
    }
}

/// A shard count giving each of `threads` workers several shards to
/// merge (~4× oversubscription for dynamic balance), clamped to [8, 64].
#[must_use]
pub fn default_shards(threads: usize) -> usize {
    (threads * 4).next_power_of_two().clamp(8, 64)
}

/// Merges per-worker [`ShardedPairCounter`] locals into one counter,
/// **shard-parallel**: each shard's tables (one per local) are summed by
/// a single worker, and shards are dealt out dynamically over `pool`.
/// All locals must have the same shard count.
#[must_use]
pub fn merge_sharded(
    mut locals: Vec<ShardedPairCounter>,
    pool: &sfa_par::ThreadPool,
) -> ShardedPairCounter {
    if locals.len() <= 1 {
        return locals.pop().unwrap_or_else(|| ShardedPairCounter::new(1));
    }
    let n_shards = locals[0].shards();
    assert!(
        locals.iter().all(|l| l.shards() == n_shards),
        "locals disagree on shard count"
    );
    let locals = &locals;
    let mut merged: Vec<(usize, CounterTable)> = pool
        .par_fold(
            n_shards,
            1,
            |_| Vec::new(),
            |acc, range| {
                for s in range {
                    let cap: usize = locals.iter().map(|l| l.shard(s).len()).sum();
                    let mut table = CounterTable::with_capacity(cap);
                    for local in locals {
                        for (k, c) in local.shard(s).iter() {
                            table.add(k, c);
                        }
                    }
                    acc.push((s, table));
                }
            },
        )
        .into_iter()
        .flatten()
        .collect();
    merged.sort_unstable_by_key(|&(s, _)| s);
    ShardedPairCounter::from_shards(merged.into_iter().map(|(_, t)| t).collect())
}

/// Batched bucket scan over a **sorted** `(bucket_key, column)` slice:
/// every maximal run of equal keys is one bucket, and each run of length
/// `s` contributes `C(s, 2)` pair increments to `counter` plus (when
/// `s >= min_hist_run`) one entry to the occupancy histogram `hist[s]`.
///
/// Sorting the occupants once per table replaces per-element hash-map
/// probing in the bucket-build step, and makes the scan a cache-friendly
/// linear walk. Returns the number of counter increments performed —
/// exactly what the incremental Hash-Count structure would have done.
pub fn count_sorted_runs(
    entries: &[(u64, u32)],
    counter: &mut ShardedPairCounter,
    hist: &mut Vec<u64>,
    min_hist_run: usize,
) -> u64 {
    debug_assert!(
        entries.windows(2).all(|w| w[0] <= w[1]),
        "entries not sorted"
    );
    let mut increments = 0u64;
    let mut start = 0;
    while start < entries.len() {
        let key = entries[start].0;
        let mut end = start + 1;
        while end < entries.len() && entries[end].0 == key {
            end += 1;
        }
        let run = &entries[start..end];
        if run.len() >= min_hist_run {
            if hist.len() <= run.len() {
                hist.resize(run.len() + 1, 0);
            }
            hist[run.len()] += 1;
        }
        for (a, &(_, cj)) in run.iter().enumerate().skip(1) {
            for &(_, ci) in &run[..a] {
                counter.increment(ci, cj);
                increments += 1;
            }
        }
        start = end;
    }
    increments
}

/// Elementwise histogram accumulation (grows `into` as needed) — the merge
/// step for per-worker occupancy histograms produced by
/// [`count_sorted_runs`].
pub fn add_hist(into: &mut Vec<u64>, from: &[u64]) {
    if into.len() < from.len() {
        into.resize(from.len(), 0);
    }
    for (dst, &src) in into.iter_mut().zip(from) {
        *dst += src;
    }
}

/// A bucket table mapping hash values to the columns containing them.
///
/// This is the §3.1 Hash-Count structure: columns are inserted in index
/// order, and before a column is added its bucket already holds exactly the
/// earlier columns sharing the value.
#[derive(Debug, Default)]
pub struct BucketTable {
    buckets: FastHashMap<u64, Vec<u32>>,
}

impl BucketTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty table with capacity for `n` distinct values.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            buckets: FastHashMap::with_capacity_and_hasher(n, FxBuildHasher::default()),
        }
    }

    /// Columns previously inserted under `value` (empty slice if none).
    #[inline]
    #[must_use]
    pub fn bucket(&self, value: u64) -> &[u32] {
        self.buckets.get(&value).map_or(&[], Vec::as_slice)
    }

    /// Inserts `col` under `value`.
    #[inline]
    pub fn insert(&mut self, value: u64, col: u32) {
        self.buckets.entry(value).or_default().push(col);
    }

    /// Number of distinct values present.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Accumulates this table's bucket-occupancy histogram into `hist`:
    /// `hist[s]` counts buckets holding exactly `s` columns (`hist` grows as
    /// needed; index 0 stays untouched since empty buckets are never
    /// stored). Callers pass the same vector across tables to aggregate a
    /// whole scheme's occupancy profile.
    pub fn accumulate_occupancy(&self, hist: &mut Vec<u64>) {
        for cols in self.buckets.values() {
            let size = cols.len();
            if hist.len() <= size {
                hist.resize(size + 1, 0);
            }
            hist[size] += 1;
        }
    }

    /// Iterates over `(value, columns)` buckets in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[u32])> {
        self.buckets.iter().map(|(&v, cols)| (v, cols.as_slice()))
    }

    /// Clears all buckets, retaining allocation of the outer map.
    pub fn clear(&mut self) {
        self.buckets.clear();
    }
}

/// Counts occurrences per ordered column pair.
///
/// Used by Hash-Count and by the LSH schemes to accumulate, for each pair,
/// how many signature rows / bands / runs it collided in.
#[derive(Debug, Default)]
pub struct PairCounter {
    counts: CounterTable,
}

impl PairCounter {
    /// Creates an empty counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter for the unordered pair `{a, b}`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `a == b`; self-pairs are meaningless.
    #[inline]
    pub fn increment(&mut self, a: u32, b: u32) {
        self.add(a, b, 1);
    }

    /// Adds `count` to the unordered pair `{a, b}` (bulk merge support).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `a == b`.
    #[inline]
    pub fn add(&mut self, a: u32, b: u32, count: u32) {
        debug_assert_ne!(a, b, "self-pair");
        let key = if a < b {
            pack_pair(a, b)
        } else {
            pack_pair(b, a)
        };
        self.counts.add(key, count);
    }

    /// Current count for the unordered pair `{a, b}`.
    #[inline]
    #[must_use]
    pub fn get(&self, a: u32, b: u32) -> u32 {
        let key = if a < b {
            pack_pair(a, b)
        } else {
            pack_pair(b, a)
        };
        self.counts.get(key)
    }

    /// Number of pairs with a nonzero count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no pair has been counted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates `(i, j, count)` with `i < j`, in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        self.counts.iter().map(|(k, c)| {
            let (i, j) = unpack_pair(k);
            (i, j, c)
        })
    }

    /// Drains `(i, j, count)` entries, leaving the counter empty.
    pub fn drain(&mut self) -> impl Iterator<Item = (u32, u32, u32)> {
        std::mem::take(&mut self.counts)
            .into_entries()
            .map(|(k, c)| {
                let (i, j) = unpack_pair(k);
                (i, j, c)
            })
    }

    /// Pairs whose count is at least `threshold`, as `(i, j, count)`.
    #[must_use]
    pub fn pairs_at_least(&self, threshold: u32) -> Vec<(u32, u32, u32)> {
        let mut v: Vec<(u32, u32, u32)> = self.iter().filter(|&(_, _, c)| c >= threshold).collect();
        v.sort_unstable();
        v
    }
}

/// Salt applied before the shard-admission mix, so [`PairShard`]'s
/// admission bits are independent of both [`ShardedPairCounter::shard_of`]
/// (the unsalted fmix64 low bits) and [`CounterTable`]'s Fibonacci index
/// bits.
const PAIR_SHARD_SALT: u64 = 0xbf58_476d_1ce4_e5b9;

/// One slice of a power-of-two partition of the packed-pair key space.
///
/// Out-of-core mining runs phase 2 once per shard under a memory budget:
/// a shard admits a pair iff the salted fmix64 mix of its [`pack_pair`]
/// key lands in this slice. Admission is a pure function of the pair
/// alone, so the shards partition the pair space — the union of per-shard
/// candidate sets over all shards equals the unsharded set exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairShard {
    shard: u32,
    n_shards: u32,
}

impl PairShard {
    /// Slice `shard` of a partition into `n_shards` (a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is not a power of two or `shard >= n_shards`.
    #[must_use]
    pub fn new(shard: u32, n_shards: u32) -> Self {
        assert!(n_shards.is_power_of_two(), "shard count not a power of two");
        assert!(shard < n_shards, "shard {shard} out of range 0..{n_shards}");
        Self { shard, n_shards }
    }

    /// The trivial partition: one shard admitting every pair.
    #[must_use]
    pub fn all() -> Self {
        Self::new(0, 1)
    }

    /// This slice's index.
    #[must_use]
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Number of slices in the partition.
    #[must_use]
    pub fn n_shards(&self) -> u32 {
        self.n_shards
    }

    /// Whether this slice admits the packed pair `key`.
    #[inline]
    #[must_use]
    pub fn admits_key(&self, key: u64) -> bool {
        shard_mix(key ^ PAIR_SHARD_SALT) & u64::from(self.n_shards - 1) == u64::from(self.shard)
    }

    /// Whether this slice admits the unordered pair `{a, b}`.
    #[inline]
    #[must_use]
    pub fn admits(&self, a: u32, b: u32) -> bool {
        debug_assert_ne!(a, b, "self-pair");
        let key = if a < b {
            pack_pair(a, b)
        } else {
            pack_pair(b, a)
        };
        self.admits_key(key)
    }
}

/// What a budgeted shard pass reports back to the pipeline driver.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardPassOutcome {
    /// The counter refused a grow that would have exceeded the budget;
    /// the pass's output is incomplete and must be discarded (the driver
    /// doubles the shard count and reruns).
    pub overflowed: bool,
    /// Final heap bytes of the pass's counter table (its peak — the
    /// table only grows).
    pub counter_bytes: usize,
}

/// A [`PairCounter`] restricted to one [`PairShard`] and a hard byte cap.
///
/// Increments for pairs outside the shard are dropped; an increment that
/// would grow the table past `cap_bytes` instead sets the `overflowed`
/// flag and freezes the counter (all further increments are dropped), so
/// the table's heap footprint provably never exceeds the cap. A frozen
/// counter's contents are meaningless — callers must check
/// [`Self::overflowed`] and discard the pass.
#[derive(Debug)]
pub struct BudgetedPairCounter {
    counts: CounterTable,
    shard: PairShard,
    cap_bytes: usize,
    overflowed: bool,
}

impl BudgetedPairCounter {
    /// An empty counter admitting only `shard`'s pairs, capped at
    /// `cap_bytes` of table heap.
    #[must_use]
    pub fn new(shard: PairShard, cap_bytes: usize) -> Self {
        Self {
            counts: CounterTable::new(),
            shard,
            cap_bytes,
            overflowed: false,
        }
    }

    /// An uncapped counter admitting every pair — behaves exactly like
    /// [`PairCounter`], which is what the unsharded generators delegate
    /// through.
    #[must_use]
    pub fn unbounded() -> Self {
        Self::new(PairShard::all(), usize::MAX)
    }

    /// Increments the unordered pair `{a, b}` if this shard admits it and
    /// the budget allows it.
    #[inline]
    pub fn increment(&mut self, a: u32, b: u32) {
        debug_assert_ne!(a, b, "self-pair");
        let key = if a < b {
            pack_pair(a, b)
        } else {
            pack_pair(b, a)
        };
        if !self.shard.admits_key(key) || self.overflowed {
            return;
        }
        // `add` checks the ¾-load condition before probing, so predicting
        // the grow here guarantees the table never allocates past the cap.
        if self.counts.would_grow() && self.counts.bytes_after_grow() > self.cap_bytes {
            self.overflowed = true;
            return;
        }
        self.counts.add(key, 1);
    }

    /// Whether the budget was exceeded (the pass must be discarded).
    #[must_use]
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Current heap bytes of the backing table.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.counts.heap_bytes()
    }

    /// The pass outcome to report to the driver.
    #[must_use]
    pub fn outcome(&self) -> ShardPassOutcome {
        ShardPassOutcome {
            overflowed: self.overflowed,
            counter_bytes: self.counts.heap_bytes(),
        }
    }

    /// Number of pairs with a nonzero count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no pair has been counted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Current count for the unordered pair `{a, b}`.
    #[must_use]
    pub fn get(&self, a: u32, b: u32) -> u32 {
        let key = if a < b {
            pack_pair(a, b)
        } else {
            pack_pair(b, a)
        };
        self.counts.get(key)
    }

    /// Iterates `(i, j, count)` with `i < j`, in arbitrary (but
    /// insertion-deterministic) order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        self.counts.iter().map(|(k, c)| {
            let (i, j) = unpack_pair(k);
            (i, j, c)
        })
    }
}

/// Reusable dense counters over `m` slots with `O(touched)` reset.
///
/// The paper's Row-Sorting algorithm keeps one counter per column while
/// processing a focus column, then must avoid paying `O(m)` to reset them
/// for the next focus column: "we reuse the same `O(m)` counters … and
/// remember and reinitialize only counters that were incremented at least
/// once". `SparseCounters` is that structure.
#[derive(Debug)]
pub struct SparseCounters {
    counts: Vec<u32>,
    touched: Vec<u32>,
}

impl SparseCounters {
    /// Creates counters over slots `0..m`, all zero.
    #[must_use]
    pub fn new(m: usize) -> Self {
        Self {
            counts: vec![0; m],
            touched: Vec::new(),
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.counts.len()
    }

    /// Increments slot `slot`, remembering it for the next [`reset`](Self::reset).
    #[inline]
    pub fn increment(&mut self, slot: u32) {
        let c = &mut self.counts[slot as usize];
        if *c == 0 {
            self.touched.push(slot);
        }
        *c += 1;
    }

    /// Current value of `slot`.
    #[inline]
    #[must_use]
    pub fn get(&self, slot: u32) -> u32 {
        self.counts[slot as usize]
    }

    /// Slots incremented since the last reset (unsorted, no duplicates).
    #[must_use]
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }

    /// Resets only the touched slots; cost is `O(touched)`, not `O(m)`.
    pub fn reset(&mut self) {
        for &slot in &self.touched {
            self.counts[slot as usize] = 0;
        }
        self.touched.clear();
    }

    /// Drains `(slot, count)` for touched slots with count ≥ `threshold`,
    /// resetting the counters as it goes.
    pub fn drain_at_least(&mut self, threshold: u32) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for &slot in &self.touched {
            let c = self.counts[slot as usize];
            if c >= threshold {
                out.push((slot, c));
            }
            self.counts[slot as usize] = 0;
        }
        self.touched.clear();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_histogram_counts_bucket_sizes() {
        let mut table = BucketTable::new();
        table.insert(1, 0);
        table.insert(1, 1);
        table.insert(1, 2);
        table.insert(2, 3);
        table.insert(3, 4);
        let mut hist = Vec::new();
        table.accumulate_occupancy(&mut hist);
        assert_eq!(hist, vec![0, 2, 0, 1]);
        // Accumulating again doubles the counts instead of resetting.
        table.accumulate_occupancy(&mut hist);
        assert_eq!(hist, vec![0, 4, 0, 2]);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for (i, j) in [(0, 1), (5, 9), (0, u32::MAX), (100, 101)] {
            assert_eq!(unpack_pair(pack_pair(i, j)), (i, j));
        }
    }

    #[test]
    fn fx_hasher_spreads_sequential_keys() {
        // Sequential u64 keys must land in distinct states.
        let hash = |n: u64| {
            let mut h = FxHasher::default();
            h.write_u64(n);
            h.finish()
        };
        let distinct: std::collections::HashSet<u64> = (0..10_000).map(hash).collect();
        assert_eq!(distinct.len(), 10_000);
        // and actually differ in high bits so map bucketing works:
        assert_ne!(hash(1) >> 56, hash(2) >> 56);
    }

    #[test]
    fn bucket_table_groups_columns() {
        let mut t = BucketTable::new();
        t.insert(42, 0);
        t.insert(42, 3);
        t.insert(7, 1);
        assert_eq!(t.bucket(42), &[0, 3]);
        assert_eq!(t.bucket(7), &[1]);
        assert_eq!(t.bucket(999), &[] as &[u32]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn bucket_table_clear_retains_nothing() {
        let mut t = BucketTable::with_capacity(16);
        t.insert(1, 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.bucket(1), &[] as &[u32]);
    }

    #[test]
    fn pair_counter_orders_pairs() {
        let mut pc = PairCounter::new();
        pc.increment(3, 1);
        pc.increment(1, 3);
        assert_eq!(pc.get(1, 3), 2);
        assert_eq!(pc.get(3, 1), 2);
        assert_eq!(pc.get(1, 2), 0);
    }

    #[test]
    fn pair_counter_threshold_filter() {
        let mut pc = PairCounter::new();
        for _ in 0..5 {
            pc.increment(0, 1);
        }
        pc.increment(0, 2);
        assert_eq!(pc.pairs_at_least(2), vec![(0, 1, 5)]);
        assert_eq!(pc.pairs_at_least(1).len(), 2);
    }

    #[test]
    fn pair_counter_drain_empties() {
        let mut pc = PairCounter::new();
        pc.increment(0, 1);
        let drained: Vec<_> = pc.drain().collect();
        assert_eq!(drained, vec![(0, 1, 1)]);
        assert!(pc.is_empty());
    }

    #[test]
    fn sparse_counters_reset_is_sparse() {
        let mut sc = SparseCounters::new(1000);
        sc.increment(5);
        sc.increment(5);
        sc.increment(999);
        assert_eq!(sc.get(5), 2);
        assert_eq!(sc.get(999), 1);
        assert_eq!(sc.touched().len(), 2);
        sc.reset();
        assert_eq!(sc.get(5), 0);
        assert_eq!(sc.get(999), 0);
        assert!(sc.touched().is_empty());
    }

    #[test]
    fn sparse_counters_drain_at_least() {
        let mut sc = SparseCounters::new(10);
        sc.increment(1);
        sc.increment(1);
        sc.increment(2);
        let mut hits = sc.drain_at_least(2);
        hits.sort_unstable();
        assert_eq!(hits, vec![(1, 2)]);
        // fully reset afterwards:
        assert_eq!(sc.get(1), 0);
        assert_eq!(sc.get(2), 0);
        assert!(sc.touched().is_empty());
    }

    #[test]
    fn counter_table_counts_and_grows() {
        let mut t = CounterTable::new();
        assert!(t.is_empty());
        assert_eq!(t.get(pack_pair(0, 1)), 0);
        // Enough keys to force several growth rounds from the empty state.
        for round in 1..=3u32 {
            for i in 0..2_000u32 {
                t.add(pack_pair(i, i + 1), round);
            }
        }
        assert_eq!(t.len(), 2_000);
        let total: u64 = t.iter().map(|(_, c)| u64::from(c)).sum();
        assert_eq!(total, 2_000 * 6);
        for i in 0..2_000u32 {
            assert_eq!(t.get(pack_pair(i, i + 1)), 6);
        }
        assert_eq!(t.get(pack_pair(5_000, 5_001)), 0);
    }

    #[test]
    fn counter_table_with_capacity_avoids_regrowth() {
        let mut t = CounterTable::with_capacity(100);
        for i in 0..100u32 {
            t.increment(pack_pair(i, i + 1));
        }
        assert_eq!(t.len(), 100);
        let entries: Vec<(u64, u32)> = t.into_entries().collect();
        assert_eq!(entries.len(), 100);
        assert!(entries.iter().all(|&(_, c)| c == 1));
    }

    #[test]
    fn sharded_counter_matches_pair_counter() {
        let mut sharded = ShardedPairCounter::new(8);
        let mut plain = PairCounter::new();
        // Deterministic pseudo-random pair stream with repeats.
        let mut x = 12345u64;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (x >> 40) as u32 % 300;
            let b = (x >> 20) as u32 % 300;
            if a == b {
                continue;
            }
            sharded.increment(a, b);
            plain.increment(a, b);
        }
        assert_eq!(sharded.len(), plain.len());
        assert_eq!(sharded.pairs_at_least(3), plain.pairs_at_least(3));
        // Every key sits in the shard `shard_of` claims.
        for s in 0..sharded.shards() {
            for (k, _) in sharded.shard(s).iter() {
                assert_eq!(sharded.shard_of(k), s);
            }
        }
    }

    #[test]
    fn from_shards_roundtrips_shard_tables() {
        let mut a = ShardedPairCounter::new(4);
        a.increment(1, 2);
        a.increment(1, 2);
        a.increment(7, 9);
        let shards: Vec<CounterTable> = (0..a.shards()).map(|s| a.shard(s).clone()).collect();
        let b = ShardedPairCounter::from_shards(shards);
        assert_eq!(b.get(1, 2), 2);
        assert_eq!(b.get(7, 9), 1);
        assert_eq!(b.pairs_at_least(1), a.pairs_at_least(1));
    }

    #[test]
    fn merge_sharded_sums_locals_per_shard() {
        for threads in [1, 2, 4, 7] {
            let pool = sfa_par::ThreadPool::new(threads);
            let shards = default_shards(threads);
            let mut expected = PairCounter::new();
            let locals: Vec<ShardedPairCounter> = (0..3)
                .map(|w| {
                    let mut local = ShardedPairCounter::new(shards);
                    for i in 0..50u32 {
                        let j = i + 1 + w;
                        local.increment(i, j);
                        expected.increment(i, j);
                    }
                    local
                })
                .collect();
            let merged = merge_sharded(locals, &pool);
            assert_eq!(merged.pairs_at_least(1), expected.pairs_at_least(1));
        }
    }

    #[test]
    fn count_sorted_runs_matches_incremental_scan() {
        // Buckets: key 1 -> {0,2,5}, key 3 -> {1}, key 4 -> {3,4}.
        let entries = [(1, 0), (1, 2), (1, 5), (3, 1), (4, 3), (4, 4)];
        let mut counter = ShardedPairCounter::new(4);
        let mut hist = Vec::new();
        let incr = count_sorted_runs(&entries, &mut counter, &mut hist, 1);
        assert_eq!(incr, 4); // C(3,2) + C(1,2) + C(2,2)
        assert_eq!(hist, vec![0, 1, 1, 1]);
        assert_eq!(
            counter.pairs_at_least(1),
            vec![(0, 2, 1), (0, 5, 1), (2, 5, 1), (3, 4, 1)]
        );
        // min_hist_run = 2 drops singleton buckets from the histogram
        // (the Row-Sorting convention) without changing the counts.
        let mut counter2 = ShardedPairCounter::new(4);
        let mut hist2 = Vec::new();
        let incr2 = count_sorted_runs(&entries, &mut counter2, &mut hist2, 2);
        assert_eq!(incr2, 4);
        assert_eq!(hist2, vec![0, 0, 1, 1]);
    }

    #[test]
    fn fx_hasher_write_matches_word_folds() {
        // 8-byte chunks must fold exactly like write_u64 on the LE word.
        let mut by_slice = FxHasher::default();
        by_slice.write(&42u64.to_le_bytes());
        let mut by_word = FxHasher::default();
        by_word.write_u64(42);
        assert_eq!(by_slice.finish(), by_word.finish());
        // Tails shorter than a word still contribute.
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 4]);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn sparse_counters_reusable_across_focus_columns() {
        let mut sc = SparseCounters::new(4);
        sc.increment(0);
        sc.reset();
        sc.increment(1);
        assert_eq!(sc.get(0), 0);
        assert_eq!(sc.get(1), 1);
    }

    #[test]
    fn pair_shards_partition_the_pair_space() {
        for n_shards in [1u32, 2, 4, 8] {
            let shards: Vec<PairShard> =
                (0..n_shards).map(|s| PairShard::new(s, n_shards)).collect();
            for a in 0..30u32 {
                for b in (a + 1)..30 {
                    let admitting = shards.iter().filter(|s| s.admits(a, b)).count();
                    assert_eq!(
                        admitting, 1,
                        "pair ({a},{b}) admitted by {admitting} shards"
                    );
                }
            }
        }
    }

    #[test]
    fn pair_shard_all_admits_everything() {
        let all = PairShard::all();
        for a in 0..50u32 {
            assert!(all.admits(a, a + 1));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn pair_shard_rejects_non_power_of_two() {
        let _ = PairShard::new(0, 3);
    }

    #[test]
    fn budgeted_counter_matches_pair_counter_when_unbounded() {
        let mut plain = PairCounter::new();
        let mut budgeted = BudgetedPairCounter::unbounded();
        for a in 0..40u32 {
            for b in (a + 1)..40 {
                if (a + b) % 3 == 0 {
                    plain.increment(a, b);
                    budgeted.increment(a, b);
                }
            }
        }
        assert!(!budgeted.overflowed());
        let p: Vec<_> = plain.iter().collect();
        let b: Vec<_> = budgeted.iter().collect();
        // Same add sequence into the same table type: identical layout,
        // hence identical iteration order, not just identical multisets.
        assert_eq!(p, b);
    }

    #[test]
    fn budgeted_counter_shards_union_to_unsharded_counts() {
        let mut plain = PairCounter::new();
        let mut shards: Vec<BudgetedPairCounter> = (0..4)
            .map(|s| BudgetedPairCounter::new(PairShard::new(s, 4), usize::MAX))
            .collect();
        for a in 0..25u32 {
            for b in (a + 1)..25 {
                plain.increment(a, b);
                plain.increment(a, b);
                for shard in &mut shards {
                    shard.increment(a, b);
                    shard.increment(a, b);
                }
            }
        }
        let mut union: Vec<_> = shards.iter().flat_map(BudgetedPairCounter::iter).collect();
        union.sort_unstable();
        let mut expected: Vec<_> = plain.iter().collect();
        expected.sort_unstable();
        assert_eq!(union, expected);
    }

    #[test]
    fn budgeted_counter_freezes_at_the_cap() {
        // Cap below the minimum 16-slot table: the very first increment
        // must refuse to allocate and freeze the counter.
        let mut tiny = BudgetedPairCounter::new(PairShard::all(), 100);
        tiny.increment(0, 1);
        assert!(tiny.overflowed());
        assert!(tiny.is_empty());
        assert_eq!(tiny.heap_bytes(), 0);

        // Cap admitting exactly the minimum table: grows to 16 slots
        // (192 bytes) and freezes when the ¾-load grow would pass 384.
        let mut capped = BudgetedPairCounter::new(PairShard::all(), 192);
        let mut applied = 0u32;
        for j in 1..100u32 {
            capped.increment(0, j);
            if !capped.overflowed() {
                applied = j;
            }
        }
        assert!(capped.overflowed());
        assert!(capped.heap_bytes() <= 192);
        // A 16-slot table grows when an add starts with 12 items already
        // present, so exactly 12 distinct keys fit under the cap.
        assert_eq!(applied, 12);
        assert_eq!(capped.len(), 12);
    }
}
