/root/repo/target/release/deps/apriori_agreement-806a83860bf0bcb8.d: tests/apriori_agreement.rs

/root/repo/target/release/deps/apriori_agreement-806a83860bf0bcb8: tests/apriori_agreement.rs

tests/apriori_agreement.rs:
