/root/repo/target/debug/deps/sfa_bench-390d875b1ba1f52d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsfa_bench-390d875b1ba1f52d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
