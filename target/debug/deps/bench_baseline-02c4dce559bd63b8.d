/root/repo/target/debug/deps/bench_baseline-02c4dce559bd63b8.d: crates/experiments/src/bin/bench_baseline.rs

/root/repo/target/debug/deps/libbench_baseline-02c4dce559bd63b8.rmeta: crates/experiments/src/bin/bench_baseline.rs

crates/experiments/src/bin/bench_baseline.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/experiments
