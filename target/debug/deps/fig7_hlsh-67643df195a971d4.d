/root/repo/target/debug/deps/fig7_hlsh-67643df195a971d4.d: crates/experiments/src/bin/fig7_hlsh.rs

/root/repo/target/debug/deps/libfig7_hlsh-67643df195a971d4.rmeta: crates/experiments/src/bin/fig7_hlsh.rs

crates/experiments/src/bin/fig7_hlsh.rs:
