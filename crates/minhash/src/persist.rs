//! Sketch persistence.
//!
//! Signatures are the expensive phase — one full pass over the data — while
//! candidate generation is cheap and parameter-dependent. Persisting the
//! sketch lets a deployment compute it once (or keep it updated with
//! [`MhBuilder`](crate::builder::MhBuilder)) and re-mine at many thresholds
//! or band configurations without touching the table again.
//!
//! Formats (little-endian):
//!
//! * `.sfmh` — `b"SFM2"`, `k: u32`, `m: u32`, then `k·m` `u64` values
//!   (row-major), then a CRC-32 trailer, for [`SignatureMatrix`].
//! * `.sfkm` — `b"SFK2"`, `k: u32`, `m: u32`, then per column
//!   `count: u32`, `len: u32`, `len` ascending `u64` values, then a CRC-32
//!   trailer, for [`BottomKSignatures`].
//!
//! The trailing CRC-32 (see [`sfa_matrix::crc32`]) covers everything after
//! the magic and is verified before any value is trusted, so bit flips and
//! truncation are rejected up front. Readers also still accept the legacy
//! checksum-less v1 layouts (magics `b"SFMH"`/`b"SFKM"`, no trailer), which
//! [`write_signatures_v1`]/[`write_bottom_k_v1`] keep producible.
//!
//! Byte-exact layouts and the validation rules readers enforce are
//! specified in `docs/FORMATS.md` at the repository root.
//!
//! The [`encode_signatures`]/[`decode_signatures`] (and `_bottom_k`) pairs
//! expose the same formats as in-memory byte images, so callers that need
//! atomic or fault-injected IO (the signature cache, checkpoints) can route
//! the bytes through their own writer.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use sfa_matrix::crc32::crc32;
use sfa_matrix::{MatrixError, Result};

use crate::kmh::BottomKSignatures;
use crate::signature::SignatureMatrix;

const MH_MAGIC: [u8; 4] = *b"SFMH";
const MH_MAGIC_V2: [u8; 4] = *b"SFM2";
const KMH_MAGIC: [u8; 4] = *b"SFKM";
const KMH_MAGIC_V2: [u8; 4] = *b"SFK2";

fn write_u32(w: &mut impl Write, v: u32) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn write_u64(w: &mut impl Write, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

/// A bounds-checked cursor over an in-memory file image; every error
/// carries the byte offset where the data ran out or went wrong.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    const fn new(bytes: &'a [u8], pos: usize) -> Self {
        Self { bytes, pos }
    }

    /// Current byte offset (for error messages).
    const fn offset(&self) -> u64 {
        self.pos as u64
    }

    /// Bytes between the cursor and the end of the parseable region.
    const fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(MatrixError::Parse {
                at: self.offset(),
                detail: format!(
                    "file truncated: needed {n} bytes, {} left",
                    self.remaining()
                ),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn read_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn read_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

/// Checks a sketch image's magic against the v1/v2 constants and (for v2)
/// verifies the CRC-32 trailer, before any value is trusted.
fn check_sketch(bytes: &[u8], magic_v1: [u8; 4], magic_v2: [u8; 4], what: &str) -> Result<()> {
    if bytes.len() < 4 {
        return Err(MatrixError::Parse {
            at: bytes.len() as u64,
            detail: format!("file too short for a magic (not an {what} sketch)"),
        });
    }
    let v2 = match &bytes[0..4] {
        m if *m == magic_v1 => false,
        m if *m == magic_v2 => true,
        _ => {
            return Err(MatrixError::Parse {
                at: 0,
                detail: format!("bad magic (not an {what} sketch)"),
            })
        }
    };
    if v2 {
        if bytes.len() < 8 {
            return Err(MatrixError::Parse {
                at: bytes.len() as u64,
                detail: "v2 file shorter than magic + checksum trailer".into(),
            });
        }
        let body_end = bytes.len() - 4;
        let stored = u32::from_le_bytes(bytes[body_end..].try_into().expect("4 bytes"));
        let computed = crc32(&bytes[4..body_end]);
        if stored != computed {
            return Err(MatrixError::Checksum { stored, computed });
        }
    }
    Ok(())
}

/// Assembles a v2 image: magic, body, CRC-32 trailer over the body.
fn seal_v2(magic: [u8; 4], body: &[u8]) -> Vec<u8> {
    let crc = crc32(body);
    let mut out = Vec::with_capacity(4 + body.len() + 4);
    out.extend_from_slice(&magic);
    out.extend_from_slice(body);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// The payload region of a loaded sketch image: everything after the magic,
/// minus the CRC trailer when the magic says v2.
fn payload(bytes: &[u8], magic_v2: [u8; 4]) -> Cursor<'_> {
    let end = if bytes[0..4] == magic_v2 {
        bytes.len() - 4
    } else {
        bytes.len()
    };
    Cursor::new(&bytes[..end], 4)
}

/// Encodes a [`SignatureMatrix`] as a checksummed v2 `.sfmh` byte image —
/// the exact bytes [`write_signatures`] puts on disk.
#[must_use]
pub fn encode_signatures(sigs: &SignatureMatrix) -> Vec<u8> {
    let mut body = Vec::new();
    write_signatures_body(&mut body, sigs).expect("writing to a Vec cannot fail");
    seal_v2(MH_MAGIC_V2, &body)
}

/// Writes a [`SignatureMatrix`] to `path` in the checksummed v2 format.
///
/// # Errors
///
/// Propagates IO errors.
pub fn write_signatures(sigs: &SignatureMatrix, path: &Path) -> Result<()> {
    std::fs::write(path, encode_signatures(sigs))?;
    Ok(())
}

/// Writes a [`SignatureMatrix`] in the legacy v1 format (no checksum), for
/// interoperating with pre-v2 readers and for compatibility tests.
///
/// # Errors
///
/// Propagates IO errors.
pub fn write_signatures_v1(sigs: &SignatureMatrix, path: &Path) -> Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&MH_MAGIC)?;
    write_signatures_body(&mut w, sigs)?;
    w.flush()?;
    Ok(())
}

fn write_signatures_body(w: &mut impl Write, sigs: &SignatureMatrix) -> Result<()> {
    write_u32(w, u32::try_from(sigs.k()).expect("k fits u32"))?;
    write_u32(w, u32::try_from(sigs.m()).expect("m fits u32"))?;
    for l in 0..sigs.k() {
        for &v in sigs.row(l) {
            write_u64(w, v)?;
        }
    }
    Ok(())
}

/// Reads a [`SignatureMatrix`] from `path` (v1 `SFMH` or checksummed v2
/// `SFM2`).
///
/// # Errors
///
/// Fails on IO errors, a malformed header, a payload whose size disagrees
/// with the declared `k·m`, or (v2) a checksum mismatch.
pub fn read_signatures(path: &Path) -> Result<SignatureMatrix> {
    decode_signatures(&std::fs::read(path)?)
}

/// Decodes a [`SignatureMatrix`] from a v1/v2 byte image, with the same
/// validation as [`read_signatures`].
///
/// # Errors
///
/// As [`read_signatures`], minus the IO.
pub fn decode_signatures(bytes: &[u8]) -> Result<SignatureMatrix> {
    check_sketch(bytes, MH_MAGIC, MH_MAGIC_V2, "SFMH/SFM2")?;
    let mut c = payload(bytes, MH_MAGIC_V2);
    let k = c.read_u32()? as usize;
    let m = c.read_u32()? as usize;
    // Validate the declared size against the actual payload *before*
    // allocating: a corrupt header must not drive a huge reservation.
    let declared = (k as u128) * (m as u128) * 8;
    if declared != c.remaining() as u128 {
        return Err(MatrixError::Parse {
            at: c.offset(),
            detail: format!(
                "header declares k={k}, m={m} ({declared} payload bytes) but {} are present",
                c.remaining()
            ),
        });
    }
    let mut values = Vec::with_capacity(k * m);
    for _ in 0..k * m {
        values.push(c.read_u64()?);
    }
    Ok(SignatureMatrix::from_values(k, m, values))
}

/// Encodes [`BottomKSignatures`] as a checksummed v2 `.sfkm` byte image —
/// the exact bytes [`write_bottom_k`] puts on disk.
#[must_use]
pub fn encode_bottom_k(sigs: &BottomKSignatures) -> Vec<u8> {
    let mut body = Vec::new();
    write_bottom_k_body(&mut body, sigs).expect("writing to a Vec cannot fail");
    seal_v2(KMH_MAGIC_V2, &body)
}

/// Writes [`BottomKSignatures`] to `path` in the checksummed v2 format.
///
/// # Errors
///
/// Propagates IO errors.
pub fn write_bottom_k(sigs: &BottomKSignatures, path: &Path) -> Result<()> {
    std::fs::write(path, encode_bottom_k(sigs))?;
    Ok(())
}

/// Writes [`BottomKSignatures`] in the legacy v1 format (no checksum), for
/// interoperating with pre-v2 readers and for compatibility tests.
///
/// # Errors
///
/// Propagates IO errors.
pub fn write_bottom_k_v1(sigs: &BottomKSignatures, path: &Path) -> Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&KMH_MAGIC)?;
    write_bottom_k_body(&mut w, sigs)?;
    w.flush()?;
    Ok(())
}

fn write_bottom_k_body(w: &mut impl Write, sigs: &BottomKSignatures) -> Result<()> {
    write_u32(w, u32::try_from(sigs.k()).expect("k fits u32"))?;
    write_u32(w, u32::try_from(sigs.m()).expect("m fits u32"))?;
    for j in 0..sigs.m() as u32 {
        write_u32(w, sigs.column_count(j))?;
        let sig = sigs.signature(j);
        write_u32(w, u32::try_from(sig.len()).expect("len fits u32"))?;
        for &v in sig {
            write_u64(w, v)?;
        }
    }
    Ok(())
}

/// Reads [`BottomKSignatures`] from `path` (v1 `SFKM` or checksummed v2
/// `SFK2`).
///
/// # Errors
///
/// Fails on IO errors, malformed headers, invalid sketch contents
/// (signature longer than `k`, non-ascending values, size mismatches —
/// every error carries the byte offset), or (v2) a checksum mismatch.
pub fn read_bottom_k(path: &Path) -> Result<BottomKSignatures> {
    decode_bottom_k(&std::fs::read(path)?)
}

/// Decodes [`BottomKSignatures`] from a v1/v2 byte image, with the same
/// validation as [`read_bottom_k`].
///
/// # Errors
///
/// As [`read_bottom_k`], minus the IO.
pub fn decode_bottom_k(bytes: &[u8]) -> Result<BottomKSignatures> {
    check_sketch(bytes, KMH_MAGIC, KMH_MAGIC_V2, "SFKM/SFK2")?;
    let mut c = payload(bytes, KMH_MAGIC_V2);
    let k = c.read_u32()? as usize;
    let m = c.read_u32()? as usize;
    // Each column record is at least 8 bytes; bound the declared column
    // count by the payload before reserving per-column vectors.
    if (m as u64) * 8 > c.remaining() as u64 {
        return Err(MatrixError::Parse {
            at: c.offset(),
            detail: format!(
                "header declares {m} columns but only {} payload bytes remain",
                c.remaining()
            ),
        });
    }
    let mut sigs = Vec::with_capacity(m);
    let mut counts = Vec::with_capacity(m);
    for j in 0..m {
        counts.push(c.read_u32()?);
        let len_offset = c.offset();
        let len = c.read_u32()? as usize;
        if len > k {
            return Err(MatrixError::Parse {
                at: len_offset,
                detail: format!("column {j}: signature length {len} exceeds k = {k}"),
            });
        }
        if (len as u64) * 8 > c.remaining() as u64 {
            return Err(MatrixError::Parse {
                at: len_offset,
                detail: format!(
                    "column {j}: signature of {len} values needs {} bytes, {} left",
                    len * 8,
                    c.remaining()
                ),
            });
        }
        let mut sig = Vec::with_capacity(len);
        let mut prev: Option<u64> = None;
        for _ in 0..len {
            let value_offset = c.offset();
            let v = c.read_u64()?;
            if prev.is_some_and(|p| p >= v) {
                return Err(MatrixError::Parse {
                    at: value_offset,
                    detail: format!("column {j}: signature not strictly ascending"),
                });
            }
            prev = Some(v);
            sig.push(v);
        }
        sigs.push(sig);
    }
    if c.remaining() > 0 {
        return Err(MatrixError::Parse {
            at: c.offset(),
            detail: format!("{} trailing bytes after the last column", c.remaining()),
        });
    }
    Ok(BottomKSignatures::from_parts(k, sigs, counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compute_bottom_k, compute_signatures};
    use sfa_matrix::{MemoryRowStream, RowMajorMatrix};

    fn matrix() -> RowMajorMatrix {
        RowMajorMatrix::from_rows(
            4,
            vec![vec![0, 1], vec![1, 2], vec![0, 3], vec![2, 3], vec![]],
        )
        .unwrap()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("sfa_persist_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn signature_matrix_roundtrips() {
        let m = matrix();
        let sigs = compute_signatures(&mut MemoryRowStream::new(&m), 8, 5).unwrap();
        let p = tmp("sigs.sfmh");
        write_signatures(&sigs, &p).unwrap();
        assert_eq!(&std::fs::read(&p).unwrap()[0..4], b"SFM2");
        assert_eq!(read_signatures(&p).unwrap(), sigs);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bottom_k_roundtrips() {
        let m = matrix();
        let sigs = compute_bottom_k(&mut MemoryRowStream::new(&m), 3, 5).unwrap();
        let p = tmp("sigs.sfkm");
        write_bottom_k(&sigs, &p).unwrap();
        assert_eq!(&std::fs::read(&p).unwrap()[0..4], b"SFK2");
        assert_eq!(read_bottom_k(&p).unwrap(), sigs);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn v1_sketches_still_load() {
        let m = matrix();
        let mh = compute_signatures(&mut MemoryRowStream::new(&m), 8, 5).unwrap();
        let kmh = compute_bottom_k(&mut MemoryRowStream::new(&m), 3, 5).unwrap();
        let pm = tmp("legacy.sfmh");
        let pk = tmp("legacy.sfkm");
        write_signatures_v1(&mh, &pm).unwrap();
        write_bottom_k_v1(&kmh, &pk).unwrap();
        assert_eq!(&std::fs::read(&pm).unwrap()[0..4], b"SFMH");
        assert_eq!(&std::fs::read(&pk).unwrap()[0..4], b"SFKM");
        assert_eq!(read_signatures(&pm).unwrap(), mh);
        assert_eq!(read_bottom_k(&pk).unwrap(), kmh);
        std::fs::remove_file(&pm).ok();
        std::fs::remove_file(&pk).ok();
    }

    #[test]
    fn wrong_magic_rejected_both_ways() {
        let m = matrix();
        let mh = compute_signatures(&mut MemoryRowStream::new(&m), 4, 1).unwrap();
        let kmh = compute_bottom_k(&mut MemoryRowStream::new(&m), 4, 1).unwrap();
        let pm = tmp("cross.sfmh");
        let pk = tmp("cross.sfkm");
        write_signatures(&mh, &pm).unwrap();
        write_bottom_k(&kmh, &pk).unwrap();
        assert!(read_signatures(&pk).is_err());
        assert!(read_bottom_k(&pm).is_err());
        std::fs::remove_file(&pm).ok();
        std::fs::remove_file(&pk).ok();
    }

    #[test]
    fn truncated_file_is_an_error() {
        let m = matrix();
        let sigs = compute_signatures(&mut MemoryRowStream::new(&m), 8, 5).unwrap();
        let p = tmp("truncated.sfmh");
        write_signatures(&sigs, &p).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() / 2]).unwrap();
        assert!(read_signatures(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bit_flip_is_a_checksum_error() {
        let m = matrix();
        let mh = compute_signatures(&mut MemoryRowStream::new(&m), 8, 5).unwrap();
        let kmh = compute_bottom_k(&mut MemoryRowStream::new(&m), 3, 5).unwrap();
        let pm = tmp("flip.sfmh");
        let pk = tmp("flip.sfkm");
        write_signatures(&mh, &pm).unwrap();
        write_bottom_k(&kmh, &pk).unwrap();
        for p in [&pm, &pk] {
            let mut bytes = std::fs::read(p).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x10;
            std::fs::write(p, &bytes).unwrap();
        }
        assert!(matches!(
            read_signatures(&pm),
            Err(MatrixError::Checksum { .. })
        ));
        assert!(matches!(
            read_bottom_k(&pk),
            Err(MatrixError::Checksum { .. })
        ));
        std::fs::remove_file(&pm).ok();
        std::fs::remove_file(&pk).ok();
    }

    #[test]
    fn v1_size_mismatch_is_rejected_before_allocation() {
        // A hostile v1 header declaring a huge k·m must be rejected from
        // the payload size alone, without attempting the allocation.
        let p = tmp("huge.sfmh");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"SFMH");
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(
            read_signatures(&p),
            Err(MatrixError::Parse { .. })
        ));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn encode_matches_writer_bytes_and_round_trips() {
        let m = matrix();
        let mh = compute_signatures(&mut MemoryRowStream::new(&m), 8, 5).unwrap();
        let kmh = compute_bottom_k(&mut MemoryRowStream::new(&m), 3, 5).unwrap();
        let pm = tmp("enc.sfmh");
        let pk = tmp("enc.sfkm");
        write_signatures(&mh, &pm).unwrap();
        write_bottom_k(&kmh, &pk).unwrap();
        assert_eq!(encode_signatures(&mh), std::fs::read(&pm).unwrap());
        assert_eq!(encode_bottom_k(&kmh), std::fs::read(&pk).unwrap());
        assert_eq!(decode_signatures(&encode_signatures(&mh)).unwrap(), mh);
        assert_eq!(decode_bottom_k(&encode_bottom_k(&kmh)).unwrap(), kmh);
        std::fs::remove_file(&pm).ok();
        std::fs::remove_file(&pk).ok();
    }

    #[test]
    fn reloaded_sketch_mines_identically() {
        let m = matrix();
        let sigs = compute_bottom_k(&mut MemoryRowStream::new(&m), 4, 9).unwrap();
        let p = tmp("mine.sfkm");
        write_bottom_k(&sigs, &p).unwrap();
        let loaded = read_bottom_k(&p).unwrap();
        assert_eq!(
            crate::hashcount::kmh_candidates(&sigs, 0.4, 0.2),
            crate::hashcount::kmh_candidates(&loaded, 0.4, 0.2)
        );
        std::fs::remove_file(&p).ok();
    }
}
