/root/repo/target/release/deps/fig1_news_pairs-b9614fdc52aef3bf.d: crates/experiments/src/bin/fig1_news_pairs.rs

/root/repo/target/release/deps/fig1_news_pairs-b9614fdc52aef3bf: crates/experiments/src/bin/fig1_news_pairs.rs

crates/experiments/src/bin/fig1_news_pairs.rs:
