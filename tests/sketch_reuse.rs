//! The sketch-once / mine-many workflow: persist signatures, reload them
//! (as another process would), mine at several thresholds, and verify the
//! results match running the full pipeline each time.

use sfa::core::verify::verify_candidates;
use sfa::core::{Pipeline, PipelineConfig, Scheme};
use sfa::datagen::WeblogConfig;
use sfa::matrix::{MemoryRowStream, RowMajorMatrix};
use sfa::minhash::hashcount::{kmh_candidates, mh_candidates};
use sfa::minhash::persist;
use sfa::minhash::{compute_bottom_k, compute_signatures};

fn data() -> RowMajorMatrix {
    WeblogConfig::tiny(77).generate().matrix.transpose()
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("sfa_sketch_reuse");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn persisted_kmh_sketch_mines_many_thresholds() {
    let rows = data();
    let seed = sfa::hash::family::derive_seed(9, 1);
    let sigs = compute_bottom_k(&mut MemoryRowStream::new(&rows), 24, seed).unwrap();
    let path = tmp("weblog.sfkm");
    persist::write_bottom_k(&sigs, &path).unwrap();

    let loaded = persist::read_bottom_k(&path).unwrap();
    for &s_star in &[0.5, 0.7, 0.9] {
        // Phase 2 from the reloaded sketch + phase 3 against the table.
        let candidates = kmh_candidates(&loaded, s_star, 0.2);
        let (verified, _) =
            verify_candidates(&mut MemoryRowStream::new(&rows), &candidates).unwrap();
        let from_sketch: Vec<(u32, u32)> = verified
            .iter()
            .filter(|p| p.similarity >= s_star)
            .map(|p| (p.i, p.j))
            .collect();

        // The full pipeline with the same seed.
        let cfg = PipelineConfig::new(Scheme::Kmh { k: 24, delta: 0.2 }, s_star, 9);
        let direct: Vec<(u32, u32)> = Pipeline::new(cfg)
            .run(&mut MemoryRowStream::new(&rows))
            .unwrap()
            .similar_pairs()
            .iter()
            .map(|p| (p.i, p.j))
            .collect();

        let mut a = from_sketch;
        let mut b = direct;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "threshold {s_star}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn persisted_mh_sketch_equals_fresh_computation() {
    let rows = data();
    let sigs = compute_signatures(&mut MemoryRowStream::new(&rows), 48, 1234).unwrap();
    let path = tmp("weblog.sfmh");
    persist::write_signatures(&sigs, &path).unwrap();
    let loaded = persist::read_signatures(&path).unwrap();
    assert_eq!(loaded, sigs);
    assert_eq!(
        mh_candidates(&loaded, 0.7, 0.2),
        mh_candidates(&sigs, 0.7, 0.2)
    );
    std::fs::remove_file(&path).ok();
}
