/root/repo/target/debug/deps/basket_benchmark-f9401ddcff0d0232.d: crates/experiments/src/bin/basket_benchmark.rs

/root/repo/target/debug/deps/libbasket_benchmark-f9401ddcff0d0232.rmeta: crates/experiments/src/bin/basket_benchmark.rs

crates/experiments/src/bin/basket_benchmark.rs:
