//! # sfa-apriori — the a priori baseline (Agrawal et al.)
//!
//! The comparison point of the paper's Fig. 4: classical level-wise
//! frequent-itemset mining with support pruning. "The key observation is
//! that if a set of attributes S appears in a fraction s of the tuples,
//! then any subset of S also appears in a fraction s of the tuples" — so
//! level `L_k` candidates are exactly the k-sets all of whose (k−1)-subsets
//! survived `L_{k−1}`.
//!
//! * [`apriori`] — the level-wise algorithm over a row-major transaction
//!   matrix: L1 by column counts, candidate generation by sorted prefix
//!   join + subset pruning, support counting by transaction projection.
//! * [`rules`] — association-rule generation (`X ⇒ Y` with support and
//!   confidence) from the frequent itemsets.
//! * [`pairs`] — the pair specialization used for the running-time
//!   comparison: frequent pairs, their confidences, and their Jaccard
//!   similarities, so the same output shape as the support-free schemes
//!   can be compared directly.

pub mod apriori;
pub mod pairs;
pub mod rules;

pub use apriori::{frequent_itemsets, maximal_itemsets, FrequentItemset, LevelSummary};
pub use pairs::{apriori_similar_pairs, AprioriPair};
pub use rules::{generate_rules, AssociationRule};
