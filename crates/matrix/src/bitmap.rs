//! Bit-parallel column bitmaps and popcount counting kernels.
//!
//! A sparse column is the set `C_i` of rows holding a 1; packing that set
//! into a `u64` row-bitmap turns `|C_i ∩ C_j|` into an AND-popcount scan:
//! `⌈n/64⌉` word operations regardless of how dense the columns are. This
//! is the bit-vector transaction representation that Bashir, Jan & Baig
//! identify as the key to fast exact support counting in the
//! no-minimum-support regime — once candidate generation is cheap, exact
//! pair counting dominates, and 64 rows per instruction is the cheapest
//! exact count there is.
//!
//! Two entry points:
//!
//! * [`BitColumn`] — one materialized column, for ad-hoc pair counts.
//! * [`BitMatrix`] — per-column bitmaps for all (or a selected subset of)
//!   the columns of a [`SparseMatrix`], with a blocked all-pairs driver
//!   ([`BitMatrix::for_each_cooccurring_pair`]) that tiles columns so each
//!   tile pair stays cache-resident while its `block²` popcount scans run.
//!
//! Memory cost: `⌈n/64⌉ · 8 ≈ n/8` bytes per materialized column. The
//! dispatch heuristics in [`column`](crate::column) and
//! [`stats`](crate::stats) only engage these kernels when that cost is
//! amortized (dense-enough columns, or many pairs per built column).

use crate::csc::SparseMatrix;

/// Number of rows packed per bitmap word.
const WORD_BITS: u32 = 64;

/// Words needed for an `n_rows`-bit bitmap.
#[inline]
#[must_use]
pub fn words_for(n_rows: u32) -> usize {
    (n_rows as usize).div_ceil(WORD_BITS as usize)
}

/// Sets the bits of `rows` in `words` (which must already be zeroed and
/// sized by [`words_for`]).
#[inline]
fn fill_words(words: &mut [u64], rows: &[u32]) {
    for &r in rows {
        words[(r / WORD_BITS) as usize] |= 1u64 << (r % WORD_BITS);
    }
}

/// `|a ∩ b|` over two bitmaps: AND-popcount via the selected kernel arm
/// ([`crate::kernel`] — AVX2/NEON Harley–Seal when available, the
/// unrolled scalar loop otherwise). Every arm returns identical counts.
#[must_use]
pub fn intersection_size_words(a: &[u64], b: &[u64]) -> usize {
    crate::kernel::and_popcount(a, b)
}

/// `|a ∪ b|` over two bitmaps (OR-popcount via the selected kernel arm;
/// the shorter slice zero-extends to the longer).
#[must_use]
pub fn union_size_words(a: &[u64], b: &[u64]) -> usize {
    crate::kernel::or_popcount(a, b)
}

/// One column materialized as a `u64` row-bitmap.
///
/// # Examples
///
/// ```
/// use sfa_matrix::bitmap::BitColumn;
///
/// let a = BitColumn::from_rows(130, &[0, 64, 129]);
/// let b = BitColumn::from_rows(130, &[64, 100, 129]);
/// assert_eq!(a.cardinality(), 3);
/// assert_eq!(a.intersection_size(&b), 2);
/// assert_eq!(a.union_size(&b), 4);
/// assert!((a.jaccard(&b) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitColumn {
    n_rows: u32,
    words: Vec<u64>,
}

impl BitColumn {
    /// Packs a strictly ascending row list into a bitmap over `n_rows`.
    ///
    /// # Panics
    ///
    /// Panics if a row id is `>= n_rows`.
    #[must_use]
    pub fn from_rows(n_rows: u32, rows: &[u32]) -> Self {
        assert!(rows.iter().all(|&r| r < n_rows), "row id out of range");
        let mut words = vec![0u64; words_for(n_rows)];
        fill_words(&mut words, rows);
        Self { n_rows, words }
    }

    /// The number of rows the bitmap spans.
    #[must_use]
    pub const fn n_rows(&self) -> u32 {
        self.n_rows
    }

    /// The raw bitmap words.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// `|C|` by popcount.
    #[must_use]
    pub fn cardinality(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `|C_i ∩ C_j|` by AND-popcount.
    #[must_use]
    pub fn intersection_size(&self, other: &Self) -> usize {
        intersection_size_words(&self.words, &other.words)
    }

    /// `|C_i ∪ C_j|` by OR-popcount.
    #[must_use]
    pub fn union_size(&self, other: &Self) -> usize {
        union_size_words(&self.words, &other.words)
    }

    /// Jaccard similarity `S(c_i, c_j)`; 0 when both columns are empty.
    #[must_use]
    pub fn jaccard(&self, other: &Self) -> f64 {
        let union = self.union_size(other);
        if union == 0 {
            0.0
        } else {
            self.intersection_size(other) as f64 / union as f64
        }
    }
}

/// Column tile width of the blocked all-pairs driver. 64 columns of a
/// 16k-row matrix are 16 KiB of bitmap — two tiles fit comfortably in L1,
/// so every word is read once per tile pair instead of once per column
/// pair.
pub const PAIR_BLOCK_COLS: usize = 64;

/// Per-column `u64` row-bitmaps for a set of CSC columns.
///
/// Built either over every column ([`BitMatrix::from_csc`]) or over a
/// selected candidate subset ([`BitMatrix::from_csc_subset`]), at
/// `⌈n/64⌉ · 8` bytes per materialized column.
///
/// # Examples
///
/// ```
/// use sfa_matrix::{bitmap::BitMatrix, SparseMatrix};
///
/// let m = SparseMatrix::from_columns(4, vec![
///     vec![0, 1], vec![0, 1, 2], vec![2, 3],
/// ]).unwrap();
/// let bits = BitMatrix::from_csc(&m);
/// assert_eq!(bits.intersection_size(0, 1), 2);
/// assert_eq!(bits.intersection_size(0, 2), 0);
/// ```
#[derive(Debug, Clone)]
pub struct BitMatrix {
    n_rows: u32,
    n_cols: usize,
    words_per_col: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// Materializes every column of `matrix`.
    #[must_use]
    pub fn from_csc(matrix: &SparseMatrix) -> Self {
        let cols: Vec<u32> = (0..matrix.n_cols()).collect();
        Self::from_csc_subset(matrix, &cols)
    }

    /// Materializes only the listed columns, in the order given; bitmap
    /// index `t` corresponds to `cols[t]`.
    ///
    /// # Panics
    ///
    /// Panics if a column id is out of range.
    #[must_use]
    pub fn from_csc_subset(matrix: &SparseMatrix, cols: &[u32]) -> Self {
        let words_per_col = words_for(matrix.n_rows());
        let mut words = vec![0u64; words_per_col * cols.len()];
        for (t, &j) in cols.iter().enumerate() {
            let slot = &mut words[t * words_per_col..(t + 1) * words_per_col];
            fill_words(slot, matrix.column(j));
        }
        Self {
            n_rows: matrix.n_rows(),
            n_cols: cols.len(),
            words_per_col,
            words,
        }
    }

    /// Number of materialized columns.
    #[must_use]
    pub const fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// The number of rows each bitmap spans.
    #[must_use]
    pub const fn n_rows(&self) -> u32 {
        self.n_rows
    }

    /// Resident size of the bitmap payload in bytes (`≈ n/8` per column).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// The bitmap words of materialized column `t`.
    #[must_use]
    pub fn column_words(&self, t: usize) -> &[u64] {
        &self.words[t * self.words_per_col..(t + 1) * self.words_per_col]
    }

    /// `|C_i ∩ C_j|` of materialized columns `a` and `b` by AND-popcount.
    #[must_use]
    pub fn intersection_size(&self, a: usize, b: usize) -> usize {
        intersection_size_words(self.column_words(a), self.column_words(b))
    }

    /// `|C_i ∪ C_j|` of materialized columns `a` and `b` by OR-popcount.
    #[must_use]
    pub fn union_size(&self, a: usize, b: usize) -> usize {
        union_size_words(self.column_words(a), self.column_words(b))
    }

    /// Blocked all-pairs driver: calls `f(a, b, |C_a ∩ C_b|)` for every
    /// materialized pair `a < b` whose intersection is nonzero, tiling
    /// columns in [`PAIR_BLOCK_COLS`]-wide blocks so both tiles stay
    /// cache-resident across the inner `block²` scans.
    ///
    /// The visit order is deterministic (fixed tiling) but not plain
    /// lexicographic; callers that need an order sort afterwards.
    pub fn for_each_cooccurring_pair<F: FnMut(usize, usize, usize)>(&self, mut f: F) {
        let m = self.n_cols;
        for bi in (0..m).step_by(PAIR_BLOCK_COLS) {
            let bi_end = (bi + PAIR_BLOCK_COLS).min(m);
            // Diagonal tile: upper triangle within the block.
            for a in bi..bi_end {
                for b in (a + 1)..bi_end {
                    let inter = self.intersection_size(a, b);
                    if inter > 0 {
                        f(a, b, inter);
                    }
                }
            }
            // Off-diagonal tiles: full block × block rectangles.
            for bj in (bi_end..m).step_by(PAIR_BLOCK_COLS) {
                let bj_end = (bj + PAIR_BLOCK_COLS).min(m);
                for a in bi..bi_end {
                    for b in bj..bj_end {
                        let inter = self.intersection_size(a, b);
                        if inter > 0 {
                            f(a, b, inter);
                        }
                    }
                }
            }
        }
    }
}

/// Scratch-bitmap exact `|a ∩ b|` for one dense pair: packs both row
/// lists into thread-local reusable bitmaps sized by the larger last row
/// id, then AND-popcounts. Used by the adaptive dispatcher
/// ([`crate::column::intersection_size_auto`]) when both columns are
/// dense enough that `3⌈n/64⌉` word operations undercut a branchy merge
/// over `|a| + |b|` elements.
#[must_use]
pub fn intersection_size_scratch(a: &[u32], b: &[u32]) -> usize {
    use std::cell::RefCell;
    thread_local! {
        static SCRATCH: RefCell<(Vec<u64>, Vec<u64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
    }
    let (Some(&la), Some(&lb)) = (a.last(), b.last()) else {
        return 0;
    };
    let words = words_for(la.max(lb) + 1);
    SCRATCH.with(|cell| {
        let (wa, wb) = &mut *cell.borrow_mut();
        wa.clear();
        wa.resize(words, 0);
        wb.clear();
        wb.resize(words, 0);
        fill_words(wa, a);
        fill_words(wb, b);
        intersection_size_words(wa, wb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column;

    #[test]
    fn bit_column_matches_sorted_merge() {
        let a_rows: Vec<u32> = (0..200).step_by(3).collect();
        let b_rows: Vec<u32> = (0..200).step_by(5).collect();
        let a = BitColumn::from_rows(200, &a_rows);
        let b = BitColumn::from_rows(200, &b_rows);
        assert_eq!(
            a.intersection_size(&b),
            column::intersection_size(&a_rows, &b_rows)
        );
        assert_eq!(
            a.union_size(&b),
            a_rows.len() + b_rows.len() - a.intersection_size(&b)
        );
        assert!((a.jaccard(&b) - column::jaccard(&a_rows, &b_rows)).abs() < 1e-12);
    }

    #[test]
    fn word_boundaries_are_exact() {
        // Bits at 63/64/127/128 exercise every word-edge case.
        let a = BitColumn::from_rows(130, &[63, 64, 127, 128]);
        let b = BitColumn::from_rows(130, &[64, 127]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(a.cardinality(), 4);
        assert_eq!(a.union_size(&b), 4);
    }

    #[test]
    fn empty_columns_are_zero() {
        let e = BitColumn::from_rows(100, &[]);
        let a = BitColumn::from_rows(100, &[1, 2]);
        assert_eq!(e.intersection_size(&a), 0);
        assert_eq!(e.jaccard(&e), 0.0);
        assert_eq!(intersection_size_scratch(&[], &[1, 2]), 0);
    }

    #[test]
    #[should_panic(expected = "row id out of range")]
    fn out_of_range_rows_panic() {
        let _ = BitColumn::from_rows(10, &[10]);
    }

    fn example() -> SparseMatrix {
        SparseMatrix::from_columns(4, vec![vec![0, 1], vec![0, 1, 2], vec![2, 3]]).unwrap()
    }

    #[test]
    fn bit_matrix_matches_csc_intersections() {
        let m = example();
        let bits = BitMatrix::from_csc(&m);
        assert_eq!(bits.n_cols(), 3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(
                    bits.intersection_size(i, j),
                    m.intersection_size(i as u32, j as u32),
                    "pair ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn subset_uses_given_order() {
        let m = example();
        let bits = BitMatrix::from_csc_subset(&m, &[2, 0]);
        assert_eq!(bits.n_cols(), 2);
        assert_eq!(bits.intersection_size(0, 1), m.intersection_size(2, 0));
        assert_eq!(bits.union_size(0, 1), 4);
        assert_eq!(bits.heap_bytes(), 2 * std::mem::size_of::<u64>());
    }

    #[test]
    fn blocked_driver_visits_every_cooccurring_pair_once() {
        // Enough columns to span several tiles.
        let n_rows = 97u32;
        let cols: Vec<Vec<u32>> = (0..150u32)
            .map(|j| (0..n_rows).filter(|r| (r + j) % 7 == 0).collect())
            .collect();
        let m = SparseMatrix::from_columns(n_rows, cols).unwrap();
        let bits = BitMatrix::from_csc(&m);
        let mut seen = std::collections::HashMap::new();
        bits.for_each_cooccurring_pair(|a, b, c| {
            assert!(a < b);
            assert!(c > 0);
            assert!(seen.insert((a, b), c).is_none(), "pair visited twice");
        });
        for i in 0..150u32 {
            for j in (i + 1)..150 {
                let exact = m.intersection_size(i, j);
                let got = seen.get(&(i as usize, j as usize)).copied().unwrap_or(0);
                assert_eq!(got, exact, "pair ({i}, {j})");
            }
        }
    }

    #[test]
    fn scratch_kernel_matches_merge() {
        let a: Vec<u32> = (0..500).step_by(2).collect();
        let b: Vec<u32> = (0..500).step_by(3).collect();
        assert_eq!(
            intersection_size_scratch(&a, &b),
            column::intersection_size(&a, &b)
        );
    }
}
