//! End-to-end pipeline per scheme, plus the a priori baseline — the Fig. 4
//! running-time table as a repeatable benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use sfa_apriori::apriori_similar_pairs;
use sfa_bench::bench_weblog;
use sfa_core::{Pipeline, PipelineConfig, Scheme};
use sfa_matrix::MemoryRowStream;

fn pipeline(c: &mut Criterion) {
    let (_, rows) = bench_weblog();
    let s_star = 0.5;
    let schemes = [
        ("mh_k100", Scheme::Mh { k: 100, delta: 0.2 }),
        ("mh_rowsort_k100", Scheme::MhRowSort { k: 100, delta: 0.2 }),
        ("kmh_k100", Scheme::Kmh { k: 100, delta: 0.2 }),
        (
            "mlsh_r5_l20",
            Scheme::MLsh {
                k: 100,
                r: 5,
                l: 20,
                sampled: false,
            },
        ),
        (
            "hlsh_r16_l4",
            Scheme::HLsh {
                r: 16,
                l: 4,
                t: 4,
                max_levels: 16,
            },
        ),
    ];
    let mut group = c.benchmark_group("pipeline_end_to_end");
    group.sample_size(10);
    for (name, scheme) in schemes {
        group.bench_function(name, |b| {
            let cfg = PipelineConfig::new(scheme, s_star, 9);
            b.iter(|| {
                Pipeline::new(cfg)
                    .run(&mut MemoryRowStream::new(&rows))
                    .unwrap()
            });
        });
    }
    group.bench_function("apriori_baseline_sup10", |b| {
        b.iter(|| apriori_similar_pairs(&rows, 10, s_star));
    });
    group.finish();
}

criterion_group!(benches, pipeline);
criterion_main!(benches);
