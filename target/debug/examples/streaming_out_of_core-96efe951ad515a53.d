/root/repo/target/debug/examples/streaming_out_of_core-96efe951ad515a53.d: examples/streaming_out_of_core.rs

/root/repo/target/debug/examples/streaming_out_of_core-96efe951ad515a53: examples/streaming_out_of_core.rs

examples/streaming_out_of_core.rs:
