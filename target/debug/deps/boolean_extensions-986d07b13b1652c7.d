/root/repo/target/debug/deps/boolean_extensions-986d07b13b1652c7.d: crates/experiments/src/bin/boolean_extensions.rs

/root/repo/target/debug/deps/boolean_extensions-986d07b13b1652c7: crates/experiments/src/bin/boolean_extensions.rs

crates/experiments/src/bin/boolean_extensions.rs:
