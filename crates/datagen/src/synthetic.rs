//! The paper's §5 synthetic benchmark.
//!
//! "The data contains 10⁴ columns and the number of rows vary from 10⁴ to
//! 10⁶. The column densities vary from 1 percent to 5 percent and, for
//! every 100 columns, we have a pair of similar columns. We have 20 pairs
//! of similar columns whose similarity fall in the ranges (85, 95),
//! (75, 85), (65, 75), (55, 65), and (45, 55)."
//!
//! [`SyntheticConfig::paper`] reproduces that spec; smaller presets scale
//! everything down proportionally for tests and CI.

use rand::{Rng, SeedableRng};

use sfa_matrix::SparseMatrix;

use crate::planted::{plant_pair, sample_rows, PlantedPair};

/// The five similarity bands of the paper, as `(low, high)` fractions.
pub const PAPER_BANDS: [(f64, f64); 5] = [
    (0.85, 0.95),
    (0.75, 0.85),
    (0.65, 0.75),
    (0.55, 0.65),
    (0.45, 0.55),
];

/// Configuration for the synthetic benchmark generator.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of rows `n`.
    pub n_rows: u32,
    /// Number of columns `m`.
    pub n_cols: u32,
    /// Column densities are drawn uniformly from this range.
    pub density_range: (f64, f64),
    /// Planted pairs per similarity band.
    pub pairs_per_band: usize,
    /// Similarity bands; a planted pair's target is drawn uniformly within
    /// its band.
    pub bands: Vec<(f64, f64)>,
    /// Root seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// The paper's configuration at a given row count (10⁴–10⁶ in §5).
    #[must_use]
    pub fn paper(n_rows: u32, seed: u64) -> Self {
        Self {
            n_rows,
            n_cols: 10_000,
            density_range: (0.01, 0.05),
            pairs_per_band: 20,
            bands: PAPER_BANDS.to_vec(),
            seed,
        }
    }

    /// A proportionally scaled-down preset for tests: 1 000 columns,
    /// `n_rows` rows, 2 pairs per band.
    #[must_use]
    pub fn small(n_rows: u32, seed: u64) -> Self {
        Self {
            n_rows,
            n_cols: 1_000,
            density_range: (0.01, 0.05),
            pairs_per_band: 2,
            bands: PAPER_BANDS.to_vec(),
            seed,
        }
    }
}

/// A generated synthetic dataset with its planted ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticData {
    /// The column-major matrix.
    pub matrix: SparseMatrix,
    /// The planted pairs, with exact similarities, sorted by `(i, j)`.
    pub planted: Vec<PlantedPair>,
}

impl SyntheticConfig {
    /// Generates the dataset.
    ///
    /// Planted pairs occupy randomly chosen column positions; all other
    /// columns are independent uniform-random sparse columns, so their
    /// pairwise similarities concentrate near
    /// `d² / (2d − d²) ≈ d/2 ≪ 0.45` and never pollute the bands.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (more planted columns
    /// than columns, densities outside `(0, 1]`, …).
    #[must_use]
    pub fn generate(&self) -> SyntheticData {
        let (d_lo, d_hi) = self.density_range;
        assert!(d_lo > 0.0 && d_hi <= 1.0 && d_lo <= d_hi, "bad densities");
        let planted_cols = 2 * self.pairs_per_band * self.bands.len();
        assert!(
            planted_cols <= self.n_cols as usize,
            "{planted_cols} planted columns exceed {} total",
            self.n_cols
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);

        // Choose distinct column positions for the planted pairs.
        let mut positions: Vec<u32> = sample_rows(&mut rng, self.n_cols, planted_cols);
        // sample_rows returns ascending ids; shuffle so bands are scattered.
        use rand::seq::SliceRandom;
        positions.shuffle(&mut rng);

        let mut columns: Vec<Option<Vec<u32>>> = vec![None; self.n_cols as usize];
        let mut planted = Vec::with_capacity(self.pairs_per_band * self.bands.len());
        let mut pos_iter = positions.into_iter();
        for &(lo, hi) in &self.bands {
            for _ in 0..self.pairs_per_band {
                let target = rng.gen_range(lo..hi);
                let density = rng.gen_range(d_lo..=d_hi);
                let a = ((f64::from(self.n_rows) * density) as usize).max(1);
                let (rows_i, rows_j, exact) = plant_pair(&mut rng, self.n_rows, a, target);
                let ci = pos_iter.next().expect("enough positions");
                let cj = pos_iter.next().expect("enough positions");
                let (ci, cj) = if ci < cj { (ci, cj) } else { (cj, ci) };
                columns[ci as usize] = Some(rows_i);
                columns[cj as usize] = Some(rows_j);
                planted.push(PlantedPair {
                    i: ci,
                    j: cj,
                    similarity: exact,
                });
            }
        }

        // Fill the background columns.
        let filled: Vec<Vec<u32>> = columns
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    let density = rng.gen_range(d_lo..=d_hi);
                    let a = ((f64::from(self.n_rows) * density) as usize).max(1);
                    sample_rows(&mut rng, self.n_rows, a)
                })
            })
            .collect();

        let matrix =
            SparseMatrix::from_columns(self.n_rows, filled).expect("generated columns are valid");
        planted.sort_by_key(|p| (p.i, p.j));
        SyntheticData { matrix, planted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_preset_generates_expected_shape() {
        let data = SyntheticConfig::small(2_000, 7).generate();
        assert_eq!(data.matrix.n_rows(), 2_000);
        assert_eq!(data.matrix.n_cols(), 1_000);
        assert_eq!(data.planted.len(), 10); // 2 per band × 5 bands
    }

    #[test]
    fn planted_similarities_match_matrix() {
        let data = SyntheticConfig::small(2_000, 7).generate();
        for p in &data.planted {
            let s = data.matrix.similarity(p.i, p.j);
            assert!(
                (s - p.similarity).abs() < 1e-12,
                "pair ({}, {}): recorded {} matrix {}",
                p.i,
                p.j,
                p.similarity,
                s
            );
        }
    }

    #[test]
    fn planted_similarities_lie_in_bands() {
        let data = SyntheticConfig::small(5_000, 11).generate();
        for p in &data.planted {
            assert!(
                p.similarity > 0.40 && p.similarity < 0.97,
                "similarity {} outside all bands",
                p.similarity
            );
        }
        // All five bands are represented.
        for &(lo, hi) in &PAPER_BANDS {
            assert!(
                data.planted
                    .iter()
                    .any(|p| p.similarity >= lo - 0.03 && p.similarity <= hi + 0.03),
                "no pair near band ({lo}, {hi})"
            );
        }
    }

    #[test]
    fn densities_are_in_configured_range() {
        let data = SyntheticConfig::small(5_000, 3).generate();
        for j in 0..data.matrix.n_cols() {
            let d = data.matrix.density(j);
            assert!((0.008..=0.055).contains(&d), "column {j} density {d}");
        }
    }

    #[test]
    fn background_pairs_are_dissimilar() {
        let data = SyntheticConfig::small(5_000, 13).generate();
        let planted: std::collections::HashSet<(u32, u32)> =
            data.planted.iter().map(|p| (p.i, p.j)).collect();
        // Every exact pair above 0.4 must be planted.
        for pair in sfa_matrix::stats::exact_similar_pairs(&data.matrix, 0.4) {
            assert!(
                planted.contains(&(pair.i, pair.j)),
                "unexpected similar background pair ({}, {}) at {}",
                pair.i,
                pair.j,
                pair.similarity
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticConfig::small(1_000, 42).generate();
        let b = SyntheticConfig::small(1_000, 42).generate();
        assert_eq!(a.matrix, b.matrix);
        let c = SyntheticConfig::small(1_000, 43).generate();
        assert_ne!(a.matrix, c.matrix);
    }
}
