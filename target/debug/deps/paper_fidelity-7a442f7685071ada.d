/root/repo/target/debug/deps/paper_fidelity-7a442f7685071ada.d: tests/paper_fidelity.rs

/root/repo/target/debug/deps/paper_fidelity-7a442f7685071ada: tests/paper_fidelity.rs

tests/paper_fidelity.rs:
