/root/repo/target/debug/deps/cli_end_to_end-95c69a2bda6b0c61.d: tests/cli_end_to_end.rs

/root/repo/target/debug/deps/libcli_end_to_end-95c69a2bda6b0c61.rmeta: tests/cli_end_to_end.rs

tests/cli_end_to_end.rs:

# env-dep:CARGO_BIN_EXE_sfa=placeholder:sfa
