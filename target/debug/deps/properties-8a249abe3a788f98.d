/root/repo/target/debug/deps/properties-8a249abe3a788f98.d: tests/properties.rs

/root/repo/target/debug/deps/properties-8a249abe3a788f98: tests/properties.rs

tests/properties.rs:
