/root/repo/target/debug/deps/bench_pipeline-1c6fec59e6d10880.d: crates/bench/benches/bench_pipeline.rs

/root/repo/target/debug/deps/libbench_pipeline-1c6fec59e6d10880.rmeta: crates/bench/benches/bench_pipeline.rs

crates/bench/benches/bench_pipeline.rs:
